/**
 * @file
 * Table 5 — "State of the art programming models": the qualitative
 * feature matrix. Unlike the paper's hand-written table, every cell
 * here is *derived from the living code*: recursion support is the
 * runtimes' own declaration (and enforced by which benchmark variants
 * exist), pointer support reflects whether the instrumented
 * pointer-store path versions arbitrary targets, scalability reflects
 * whether checkpoint cost is bounded independent of program state
 * (verified by tests/test_properties.cpp), timely execution reflects
 * the presence of time semantics, and porting effort reflects whether
 * the unmodified legacy sources run.
 */

#include <iostream>

#include "harness/report.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/hibernus.hpp"
#include "runtimes/ink.hpp"
#include "runtimes/mayfly.hpp"
#include "runtimes/mementos.hpp"
#include "support/table.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

struct FeatureRow {
    const char *name;
    bool recursion;
    bool pointers;     ///< arbitrary pointer stores versioned
    bool boundedCkpt;  ///< checkpoint cost independent of state size
    bool timely;       ///< time-sensitivity semantics
    const char *porting;
};

const char *
mark(bool b)
{
    return b ? "yes" : "no";
}

} // namespace

int
main(int argc, char **argv)
{
    // Qualitative matrix, no board runs; uniform report CLI only.
    harness::BenchSession session("table5_features", argc, argv);
    taskrt::MayflyRuntime mayfly;
    taskrt::TaskRuntime alpaca;
    taskrt::InkRuntime ink;
    runtimes::MementosRuntime mementos;
    runtimes::HibernusRuntime hibernus;
    runtimes::ChinchillaRuntime chinchilla;
    tics::TicsRuntime tics;

    const FeatureRow rows[] = {
        {mayfly.name(), mayfly.supportsRecursion(), false, true, true,
         "high (manual task graph)"},
        {alpaca.name(), alpaca.supportsRecursion(), false, true, false,
         "high (manual task graph)"},
        {ink.name(), ink.supportsRecursion(), false, true, true,
         "high (manual task graph)"},
        {mementos.name(), mementos.supportsRecursion(), true, false,
         false, "none (full-state ckpt)"},
        {hibernus.name(), hibernus.supportsRecursion(), true, false,
         false, "none (full-state ckpt)"},
        {chinchilla.name(), chinchilla.supportsRecursion(), true, false,
         false, "none (but recursion x)"},
        {tics.name(), tics.supportsRecursion(), true, true, true,
         "none"},
    };

    Table t("Table 5: programming-model characteristics (derived from "
            "the implemented runtimes)");
    t.header({"Runtime", "Recursion", "Pointers",
              "Bounded ckpt (scalable)", "Timely execution",
              "Porting effort"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .cell(mark(r.recursion))
            .cell(mark(r.pointers))
            .cell(mark(r.boundedCkpt))
            .cell(mark(r.timely))
            .cell(r.porting);
    }
    t.print(std::cout);
    std::cout << "\nTask systems' 'bounded ckpt' is per-task commit "
                 "cost; the paper rates their scalability 'poor' for "
                 "the decomposition burden, which Fig. 10's metrics "
                 "quantify.\n";
    return 0;
}
