/**
 * @file
 * Table 3 — modeled memory consumption (.text / .data, bytes) of the
 * three benchmark applications under InK, Chinchilla and TICS.
 *
 * We do not link MSP430 ELF binaries, so sizes come from the
 * documented footprint model (see mem/footprint.hpp): every runtime
 * and application variant registers its code-size and static-NV
 * contributions when constructed; the paper's footnote exclusions
 * (TICS's configurable segment array and undo log) are honored.
 *
 * Expected shape (paper Table 3): Chinchilla's .text is roughly twice
 * TICS's and its .data several times larger (promotion explosion);
 * TICS's .data is the smallest of the three; InK has the smallest
 * .text but large task-buffer .data.
 */

#include <iostream>

#include "apps/ar/ar_chinchilla.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/ar/ar_task.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/ink.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

struct Cell {
    std::uint32_t text = 0;
    std::uint32_t data = 0;
};

/** Construct runtime+app so both register their footprints. */
template <typename Rt, typename App, typename... Args>
Cell
footprintOf(Args &&...args)
{
    harness::SupplySpec spec;
    auto b = harness::makeBoard(spec);
    Rt rt(std::forward<Args>(args)...);
    // Attach allocates the runtime's NV structures (and footprint).
    rt.attach(*b, [] {});
    App app(*b, rt);
    return {rt.footprint().textTotal(), rt.footprint().dataTotal()};
}

} // namespace

int
main(int argc, char **argv)
{
    // Static footprint accounting only — no board runs to record; the
    // session still gives this bench the uniform report CLI.
    harness::BenchSession session("table3_memory", argc, argv);
    const Cell arInk = footprintOf<taskrt::InkRuntime, apps::ArTaskApp>();
    const Cell arChin =
        footprintOf<runtimes::ChinchillaRuntime, apps::ArChinchillaApp>();
    const Cell arTics = footprintOf<tics::TicsRuntime, apps::ArLegacyApp>();

    const Cell bcInk = footprintOf<taskrt::InkRuntime, apps::BcTaskApp>();
    const Cell bcChin =
        footprintOf<runtimes::ChinchillaRuntime, apps::BcChinchillaApp>();
    const Cell bcTics = footprintOf<tics::TicsRuntime, apps::BcLegacyApp>();

    const Cell cfInk =
        footprintOf<taskrt::InkRuntime, apps::CuckooTaskApp>();
    const Cell cfChin = footprintOf<runtimes::ChinchillaRuntime,
                                    apps::CuckooChinchillaApp>();
    const Cell cfTics =
        footprintOf<tics::TicsRuntime, apps::CuckooLegacyApp>();

    Table t("Table 3: modeled memory consumption (bytes)");
    t.header({"App", "InK .text", "InK .data", "Chinchilla .text",
              "Chinchilla .data", "TICS .text", "TICS .data"});
    auto row = [&](const char *name, const Cell &i, const Cell &c,
                   const Cell &x) {
        t.row()
            .cell(name)
            .cell(std::uint64_t{i.text})
            .cell(std::uint64_t{i.data})
            .cell(std::uint64_t{c.text})
            .cell(std::uint64_t{c.data})
            .cell(std::uint64_t{x.text})
            .cell(std::uint64_t{x.data});
    };
    row("AR", arInk, arChin, arTics);
    row("BC", bcInk, bcChin, bcTics);
    row("CF", cfInk, cfChin, cfTics);
    t.print(std::cout);

    std::cout << "\nNote: TICS .data excludes the configurable segment "
                 "array and undo log, per the paper's footnote; sizes "
                 "come from the documented footprint model, not a "
                 "linker map (see DESIGN.md).\n";
    return 0;
}
