/**
 * @file
 * Ablation: automatic-checkpoint policy.
 *
 * TICS supports timer-driven, hardware-assisted (voltage-threshold)
 * and manual/protocol-only checkpointing (paper Section 4). On a
 * harvesting supply, the policy decides how much completed work a
 * brown-out throws away (sparse checkpoints) versus how much overhead
 * checkpointing itself adds (dense checkpoints). Wall-clock completion
 * time under intermittent power captures both effects at once.
 */

#include <iostream>

#include "apps/bc/bc_legacy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

int
main(int argc, char **argv)
{
    harness::BenchSession session("ablation_policy", argc, argv);
    Table t("Ablation: checkpoint policy (BC, RF-harvested power)");
    t.header({"Policy", "Completed", "Wall time (ms)", "On time (ms)",
              "Reboots", "Checkpoints"});

    auto runWith = [&](const char *name, tics::PolicyKind policy,
                       TimeNs timer, Volts thresh) {
        harness::SupplySpec spec;
        spec.setup = harness::PowerSetup::RfHarvested;
        spec.rfDistanceM = 2.9;
        auto b = harness::makeBoard(spec, 13);
        tics::TicsConfig cfg;
        cfg.segmentBytes = 256;
        cfg.policy = policy;
        if (timer)
            cfg.timerPeriod = timer;
        cfg.voltageThreshold = thresh;
        tics::TicsRuntime rt(cfg);
        apps::BcParams p;
        p.iterations = 160;
        apps::BcLegacyApp app(*b, rt, p);
        const auto r = b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
        harness::recordRun(std::string("BC/") + name, rt, *b, r);
        t.row()
            .cell(name)
            .cell(r.completed && app.verify() ? "yes" : "NO")
            .cell(static_cast<double>(r.elapsed) / kNsPerMs, 1)
            .cell(harness::simMs(r), 1)
            .cell(r.reboots)
            .cell(rt.checkpointsTotal());
    };

    runWith("protocol-only (None)", tics::PolicyKind::None, 0, 0);
    runWith("timer 5 ms", tics::PolicyKind::Timer, 5 * kNsPerMs, 0);
    runWith("timer 10 ms", tics::PolicyKind::Timer, 10 * kNsPerMs, 0);
    runWith("timer 25 ms", tics::PolicyKind::Timer, 25 * kNsPerMs, 0);
    runWith("voltage < 2.6 V", tics::PolicyKind::Voltage, 0, 2.6);
    runWith("voltage < 2.1 V", tics::PolicyKind::Voltage, 0, 2.1);
    runWith("every trigger", tics::PolicyKind::EveryTrigger, 0, 0);
    t.print(std::cout);
    return 0;
}
