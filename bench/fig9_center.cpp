/**
 * @file
 * Fig. 9, center column — micro-benchmarking TICS: execution time and
 * checkpoint counts as a function of the working-stack size.
 *
 * Configurations from the paper: S1 = 50 B and S2 = 256 B segments
 * with only protocol-driven (grow/shrink-enforced) checkpoints, and
 * S1* / S2* adding a 10 ms checkpoint timer. Continuous power.
 *
 * Expected shape: S1 produces many working-stack changes and therefore
 * enforced checkpoints; S2 produces (almost) none; the timer restores
 * forward-progress guarantees at bounded extra cost; larger segments
 * make each checkpoint dearer but rarer — the trade-off the paper
 * calls out.
 */

#include <iostream>

#include "apps/ar/ar_legacy.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

struct MicroResult {
    double ms = 0;
    bool ok = false;
    std::uint64_t ckpts = 0;
    std::uint64_t growCkpts = 0;
    std::uint64_t timerCkpts = 0;
    std::uint64_t grows = 0;
};

template <typename App, typename Params>
MicroResult
runMicro(const char *name, const harness::TicsSetup &setup, Params p)
{
    harness::SupplySpec spec; // continuous
    auto b = harness::makeBoard(spec);
    tics::TicsRuntime rt(harness::makeTicsConfig(setup));
    App app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 600 * kNsPerSec);
    harness::recordRun(std::string(name) + "/" + setup.name, rt, *b,
                       res);
    MicroResult m;
    m.ms = harness::simMs(res);
    m.ok = res.completed && app.verify();
    m.ckpts = rt.checkpointsTotal();
    m.growCkpts = rt.checkpointCount(tics::CkptCause::Shrink);
    m.timerCkpts = rt.checkpointCount(tics::CkptCause::Timer);
    m.grows = rt.stats().counterValue("stackGrows");
    return m;
}

template <typename App, typename Params>
void
benchRows(Table &t, const char *name, Params p)
{
    for (const auto *setup :
         {&harness::kSetupS1, &harness::kSetupS2, &harness::kSetupS1Star,
          &harness::kSetupS2Star}) {
        const auto m = runMicro<App>(name, *setup, p);
        t.row()
            .cell(name)
            .cell(setup->name)
            .cell(harness::msCell(true, m.ok, m.ms))
            .cell(m.ckpts)
            .cell(m.growCkpts)
            .cell(m.timerCkpts)
            .cell(m.grows);
    }
    t.separator();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("fig9_center", argc, argv);
    Table t("Fig. 9 (center): TICS micro-benchmark vs working-stack "
            "size (continuous power)");
    t.header({"Benchmark", "Config", "Time (ms)", "Checkpoints",
              "shrink-enforced", "timer", "Stack grows"});
    benchRows<apps::ArLegacyApp>(t, "AR", apps::ArParams{});
    benchRows<apps::BcLegacyApp>(t, "BC", apps::BcParams{});
    benchRows<apps::CuckooLegacyApp>(t, "CF", apps::CuckooParams{});
    t.print(std::cout);
    return 0;
}
