/**
 * @file
 * Fig. 8 — timely execution trace of the annotated AR application.
 *
 * The TICS-annotated AR app runs RF-powered; this bench renders its
 * per-window execution trace: sampled windows that stayed fresh were
 * featurized/classified, stale windows (a long outage elapsed between
 * sampling and consumption) were discarded by @expires, and activity
 * switches raised @timely alerts only inside the 200 ms deadline.
 */

#include <iostream>

#include "apps/ar/ar_timed.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

int
main(int argc, char **argv)
{
    harness::BenchSession session("fig8_trace", argc, argv);
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::RfHarvested;
    spec.rfDistanceM = 2.9;
    spec.accelRegimePeriod = 120 * kNsPerMs;
    auto b = harness::makeBoard(spec, 7);

    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    tics::TicsRuntime rt(cfg);

    apps::ArTimedParams p;
    p.windows = 40;
    apps::ArTimedTicsApp app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, 120 * kNsPerSec);
    harness::recordRun("AR-timed/RF", rt, *b, res);

    std::cout << "== Fig. 8: AR execution trace under RF power ==\n"
              << "reboots=" << res.reboots
              << "  processed=" << app.processed()
              << "  discarded(stale)=" << app.discarded()
              << "  alerts=" << app.alerts() << "\n\n";

    Table t("per-window trace (deduplicated re-executions)");
    t.header({"Window", "t (ms)", "Freshness", "Activity switch",
              "Timely alert"});
    std::uint64_t lastWindow = ~0ULL;
    for (const auto &ev : app.trace()) {
        if (ev.window == lastWindow)
            continue; // keep the final (committed) record per window
        lastWindow = ev.window;
        t.row()
            .cell(ev.window)
            .cell(static_cast<double>(ev.at) / kNsPerMs, 1)
            .cell(ev.fresh ? "fresh -> processed" : "EXPIRED -> discarded")
            .cell(ev.switched ? "yes" : "-")
            .cell(ev.alerted ? "ALERT (in deadline)" : "-");
    }
    t.print(std::cout);
    return 0;
}
