/**
 * @file
 * Extension: virtualized I/O (the paper's Section 7 future work).
 *
 * A transmit-heavy loop runs on harvested power twice: once sending
 * straight to the radio (the legacy pattern — failures between the
 * transmission and the next checkpoint replay it), and once through
 * tics::VirtualRadio (staged in FRAM, flushed at checkpoint commit
 * with a durable cursor). Reported: physical transmissions, distinct
 * messages delivered, duplicates, and losses.
 */

#include <cstring>
#include <iostream>
#include <set>

#include "board/board.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"
#include "tics/io.hpp"

using namespace ticsim;

namespace {

constexpr std::uint32_t kMessages = 40;

struct Outcome {
    std::uint64_t physical = 0;
    std::uint64_t distinct = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t lost = 0;
    std::uint64_t reboots = 0;
};

Outcome
analyze(const device::Radio &radio, std::uint64_t reboots,
        bool hasHeader)
{
    Outcome o;
    o.reboots = reboots;
    o.physical = radio.sentCount();
    std::set<std::uint32_t> seen;
    for (const auto &pkt : radio.packets()) {
        std::uint32_t id;
        std::memcpy(&id,
                    pkt.payload.data() +
                        (hasHeader ? sizeof(tics::VirtualRadio::Header)
                                   : 0),
                    sizeof(id));
        if (!seen.insert(id).second)
            ++o.duplicates;
    }
    o.distinct = seen.size();
    o.lost = kMessages - o.distinct;
    return o;
}

harness::SupplySpec
supply()
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::Pattern;
    spec.patternPeriod = 12 * kNsPerMs;
    spec.patternOnFraction = 0.6;
    return spec;
}

tics::TicsConfig
cfg()
{
    tics::TicsConfig c;
    c.segmentBytes = 128;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 3 * kNsPerMs;
    return c;
}

Outcome
runRaw()
{
    auto b = harness::makeBoard(supply());
    tics::TicsRuntime rt(cfg());
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 20);
            while (i.get() < kMessages) {
                rt.triggerPoint();
                const std::uint32_t id = i.get();
                b->radioSend(&id, sizeof(id)); // irrevocable, replayable
                i = i.get() + 1;
                b->charge(1500);
            }
        },
        60 * kNsPerSec);
    harness::recordRun("tx-loop/raw-radio", rt, *b, res);
    return analyze(b->radio(), res.reboots, /*hasHeader=*/false);
}

Outcome
runVirtual()
{
    auto b = harness::makeBoard(supply());
    tics::TicsRuntime rt(cfg());
    tics::VirtualRadio vr(rt, b->nvram(), "vr");
    mem::nv<std::uint32_t> i(b->nvram(), "i");
    const auto res = b->run(
        rt,
        [&] {
            board::FrameGuard fg(rt, 20);
            while (i.get() < kMessages) {
                rt.triggerPoint();
                const std::uint32_t id = i.get();
                vr.send(&id, sizeof(id));
                i = i.get() + 1;
                b->charge(1500);
            }
            vr.drainAll();
        },
        60 * kNsPerSec);
    harness::recordRun("tx-loop/virtual-radio", rt, *b, res);
    return analyze(b->radio(), res.reboots, /*hasHeader=*/true);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("extension_virtual_io", argc, argv);
    const Outcome raw = runRaw();
    const Outcome vio = runVirtual();

    Table t("Extension: virtualized I/O (40 messages on a 12 ms / 60% "
            "reset pattern)");
    t.header({"Variant", "Reboots", "Physical TX", "Distinct delivered",
              "Duplicate TX", "Lost"});
    t.row()
        .cell("raw radio (legacy)")
        .cell(raw.reboots)
        .cell(raw.physical)
        .cell(raw.distinct)
        .cell(raw.duplicates)
        .cell(raw.lost);
    t.row()
        .cell("tics::VirtualRadio")
        .cell(vio.reboots)
        .cell(vio.physical)
        .cell(vio.distinct)
        .cell(vio.duplicates)
        .cell(vio.lost);
    t.print(std::cout);
    std::cout << "\nVirtualRadio duplicates carry repeated sequence "
                 "numbers (receiver-deduplicable -> exactly-once end to "
                 "end); raw-radio duplicates are indistinguishable "
                 "replays, and nothing bounds them.\n";
    return vio.lost == 0 ? 0 : 1;
}
