/**
 * @file
 * Table 2 — "Time consistency violation statistics for the AR
 * application running intermittently".
 *
 * The live activity-recognition application runs RF-powered (Powercast
 * 3 W EIRP transmitter model + 10 uF capacitor) in two versions:
 * manual time management over MementOS-like checkpoints, and the
 * TICS-annotated port. Both report sampling / timestamping /
 * consumption / branch events to the ViolationMonitor under identical
 * instance keys; the monitor scores the three violation classes of
 * paper Fig. 3b-d against true time.
 *
 * Expected shape (paper Table 2): tens of violations of every class
 * without TICS; exactly zero with TICS.
 */

#include <iostream>

#include "apps/ar/ar_timed.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

struct Counts {
    board::ViolationCounts timely;
    board::ViolationCounts misalign;
    board::ViolationCounts expire;
    std::uint64_t reboots = 0;
    std::uint64_t processed = 0;
    std::uint64_t discarded = 0;
};

harness::SupplySpec
rfSpec()
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::RfHarvested;
    spec.rfDistanceM = 2.9;
    spec.accelRegimePeriod = 120 * kNsPerMs;
    return spec;
}

Counts
readCounts(board::Board &b, const board::RunResult &res,
           const apps::ArTimedResults &app)
{
    Counts c;
    c.timely = b.monitor().counts(board::ViolationKind::TimelyBranch);
    c.misalign = b.monitor().counts(board::ViolationKind::Misalignment);
    c.expire = b.monitor().counts(board::ViolationKind::Expiration);
    c.reboots = res.reboots;
    c.processed = app.processed();
    c.discarded = app.discarded();
    return c;
}

Counts
runManual()
{
    auto b = harness::makeBoard(rfSpec(), 7);
    runtimes::MementosConfig mc;
    mc.trigger = runtimes::MementosConfig::Trigger::Timer;
    mc.timerPeriod = 10 * kNsPerMs;
    runtimes::MementosRuntime rt(mc);
    apps::ArTimedManualApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
    harness::recordRun("AR-timed/manual", rt, *b, res);
    return readCounts(*b, res, app);
}

Counts
runTics()
{
    auto b = harness::makeBoard(rfSpec(), 7);
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    tics::TicsRuntime rt(cfg);
    apps::ArTimedTicsApp app(*b, rt);
    const auto res = b->run(rt, [&] { app.main(); }, 300 * kNsPerSec);
    harness::recordRun("AR-timed/TICS", rt, *b, res);
    return readCounts(*b, res, app);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("table2_violations", argc, argv);
    const Counts manual = runManual();
    const Counts tics = runTics();

    Table t("Table 2: time-consistency violations, AR on RF power "
            "(145 windows x 6 samples)");
    t.header({"Violation", "Potential (manual)", "Observed w/o TICS",
              "Potential (TICS)", "Observed w/ TICS"});
    t.row()
        .cell("Timely branch")
        .cell(manual.timely.potential)
        .cell(manual.timely.observed)
        .cell(tics.timely.potential)
        .cell(tics.timely.observed);
    t.row()
        .cell("Time misalignment")
        .cell(manual.misalign.potential)
        .cell(manual.misalign.observed)
        .cell(tics.misalign.potential)
        .cell(tics.misalign.observed);
    t.row()
        .cell("Data expiration")
        .cell(manual.expire.potential)
        .cell(manual.expire.observed)
        .cell(tics.expire.potential)
        .cell(tics.expire.observed);
    t.print(std::cout);

    std::cout << "\nruns: manual reboots=" << manual.reboots
              << " windows processed=" << manual.processed
              << " (no freshness guard -> nothing discarded)\n"
              << "      TICS   reboots=" << tics.reboots
              << " windows processed=" << tics.processed
              << " discarded stale=" << tics.discarded << "\n";
    return 0;
}
