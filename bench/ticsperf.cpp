/**
 * @file
 * ticsperf: host-side self-observability bench (DESIGN.md Section 11).
 *
 * Two halves:
 *
 *  - Per-subsystem microbenchmarks over the hot paths the counters
 *    instrument: raw nv<T> stores, gated stores, sink-observed stores,
 *    undo-log append/clear batches, checkpoint commit+recover,
 *    PhaseScope and HostScope enter/exit, event-ring pushes and a
 *    result-cache round-trip.
 *
 *  - A macro throughput run: every (app, runtime) pair of the fault
 *    campaign's 10-pair matrix, one cell each, under the default
 *    pattern supply, reporting cells/sec and simulated device time per
 *    host second, plus the hot-path counter deltas and the HostScope
 *    wall-time partition for exactly that phase.
 *
 * With --json the document is a run_report v5 (`perf` section); the
 * committed BENCH_<n>.json trajectory points are produced by this
 * binary and compared with tools/perf_diff.py. BENCH numbers are only
 * meaningful from an optimized build, so an unoptimized ticsperf
 * refuses to run unless --allow-unoptimized is given.
 *
 * Flags: --quick (CI-sized microbench iteration counts; the macro run
 * is identical so counter deltas stay comparable), --jobs N (macro
 * sweep parallelism; default 1 keeps scheduling — and thus the
 * counter deltas — deterministic), --allow-unoptimized.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "mem/nv.hpp"
#include "mem/nvram.hpp"
#include "mem/store_gate.hpp"
#include "mem/trace.hpp"
#include "perf/counters.hpp"
#include "perf/host_profiler.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"
#include "sweep/cache.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/events.hpp"
#include "telemetry/phase.hpp"
#include "tics/checkpoint_area.hpp"
#include "tics/undo_log.hpp"

using namespace ticsim;

namespace {

/** Trajectory point this binary produces (BENCH_<n>.json). */
constexpr std::uint64_t kBenchVersion = 8;

#ifdef __OPTIMIZE__
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

#ifndef TICSIM_BUILD_TYPE
#define TICSIM_BUILD_TYPE "unknown"
#endif

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

harness::PerfMicrobenchEntry
finishMicro(const char *name, std::uint64_t iters, double startMs)
{
    const double elapsedMs = nowMs() - startMs;
    harness::PerfMicrobenchEntry e;
    e.name = name;
    e.iters = iters;
    e.nsPerOp = iters ? elapsedMs * 1e6 / static_cast<double>(iters)
                      : 0.0;
    e.opsPerSec = e.nsPerOp > 0.0 ? 1e9 / e.nsPerOp : 0.0;
    return e;
}

/** Sink that only tallies deliveries (the conservation counterpart of
 *  perf counters' sinkDispatches). */
class CountingSink final : public mem::AccessSink
{
  public:
    void memRead(const void *, std::uint32_t) override { ++reads; }
    void memWrite(const void *, std::uint32_t) override { ++writes; }
    void memVersioned(const void *, std::uint32_t) override
    {
        ++versioned;
    }
    void powerOn() override {}
    void commit() override {}

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t versioned = 0;
};

/** Pass-through gate: models the dispatch cost, not a tear. */
class PassGate final : public mem::StoreGate
{
  public:
    void store(mem::StoreSite, void *dst, const void *src,
               std::uint32_t bytes) override
    {
        std::memcpy(dst, src, bytes);
    }
};

std::vector<harness::PerfMicrobenchEntry>
runMicrobenches(bool quick)
{
    std::vector<harness::PerfMicrobenchEntry> out;
    const std::uint64_t big = quick ? 100'000 : 1'000'000;

    {
        mem::NvRam ram;
        mem::nv<std::uint64_t> x(ram, "perf.x");
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i)
            x = i;
        out.push_back(finishMicro("nv_store", big, t0));
    }
    {
        mem::NvRam ram;
        mem::nv<std::uint64_t> x(ram, "perf.x");
        PassGate gate;
        mem::ScopedGate g(&gate);
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i)
            x = i;
        out.push_back(finishMicro("nv_store_gated", big, t0));
    }
    {
        mem::NvRam ram;
        mem::nv<std::uint64_t> x(ram, "perf.x");
        CountingSink sink;
        mem::ScopedSink s(&sink);
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i)
            x = i;
        out.push_back(finishMicro("nv_store_sink", big, t0));
        if (sink.writes != big)
            fatal("ticsperf: sink conservation broken (%llu != %llu)",
                  static_cast<unsigned long long>(sink.writes),
                  static_cast<unsigned long long>(big));
    }
    {
        mem::NvRam ram;
        tics::UndoLog log(ram, "perf.undo", 8192, 512);
        std::uint8_t src[16] = {};
        const std::uint64_t appends = quick ? 50'000 : 500'000;
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < appends; ++i) {
            std::memcpy(src, &i, sizeof(i));
            log.append(src, sizeof(src));
            if (log.entryCount() == 64)
                log.clear();
        }
        out.push_back(finishMicro("undo_append_clear", appends, t0));
    }
    {
        mem::NvRam ram;
        tics::CheckpointArea area(ram, "perf.ckpt", 4096);
        const std::uint64_t commits = quick ? 2'000 : 20'000;
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < commits; ++i) {
            tics::CheckpointArea::Slot &slot = area.writeSlot();
            slot.imgLow = 0;
            slot.imgSize = 256;
            std::memcpy(slot.image, &i, sizeof(i));
            area.commit();
            if (area.valid() == nullptr)
                fatal("ticsperf: committed checkpoint not recoverable");
        }
        out.push_back(finishMicro("ckpt_commit_recover", commits, t0));
    }
    {
        telemetry::PhaseProfiler prof;
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i) {
            telemetry::PhaseScope scope(prof,
                                        telemetry::Phase::Checkpoint);
            prof.attribute(1);
        }
        out.push_back(finishMicro("phase_scope", big, t0));
    }
    {
        // Profiler enabled: this is the *enabled* HostScope cost the
        // report cites as scope_ns; the disabled cost is pinned to
        // zero clock reads by test_perf.
        perf::ScopedProfilerEnable enable;
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i)
            perf::HostScope scope(perf::HostZone::Analysis);
        out.push_back(finishMicro("host_scope", big, t0));
    }
    {
        telemetry::EventRing ring(1024);
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < big; ++i)
            ring.emit(telemetry::EventKind::PhaseSlice,
                      static_cast<TimeNs>(i), i, 0);
        out.push_back(finishMicro("event_ring_push", big, t0));
    }
    {
        const std::string dir = ".ticsperf-cache.tmp";
        std::filesystem::remove_all(dir);
        const sweep::ResultCache cache(dir);
        sweep::Cell cell;
        sweep::CellResult r;
        r.completed = true;
        r.onTimeNs = 1234567;
        r.simMs.sample(r.simMsValue());
        const std::uint64_t rounds = quick ? 200 : 2'000;
        const double t0 = nowMs();
        for (std::uint64_t i = 0; i < rounds; ++i) {
            cache.store(cell, r);
            sweep::CellResult back;
            if (!cache.lookup(cell, back))
                fatal("ticsperf: cache round-trip missed");
        }
        out.push_back(
            finishMicro("result_cache_roundtrip", rounds, t0));
        std::filesystem::remove_all(dir);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ticsperf", argc, argv);

    bool quick = false;
    bool allowUnoptimized = false;
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick") {
            quick = true;
        } else if (a == "--allow-unoptimized") {
            allowUnoptimized = true;
        } else if (a == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (a.rfind("--jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(std::atoi(a.c_str() + 7));
        } else {
            fatal("ticsperf: unknown argument '%s' "
                  "(flags: --quick --jobs N --allow-unoptimized "
                  "--json <path>)",
                  a.c_str());
        }
    }

    if (!kOptimized && !allowUnoptimized) {
        fatal("ticsperf: this binary was built without optimization "
              "(build type '%s'); BENCH numbers from it would be "
              "garbage. Build with --preset release, or pass "
              "--allow-unoptimized to run anyway.",
              TICSIM_BUILD_TYPE);
    }
    if (!kOptimized) {
        warn("ticsperf: running UNOPTIMIZED ('%s'); do not commit "
             "these numbers",
             TICSIM_BUILD_TYPE);
    }

    perf::ScopedProfilerEnable profilerOn;

    // ---- microbenches --------------------------------------------------
    const std::vector<harness::PerfMicrobenchEntry> micro =
        runMicrobenches(quick);

    // ---- macro: the fault campaign's 10 (app, runtime) pairs -----------
    sweep::SweepConfig cfg;
    cfg.grid.apps = {"BC", "CF"};
    cfg.grid.runtimes = {"TICS", "MementOS-like", "Chinchilla-like",
                         "Alpaca-like", "plain-C"};
    cfg.grid.seeds = {11};
    cfg.jobs = jobs;
    cfg.useCache = false; // measure real runs, never cache replay

    const perf::HotCounters countersBefore = perf::mergedCounters();
    const perf::HostProfiler profBefore = perf::mergedProfiler();
    const double macroStart = nowMs();
    const sweep::SweepResult macro = sweep::runSweep(cfg);
    const double macroMs = nowMs() - macroStart;
    const perf::HotCounters counters =
        perf::mergedCounters().delta(countersBefore);
    const perf::HostProfiler profAfter = perf::mergedProfiler();

    std::uint64_t simCycles = 0;
    std::uint64_t simNs = 0;
    for (const sweep::SweepCellOutcome &out : macro.cells) {
        simCycles += out.result.cycles;
        simNs += out.result.elapsedNs;
    }
    const double hostSec = macroMs / 1e3;

    // ---- assemble the perf section -------------------------------------
    harness::PerfSection perf;
    perf.benchVersion = kBenchVersion;
    perf.buildType = TICSIM_BUILD_TYPE;
    perf.optimized = kOptimized;
    perf.quick = quick;

    int nFields = 0;
    const ticsim::perf::CounterField *fields =
        ticsim::perf::counterFields(nFields);
    for (int i = 0; i < nFields; ++i)
        perf.counters.push_back(
            {fields[i].name, counters.*(fields[i].field)});

    perf.microbench = micro;

    perf.macroCells = macro.cells.size();
    perf.macroHostMs = macroMs;
    perf.cellsPerSec =
        hostSec > 0.0
            ? static_cast<double>(perf.macroCells) / hostSec
            : 0.0;
    perf.macroSimCycles = simCycles;
    perf.macroSimNs = simNs;
    perf.simCyclesPerHostSec =
        hostSec > 0.0 ? static_cast<double>(simCycles) / hostSec : 0.0;
    perf.simSecondsPerHostSec =
        hostSec > 0.0 ? static_cast<double>(simNs) / 1e9 / hostSec
                      : 0.0;

    perf.hostTotalMs = macroMs;
    double namedMs = 0.0;
    for (int z = 0; z < ticsim::perf::kHostZoneCount; ++z) {
        const auto zone = static_cast<ticsim::perf::HostZone>(z);
        harness::PerfZoneEntry e;
        e.name = ticsim::perf::hostZoneName(zone);
        e.ms = (profAfter.zoneNs(zone) - profBefore.zoneNs(zone)) / 1e6;
        e.scopes = profAfter.scopeCount(zone) -
                   profBefore.scopeCount(zone);
        namedMs += e.ms;
        perf.zones.push_back(std::move(e));
    }
    // The remainder (scheduling, board construction, everything not
    // inside a HostScope) closes the partition so the validator's
    // "zones sum to total" invariant holds exactly.
    harness::PerfZoneEntry other;
    other.name = "other";
    other.ms = macroMs > namedMs ? macroMs - namedMs : 0.0;
    perf.zones.push_back(std::move(other));

    perf.clockReads = ticsim::perf::clockReads();
    for (const harness::PerfMicrobenchEntry &m : micro) {
        if (m.name == "host_scope")
            perf.scopeNsPerEnterExit = m.nsPerOp;
    }

    session.setSeed(11);
    session.setPerf(perf);

    // ---- human-readable output -----------------------------------------
    Table mt("ticsperf: per-subsystem microbenchmarks" +
             std::string(quick ? " (--quick)" : ""));
    mt.header({"Bench", "Iters", "ns/op", "Mops/s"});
    for (const harness::PerfMicrobenchEntry &m : micro) {
        mt.row()
            .cell(m.name)
            .cell(m.iters)
            .cell(m.nsPerOp)
            .cell(m.opsPerSec / 1e6);
    }
    mt.print(std::cout);

    Table zt("ticsperf: macro host-time partition");
    zt.header({"Zone", "ms", "Scopes"});
    for (const harness::PerfZoneEntry &z : perf.zones)
        zt.row().cell(z.name).cell(z.ms).cell(z.scopes);
    zt.print(std::cout);

    std::cout << "macro: " << perf.macroCells << " cells in " << macroMs
              << " ms (" << perf.cellsPerSec << " cells/s, "
              << perf.simCyclesPerHostSec / 1e6
              << " M simulated cycles/host-s, "
              << perf.simSecondsPerHostSec
              << " simulated device-seconds/host-s)\n";
    std::cout << "build: " << TICSIM_BUILD_TYPE
              << (kOptimized ? " (optimized)" : " (UNOPTIMIZED)")
              << ", bench version " << kBenchVersion << "\n";
    return 0;
}
