/**
 * @file
 * Ablation: working-stack segment size.
 *
 * DESIGN.md calls out the central TICS design choice: segment size
 * trades per-checkpoint cost (grows with the segment) against
 * protocol-driven checkpoint frequency (shrinks with it). This sweep
 * quantifies both on continuous power, and additionally checks the
 * starvation boundary on a tiny energy buffer: very large segments
 * push the bounded checkpoint+restore cost toward the per-burst energy
 * budget, eroding TICS's own starvation-freedom headroom.
 */

#include <iostream>

#include "apps/ar/ar_legacy.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

tics::TicsConfig
cfgFor(std::uint32_t segBytes)
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = segBytes;
    cfg.segmentCount = 48;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ablation_segment_size", argc, argv);
    Table t("Ablation: segment size sweep (timer policy, 10 ms)");
    t.header({"Benchmark", "Segment (B)", "Time cont. (ms)",
              "Checkpoints", "Stack grows", "Tiny-buffer outcome"});

    for (const std::uint32_t seg :
         {50u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        for (int which = 0; which < 2; ++which) {
            // Continuous-power overhead.
            harness::SupplySpec cont;
            auto b1 = harness::makeBoard(cont);
            tics::TicsRuntime rt1(cfgFor(seg));
            double ms = 0;
            std::uint64_t ckpts = 0;
            std::uint64_t grows = 0;
            bool ok = false;
            const std::string benchName = which == 0 ? "AR" : "BC";
            if (which == 0) {
                apps::ArLegacyApp app(*b1, rt1);
                const auto r =
                    b1->run(rt1, [&] { app.main(); }, 600 * kNsPerSec);
                harness::recordRun(benchName + "/seg=" +
                                       std::to_string(seg) + "/cont",
                                   rt1, *b1, r);
                ms = harness::simMs(r);
                ok = r.completed && app.verify();
            } else {
                apps::BcLegacyApp app(*b1, rt1);
                const auto r =
                    b1->run(rt1, [&] { app.main(); }, 600 * kNsPerSec);
                harness::recordRun(benchName + "/seg=" +
                                       std::to_string(seg) + "/cont",
                                   rt1, *b1, r);
                ms = harness::simMs(r);
                ok = r.completed && app.verify();
            }
            ckpts = rt1.checkpointsTotal();
            grows = rt1.stats().counterValue("stackGrows");

            // Starvation probe: 6 ms power bursts.
            harness::SupplySpec tiny;
            tiny.setup = harness::PowerSetup::Pattern;
            tiny.patternPeriod = 20 * kNsPerMs;
            tiny.patternOnFraction = 0.4;
            auto b2 = harness::makeBoard(tiny);
            // The probe checkpoints fast (2 ms timer) so only the
            // segment-size-driven checkpoint/restore cost decides
            // whether a burst leaves room for forward progress.
            tics::TicsConfig probeCfg = cfgFor(seg);
            probeCfg.timerPeriod = 2 * kNsPerMs;
            tics::TicsRuntime rt2(probeCfg);
            std::string verdict;
            if (which == 0) {
                apps::ArLegacyApp app(*b2, rt2);
                const auto r =
                    b2->run(rt2, [&] { app.main(); }, 600 * kNsPerSec);
                harness::recordRun(benchName + "/seg=" +
                                       std::to_string(seg) + "/tiny",
                                   rt2, *b2, r);
                verdict = r.starved ? "STARVED"
                          : r.completed && app.verify() ? "completes"
                                                        : "DNF";
            } else {
                apps::BcLegacyApp app(*b2, rt2);
                const auto r =
                    b2->run(rt2, [&] { app.main(); }, 600 * kNsPerSec);
                harness::recordRun(benchName + "/seg=" +
                                       std::to_string(seg) + "/tiny",
                                   rt2, *b2, r);
                verdict = r.starved ? "STARVED"
                          : r.completed && app.verify() ? "completes"
                                                        : "DNF";
            }

            t.row()
                .cell(which == 0 ? "AR" : "BC")
                .cell(std::uint64_t{seg})
                .cell(harness::msCell(true, ok, ms))
                .cell(ckpts)
                .cell(grows)
                .cell(verdict);
        }
    }
    t.print(std::cout);
    return 0;
}
