/**
 * @file
 * ticsfault: the adversarial fault-injection campaign CLI. For every
 * (app, runtime) pair it learns the boundary-event universe from a
 * failure-free reference run, then sweeps systematic and seeded-random
 * fault schedules — power cuts at commit/restore/boot boundaries, torn
 * NV stores, stale-slot retention flips — and byte-diffs each faulted
 * run's final application state against the reference. Violations are
 * delta-debugged to minimal schedules and re-verified by replay.
 *
 * Exit status is 0 when the campaign matches the paper's argument
 * (protected runtimes survive every schedule, plain C demonstrably
 * does not) and 1 on any unexpected finding — so it can gate CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "fault/campaign.hpp"
#include "harness/report.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--campaign] [--seed N] [--random N] [--jobs N]\n"
        "          [--budget-s N] [--max-seconds S] [--json PATH]\n"
        "          [--patterns PATH] [--verbose]\n"
        "       %s --replay \"App/Runtime:plan\" [--seed N]\n"
        "Sweeps adversarial fault schedules (power cuts, torn NV\n"
        "stores, retention flips) over the app x runtime matrix,\n"
        "minimizes every violation, and checks the protection split.\n"
        "--replay re-executes one plan string, e.g.\n"
        "  --replay \"BC/plain-C:cut@commit:2+5000;off:12000000\"\n"
        "printing where each plan event fired (boundary occurrence and\n"
        "virtual time); exits 0 consistent, 1 violation, 2 usage,\n"
        "3 consistent-but-unreliable (a plan event never triggered).\n",
        argv0, argv0);
}

/** Write every minimized schedule as "App/Runtime:plan" lines — the
 *  exact strings --replay accepts — for the CI artifact. */
void
writePatterns(const fault::CampaignReport &report,
              const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "ticsfault: cannot open '%s'\n",
                     path.c_str());
        return;
    }
    for (const auto &p : report.pairs)
        for (const auto &v : p.found)
            os << v.app << '/' << v.runtime << ':' << v.plan << '\n';
}

int
replayMain(const fault::CampaignConfig &cfg, const std::string &spec)
{
    // "App/Runtime:plan" — the pair name itself contains one '/', so
    // split at the first ':' after it.
    const auto slash = spec.find('/');
    const auto colon =
        slash == std::string::npos ? std::string::npos
                                   : spec.find(':', slash);
    if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "ticsfault: --replay wants \"App/Runtime:plan\"\n");
        return 2;
    }
    const std::string pairName = spec.substr(0, colon);
    fault::FaultPlan plan;
    std::string err;
    if (!fault::FaultPlan::parse(spec.substr(colon + 1), plan, &err)) {
        std::fprintf(stderr, "ticsfault: bad plan: %s\n", err.c_str());
        return 2;
    }
    fault::ReplayDetail detail;
    if (!fault::replayPlanDetailed(cfg, pairName, plan, detail)) {
        std::fprintf(stderr, "ticsfault: unknown pair \"%s\"\n",
                     pairName.c_str());
        return 2;
    }
    std::printf("%s: %s\n    %s\n", pairName.c_str(),
                detail.verdict.c_str(), plan.format().c_str());
    for (const auto &a : detail.atoms) {
        if (a.fired)
            std::printf("    fired    %-32s occurrence %llu at %llu ns\n",
                        a.atom.c_str(),
                        static_cast<unsigned long long>(a.occurrence),
                        static_cast<unsigned long long>(a.at));
        else
            std::printf("    NO-FIRE  %-32s never triggered\n",
                        a.atom.c_str());
    }
    if (detail.verdict != "consistent")
        return 1;
    if (!detail.allFired()) {
        // A "consistent" replay whose plan never actually fired proves
        // nothing — distinct exit code so CI scripts can tell a
        // survived fault from a fault that never happened.
        std::printf("    verdict unreliable: some plan events never "
                    "triggered\n");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ticsfault", argc, argv);
    fault::CampaignConfig cfg;
    std::string replaySpec;
    std::string patternsPath;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--campaign") == 0) {
            // The default mode; accepted for readable CI scripts.
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--random") == 0) {
            cfg.randomSchedules =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (std::strcmp(arg, "--budget-s") == 0) {
            cfg.budget =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerSec;
        } else if (std::strcmp(arg, "--max-seconds") == 0) {
            cfg.maxSeconds = std::atof(next());
        } else if (std::strcmp(arg, "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--replay") == 0) {
            replaySpec = next();
        } else if (std::strcmp(arg, "--patterns") == 0) {
            patternsPath = next();
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    session.setSeed(cfg.seed);
    if (!replaySpec.empty())
        return replayMain(cfg, replaySpec);

    const fault::CampaignReport report = fault::runCampaign(cfg);
    fault::campaignTable(report).print(std::cout);
    fault::violationTable(report).print(std::cout);

    for (const auto &p : report.pairs) {
        for (const auto &v : p.found) {
            harness::ReportFinding rf;
            rf.analysis = "fault-campaign";
            rf.app = v.app;
            rf.runtime = v.runtime;
            rf.subject = v.kind;
            rf.bytes = v.divergentBytes;
            rf.detail = v.plan;
            session.addFinding(std::move(rf));
        }
    }
    if (!patternsPath.empty())
        writePatterns(report, patternsPath);

    if (verbose) {
        for (const auto &p : report.pairs)
            for (const auto &v : p.found)
                std::printf("  %s/%s: %s  (from %s, %u shrink runs)\n",
                            v.app.c_str(), v.runtime.c_str(),
                            v.plan.c_str(), v.originalPlan.c_str(),
                            v.shrinkRuns);
    }
    if (report.truncated)
        std::printf("ticsfault: campaign truncated by --max-seconds; "
                    "result is not seed-reproducible\n");

    if (report.ok()) {
        std::printf("ticsfault: %llu schedules, protection split holds "
                    "(protected survive, plain C violates)\n",
                    static_cast<unsigned long long>(
                        report.totalSchedules));
        return 0;
    }
    std::printf("ticsfault: UNEXPECTED campaign outcome\n");
    return 1;
}
