/**
 * @file
 * ticsverify: the static verification CLI. Recovers a program model
 * per (app, runtime) pair from one failure-free calibration run and
 * statically checks energy progress, timeliness reachability, and I/O
 * idempotency against the deployment supply — no intermittent
 * execution required.
 *
 * Modes:
 *   (default)              verify the app matrix, gate on the expected
 *                          verdict split
 *   --scenario nonterminating
 *                          verify against an undersized capacitor and
 *                          require at least one energy-progress finding
 *   --crossval             additionally run the dynamic checker and
 *                          require 100% coverage of its detections
 *   --prob                 derive probabilistic completion-time and
 *                          freshness-violation estimates per pair;
 *                          with --crossval, gate them against
 *                          sweep-simulated percentiles
 *   --size-capacitor APP/RUNTIME
 *                          inverse query: smallest capacitance whose
 *                          completion-time distribution meets
 *                          --slo within --deadline-ms
 *   --baseline PATH        fail when findings appear that the committed
 *                          baseline does not list, or (with --prob)
 *                          when a probabilistic verdict drifts
 *   --write-baseline PATH  regenerate the baseline from this run
 *
 * Exit status is 0 when the active gates hold, 1 otherwise — so CI can
 * gate on it like ticscheck.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "support/json.hpp"
#include "verify/crossval.hpp"
#include "verify/envmodel.hpp"
#include "verify/probcrossval.hpp"
#include "verify/verifier.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--period-ms N] [--on-fraction F] [--seed N]\n"
        "          [--capacitance-uf F] [--scenario nonterminating]\n"
        "          [--crossval] [--jobs N] [--verbose]\n"
        "          [--prob] [--prob-seeds N] [--prob-cap-uf F]\n"
        "          [--prob-tol P50,P95,P99] [--cache-dir PATH]\n"
        "          [--no-cache] [--slo F] [--deadline-ms F]\n"
        "          [--size-capacitor APP/RUNTIME]\n"
        "          [--baseline PATH] [--write-baseline PATH]\n"
        "          [--json PATH] [--trace PATH]\n"
        "Statically verifies energy progress, timeliness, and I/O\n"
        "idempotency over program models recovered from calibration\n"
        "runs of the app x runtime matrix. --prob adds probabilistic\n"
        "completion-time and freshness analysis; --size-capacitor\n"
        "answers the inverse SLO query (e.g. the smallest capacitor\n"
        "for 95%% of completions within the deadline).\n",
        argv0);
}

/** Stable identity of a finding for baseline comparison. */
std::string
findingKey(const verify::Finding &f)
{
    return f.app + "|" + f.runtime + "|" + f.analysis + "|" + f.subject;
}

/**
 * Read the baseline's "keys" array. The baseline is machine-written
 * JSON whose strings carry no escapes, so collecting the quoted
 * strings between the "keys" marker and the closing bracket is exact.
 */
std::set<std::string>
readBaseline(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "ticsverify: cannot open baseline '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    std::set<std::string> keys;
    const std::size_t marker = text.find("\"keys\"");
    if (marker == std::string::npos)
        return keys;
    std::size_t pos = text.find('[', marker);
    const std::size_t end = text.find(']', marker);
    if (pos == std::string::npos || end == std::string::npos)
        return keys;
    while (true) {
        const std::size_t open = text.find('"', pos);
        if (open == std::string::npos || open > end)
            break;
        const std::size_t close = text.find('"', open + 1);
        if (close == std::string::npos || close > end)
            break;
        keys.insert(text.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return keys;
}

/**
 * Probabilistic verdicts for baseline comparison: the static p95
 * completion time of every (app, runtime, env) row and the violation
 * probability of every timed variable. Both are pure functions of the
 * recovered model, so regressions in either direction are meaningful.
 */
std::map<std::string, double>
probVerdicts(const std::vector<verify::ProbGateRow> &rows,
             const std::vector<verify::FreshnessEstimate> &freshness)
{
    std::map<std::string, double> v;
    for (const auto &r : rows)
        v[r.app + "|" + r.runtime + "|" + r.env + "|p95_ms"] =
            r.staticP95Ms;
    for (const auto &f : freshness)
        v[f.app + "|" + f.runtime + "|" + f.env + "|fresh:" +
          f.subject] = f.pViolation;
    return v;
}

/**
 * Read the baseline's "prob" array of "key=value" strings (written by
 * --write-baseline under --prob; absent from version-1 baselines).
 */
std::map<std::string, double>
readBaselineProb(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    std::map<std::string, double> verdicts;
    const std::size_t marker = text.find("\"prob\"");
    if (marker == std::string::npos)
        return verdicts;
    std::size_t pos = text.find('[', marker);
    const std::size_t end = text.find(']', marker);
    if (pos == std::string::npos || end == std::string::npos)
        return verdicts;
    while (true) {
        const std::size_t open = text.find('"', pos);
        if (open == std::string::npos || open > end)
            break;
        const std::size_t close = text.find('"', open + 1);
        if (close == std::string::npos || close > end)
            break;
        const std::string entry =
            text.substr(open + 1, close - open - 1);
        const std::size_t eq = entry.rfind('=');
        if (eq != std::string::npos)
            verdicts[entry.substr(0, eq)] =
                std::atof(entry.c_str() + eq + 1);
        pos = close + 1;
    }
    return verdicts;
}

void
writeBaseline(const std::string &path,
              const std::vector<verify::Finding> &findings,
              const std::map<std::string, double> &prob)
{
    std::set<std::string> keys;
    for (const auto &f : findings)
        keys.insert(findingKey(f));

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "ticsverify: cannot write baseline '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "ticsim.verify_baseline");
    // Version 2 baselines additionally pin the probabilistic verdicts;
    // regenerating without --prob keeps emitting version 1.
    w.member("version", prob.empty() ? 1 : 2);
    w.key("keys").beginArray();
    for (const auto &k : keys)
        w.value(k);
    w.endArray();
    if (!prob.empty()) {
        w.key("prob").beginArray();
        for (const auto &[k, val] : prob) {
            char buf[320];
            std::snprintf(buf, sizeof(buf), "%s=%.9g", k.c_str(), val);
            w.value(std::string(buf));
        }
        w.endArray();
    }
    w.endObject();
    os << '\n';
    std::printf("ticsverify: wrote baseline (%zu findings, %zu prob "
                "verdicts) to %s\n",
                keys.size(), prob.size(), path.c_str());
}

/** Relative deviation used by the prob baseline gate. */
bool
probDrifted(double a, double b)
{
    const double hi = std::max(std::fabs(a), std::fabs(b));
    return hi > 0.0 && std::fabs(a - b) / hi > 1e-6;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strips --json/--trace before our own argument loop.
    harness::BenchSession session("ticsverify", argc, argv);
    verify::VerifyConfig cfg;
    bool verbose = false;
    bool crossval = false;
    bool nonterminating = false;
    bool prob = false;
    std::string baselinePath;
    std::string writeBaselinePath;
    verify::ProbCrossValConfig probCfg;
    verify::SloQuery slo;
    slo.deadlineNs = 100e6; // 100 ms default deadline
    std::string sizePair;   // "APP/RUNTIME"

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--period-ms") == 0) {
            cfg.patternPeriod =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerMs;
        } else if (std::strcmp(arg, "--on-fraction") == 0) {
            cfg.patternOnFraction = std::atof(next());
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--capacitance-uf") == 0) {
            cfg.capacitanceF = std::atof(next()) * 1e-6;
        } else if (std::strcmp(arg, "--scenario") == 0) {
            const char *s = next();
            if (std::strcmp(s, "nonterminating") != 0) {
                usage(argv[0]);
                return 2;
            }
            nonterminating = true;
        } else if (std::strcmp(arg, "--crossval") == 0) {
            crossval = true;
        } else if (std::strcmp(arg, "--prob") == 0) {
            prob = true;
        } else if (std::strcmp(arg, "--prob-seeds") == 0) {
            const int n = std::atoi(next());
            probCfg.seeds.clear();
            for (int s = 0; s < n; ++s)
                probCfg.seeds.push_back(11 + s);
        } else if (std::strcmp(arg, "--prob-cap-uf") == 0) {
            probCfg.stochasticCapUf = std::atof(next());
        } else if (std::strcmp(arg, "--prob-tol") == 0) {
            double p50 = 0, p95 = 0, p99 = 0;
            if (std::sscanf(next(), "%lf,%lf,%lf", &p50, &p95, &p99) !=
                3) {
                usage(argv[0]);
                return 2;
            }
            probCfg.tol = {p50, p95, p99};
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            probCfg.cacheDir = next();
        } else if (std::strcmp(arg, "--no-cache") == 0) {
            probCfg.useCache = false;
        } else if (std::strcmp(arg, "--slo") == 0) {
            slo.slo = std::atof(next());
        } else if (std::strcmp(arg, "--deadline-ms") == 0) {
            slo.deadlineNs = std::atof(next()) * 1e6;
        } else if (std::strcmp(arg, "--size-capacitor") == 0) {
            sizePair = next();
        } else if (std::strcmp(arg, "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(std::atoi(next()));
            probCfg.jobs = cfg.jobs;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(arg, "--baseline") == 0) {
            baselinePath = next();
        } else if (std::strcmp(arg, "--write-baseline") == 0) {
            writeBaselinePath = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // The demo scenario: a capacitor too small for any checkpoint
    // region, which must be flagged as statically non-terminating.
    if (nonterminating && cfg.capacitanceF <= 0.0)
        cfg.capacitanceF = 1e-6;

    session.setSeed(cfg.seed);
    const auto verdicts = verify::verifyMatrix(cfg);
    verify::verdictTable(verdicts).print(std::cout);
    if (verbose)
        verify::findingTable(verdicts).print(std::cout);

    const auto findings = verify::allFindings(verdicts);
    for (const auto &f : findings) {
        harness::ReportFinding rf;
        rf.analysis = f.analysis;
        rf.app = f.app;
        rf.runtime = f.runtime;
        rf.subject = f.subject;
        rf.regionIndex = f.regionIndex;
        rf.anchor = f.anchor;
        rf.offset = f.offset;
        rf.bytes = f.bytes;
        rf.detail = f.detail;
        session.addFinding(std::move(rf));
    }

    int rc = 0;

    if (nonterminating) {
        std::size_t energy = 0;
        for (const auto &f : findings) {
            if (f.analysis == "energy-progress")
                ++energy;
        }
        if (energy == 0) {
            std::printf("UNEXPECTED: non-terminating scenario produced "
                        "no energy-progress finding\n");
            rc = 1;
        } else {
            std::printf("ticsverify: %zu region(s) statically "
                        "non-terminating under the %.1f uF supply\n",
                        energy, cfg.capacitanceF * 1e6);
        }
    } else {
        for (const auto &v : verdicts) {
            if (!verify::verdictOk(v)) {
                std::printf("UNEXPECTED: %s under %s\n", v.app.c_str(),
                            v.runtime.c_str());
                rc = 1;
            }
        }
        if (rc == 0)
            std::printf("ticsverify: matrix matches the expected "
                        "verification split\n");
    }

    // Probabilistic timing analysis: static estimates always; the
    // simulated side and the tolerance gate only under --crossval.
    std::map<std::string, double> probMap;
    if (prob || !sizePair.empty()) {
        harness::ProbSection sect;
        sect.tolP50 = probCfg.tol.p50;
        sect.tolP95 = probCfg.tol.p95;
        sect.tolP99 = probCfg.tol.p99;
        sect.crossval = prob && crossval;

        std::vector<verify::ProbGateRow> rows;
        std::vector<verify::FreshnessEstimate> freshness;
        if (prob && crossval) {
            auto pr = verify::probCrossValidate(probCfg);
            rows = std::move(pr.rows);
            freshness = std::move(pr.freshness);
            for (const auto &f : pr.findings) {
                std::printf("PROB GATE FAILED: %s under %s (%s): %s\n",
                            f.app.c_str(), f.runtime.c_str(),
                            f.subject.c_str(), f.detail.c_str());
                harness::ReportFinding rf;
                rf.analysis = f.analysis;
                rf.app = f.app;
                rf.runtime = f.runtime;
                rf.subject = f.subject;
                rf.anchor = f.anchor;
                rf.detail = f.detail;
                session.addFinding(std::move(rf));
            }
            if (!pr.pass)
                rc = 1;
            else
                std::printf("ticsverify: all %zu probabilistic rows "
                            "within tolerance\n",
                            rows.size());
        } else if (prob) {
            auto st = verify::probStaticAnalyze(probCfg);
            rows = std::move(st.rows);
            freshness = std::move(st.freshness);
        }
        if (prob) {
            verify::ProbCrossValReport view;
            view.rows = rows;
            verify::probCrossValTable(view).print(std::cout);
            verify::freshnessTable(freshness).print(std::cout);
            probMap = probVerdicts(rows, freshness);
        }

        for (const auto &r : rows) {
            harness::ProbRowEntry e;
            e.app = r.app;
            e.runtime = r.runtime;
            e.env = r.env;
            e.capUf = r.capUf;
            e.staticP50Ms = r.staticP50Ms;
            e.staticP95Ms = r.staticP95Ms;
            e.staticP99Ms = r.staticP99Ms;
            e.staticMeanMs = r.staticMeanMs;
            e.pNonterm = r.pNonterm;
            e.meanOutages = r.meanOutages;
            e.simCells = r.simCells;
            e.simCompleted = r.simCompleted;
            e.simP50Ms = r.simP50Ms;
            e.simP95Ms = r.simP95Ms;
            e.simP99Ms = r.simP99Ms;
            e.withinTolerance = r.gatePassed;
            e.gateKind = r.gateKind;
            e.failedPercentile = r.failedPercentile;
            sect.rows.push_back(std::move(e));
        }
        for (const auto &f : freshness) {
            harness::ProbFreshnessEntry e;
            e.app = f.app;
            e.runtime = f.runtime;
            e.env = f.env;
            e.subject = f.subject;
            e.lifetimeMs = static_cast<double>(f.lifetimeNs) / 1e6;
            e.pViolation = f.pViolation;
            e.sites = f.sites;
            sect.freshness.push_back(std::move(e));
        }

        // Inverse SLO query: smallest capacitance meeting the target.
        if (!sizePair.empty()) {
            const std::size_t slash = sizePair.find('/');
            if (slash == std::string::npos) {
                usage(argv[0]);
                return 2;
            }
            const std::string app = sizePair.substr(0, slash);
            const std::string runtime = sizePair.substr(slash + 1);
            const std::set<std::string> apps = {"AR", "BC", "CF"};
            const std::set<std::string> runtimes = {
                "TICS", "MementOS-like", "Chinchilla-like",
                "Alpaca-like", "plain-C"};
            if (!apps.count(app) || !runtimes.count(runtime)) {
                std::fprintf(stderr,
                             "ticsverify: unknown pair '%s'\n",
                             sizePair.c_str());
                return 2;
            }
            const auto model =
                verify::recoverSweepPair(probCfg, app, runtime);
            const auto sizing = verify::sizeCapacitor(
                model, verify::StochasticEnvParams{},
                device::CostModel{}, slo, verify::CapacitorGrid{},
                probCfg.rebootLimit);
            for (const auto &[capF, pOnTime] : sizing.curve)
                std::printf("  %8.2f uF  P[on time] = %.4f%s\n",
                            capF * 1e6, pOnTime,
                            sizing.feasible &&
                                    capF == sizing.capacitanceF
                                ? "  <- smallest meeting SLO"
                                : "");
            if (sizing.feasible) {
                std::printf(
                    "ticsverify: %s meets the %.0f%% x %.0f ms SLO "
                    "at %.2f uF (P[on time] = %.4f)\n",
                    sizePair.c_str(), slo.slo * 100,
                    slo.deadlineNs / 1e6, sizing.capacitanceF * 1e6,
                    sizing.pOnTime);
            } else {
                std::printf("ticsverify: no capacitance on the grid "
                            "meets the %.0f%% x %.0f ms SLO for %s\n",
                            slo.slo * 100, slo.deadlineNs / 1e6,
                            sizePair.c_str());
                rc = 1;
            }
            sect.haveSlo = true;
            sect.slo.app = app;
            sect.slo.runtime = runtime;
            sect.slo.slo = slo.slo;
            sect.slo.deadlineMs = slo.deadlineNs / 1e6;
            sect.slo.feasible = sizing.feasible;
            sect.slo.capacitanceUf = sizing.capacitanceF * 1e6;
            sect.slo.pOnTime = sizing.pOnTime;
        }
        session.setProb(std::move(sect));
    }

    if (!writeBaselinePath.empty())
        writeBaseline(writeBaselinePath, findings, probMap);

    if (!baselinePath.empty()) {
        const auto known = readBaseline(baselinePath);
        std::size_t fresh = 0;
        for (const auto &f : findings) {
            if (!known.count(findingKey(f))) {
                std::printf("NEW FINDING (not in baseline): %s\n",
                            findingKey(f).c_str());
                ++fresh;
            }
        }
        if (fresh > 0) {
            std::printf("ticsverify: %zu finding(s) not in baseline "
                        "%s\n",
                        fresh, baselinePath.c_str());
            rc = 1;
        } else {
            std::printf("ticsverify: all %zu findings covered by "
                        "baseline\n",
                        findings.size());
        }

        // The probabilistic verdicts are pinned in both directions:
        // a drifted p95 or violation probability fails whether it got
        // better or worse, because either means the model changed.
        if (!probMap.empty()) {
            const auto knownProb = readBaselineProb(baselinePath);
            if (knownProb.empty()) {
                std::printf("ticsverify: baseline carries no prob "
                            "verdicts (version 1); skipping the prob "
                            "baseline gate\n");
            } else {
                std::size_t drifted = 0;
                for (const auto &[k, v] : probMap) {
                    const auto it = knownProb.find(k);
                    if (it == knownProb.end()) {
                        std::printf("NEW PROB VERDICT (not in "
                                    "baseline): %s=%.9g\n",
                                    k.c_str(), v);
                        ++drifted;
                    } else if (probDrifted(v, it->second)) {
                        std::printf("PROB VERDICT DRIFTED: %s=%.9g "
                                    "(baseline %.9g)\n",
                                    k.c_str(), v, it->second);
                        ++drifted;
                    }
                }
                for (const auto &[k, v] : knownProb) {
                    if (!probMap.count(k)) {
                        std::printf("PROB VERDICT VANISHED: %s=%.9g\n",
                                    k.c_str(), v);
                        ++drifted;
                    }
                }
                if (drifted > 0) {
                    std::printf("ticsverify: %zu prob verdict(s) "
                                "deviate from baseline %s\n",
                                drifted, baselinePath.c_str());
                    rc = 1;
                } else {
                    std::printf("ticsverify: all %zu prob verdicts "
                                "match baseline\n",
                                probMap.size());
                }
            }
        }
    }

    if (crossval) {
        const auto report = verify::crossValidate(cfg);
        verify::crossValTable(report).print(std::cout);
        std::printf("ticsverify: coverage %zu/%zu dynamic detections, "
                    "%zu/%zu static findings confirmed\n",
                    report.totalMatched, report.totalDynamic,
                    report.totalConfirmed, report.totalStatic);
        if (!report.fullCoverage()) {
            std::printf("UNEXPECTED: dynamic detections escaped the "
                        "static analyses\n");
            rc = 1;
        }
    }

    return rc;
}
