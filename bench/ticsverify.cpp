/**
 * @file
 * ticsverify: the static verification CLI. Recovers a program model
 * per (app, runtime) pair from one failure-free calibration run and
 * statically checks energy progress, timeliness reachability, and I/O
 * idempotency against the deployment supply — no intermittent
 * execution required.
 *
 * Modes:
 *   (default)              verify the app matrix, gate on the expected
 *                          verdict split
 *   --scenario nonterminating
 *                          verify against an undersized capacitor and
 *                          require at least one energy-progress finding
 *   --crossval             additionally run the dynamic checker and
 *                          require 100% coverage of its detections
 *   --baseline PATH        fail when findings appear that the committed
 *                          baseline does not list
 *   --write-baseline PATH  regenerate the baseline from this run
 *
 * Exit status is 0 when the active gates hold, 1 otherwise — so CI can
 * gate on it like ticscheck.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "support/json.hpp"
#include "verify/crossval.hpp"
#include "verify/verifier.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--period-ms N] [--on-fraction F] [--seed N]\n"
        "          [--capacitance-uf F] [--scenario nonterminating]\n"
        "          [--crossval] [--jobs N] [--verbose]\n"
        "          [--baseline PATH] [--write-baseline PATH]\n"
        "          [--json PATH] [--trace PATH]\n"
        "Statically verifies energy progress, timeliness, and I/O\n"
        "idempotency over program models recovered from calibration\n"
        "runs of the app x runtime matrix.\n",
        argv0);
}

/** Stable identity of a finding for baseline comparison. */
std::string
findingKey(const verify::Finding &f)
{
    return f.app + "|" + f.runtime + "|" + f.analysis + "|" + f.subject;
}

/**
 * Read the baseline's "keys" array. The baseline is machine-written
 * JSON whose strings carry no escapes, so collecting the quoted
 * strings between the "keys" marker and the closing bracket is exact.
 */
std::set<std::string>
readBaseline(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "ticsverify: cannot open baseline '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    std::set<std::string> keys;
    const std::size_t marker = text.find("\"keys\"");
    if (marker == std::string::npos)
        return keys;
    std::size_t pos = text.find('[', marker);
    const std::size_t end = text.find(']', marker);
    if (pos == std::string::npos || end == std::string::npos)
        return keys;
    while (true) {
        const std::size_t open = text.find('"', pos);
        if (open == std::string::npos || open > end)
            break;
        const std::size_t close = text.find('"', open + 1);
        if (close == std::string::npos || close > end)
            break;
        keys.insert(text.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return keys;
}

void
writeBaseline(const std::string &path,
              const std::vector<verify::Finding> &findings)
{
    std::set<std::string> keys;
    for (const auto &f : findings)
        keys.insert(findingKey(f));

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "ticsverify: cannot write baseline '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "ticsim.verify_baseline");
    w.member("version", 1);
    w.key("keys").beginArray();
    for (const auto &k : keys)
        w.value(k);
    w.endArray();
    w.endObject();
    os << '\n';
    std::printf("ticsverify: wrote baseline (%zu findings) to %s\n",
                keys.size(), path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strips --json/--trace before our own argument loop.
    harness::BenchSession session("ticsverify", argc, argv);
    verify::VerifyConfig cfg;
    bool verbose = false;
    bool crossval = false;
    bool nonterminating = false;
    std::string baselinePath;
    std::string writeBaselinePath;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--period-ms") == 0) {
            cfg.patternPeriod =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerMs;
        } else if (std::strcmp(arg, "--on-fraction") == 0) {
            cfg.patternOnFraction = std::atof(next());
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--capacitance-uf") == 0) {
            cfg.capacitanceF = std::atof(next()) * 1e-6;
        } else if (std::strcmp(arg, "--scenario") == 0) {
            const char *s = next();
            if (std::strcmp(s, "nonterminating") != 0) {
                usage(argv[0]);
                return 2;
            }
            nonterminating = true;
        } else if (std::strcmp(arg, "--crossval") == 0) {
            crossval = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(arg, "--baseline") == 0) {
            baselinePath = next();
        } else if (std::strcmp(arg, "--write-baseline") == 0) {
            writeBaselinePath = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // The demo scenario: a capacitor too small for any checkpoint
    // region, which must be flagged as statically non-terminating.
    if (nonterminating && cfg.capacitanceF <= 0.0)
        cfg.capacitanceF = 1e-6;

    session.setSeed(cfg.seed);
    const auto verdicts = verify::verifyMatrix(cfg);
    verify::verdictTable(verdicts).print(std::cout);
    if (verbose)
        verify::findingTable(verdicts).print(std::cout);

    const auto findings = verify::allFindings(verdicts);
    for (const auto &f : findings) {
        harness::ReportFinding rf;
        rf.analysis = f.analysis;
        rf.app = f.app;
        rf.runtime = f.runtime;
        rf.subject = f.subject;
        rf.regionIndex = f.regionIndex;
        rf.anchor = f.anchor;
        rf.offset = f.offset;
        rf.bytes = f.bytes;
        rf.detail = f.detail;
        session.addFinding(std::move(rf));
    }

    int rc = 0;

    if (nonterminating) {
        std::size_t energy = 0;
        for (const auto &f : findings) {
            if (f.analysis == "energy-progress")
                ++energy;
        }
        if (energy == 0) {
            std::printf("UNEXPECTED: non-terminating scenario produced "
                        "no energy-progress finding\n");
            rc = 1;
        } else {
            std::printf("ticsverify: %zu region(s) statically "
                        "non-terminating under the %.1f uF supply\n",
                        energy, cfg.capacitanceF * 1e6);
        }
    } else {
        for (const auto &v : verdicts) {
            if (!verify::verdictOk(v)) {
                std::printf("UNEXPECTED: %s under %s\n", v.app.c_str(),
                            v.runtime.c_str());
                rc = 1;
            }
        }
        if (rc == 0)
            std::printf("ticsverify: matrix matches the expected "
                        "verification split\n");
    }

    if (!writeBaselinePath.empty())
        writeBaseline(writeBaselinePath, findings);

    if (!baselinePath.empty()) {
        const auto known = readBaseline(baselinePath);
        std::size_t fresh = 0;
        for (const auto &f : findings) {
            if (!known.count(findingKey(f))) {
                std::printf("NEW FINDING (not in baseline): %s\n",
                            findingKey(f).c_str());
                ++fresh;
            }
        }
        if (fresh > 0) {
            std::printf("ticsverify: %zu finding(s) not in baseline "
                        "%s\n",
                        fresh, baselinePath.c_str());
            rc = 1;
        } else {
            std::printf("ticsverify: all %zu findings covered by "
                        "baseline\n",
                        findings.size());
        }
    }

    if (crossval) {
        const auto report = verify::crossValidate(cfg);
        verify::crossValTable(report).print(std::cout);
        std::printf("ticsverify: coverage %zu/%zu dynamic detections, "
                    "%zu/%zu static findings confirmed\n",
                    report.totalMatched, report.totalDynamic,
                    report.totalConfirmed, report.totalStatic);
        if (!report.fullCoverage()) {
            std::printf("UNEXPECTED: dynamic detections escaped the "
                        "static analyses\n");
            rc = 1;
        }
    }

    return rc;
}
