/**
 * @file
 * ticssweep: the parallel experiment-orchestration CLI. Enumerates a
 * grid of (app, runtime, supply, capacitor, segment, seed) cells —
 * from a spec file or CLI axis flags — and runs them on a
 * work-stealing pool with a content-addressed result cache.
 *
 * The output is deterministic: any --jobs count (and any cache state)
 * produces byte-identical tables and, under --stable, byte-identical
 * --json documents, so CI can diff a 1-job run against a 4-job run.
 *
 * Modes:
 *   (default)    run the grid, print per-cell and aggregate tables
 *   --campaign   run the ticsfault adversarial campaign on the pool
 *   --crossval   run the ticsverify cross-validation on the pool
 *   --worker     serve the ticsfleet worker protocol on stdin/stdout
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "fault/campaign.hpp"
#include "fleet/worker.hpp"
#include "harness/report.hpp"
#include "sweep/sweep.hpp"
#include "verify/crossval.hpp"
#include "verify/verifier.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--spec PATH] [--apps L] [--runtimes L]\n"
        "          [--supplies L] [--caps-uf L] [--segments L]\n"
        "          [--envs L] [--seeds L] [--jobs N] [--no-cache]\n"
        "          [--cache-dir PATH] [--budget-s N] [--stable]\n"
        "          [--json PATH] [--trace PATH]\n"
        "       %s --campaign [--seed N] [--random N] [--jobs N]\n"
        "          [--budget-s N] [--max-seconds S] [--patterns PATH]\n"
        "       %s --crossval [--seed N] [--jobs N]\n"
        "       %s --worker   (ticsfleet worker protocol on stdio)\n"
        "Runs the cross-product of experiment axes on a work-stealing\n"
        "pool with a content-addressed result cache. Axis lists (L)\n"
        "are comma-separated; supplies accept continuous, rf,\n"
        "stochastic and pattern:<periodMs>:<onFraction>. --jobs 0\n"
        "uses every hardware thread. --stable zeroes the wall-clock\n"
        "and cache fields of the JSON report so repeated runs are\n"
        "byte-identical. --worker is ticsfleet's re-exec entry and\n"
        "takes no other flags.\n",
        argv0, argv0, argv0, argv0);
}

int
campaignMain(harness::BenchSession &session,
             const fault::CampaignConfig &cfg,
             const std::string &patternsPath)
{
    session.setSeed(cfg.seed);
    const fault::CampaignReport report = fault::runCampaign(cfg);
    fault::campaignTable(report).print(std::cout);
    fault::violationTable(report).print(std::cout);

    for (const auto &p : report.pairs) {
        for (const auto &v : p.found) {
            harness::ReportFinding rf;
            rf.analysis = "fault-campaign";
            rf.app = v.app;
            rf.runtime = v.runtime;
            rf.subject = v.kind;
            rf.bytes = v.divergentBytes;
            rf.detail = v.plan;
            session.addFinding(std::move(rf));
        }
    }
    if (!patternsPath.empty()) {
        std::ofstream os(patternsPath);
        if (!os) {
            std::fprintf(stderr, "ticssweep: cannot open '%s'\n",
                         patternsPath.c_str());
        } else {
            for (const auto &p : report.pairs)
                for (const auto &v : p.found)
                    os << v.app << '/' << v.runtime << ':' << v.plan
                       << '\n';
        }
    }
    if (report.truncated)
        std::printf("ticssweep: campaign truncated by --max-seconds; "
                    "result is not seed-reproducible\n");
    if (report.ok()) {
        std::printf("ticssweep: campaign of %llu schedules, protection "
                    "split holds\n",
                    static_cast<unsigned long long>(
                        report.totalSchedules));
        return 0;
    }
    std::printf("ticssweep: UNEXPECTED campaign outcome\n");
    return 1;
}

int
crossvalMain(harness::BenchSession &session,
             const verify::VerifyConfig &cfg)
{
    session.setSeed(cfg.seed);
    const auto report = verify::crossValidate(cfg);
    verify::crossValTable(report).print(std::cout);
    std::printf("ticssweep: coverage %zu/%zu dynamic detections, "
                "%zu/%zu static findings confirmed\n",
                report.totalMatched, report.totalDynamic,
                report.totalConfirmed, report.totalStatic);
    if (!report.fullCoverage()) {
        std::printf("UNEXPECTED: dynamic detections escaped the "
                    "static analyses\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The fleet worker entry speaks a framed protocol on stdio; it
    // must run before BenchSession can print anything to stdout.
    if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0)
        return fleet::runWorker();

    // Strips --json/--trace before our own argument loop.
    harness::BenchSession session("ticssweep", argc, argv);

    enum class Mode { Grid, Campaign, CrossVal };
    Mode mode = Mode::Grid;

    sweep::SweepConfig cfg;
    fault::CampaignConfig campaign;
    verify::VerifyConfig crossval;
    std::string patternsPath;
    bool stable = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        const auto axis = [&](const char *key) {
            std::string err;
            if (!sweep::parseAxis(cfg.grid, key, next(), err)) {
                std::fprintf(stderr, "ticssweep: %s\n", err.c_str());
                std::exit(2);
            }
        };
        if (std::strcmp(arg, "--campaign") == 0) {
            mode = Mode::Campaign;
        } else if (std::strcmp(arg, "--crossval") == 0) {
            mode = Mode::CrossVal;
        } else if (std::strcmp(arg, "--spec") == 0) {
            std::string err;
            if (!sweep::parseGridFile(next(), cfg.grid, err)) {
                std::fprintf(stderr, "ticssweep: %s\n", err.c_str());
                return 2;
            }
        } else if (std::strcmp(arg, "--apps") == 0) {
            axis("apps");
        } else if (std::strcmp(arg, "--runtimes") == 0) {
            axis("runtimes");
        } else if (std::strcmp(arg, "--supplies") == 0) {
            axis("supplies");
        } else if (std::strcmp(arg, "--caps-uf") == 0) {
            axis("caps_uf");
        } else if (std::strcmp(arg, "--segments") == 0) {
            axis("segments");
        } else if (std::strcmp(arg, "--envs") == 0) {
            axis("envs");
        } else if (std::strcmp(arg, "--seeds") == 0) {
            axis("seeds");
        } else if (std::strcmp(arg, "--jobs") == 0) {
            const unsigned jobs =
                static_cast<unsigned>(std::atoi(next()));
            cfg.jobs = jobs;
            campaign.jobs = jobs;
            crossval.jobs = jobs;
        } else if (std::strcmp(arg, "--no-cache") == 0) {
            cfg.useCache = false;
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            cfg.cacheDir = next();
        } else if (std::strcmp(arg, "--budget-s") == 0) {
            const TimeNs b =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerSec;
            cfg.budget = b;
            campaign.budget = b;
        } else if (std::strcmp(arg, "--stable") == 0) {
            stable = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            const auto seed =
                static_cast<std::uint64_t>(std::atoll(next()));
            campaign.seed = seed;
            crossval.seed = seed;
            if (cfg.grid.seeds.size() == 1)
                cfg.grid.seeds[0] = seed;
        } else if (std::strcmp(arg, "--random") == 0) {
            campaign.randomSchedules =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (std::strcmp(arg, "--max-seconds") == 0) {
            campaign.maxSeconds = std::atof(next());
        } else if (std::strcmp(arg, "--patterns") == 0) {
            patternsPath = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (mode == Mode::Campaign)
        return campaignMain(session, campaign, patternsPath);
    if (mode == Mode::CrossVal)
        return crossvalMain(session, crossval);

    const sweep::SweepResult result = sweep::runSweep(cfg);
    sweep::sweepTable(result).print(std::cout);
    sweep::aggregateTable(result).print(std::cout);
    session.setGrid(sweep::toGridSection(result, stable));

    if (cfg.useCache)
        std::printf("ticssweep: %zu cells (%llu cached, %llu run) on "
                    "%u job(s)\n",
                    result.cells.size(),
                    static_cast<unsigned long long>(result.cacheHits),
                    static_cast<unsigned long long>(result.cacheMisses),
                    result.jobs);
    else
        std::printf("ticssweep: %zu cells (cache disabled) on %u "
                    "job(s)\n",
                    result.cells.size(), result.jobs);
    return 0;
}
