/**
 * @file
 * ticscheck: the memory-consistency checker CLI. Runs the BC and
 * Cuckoo benchmarks under every runtime, traces the non-volatile
 * read/write/versioning sets per consistency interval, checks the
 * Surbatovich WAR condition, and byte-diffs each intermittent run's
 * final application state against a failure-free reference run.
 *
 * Exit status is 0 when the matrix matches the paper's argument
 * (protected runtimes consistent, plain C demonstrably not) and 1 on
 * any unexpected finding — so it can gate CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/checker.hpp"
#include "harness/report.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--period-ms N] [--on-fraction F] [--seed N]\n"
        "          [--budget-s N] [--verbose]\n"
        "          [--json PATH] [--trace PATH]\n"
        "Runs the app x runtime matrix under a reset pattern and\n"
        "reports WAR hazards and replay divergence per scenario.\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strips --json/--trace before the checker's own argument loop.
    harness::BenchSession session("ticscheck", argc, argv);
    analysis::CheckConfig cfg;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--period-ms") == 0) {
            cfg.patternPeriod =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerMs;
        } else if (std::strcmp(arg, "--on-fraction") == 0) {
            cfg.patternOnFraction = std::atof(next());
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--budget-s") == 0) {
            cfg.budget =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerSec;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    session.setSeed(cfg.seed);
    const auto findings = analysis::checkMatrix(cfg);
    analysis::findingsTable(findings).print(std::cout);
    if (verbose)
        analysis::hazardTable(findings).print(std::cout);

    int rc = 0;
    for (const auto &f : findings) {
        if (!analysis::scenarioOk(f)) {
            std::printf("UNEXPECTED: %s under %s\n", f.app.c_str(),
                        f.runtime.c_str());
            rc = 1;
        }
    }
    if (rc == 0)
        std::printf("ticscheck: matrix matches the expected "
                    "consistency split\n");
    return rc;
}
