/**
 * @file
 * Ablation: undo-log capacity.
 *
 * TICS bounds memory-versioning state with a fixed-size undo log and
 * forces a checkpoint when it fills. Pointer-heavy workloads (the
 * cuckoo filter) probe the trade-off: a small log converts pointer
 * pressure into forced checkpoints; a large log amortizes them but
 * occupies more FRAM.
 */

#include <iostream>

#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

int
main(int argc, char **argv)
{
    harness::BenchSession session("ablation_undolog", argc, argv);
    Table t("Ablation: undo-log capacity (cuckoo filter, pointer-heavy)");
    t.header({"Log bytes", "Log entries", "Time (ms)",
              "Forced ckpts (log full)", "Total ckpts", "Undo appends"});

    for (const auto &[bytes, entries] :
         std::initializer_list<std::pair<std::uint32_t, std::uint32_t>>{
             {96, 12},
             {128, 16},
             {256, 32},
             {512, 64},
             {1024, 128},
             {2048, 128},
             {8192, 512}}) {
        harness::SupplySpec cont;
        auto b = harness::makeBoard(cont);
        tics::TicsConfig cfg;
        cfg.segmentBytes = 256;
        cfg.policy = tics::PolicyKind::Timer;
        cfg.undoLogBytes = bytes;
        cfg.undoLogEntries = entries;
        tics::TicsRuntime rt(cfg);
        apps::CuckooParams p;
        p.buckets = 64;
        p.keys = 176;
        apps::CuckooLegacyApp app(*b, rt, p);
        const auto r = b->run(rt, [&] { app.main(); }, 600 * kNsPerSec);
        harness::recordRun("CF/log=" + std::to_string(bytes) + "x" +
                               std::to_string(entries),
                           rt, *b, r);
        t.row()
            .cell(std::uint64_t{bytes})
            .cell(std::uint64_t{entries})
            .cell(harness::msCell(true, r.completed && app.verify(),
                                  harness::simMs(r)))
            .cell(rt.checkpointCount(tics::CkptCause::UndoFull))
            .cell(rt.checkpointsTotal())
            .cell(rt.stats().counterValue("undoAppends"));
    }
    t.print(std::cout);
    return 0;
}
