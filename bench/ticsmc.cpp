/**
 * @file
 * ticsmc: the exhaustive failure-space explorer CLI. Where ticsfault
 * samples fault schedules, ticsmc enumerates them: one failure-free
 * recording pass per (app, runtime) pair discovers every decision
 * point — each boundary event and each gated NV store — and the
 * explorer then forks the simulator at each one (snapshot/restore in
 * place, no re-run from boot) and branches over the local fault
 * alphabet: die here, or land each distinct torn image of the store
 * and die on it. Every leaf is classified against the golden
 * reference; violations are confirmed through a real from-boot
 * injector replay and ddmin-minimized.
 *
 * A pair that completes the walk without frontier cut-offs is
 * *exhausted*: within the model (single death per decision, the
 * explorer's tear alphabet, --max-faults depth) the violation list is
 * provably complete. Exit status is 0 when every explored pair
 * behaves as the paper's argument demands — protected runtimes show
 * zero confirmed violations, an exhausted plain-C pair shows at least
 * one — and 1 otherwise (or when --require-exhausted is unmet).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "fault/explore.hpp"
#include "harness/report.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--app NAME] [--runtime NAME] [--max-faults N]\n"
        "          [--max-boundaries N] [--jobs N] [--seed N]\n"
        "          [--budget-s N] [--require-exhausted] [--verbose]\n"
        "          [--json PATH]\n"
        "Exhaustively enumerates the failure space of (app, runtime)\n"
        "pairs by forking the simulator at every boundary event and\n"
        "gated NV store. --app/--runtime filter the 10-pair matrix\n"
        "(exact names, e.g. --app BC --runtime plain-C); repeat the\n"
        "flags to select several. --max-boundaries caps the decision\n"
        "points explored per recording (0 = unbounded: proof of\n"
        "exhaustion). --max-faults sets the schedule depth.\n",
        argv0);
}

bool
nameMatches(const std::vector<std::string> &wanted, const std::string &s)
{
    if (wanted.empty())
        return true;
    for (const auto &w : wanted)
        if (w == s)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ticsmc", argc, argv);
    fault::ExploreConfig cfg;
    // Exhaustive enumeration wants the smallest workloads that still
    // cross several commit boundaries; the campaign-sized ones would
    // put tens of thousands of decision points in every recording.
    cfg.base.bc.iterations = 2;
    cfg.base.cuckoo.workScale = 1.0;
    cfg.base.cuckoo.keys = 8;

    std::vector<std::string> apps;
    std::vector<std::string> runtimes;
    bool requireExhausted = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--app") == 0) {
            apps.emplace_back(next());
        } else if (std::strcmp(arg, "--runtime") == 0) {
            runtimes.emplace_back(next());
        } else if (std::strcmp(arg, "--max-faults") == 0) {
            cfg.maxFaults = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (std::strcmp(arg, "--max-boundaries") == 0) {
            cfg.maxDecisions =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.base.seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (std::strcmp(arg, "--budget-s") == 0) {
            cfg.base.budget =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerSec;
        } else if (std::strcmp(arg, "--require-exhausted") == 0) {
            requireExhausted = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.maxFaults == 0) {
        std::fprintf(stderr, "ticsmc: --max-faults must be >= 1\n");
        return 2;
    }
    session.setSeed(cfg.base.seed);

    std::vector<fault::PairSpec> specs;
    for (fault::PairSpec &s : fault::campaignPairs(cfg.base)) {
        if (nameMatches(apps, s.app) && nameMatches(runtimes, s.runtime))
            specs.push_back(std::move(s));
    }
    if (specs.empty()) {
        std::fprintf(stderr, "ticsmc: no pair matches the filter\n");
        return 2;
    }

    const fault::ExploreReport report =
        fault::exploreMatrix(cfg, specs);
    fault::exploreTable(report).print(std::cout);
    fault::exploreViolationTable(report).print(std::cout);

    harness::McSection mc;
    mc.maxFaults = cfg.maxFaults;
    mc.maxDecisions = cfg.maxDecisions;
    mc.jobs = std::max(1u, cfg.jobs);
    mc.allExhausted = report.allExhausted();
    for (const auto &p : report.pairs) {
        harness::McPairEntry e;
        e.app = p.app;
        e.runtime = p.runtime;
        e.isProtected = p.isProtected;
        e.refCompleted = p.refCompleted;
        e.recordingConsistent = p.recordingConsistent;
        e.decisionPoints = p.decisionPoints;
        e.branchesTaken = p.branchesTaken;
        e.statesExplored = p.statesExplored;
        e.frontierCutoffs = p.frontierCutoffs;
        e.exhausted = p.exhausted;
        e.confirmedViolations = p.confirmedViolations;
        mc.pairs.push_back(std::move(e));
        for (const auto &v : p.violations) {
            harness::McViolationEntry ve;
            ve.app = p.app;
            ve.runtime = p.runtime;
            ve.kind = v.kind;
            ve.plan = v.plan;
            ve.foundAs = v.foundAs;
            ve.divergentBytes = v.divergentBytes;
            ve.confirmed = v.confirmed;
            mc.violations.push_back(std::move(ve));
        }
    }
    session.setMc(std::move(mc));

    if (verbose) {
        for (const auto &p : report.pairs)
            for (const auto &v : p.violations)
                std::printf("  %s/%s: %s  (found as %s, %s)\n",
                            p.app.c_str(), p.runtime.c_str(),
                            v.plan.c_str(), v.foundAs.c_str(),
                            v.confirmed ? "confirmed" : "UNCONFIRMED");
    }

    bool ok = report.ok();
    if (requireExhausted && !report.allExhausted()) {
        std::printf("ticsmc: --require-exhausted unmet (a pair was "
                    "frontier-capped or diverged)\n");
        ok = false;
    }
    if (ok) {
        std::uint64_t leaves = 0;
        for (const auto &p : report.pairs)
            leaves += p.statesExplored;
        std::printf("ticsmc: %llu states explored, split holds "
                    "(protected survive every schedule%s)\n",
                    static_cast<unsigned long long>(leaves),
                    report.allExhausted() ? ", exhaustively" : "");
        return 0;
    }
    std::printf("ticsmc: UNEXPECTED exploration outcome\n");
    return 1;
}
