/**
 * @file
 * Table 1 — "Real-world program with TICS on intermittent power".
 *
 * Greenhouse monitoring (GHM) in four configurations — plain C, plain
 * C + TICS, TinyOS, TinyOS + TICS — executed against pre-programmed
 * reset patterns at 4%, 48% and 100% power-on rates, for a fixed
 * virtual-time budget. Reported per configuration: completions of each
 * routine (sense moisture, sense temperature, compute, send) and the
 * consistency verdict (lockstep counters + no duplicated/replayed
 * rounds on the radio).
 *
 * Expected shape (paper Table 1): plain C makes skewed partial
 * progress and is inconsistent under intermittency (sense counts
 * inflate, sends lag or vanish); TICS keeps all four counters in
 * lockstep and consistent at every intermittency level, at a small
 * throughput cost at 100%.
 */

#include <iostream>

#include "apps/ghm/ghm.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/plainc.hpp"
#include "support/table.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

struct Row {
    const char *config;
    apps::GhmOutcome outcome;
};

template <typename App, typename Rt>
apps::GhmOutcome
runOne(const char *config, double onFraction, Rt &rt)
{
    harness::SupplySpec spec;
    spec.setup = harness::PowerSetup::Pattern;
    spec.patternPeriod = 100 * kNsPerMs;
    spec.patternOnFraction = onFraction;
    auto b = harness::makeBoard(spec, /*seed=*/42);
    apps::GhmParams p;
    p.rounds = 0; // run until the budget expires
    App app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, kNsPerSec);
    char label[64];
    std::snprintf(label, sizeof(label), "GHM/%s/on=%.0f%%", config,
                  onFraction * 100.0);
    harness::recordRun(label, rt, *b, res);
    return app.outcome();
}

tics::TicsConfig
ghmTicsConfig()
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = 128;
    cfg.policy = tics::PolicyKind::Timer;
    cfg.timerPeriod = 10 * kNsPerMs;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("table1_ghm", argc, argv);
    Table t("Table 1: GHM routine completions on intermittent power "
            "(1 s budget, 100 ms reset period)");
    t.header({"Intermit.", "Config", "Sense Moist.", "Sense Temp.",
              "Compute", "Send", "Consistent"});

    for (const double duty : {0.04, 0.48, 1.00}) {
        std::vector<Row> rows;
        {
            runtimes::PlainCRuntime rt;
            rows.push_back({"plain C", runOne<apps::GhmPlainApp>(
                                           "plainC", duty, rt)});
        }
        {
            tics::TicsRuntime rt(ghmTicsConfig());
            rows.push_back(
                {"plain C + TICS",
                 runOne<apps::GhmPlainApp>("plainC+TICS", duty, rt)});
        }
        {
            runtimes::PlainCRuntime rt;
            rows.push_back({"TinyOS", runOne<apps::GhmTinyosApp>(
                                          "TinyOS", duty, rt)});
        }
        {
            tics::TicsRuntime rt(ghmTicsConfig());
            rows.push_back(
                {"TinyOS + TICS",
                 runOne<apps::GhmTinyosApp>("TinyOS+TICS", duty, rt)});
        }

        char dutyLabel[16];
        std::snprintf(dutyLabel, sizeof(dutyLabel), "%.0f%%",
                      duty * 100.0);
        t.separator();
        for (const auto &r : rows) {
            t.row()
                .cell(dutyLabel)
                .cell(r.config)
                .cell(r.outcome.senseMoisture)
                .cell(r.outcome.senseTemp)
                .cell(r.outcome.compute)
                .cell(r.outcome.send)
                .cell(r.outcome.consistent ? "yes" : "NO");
        }
    }
    t.print(std::cout);
    return 0;
}
