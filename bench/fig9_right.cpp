/**
 * @file
 * Fig. 9, right column — TICS against the task-based systems and the
 * naive checkpointer.
 *
 * Per benchmark: plain C (reference), TICS S1*, TICS S2*, TICS ST
 * (checkpoints at the task-granular trigger points, the paper's
 * "checkpoints at task boundaries" configuration), the Alpaca-like
 * and InK-like task runtimes on the task-decomposed ports, the
 * MayFly-like runtime on the loop-free ports, and the MementOS-like
 * naive full-state checkpointer. Continuous power; the task ports drop
 * the recursive BC method (inexpressible), and CF is not expressible
 * in MayFly at all (graph loops) — printed "x" like the paper.
 *
 * Expected shape: with a reasonable working-stack size TICS lands
 * close to the task-based systems; the naive checkpointer pays for
 * full-state copies.
 */

#include <iostream>

#include "apps/ar/ar_legacy.hpp"
#include "apps/ar/ar_task.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/ink.hpp"
#include "runtimes/mayfly.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

constexpr TimeNs kBudget = 600 * kNsPerSec;

template <typename Rt, typename App, typename... CtorArgs>
std::string
runLegacy(const std::string &label, Rt &rt, CtorArgs &&...args)
{
    harness::SupplySpec spec;
    auto b = harness::makeBoard(spec);
    App app(*b, rt, std::forward<CtorArgs>(args)...);
    const auto res = b->run(rt, [&] { app.main(); }, kBudget);
    harness::recordRun(label, rt, *b, res);
    return harness::msCell(true, res.completed && app.verify(),
                           harness::simMs(res));
}

template <typename Rt, typename App, typename Params>
std::string
runTask(const std::string &label, Params p, bool graphLoop = true)
{
    harness::SupplySpec spec;
    auto b = harness::makeBoard(spec);
    Rt rt;
    App app(*b, rt, p, graphLoop);
    const auto res = b->run(rt, {}, kBudget);
    harness::recordRun(label, rt, *b, res);
    return harness::msCell(true, res.completed && app.verify(),
                           harness::simMs(res));
}

/** CuckooTaskApp has no graphLoop knob (always a graph loop). */
template <typename Rt>
std::string
runCuckooTask(const std::string &label)
{
    harness::SupplySpec spec;
    auto b = harness::makeBoard(spec);
    Rt rt;
    apps::CuckooTaskApp app(*b, rt);
    const auto res = b->run(rt, {}, kBudget);
    harness::recordRun(label, rt, *b, res);
    return harness::msCell(true, res.completed && app.verify(),
                           harness::simMs(res));
}

template <typename App, typename Params>
std::string
runTics(const std::string &bench, const harness::TicsSetup &setup,
        Params p)
{
    tics::TicsRuntime rt(harness::makeTicsConfig(setup));
    return runLegacy<tics::TicsRuntime, App>(bench + "/" + setup.name,
                                             rt, p);
}

template <typename App, typename Params>
std::string
runNaive(const std::string &bench, Params p)
{
    // The paper's naive comparator checkpoints at the task boundaries,
    // i.e. at every trigger point, saving the full stack and globals.
    runtimes::MementosConfig cfg;
    cfg.trigger = runtimes::MementosConfig::Trigger::Every;
    runtimes::MementosRuntime rt(cfg);
    return runLegacy<runtimes::MementosRuntime, App>(bench, rt, p);
}

template <typename App, typename Params>
std::string
runPlain(const std::string &bench, Params p)
{
    runtimes::PlainCRuntime rt;
    return runLegacy<runtimes::PlainCRuntime, App>(bench, rt, p);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("fig9_right", argc, argv);
    Table t("Fig. 9 (right): TICS vs task-based systems, execution time "
            "(sim ms, continuous power)");
    t.header({"Benchmark", "plain C", "TICS S1*", "TICS S2*", "TICS ST",
              "Alpaca", "InK", "MayFly", "naive (MementOS)"});

    t.row()
        .cell("AR")
        .cell(runPlain<apps::ArLegacyApp>("AR", apps::ArParams{}))
        .cell(runTics<apps::ArLegacyApp>("AR", harness::kSetupS1Star,
                                         apps::ArParams{}))
        .cell(runTics<apps::ArLegacyApp>("AR", harness::kSetupS2Star,
                                         apps::ArParams{}))
        .cell(runTics<apps::ArLegacyApp>("AR", harness::kSetupST,
                                         apps::ArParams{}))
        .cell(runTask<taskrt::TaskRuntime, apps::ArTaskApp>(
            "AR", apps::ArParams{}))
        .cell(runTask<taskrt::InkRuntime, apps::ArTaskApp>(
            "AR", apps::ArParams{}))
        .cell(runTask<taskrt::MayflyRuntime, apps::ArTaskApp>(
            "AR", apps::ArParams{}, /*graphLoop=*/false))
        .cell(runNaive<apps::ArLegacyApp>("AR", apps::ArParams{}));

    t.row()
        .cell("BC")
        .cell(runPlain<apps::BcLegacyApp>("BC", apps::BcParams{}))
        .cell(runTics<apps::BcLegacyApp>("BC", harness::kSetupS1Star,
                                         apps::BcParams{}))
        .cell(runTics<apps::BcLegacyApp>("BC", harness::kSetupS2Star,
                                         apps::BcParams{}))
        .cell(runTics<apps::BcLegacyApp>("BC", harness::kSetupST,
                                         apps::BcParams{}))
        .cell(runTask<taskrt::TaskRuntime, apps::BcTaskApp>(
            "BC", apps::BcParams{}))
        .cell(runTask<taskrt::InkRuntime, apps::BcTaskApp>(
            "BC", apps::BcParams{}))
        .cell(runTask<taskrt::MayflyRuntime, apps::BcTaskApp>(
            "BC", apps::BcParams{}, /*graphLoop=*/false))
        .cell(runNaive<apps::BcLegacyApp>("BC", apps::BcParams{}));

    t.row()
        .cell("CF")
        .cell(runPlain<apps::CuckooLegacyApp>("CF", apps::CuckooParams{}))
        .cell(runTics<apps::CuckooLegacyApp>("CF", harness::kSetupS1Star,
                                             apps::CuckooParams{}))
        .cell(runTics<apps::CuckooLegacyApp>("CF", harness::kSetupS2Star,
                                             apps::CuckooParams{}))
        .cell(runTics<apps::CuckooLegacyApp>("CF", harness::kSetupST,
                                             apps::CuckooParams{}))
        .cell(runCuckooTask<taskrt::TaskRuntime>("CF"))
        .cell(runCuckooTask<taskrt::InkRuntime>("CF"))
        .cell("x") // loops: inexpressible in MayFly
        .cell(runNaive<apps::CuckooLegacyApp>("CF", apps::CuckooParams{}));

    t.print(std::cout);
    std::cout << "\nNote: task ports use the recursion-free BC (the "
                 "task model cannot express recursion); 'x' marks "
                 "programs a system cannot express.\n";
    return 0;
}
