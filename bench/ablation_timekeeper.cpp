/**
 * @file
 * Ablation: persistent-timekeeper quality.
 *
 * The time annotations are only as good as the cross-failure clock
 * (paper Section 4 mandates a remanence timer or an RTC with a holdup
 * capacitor). This sweep runs the annotated AR application over
 * timekeepers of decreasing quality and reports how freshness
 * decisions degrade: an optimistic clock (underestimating outages)
 * consumes stale windows; a pessimistic one discards good data.
 */

#include <iostream>

#include "apps/ar/ar_timed.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

struct Row {
    const char *name;
    std::unique_ptr<timekeeper::Timekeeper> tk;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ablation_timekeeper", argc, argv);
    Table t("Ablation: timekeeper quality (annotated AR, RF power)");
    t.header({"Timekeeper", "Processed", "Discarded", "True-stale "
              "consumed", "Reboots"});

    auto runWith = [&](const char *name,
                       std::unique_ptr<timekeeper::Timekeeper> tk) {
        harness::SupplySpec spec;
        spec.setup = harness::PowerSetup::RfHarvested;
        spec.rfDistanceM = 2.9;
        spec.accelRegimePeriod = 120 * kNsPerMs;
        board::BoardConfig cfg;
        cfg.seed = 7;
        cfg.accelRegimePeriod = spec.accelRegimePeriod;
        board::Board b(cfg, harness::makeSupply(spec), std::move(tk));

        tics::TicsConfig tcfg;
        tcfg.segmentBytes = 128;
        tcfg.policy = tics::PolicyKind::Timer;
        tics::TicsRuntime rt(tcfg);
        apps::ArTimedParams p;
        p.windows = 80;
        apps::ArTimedTicsApp app(b, rt, p);
        const auto r = b.run(rt, [&] { app.main(); }, 300 * kNsPerSec);
        harness::recordRun(std::string("AR-timed/") + name, rt, b, r);
        const auto stale =
            b.monitor().counts(board::ViolationKind::Expiration).observed;
        t.row()
            .cell(name)
            .cell(app.processed())
            .cell(app.discarded())
            .cell(stale)
            .cell(r.reboots);
    };

    runWith("perfect",
            std::make_unique<timekeeper::PerfectTimekeeper>());
    runWith("RTC + cap (1 s holdup)",
            std::make_unique<timekeeper::RtcCapTimekeeper>(kNsPerSec));
    runWith("RTC + cap (100 ms holdup)",
            std::make_unique<timekeeper::RtcCapTimekeeper>(100 *
                                                           kNsPerMs));
    runWith("remanence (+/-10%)",
            std::make_unique<timekeeper::RemanenceTimekeeper>(
                0.10, 10 * kNsPerSec, Rng(21)));
    runWith("remanence (+/-40%)",
            std::make_unique<timekeeper::RemanenceTimekeeper>(
                0.40, 10 * kNsPerSec, Rng(21)));
    t.print(std::cout);

    std::cout << "\n'True-stale consumed' scores freshness decisions "
                 "against true time: a short-holdup RTC resets to zero "
                 "after long outages (underestimates age -> consumes "
                 "stale data), while noisy remanence timers cut both "
                 "ways.\n";
    return 0;
}
