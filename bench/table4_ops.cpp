/**
 * @file
 * Table 4 — "TICS overhead, split per runtime operation" (us at 1 MHz,
 * where 1 cycle == 1 us).
 *
 * Each google-benchmark case runs a miniature simulation exercising
 * exactly one runtime operation and reports the *simulated*
 * microseconds per operation as the `sim_us` counter (host wall time
 * measures the simulator itself, which is also useful but incidental).
 *
 * Paper anchor points: grow/shrink 345; checkpoint 264/464/656 for
 * 0/64/256 B segments; restore 273/475/664; pointer access 13 (no
 * log), 308 (log 4 B), 371 (log 64 B); rollback 234 (4 B), 294 (64 B).
 */

#include <benchmark/benchmark.h>

#include <set>

#include "apps/common/dsp.hpp"
#include "board/board.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "tics/runtime.hpp"

using namespace ticsim;

namespace {

std::unique_ptr<board::Board>
bareBoard()
{
    harness::SupplySpec spec; // continuous
    return harness::makeBoard(spec);
}

/**
 * google-benchmark re-invokes each case body thousands of times on a
 * fresh identical board, so recording every iteration would bloat the
 * report with duplicates; keep the first run per label only.
 */
void
recordOnce(const std::string &label, board::Runtime &rt,
           board::Board &b, const board::RunResult &res)
{
    static std::set<std::string> recorded;
    if (recorded.insert(label).second)
        harness::recordRun(label, rt, b, res);
}

tics::TicsConfig
cfgWithSeg(std::uint32_t segBytes)
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = segBytes;
    cfg.segmentCount = 32;
    cfg.policy = tics::PolicyKind::None;
    return cfg;
}

/** Simulated us of one op, measured as a cycle delta inside the app. */
double
measure(const char *label, std::unique_ptr<board::Board> b,
        tics::TicsRuntime &rt,
        const std::function<void(board::Board &, tics::TicsRuntime &,
                                 int)> &op,
        int reps)
{
    std::uint64_t totalCycles = 0;
    auto *bp = b.get();
    const auto res = b->run(
        rt,
        [&] {
            for (int i = 0; i < reps; ++i) {
                const Cycles c0 = bp->mcu().cycles();
                op(*bp, rt, i);
                totalCycles += bp->mcu().cycles() - c0;
            }
        },
        3600 * kNsPerSec);
    recordOnce(label, rt, *b, res);
    return static_cast<double>(totalCycles) / reps; // 1 cycle == 1 us
}

void
BM_StackGrowShrink(benchmark::State &state)
{
    double us = 0;
    for (auto _ : state) {
        auto b = bareBoard();
        tics::TicsRuntime rt(cfgWithSeg(64));
        us = measure("grow_shrink", std::move(b), rt,
                     [](board::Board &bd, tics::TicsRuntime &r, int) {
                         // The inner frame cannot share the outer
                         // frame's segment: one grow + one shrink.
                         board::FrameGuard outer(r, 20);
                         {
                             board::FrameGuard inner(r, 60);
                             benchmark::DoNotOptimize(bd.now());
                         }
                     },
                     200) /
             2.0; // one grow + one shrink per rep
    }
    state.counters["sim_us"] = us;
}

void
BM_CheckpointLogic(benchmark::State &state)
{
    const auto segBytes = static_cast<std::uint32_t>(state.range(0));
    double us = 0;
    for (auto _ : state) {
        auto b = bareBoard();
        tics::TicsRuntime rt(cfgWithSeg(segBytes == 0 ? 1 : segBytes));
        us = measure(("checkpoint/seg=" + std::to_string(segBytes))
                         .c_str(),
                     std::move(b), rt,
                     [](board::Board &, tics::TicsRuntime &r, int) {
                         r.checkpointNow();
                     },
                     100);
    }
    state.counters["sim_us"] = us;
}

void
BM_RestoreLogic(benchmark::State &state)
{
    const auto segBytes = static_cast<std::uint32_t>(state.range(0));
    double us = 0;
    for (auto _ : state) {
        // One checkpoint, one brown-out, one restore; read the
        // restore-cost sample from the runtime stats.
        harness::SupplySpec spec;
        spec.setup = harness::PowerSetup::Pattern;
        spec.patternPeriod = 40 * kNsPerMs;
        spec.patternOnFraction = 0.5;
        auto b = harness::makeBoard(spec);
        tics::TicsRuntime rt(cfgWithSeg(segBytes == 0 ? 1 : segBytes));
        auto *bp = b.get();
        const auto res = b->run(
            rt,
            [&] {
                rt.checkpointNow();
                for (;;)
                    bp->charge(500); // burn until the brown-out
            },
            200 * kNsPerMs);
        recordOnce("restore/seg=" + std::to_string(segBytes), rt, *b,
                   res);
        us = rt.stats().distribution("restoreCycles").mean();
    }
    state.counters["sim_us"] = us;
}

void
BM_PointerAccess(benchmark::State &state)
{
    const auto logBytes = static_cast<std::uint32_t>(state.range(0));
    double us = 0;
    for (auto _ : state) {
        auto b = bareBoard();
        tics::TicsConfig cfg = cfgWithSeg(256);
        cfg.undoLogBytes = 32 * 1024;
        cfg.undoLogEntries = 1024;
        tics::TicsRuntime rt(cfg);
        auto *bp = b.get();
        if (logBytes == 0) {
            // Stack-targeted store: classification only, no logging.
            us = measure("ptr_access/stack", std::move(b), rt,
                         [](board::Board &, tics::TicsRuntime &r, int) {
                             int local = 1;
                             r.store(&local, 2);
                             benchmark::DoNotOptimize(local);
                         },
                         200);
        } else {
            // Fresh NV target each rep so dedup never hits.
            const auto addr = bp->nvram().allocate("t4.targets",
                                                   200 * logBytes, 8);
            auto *base = bp->nvram().hostPtr(addr);
            us = measure(("ptr_access/log=" + std::to_string(logBytes))
                             .c_str(),
                         std::move(b), rt,
                         [base, logBytes](board::Board &,
                                          tics::TicsRuntime &r, int i) {
                             auto *p = base +
                                       static_cast<std::size_t>(i) *
                                           logBytes;
                             r.storeBytes(p, p, logBytes);
                         },
                         200);
        }
    }
    state.counters["sim_us"] = us;
}

void
BM_UndoRollback(benchmark::State &state)
{
    const auto entryBytes = static_cast<std::uint32_t>(state.range(0));
    double us = 0;
    for (auto _ : state) {
        harness::SupplySpec spec;
        spec.setup = harness::PowerSetup::Pattern;
        spec.patternPeriod = 40 * kNsPerMs;
        spec.patternOnFraction = 0.5;
        auto b = harness::makeBoard(spec);
        tics::TicsRuntime rt(cfgWithSeg(64));
        auto *bp = b.get();
        const auto addr = bp->nvram().allocate("t4.rb", entryBytes, 8);
        auto *p = bp->nvram().hostPtr(addr);
        const auto res = b->run(
            rt,
            [&] {
                rt.checkpointNow();
                rt.storeBytes(p, p, entryBytes); // one undo entry
                for (;;)
                    bp->charge(500);
            },
            200 * kNsPerMs);
        recordOnce("rollback/entry=" + std::to_string(entryBytes), rt,
                   *b, res);
        us = rt.stats().distribution("rollbackCyclesPerEntry").mean();
    }
    state.counters["sim_us"] = us;
}

BENCHMARK(BM_StackGrowShrink);
BENCHMARK(BM_CheckpointLogic)->Arg(0)->Arg(64)->Arg(256);
BENCHMARK(BM_RestoreLogic)->Arg(0)->Arg(64)->Arg(256);
BENCHMARK(BM_PointerAccess)->Arg(0)->Arg(4)->Arg(64);
BENCHMARK(BM_UndoRollback)->Arg(4)->Arg(64);

} // namespace

// BENCHMARK_MAIN() expanded by hand so the common report flags are
// stripped before google-benchmark sees (and rejects) them.
int
main(int argc, char **argv)
{
    harness::BenchSession session("table4_ops", argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
