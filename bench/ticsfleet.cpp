/**
 * @file
 * ticsfleet: multi-process sweep orchestration. Shards a grid across N
 * re-exec'd `ticssweep --worker` processes, streams their per-cell
 * results through the shared content-addressed cache, and merges the
 * shard outcomes with the same aggregation as the in-process engine —
 * so a fleet run's grid output is byte-identical to a serial ticssweep
 * run at any worker count, including after a crashed worker's cells
 * are retried.
 *
 * --workers 0 runs the grid in-process (the literal ticssweep engine);
 * CI byte-compares that against --workers 1 and --workers 4 under
 * --stable. --kill-worker N is the deterministic chaos hook CI uses to
 * exercise the crash-retry path.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "fleet/coordinator.hpp"
#include "harness/report.hpp"
#include "sweep/sweep.hpp"

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--spec PATH] [--apps L] [--runtimes L]\n"
        "          [--supplies L] [--caps-uf L] [--segments L]\n"
        "          [--envs L] [--seeds L] [--workers N] [--jobs N]\n"
        "          [--no-cache] [--cache-dir PATH] [--budget-s S]\n"
        "          [--sim-budget-s S] [--max-retries N]\n"
        "          [--heartbeat-timeout-s S] [--worker-bin PATH]\n"
        "          [--kill-worker SHARD] [--require-complete]\n"
        "          [--stable] [--json PATH] [--trace PATH]\n"
        "Shards the grid across --workers ticssweep --worker\n"
        "processes; --workers 0 runs in-process with --jobs threads.\n"
        "--budget-s caps host wall-clock for the whole fleet (each\n"
        "worker also honors it locally); --sim-budget-s is the\n"
        "per-cell virtual-time budget. --require-complete exits\n"
        "nonzero unless every cell produced a result. --kill-worker\n"
        "makes that shard's first process SIGKILL itself after one\n"
        "result, exercising the retry path deterministically.\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ticsfleet", argc, argv);

    fleet::FleetConfig cfg;
    cfg.workerBin = fleet::defaultWorkerBin(argv[0]);
    bool stable = false;
    bool requireComplete = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        const auto axis = [&](const char *key) {
            std::string err;
            if (!sweep::parseAxis(cfg.sweep.grid, key, next(), err)) {
                std::fprintf(stderr, "ticsfleet: %s\n", err.c_str());
                std::exit(2);
            }
        };
        if (std::strcmp(arg, "--spec") == 0) {
            std::string err;
            if (!sweep::parseGridFile(next(), cfg.sweep.grid, err)) {
                std::fprintf(stderr, "ticsfleet: %s\n", err.c_str());
                return 2;
            }
        } else if (std::strcmp(arg, "--apps") == 0) {
            axis("apps");
        } else if (std::strcmp(arg, "--runtimes") == 0) {
            axis("runtimes");
        } else if (std::strcmp(arg, "--supplies") == 0) {
            axis("supplies");
        } else if (std::strcmp(arg, "--caps-uf") == 0) {
            axis("caps_uf");
        } else if (std::strcmp(arg, "--segments") == 0) {
            axis("segments");
        } else if (std::strcmp(arg, "--envs") == 0) {
            axis("envs");
        } else if (std::strcmp(arg, "--seeds") == 0) {
            axis("seeds");
        } else if (std::strcmp(arg, "--workers") == 0) {
            cfg.workers = static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--jobs") == 0) {
            cfg.sweep.jobs =
                static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--no-cache") == 0) {
            cfg.sweep.useCache = false;
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            cfg.sweep.cacheDir = next();
        } else if (std::strcmp(arg, "--budget-s") == 0) {
            cfg.wallBudgetS = std::atof(next());
        } else if (std::strcmp(arg, "--sim-budget-s") == 0) {
            cfg.sweep.budget =
                static_cast<TimeNs>(std::atoll(next())) * kNsPerSec;
        } else if (std::strcmp(arg, "--max-retries") == 0) {
            cfg.maxRetries = static_cast<unsigned>(std::atoi(next()));
        } else if (std::strcmp(arg, "--heartbeat-timeout-s") == 0) {
            cfg.heartbeatTimeoutS = std::atof(next());
        } else if (std::strcmp(arg, "--worker-bin") == 0) {
            cfg.workerBin = next();
        } else if (std::strcmp(arg, "--kill-worker") == 0) {
            cfg.killWorkerShard = std::atoi(next());
        } else if (std::strcmp(arg, "--require-complete") == 0) {
            requireComplete = true;
        } else if (std::strcmp(arg, "--stable") == 0) {
            stable = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    fleet::FleetResult result = fleet::runFleet(cfg);
    result.fleet.requireComplete = requireComplete;

    sweep::sweepTable(result.sweep).print(std::cout);
    sweep::aggregateTable(result.sweep).print(std::cout);
    session.setGrid(sweep::toGridSection(result.sweep, stable));
    // --stable documents are byte-compared against plain ticssweep
    // output, so the run-varying fleet account is dropped there.
    if (!stable)
        session.setFleet(result.fleet);

    std::printf("ticsfleet: %llu/%llu cells over %u worker(s), "
                "%llu spawn(s), %llu retr%s%s\n",
                static_cast<unsigned long long>(
                    result.fleet.cellsCompleted),
                static_cast<unsigned long long>(
                    result.fleet.cellsTotal),
                cfg.workers,
                static_cast<unsigned long long>(
                    result.fleet.workersSpawned),
                static_cast<unsigned long long>(result.fleet.retries),
                result.fleet.retries == 1 ? "y" : "ies",
                result.complete ? "" : " [INCOMPLETE]");
    if (requireComplete && !result.complete) {
        std::fprintf(stderr,
                     "ticsfleet: --require-complete: %llu cell(s) "
                     "missing\n",
                     static_cast<unsigned long long>(
                         result.fleet.cellsTotal -
                         result.fleet.cellsCompleted));
        return 1;
    }
    return 0;
}
