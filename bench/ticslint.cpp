/**
 * @file
 * ticslint: true source-level static analysis of the legacy apps.
 *
 * Unlike ticsverify — which analyzes a ProgramModel recovered from one
 * dynamic calibration run, and therefore cannot see unexecuted paths —
 * ticslint tokenizes and parses the app sources themselves, builds
 * per-function CFGs, inlines along the call graph, and runs the four
 * dataflow checks over program text (DESIGN.md, "Source-level lint").
 *
 *     ticslint [--source-dir D] [--verbose] [--crossval]
 *              [--baseline F] [--write-baseline F] [--json F]
 *
 * Default mode lints the dogfood set (examples/, src/apps/, the
 * SensorRelay demo) under file-mode traits and prints a per-file
 * findings table. --crossval recovers the dynamic model matrix with
 * verify::verifyMatrix and machine-checks the over-approximation
 * guarantee: every dynamic finding must be covered by a source-level
 * finding, with per-pair false-positive rates reported. --baseline
 * gates both the file-mode findings and the crossval false positives
 * against a committed expectation file; anything new exits 1.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "lint/analyzer.hpp"
#include "lint/crossval.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "verify/verifier.hpp"

#ifndef TICSIM_SOURCE_DIR
#define TICSIM_SOURCE_DIR "."
#endif

using namespace ticsim;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --source-dir <dir>      repo root holding the sources to "
        "lint\n"
        "                          (default: the configured source "
        "tree)\n"
        "  --verbose               print every finding, not just "
        "per-file counts\n"
        "  --crossval              recover the dynamic model matrix "
        "and check that\n"
        "                          every dynamic finding is covered "
        "by a source one\n"
        "  --baseline <file>      fail (exit 1) on findings/FPs not "
        "in the baseline\n"
        "  --write-baseline <file> write the current findings as the "
        "baseline\n"
        "  --json <file>           write a ticsim.run_report v6 "
        "document\n",
        argv0);
}

std::string
fileKey(const lint::StaticFinding &f)
{
    return f.file + "|" + f.rule + "|" + f.subject;
}

std::string
crossvalKey(const std::string &app, const std::string &runtime,
            const lint::StaticFinding &f)
{
    return app + "|" + runtime + "|" + f.rule + "|" + f.subject;
}

/** Collect the quoted strings of the named array member. Baselines
 *  are machine-written JSON whose strings carry no escapes, so a
 *  quoted-string scan between the marker and the closing bracket is
 *  exact (the idiom ticsverify's baseline reader established). */
std::set<std::string>
readBaselineArray(const std::string &text, const std::string &name)
{
    std::set<std::string> keys;
    const std::string marker = "\"" + name + "\"";
    std::size_t pos = text.find(marker);
    if (pos == std::string::npos)
        return keys;
    pos = text.find('[', pos);
    const std::size_t end = text.find(']', pos);
    if (pos == std::string::npos || end == std::string::npos)
        return keys;
    while (true) {
        const std::size_t open = text.find('"', pos);
        if (open == std::string::npos || open > end)
            break;
        const std::size_t close = text.find('"', open + 1);
        if (close == std::string::npos || close > end)
            break;
        keys.insert(text.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return keys;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "ticslint: cannot open '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("ticslint", argc, argv);

    std::string sourceDir = TICSIM_SOURCE_DIR;
    bool verbose = false;
    bool crossval = false;
    std::string baselinePath;
    std::string writeBaselinePath;

    const auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--source-dir") == 0) {
            sourceDir = next(i);
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(arg, "--crossval") == 0) {
            crossval = true;
        } else if (std::strcmp(arg, "--baseline") == 0) {
            baselinePath = next(i);
        } else if (std::strcmp(arg, "--write-baseline") == 0) {
            writeBaselinePath = next(i);
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // ---- file mode: lint the dogfood set ------------------------------
    const auto files = lint::defaultSourceSet(sourceDir);
    if (files.empty()) {
        std::fprintf(stderr,
                     "ticslint: no sources under '%s' (use "
                     "--source-dir)\n",
                     sourceDir.c_str());
        return 2;
    }

    std::vector<lint::FileReport> reports;
    std::size_t totalFindings = 0;
    std::size_t totalFunctions = 0;
    for (const std::string &rel : files) {
        lint::FileReport rep = lint::analyzeFile(
            sourceDir + "/" + rel, rel, lint::fileModeTraits());
        totalFindings += rep.findings.size();
        totalFunctions += rep.functions;
        reports.push_back(std::move(rep));
    }

    Table fileTable("ticslint: per-file findings (" +
                    std::to_string(files.size()) + " files, " +
                    std::to_string(totalFunctions) + " functions)");
    fileTable.header(
        {"File", "Funcs", "WAR", "Timely", "IO", "Segment"});
    for (const auto &rep : reports) {
        std::size_t byRule[4] = {0, 0, 0, 0};
        for (const auto &f : rep.findings) {
            if (f.rule == lint::kRuleWar)
                ++byRule[0];
            else if (f.rule == lint::kRuleTimeliness)
                ++byRule[1];
            else if (f.rule == lint::kRuleIo)
                ++byRule[2];
            else
                ++byRule[3];
        }
        fileTable.row()
            .cell(rep.file)
            .cell(static_cast<std::uint64_t>(rep.functions))
            .cell(static_cast<std::uint64_t>(byRule[0]))
            .cell(static_cast<std::uint64_t>(byRule[1]))
            .cell(static_cast<std::uint64_t>(byRule[2]))
            .cell(static_cast<std::uint64_t>(byRule[3]));
    }
    fileTable.print(std::cout);

    if (verbose) {
        Table ft("ticslint: per-finding detail");
        ft.header({"Rule", "Subject", "File", "Line", "Entry"});
        for (const auto &rep : reports) {
            for (const auto &f : rep.findings) {
                ft.row()
                    .cell(f.rule)
                    .cell(f.subject)
                    .cell(f.file)
                    .cell(static_cast<std::uint64_t>(f.line))
                    .cell(f.function);
            }
        }
        ft.print(std::cout);
        for (const auto &rep : reports)
            for (const auto &f : rep.findings)
                std::printf("  %s:%d: [%s] %s\n", f.file.c_str(),
                            f.line, f.rule.c_str(), f.detail.c_str());
    }
    std::printf("ticslint: %zu finding(s) across %zu file(s)\n",
                totalFindings, files.size());

    // ---- crossval mode: source vs recovered model ---------------------
    lint::LintCrossVal cv;
    if (crossval) {
        std::printf("\nticslint: recovering the dynamic model matrix "
                    "(verify::verifyMatrix)...\n");
        const auto verdicts = verify::verifyMatrix();
        cv = lint::crossValidate(verdicts, sourceDir);
        lint::crossValTable(cv).print(std::cout);
        for (const auto &row : cv.rows) {
            for (const auto &miss : row.unmatched)
                std::printf("UNCOVERED dynamic finding: %s|%s|%s\n",
                            row.app.c_str(), row.runtime.c_str(),
                            miss.c_str());
            if (verbose) {
                for (const auto &fp : row.extras)
                    std::printf("  false positive %s|%s: [%s] %s "
                                "(%s:%d)\n",
                                row.app.c_str(), row.runtime.c_str(),
                                fp.rule.c_str(), fp.subject.c_str(),
                                fp.file.c_str(), fp.line);
            }
        }
        std::printf("ticslint: crossval %s — every dynamic finding %s "
                    "covered by a source-level finding\n",
                    cv.fullCoverage ? "OK" : "FAILED",
                    cv.fullCoverage ? "is" : "is NOT");
    }

    // ---- report -------------------------------------------------------
    {
        harness::LintSection sect;
        sect.filesAnalyzed = files.size();
        sect.functionsAnalyzed = totalFunctions;
        for (const auto &rep : reports) {
            for (const auto &f : rep.findings) {
                harness::LintFindingEntry e;
                e.rule = f.rule;
                e.subject = f.subject;
                e.file = f.file;
                e.line = static_cast<std::uint64_t>(f.line);
                e.function = f.function;
                e.detail = f.detail;
                sect.findings.push_back(std::move(e));
            }
        }
        sect.crossval = crossval;
        sect.fullCoverage = cv.fullCoverage;
        for (const auto &row : cv.rows) {
            harness::LintCrossValEntry e;
            e.app = row.app;
            e.runtime = row.runtime;
            e.file = row.file;
            e.dynamicFindings = row.dynamicCount;
            e.matchedFindings = row.matchedCount;
            e.staticFindings = row.staticCount;
            e.confirmedStatic = row.confirmedCount;
            e.coverage = row.coverage();
            e.fpRate = row.fpRate();
            sect.rows.push_back(std::move(e));
        }
        session.setLint(std::move(sect));
    }

    // ---- baseline -----------------------------------------------------
    if (!writeBaselinePath.empty()) {
        std::set<std::string> keys;
        for (const auto &rep : reports)
            for (const auto &f : rep.findings)
                keys.insert(fileKey(f));
        std::set<std::string> cvKeys;
        for (const auto &row : cv.rows)
            for (const auto &fp : row.extras)
                cvKeys.insert(crossvalKey(row.app, row.runtime, fp));

        std::ofstream os(writeBaselinePath);
        if (!os) {
            std::fprintf(stderr,
                         "ticslint: cannot write baseline '%s'\n",
                         writeBaselinePath.c_str());
            return 2;
        }
        JsonWriter w(os);
        w.beginObject();
        w.member("schema", "ticsim.lint_baseline");
        w.member("version", 1);
        w.key("keys").beginArray();
        for (const auto &k : keys)
            w.value(k);
        w.endArray();
        // The expected false positives of the over-approximation,
        // only meaningful when --crossval ran while writing.
        w.key("crossval_keys").beginArray();
        for (const auto &k : cvKeys)
            w.value(k);
        w.endArray();
        w.endObject();
        os << '\n';
        std::printf("ticslint: wrote baseline %s (%zu file key(s), "
                    "%zu crossval key(s))\n",
                    writeBaselinePath.c_str(), keys.size(),
                    cvKeys.size());
    }

    int rc = 0;
    if (!baselinePath.empty()) {
        const std::string text = readWholeFile(baselinePath);
        const auto known = readBaselineArray(text, "keys");
        std::size_t fresh = 0;
        for (const auto &rep : reports) {
            for (const auto &f : rep.findings) {
                if (!known.count(fileKey(f))) {
                    std::printf(
                        "NEW FINDING (not in baseline): %s (%s:%d)\n",
                        fileKey(f).c_str(), f.file.c_str(), f.line);
                    ++fresh;
                }
            }
        }
        if (crossval) {
            const auto knownCv =
                readBaselineArray(text, "crossval_keys");
            for (const auto &row : cv.rows) {
                for (const auto &fp : row.extras) {
                    const std::string k =
                        crossvalKey(row.app, row.runtime, fp);
                    if (!knownCv.count(k)) {
                        std::printf("NEW FALSE POSITIVE (not in "
                                    "baseline): %s (%s:%d)\n",
                                    k.c_str(), fp.file.c_str(),
                                    fp.line);
                        ++fresh;
                    }
                }
            }
        }
        if (fresh > 0) {
            std::printf("ticslint: %zu finding(s) not in baseline %s\n",
                        fresh, baselinePath.c_str());
            rc = 1;
        } else {
            std::printf("ticslint: baseline OK (%s)\n",
                        baselinePath.c_str());
        }
    }
    if (crossval && !cv.fullCoverage)
        rc = 1;

    session.finish();
    return rc;
}
