/**
 * @file
 * Fig. 10 (proxy) — developer effort: TICS vs task-based programs.
 *
 * The paper's Fig. 10 is a 90-participant user study (bug-finding
 * time and accuracy) that cannot be replicated without humans. This
 * bench reports the objective program-structure metrics behind the
 * study's explanation — the same three programs (swap, bubble sort,
 * timekeeping) in both styles, measured for size, decision points,
 * program elements and cross-element shared state. Task decomposition
 * multiplies all four, which is the surface a bug hunt must cover.
 *
 * Expected shape: the InK versions are consistently 2-4x larger on
 * every metric, consistent with the study's observed longer search
 * times and higher error rates for task-based code.
 */

#include <iostream>

#include "apps/study/study.hpp"
#include "harness/effort.hpp"
#include "harness/report.hpp"
#include "support/table.hpp"

using namespace ticsim;

int
main(int argc, char **argv)
{
    // No board runs here (static source metrics), but accept the
    // common report flags so every bench has a uniform CLI; the JSON
    // report simply carries no runs.
    harness::BenchSession session("fig10_effort", argc, argv);
    Table t("Fig. 10 (proxy): program-structure metrics, TICS vs InK "
            "styles");
    t.header({"Program", "Style", "LoC", "Decision points",
              "Program elements", "Shared-state items"});

    for (const auto &pt : apps::study::programTexts()) {
        const auto tics = harness::analyzeSource(
            pt.ticsSource, pt.ticsElements, pt.ticsSharedState);
        const auto ink = harness::analyzeSource(
            pt.inkSource, pt.inkElements, pt.inkSharedState);
        t.row()
            .cell(pt.name)
            .cell("TICS")
            .cell(std::uint64_t{tics.loc})
            .cell(std::uint64_t{tics.decisionPoints})
            .cell(std::uint64_t{tics.elements})
            .cell(std::uint64_t{tics.sharedState});
        t.row()
            .cell(pt.name)
            .cell("InK")
            .cell(std::uint64_t{ink.loc})
            .cell(std::uint64_t{ink.decisionPoints})
            .cell(std::uint64_t{ink.elements})
            .cell(std::uint64_t{ink.sharedState});
        t.separator();
    }
    t.print(std::cout);

    std::cout << "\nProxy for the paper's human-subject study (see "
                 "DESIGN.md): these metrics quantify the bug-search "
                 "surface; they are not a replication of participant "
                 "timing data.\n";
    return 0;
}
