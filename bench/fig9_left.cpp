/**
 * @file
 * Fig. 9, left column — TICS vs. Chinchilla execution time.
 *
 * The three benchmarks run to completion on continuous power (the
 * paper's methodology for the timing comparison), under two modeled
 * compiler settings: LO0 (unoptimized codegen, straight-line work
 * x2.5) and LO2 (optimized, x1.0). Chinchilla cannot compile the
 * original recursive bitcount at all — printed as "x", exactly the
 * red-cross cells of the paper; an extra row shows the hand-modified
 * recursion-free BC the Chinchilla authors had to use.
 *
 * Expected shape: TICS within a small factor of plain C on every
 * benchmark; Chinchilla slower (versioned promoted globals), with the
 * gap widening at LO0; Chinchilla x on BC.
 */

#include <iostream>

#include "apps/ar/ar_chinchilla.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/plainc.hpp"
#include "support/table.hpp"

using namespace ticsim;

namespace {

constexpr TimeNs kBudget = 600 * kNsPerSec;

template <typename Rt, typename App, typename Params>
std::string
timeOne(const std::string &label, Rt &&rt, Params p, double workScale)
{
    p.workScale = workScale;
    harness::SupplySpec spec; // continuous
    auto b = harness::makeBoard(spec);
    App app(*b, rt, p);
    const auto res = b->run(rt, [&] { app.main(); }, kBudget);
    harness::recordRun(label, rt, *b, res);
    return harness::msCell(true, res.completed && app.verify(),
                           harness::simMs(res));
}

tics::TicsConfig
ticsCfg()
{
    return harness::makeTicsConfig(harness::kSetupS2Star);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSession session("fig9_left", argc, argv);
    Table t("Fig. 9 (left): TICS vs Chinchilla, execution time (sim ms)");
    t.header({"Benchmark", "Compiler", "plain C", "TICS (S2*)",
              "Chinchilla"});

    for (const auto &[label, scale] :
         std::initializer_list<std::pair<const char *, double>>{
             {"LO0", 2.5}, {"LO2", 1.0}}) {
        {
            runtimes::PlainCRuntime plain;
            tics::TicsRuntime tics(ticsCfg());
            runtimes::ChinchillaRuntime chin;
            t.row()
                .cell("AR")
                .cell(label)
                .cell(timeOne<runtimes::PlainCRuntime &,
                              apps::ArLegacyApp>(
                    std::string("AR/") + label, plain, apps::ArParams{},
                    scale))
                .cell(timeOne<tics::TicsRuntime &, apps::ArLegacyApp>(
                    std::string("AR/") + label, tics, apps::ArParams{},
                    scale))
                .cell(timeOne<runtimes::ChinchillaRuntime &,
                              apps::ArChinchillaApp>(
                    std::string("AR/") + label, chin, apps::ArParams{},
                    scale));
        }
        {
            runtimes::PlainCRuntime plain;
            tics::TicsRuntime tics(ticsCfg());
            t.row()
                .cell("BC (recursive)")
                .cell(label)
                .cell(timeOne<runtimes::PlainCRuntime &,
                              apps::BcLegacyApp>(
                    std::string("BC/") + label, plain, apps::BcParams{},
                    scale))
                .cell(timeOne<tics::TicsRuntime &, apps::BcLegacyApp>(
                    std::string("BC/") + label, tics, apps::BcParams{},
                    scale))
                .cell("x"); // recursion: does not compile in Chinchilla
        }
        {
            runtimes::ChinchillaRuntime chin;
            t.row()
                .cell("BC (hand-derecursed)")
                .cell(label)
                .cell("-")
                .cell("-")
                .cell(timeOne<runtimes::ChinchillaRuntime &,
                              apps::BcChinchillaApp>(
                    std::string("BC-derec/") + label, chin,
                    apps::BcParams{}, scale));
        }
        {
            runtimes::PlainCRuntime plain;
            tics::TicsRuntime tics(ticsCfg());
            runtimes::ChinchillaRuntime chin;
            t.row()
                .cell("CF")
                .cell(label)
                .cell(timeOne<runtimes::PlainCRuntime &,
                              apps::CuckooLegacyApp>(
                    std::string("CF/") + label, plain,
                    apps::CuckooParams{}, scale))
                .cell(timeOne<tics::TicsRuntime &, apps::CuckooLegacyApp>(
                    std::string("CF/") + label, tics,
                    apps::CuckooParams{}, scale))
                .cell(timeOne<runtimes::ChinchillaRuntime &,
                              apps::CuckooChinchillaApp>(
                    std::string("CF/") + label, chin,
                    apps::CuckooParams{}, scale));
        }
        if (scale != 1.0)
            t.separator();
    }
    t.print(std::cout);
    return 0;
}
