# Empty dependencies file for ticsim_tests.
# This may be replaced when dependencies are built.
