
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annotations.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_annotations.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_annotations.cpp.o.d"
  "/root/repo/tests/test_apps_matrix.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_apps_matrix.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_apps_matrix.cpp.o.d"
  "/root/repo/tests/test_apps_units.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_apps_units.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_apps_units.cpp.o.d"
  "/root/repo/tests/test_board.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_board.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_board.cpp.o.d"
  "/root/repo/tests/test_checkpoint_runtimes.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_checkpoint_runtimes.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_checkpoint_runtimes.cpp.o.d"
  "/root/repo/tests/test_context.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_context.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_context.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_ghm_timed.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_ghm_timed.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_ghm_timed.cpp.o.d"
  "/root/repo/tests/test_hibernus.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_hibernus.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_hibernus.cpp.o.d"
  "/root/repo/tests/test_integration_smoke.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_integration_smoke.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_integration_smoke.cpp.o.d"
  "/root/repo/tests/test_isr_io.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_isr_io.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_isr_io.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_task_runtimes.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_task_runtimes.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_task_runtimes.cpp.o.d"
  "/root/repo/tests/test_tics_core.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_tics_core.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_tics_core.cpp.o.d"
  "/root/repo/tests/test_tics_runtime.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_tics_runtime.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_tics_runtime.cpp.o.d"
  "/root/repo/tests/test_time_properties.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_time_properties.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_time_properties.cpp.o.d"
  "/root/repo/tests/test_timekeeper.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_timekeeper.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_timekeeper.cpp.o.d"
  "/root/repo/tests/test_tinyos.cpp" "tests/CMakeFiles/ticsim_tests.dir/test_tinyos.cpp.o" "gcc" "tests/CMakeFiles/ticsim_tests.dir/test_tinyos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ticsim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ticsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ticsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/ticsim_context.dir/DependInfo.cmake"
  "/root/repo/build/src/timekeeper/CMakeFiles/ticsim_timekeeper.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ticsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/ticsim_board.dir/DependInfo.cmake"
  "/root/repo/build/src/tics/CMakeFiles/ticsim_tics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/ticsim_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ticsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tinyos/CMakeFiles/ticsim_tinyos.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/ticsim_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
