# Empty dependencies file for extension_virtual_io.
# This may be replaced when dependencies are built.
