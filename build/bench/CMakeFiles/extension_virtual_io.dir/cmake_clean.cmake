file(REMOVE_RECURSE
  "CMakeFiles/extension_virtual_io.dir/extension_virtual_io.cpp.o"
  "CMakeFiles/extension_virtual_io.dir/extension_virtual_io.cpp.o.d"
  "extension_virtual_io"
  "extension_virtual_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_virtual_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
