# Empty dependencies file for fig10_effort.
# This may be replaced when dependencies are built.
