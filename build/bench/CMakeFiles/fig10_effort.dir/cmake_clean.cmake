file(REMOVE_RECURSE
  "CMakeFiles/fig10_effort.dir/fig10_effort.cpp.o"
  "CMakeFiles/fig10_effort.dir/fig10_effort.cpp.o.d"
  "fig10_effort"
  "fig10_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
