# Empty compiler generated dependencies file for table5_features.
# This may be replaced when dependencies are built.
