file(REMOVE_RECURSE
  "CMakeFiles/table5_features.dir/table5_features.cpp.o"
  "CMakeFiles/table5_features.dir/table5_features.cpp.o.d"
  "table5_features"
  "table5_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
