# Empty compiler generated dependencies file for ablation_timekeeper.
# This may be replaced when dependencies are built.
