# Empty dependencies file for fig9_right.
# This may be replaced when dependencies are built.
