file(REMOVE_RECURSE
  "CMakeFiles/fig9_right.dir/fig9_right.cpp.o"
  "CMakeFiles/fig9_right.dir/fig9_right.cpp.o.d"
  "fig9_right"
  "fig9_right.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
