# Empty compiler generated dependencies file for table4_ops.
# This may be replaced when dependencies are built.
