file(REMOVE_RECURSE
  "CMakeFiles/table4_ops.dir/table4_ops.cpp.o"
  "CMakeFiles/table4_ops.dir/table4_ops.cpp.o.d"
  "table4_ops"
  "table4_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
