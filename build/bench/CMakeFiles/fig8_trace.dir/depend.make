# Empty dependencies file for fig8_trace.
# This may be replaced when dependencies are built.
