
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_left.cpp" "bench/CMakeFiles/fig9_left.dir/fig9_left.cpp.o" "gcc" "bench/CMakeFiles/fig9_left.dir/fig9_left.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ticsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ticsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/ticsim_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/tics/CMakeFiles/ticsim_tics.dir/DependInfo.cmake"
  "/root/repo/build/src/tinyos/CMakeFiles/ticsim_tinyos.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/ticsim_board.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ticsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/timekeeper/CMakeFiles/ticsim_timekeeper.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/ticsim_context.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ticsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ticsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ticsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
