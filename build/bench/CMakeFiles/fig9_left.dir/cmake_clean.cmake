file(REMOVE_RECURSE
  "CMakeFiles/fig9_left.dir/fig9_left.cpp.o"
  "CMakeFiles/fig9_left.dir/fig9_left.cpp.o.d"
  "fig9_left"
  "fig9_left.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_left.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
