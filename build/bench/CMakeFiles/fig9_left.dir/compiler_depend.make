# Empty compiler generated dependencies file for fig9_left.
# This may be replaced when dependencies are built.
