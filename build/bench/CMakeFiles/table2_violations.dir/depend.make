# Empty dependencies file for table2_violations.
# This may be replaced when dependencies are built.
