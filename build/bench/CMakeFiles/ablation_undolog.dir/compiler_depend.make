# Empty compiler generated dependencies file for ablation_undolog.
# This may be replaced when dependencies are built.
