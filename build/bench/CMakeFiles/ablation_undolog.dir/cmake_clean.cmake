file(REMOVE_RECURSE
  "CMakeFiles/ablation_undolog.dir/ablation_undolog.cpp.o"
  "CMakeFiles/ablation_undolog.dir/ablation_undolog.cpp.o.d"
  "ablation_undolog"
  "ablation_undolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_undolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
