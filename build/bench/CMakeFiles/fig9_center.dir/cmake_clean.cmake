file(REMOVE_RECURSE
  "CMakeFiles/fig9_center.dir/fig9_center.cpp.o"
  "CMakeFiles/fig9_center.dir/fig9_center.cpp.o.d"
  "fig9_center"
  "fig9_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
