# Empty dependencies file for fig9_center.
# This may be replaced when dependencies are built.
