# Empty compiler generated dependencies file for table1_ghm.
# This may be replaced when dependencies are built.
