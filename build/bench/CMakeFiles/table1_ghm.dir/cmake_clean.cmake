file(REMOVE_RECURSE
  "CMakeFiles/table1_ghm.dir/table1_ghm.cpp.o"
  "CMakeFiles/table1_ghm.dir/table1_ghm.cpp.o.d"
  "table1_ghm"
  "table1_ghm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ghm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
