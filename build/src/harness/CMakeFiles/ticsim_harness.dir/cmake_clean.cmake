file(REMOVE_RECURSE
  "CMakeFiles/ticsim_harness.dir/effort.cpp.o"
  "CMakeFiles/ticsim_harness.dir/effort.cpp.o.d"
  "CMakeFiles/ticsim_harness.dir/experiment.cpp.o"
  "CMakeFiles/ticsim_harness.dir/experiment.cpp.o.d"
  "libticsim_harness.a"
  "libticsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
