# Empty dependencies file for ticsim_harness.
# This may be replaced when dependencies are built.
