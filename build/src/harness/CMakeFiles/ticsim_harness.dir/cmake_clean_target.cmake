file(REMOVE_RECURSE
  "libticsim_harness.a"
)
