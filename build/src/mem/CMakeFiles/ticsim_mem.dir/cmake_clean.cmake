file(REMOVE_RECURSE
  "CMakeFiles/ticsim_mem.dir/footprint.cpp.o"
  "CMakeFiles/ticsim_mem.dir/footprint.cpp.o.d"
  "CMakeFiles/ticsim_mem.dir/nv.cpp.o"
  "CMakeFiles/ticsim_mem.dir/nv.cpp.o.d"
  "CMakeFiles/ticsim_mem.dir/nvram.cpp.o"
  "CMakeFiles/ticsim_mem.dir/nvram.cpp.o.d"
  "libticsim_mem.a"
  "libticsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
