# Empty compiler generated dependencies file for ticsim_mem.
# This may be replaced when dependencies are built.
