file(REMOVE_RECURSE
  "libticsim_mem.a"
)
