# Empty dependencies file for ticsim_energy.
# This may be replaced when dependencies are built.
