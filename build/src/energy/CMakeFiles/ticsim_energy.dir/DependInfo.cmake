
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/capacitor.cpp" "src/energy/CMakeFiles/ticsim_energy.dir/capacitor.cpp.o" "gcc" "src/energy/CMakeFiles/ticsim_energy.dir/capacitor.cpp.o.d"
  "/root/repo/src/energy/harvester.cpp" "src/energy/CMakeFiles/ticsim_energy.dir/harvester.cpp.o" "gcc" "src/energy/CMakeFiles/ticsim_energy.dir/harvester.cpp.o.d"
  "/root/repo/src/energy/supply.cpp" "src/energy/CMakeFiles/ticsim_energy.dir/supply.cpp.o" "gcc" "src/energy/CMakeFiles/ticsim_energy.dir/supply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ticsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
