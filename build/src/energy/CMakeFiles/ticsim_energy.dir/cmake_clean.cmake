file(REMOVE_RECURSE
  "CMakeFiles/ticsim_energy.dir/capacitor.cpp.o"
  "CMakeFiles/ticsim_energy.dir/capacitor.cpp.o.d"
  "CMakeFiles/ticsim_energy.dir/harvester.cpp.o"
  "CMakeFiles/ticsim_energy.dir/harvester.cpp.o.d"
  "CMakeFiles/ticsim_energy.dir/supply.cpp.o"
  "CMakeFiles/ticsim_energy.dir/supply.cpp.o.d"
  "libticsim_energy.a"
  "libticsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
