file(REMOVE_RECURSE
  "libticsim_energy.a"
)
