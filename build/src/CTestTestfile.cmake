# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("energy")
subdirs("mem")
subdirs("context")
subdirs("timekeeper")
subdirs("device")
subdirs("board")
subdirs("tics")
subdirs("runtimes")
subdirs("tinyos")
subdirs("apps")
subdirs("harness")
