file(REMOVE_RECURSE
  "libticsim_tics.a"
)
