# Empty dependencies file for ticsim_tics.
# This may be replaced when dependencies are built.
