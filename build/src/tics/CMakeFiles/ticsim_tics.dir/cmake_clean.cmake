file(REMOVE_RECURSE
  "CMakeFiles/ticsim_tics.dir/checkpoint_area.cpp.o"
  "CMakeFiles/ticsim_tics.dir/checkpoint_area.cpp.o.d"
  "CMakeFiles/ticsim_tics.dir/io.cpp.o"
  "CMakeFiles/ticsim_tics.dir/io.cpp.o.d"
  "CMakeFiles/ticsim_tics.dir/runtime.cpp.o"
  "CMakeFiles/ticsim_tics.dir/runtime.cpp.o.d"
  "CMakeFiles/ticsim_tics.dir/undo_log.cpp.o"
  "CMakeFiles/ticsim_tics.dir/undo_log.cpp.o.d"
  "libticsim_tics.a"
  "libticsim_tics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_tics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
