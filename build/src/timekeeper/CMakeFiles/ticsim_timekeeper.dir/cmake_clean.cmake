file(REMOVE_RECURSE
  "CMakeFiles/ticsim_timekeeper.dir/timekeeper.cpp.o"
  "CMakeFiles/ticsim_timekeeper.dir/timekeeper.cpp.o.d"
  "libticsim_timekeeper.a"
  "libticsim_timekeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_timekeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
