# Empty compiler generated dependencies file for ticsim_timekeeper.
# This may be replaced when dependencies are built.
