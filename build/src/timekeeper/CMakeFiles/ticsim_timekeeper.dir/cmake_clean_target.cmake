file(REMOVE_RECURSE
  "libticsim_timekeeper.a"
)
