# Empty dependencies file for ticsim_tinyos.
# This may be replaced when dependencies are built.
