file(REMOVE_RECURSE
  "CMakeFiles/ticsim_tinyos.dir/kernel.cpp.o"
  "CMakeFiles/ticsim_tinyos.dir/kernel.cpp.o.d"
  "libticsim_tinyos.a"
  "libticsim_tinyos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_tinyos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
