file(REMOVE_RECURSE
  "libticsim_tinyos.a"
)
