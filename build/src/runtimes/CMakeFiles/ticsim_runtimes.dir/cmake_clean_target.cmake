file(REMOVE_RECURSE
  "libticsim_runtimes.a"
)
