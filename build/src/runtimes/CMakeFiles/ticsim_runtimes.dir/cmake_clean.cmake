file(REMOVE_RECURSE
  "CMakeFiles/ticsim_runtimes.dir/chinchilla.cpp.o"
  "CMakeFiles/ticsim_runtimes.dir/chinchilla.cpp.o.d"
  "CMakeFiles/ticsim_runtimes.dir/mayfly.cpp.o"
  "CMakeFiles/ticsim_runtimes.dir/mayfly.cpp.o.d"
  "CMakeFiles/ticsim_runtimes.dir/mementos.cpp.o"
  "CMakeFiles/ticsim_runtimes.dir/mementos.cpp.o.d"
  "CMakeFiles/ticsim_runtimes.dir/task_core.cpp.o"
  "CMakeFiles/ticsim_runtimes.dir/task_core.cpp.o.d"
  "libticsim_runtimes.a"
  "libticsim_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
