# Empty compiler generated dependencies file for ticsim_runtimes.
# This may be replaced when dependencies are built.
