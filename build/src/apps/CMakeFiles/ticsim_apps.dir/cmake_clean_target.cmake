file(REMOVE_RECURSE
  "libticsim_apps.a"
)
