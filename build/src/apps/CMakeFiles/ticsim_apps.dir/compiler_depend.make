# Empty compiler generated dependencies file for ticsim_apps.
# This may be replaced when dependencies are built.
