
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ar/ar_chinchilla.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_chinchilla.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_chinchilla.cpp.o.d"
  "/root/repo/src/apps/ar/ar_common.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_common.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_common.cpp.o.d"
  "/root/repo/src/apps/ar/ar_legacy.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_legacy.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_legacy.cpp.o.d"
  "/root/repo/src/apps/ar/ar_task.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_task.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_task.cpp.o.d"
  "/root/repo/src/apps/ar/ar_timed.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_timed.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ar/ar_timed.cpp.o.d"
  "/root/repo/src/apps/bc/bc_chinchilla.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_chinchilla.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_chinchilla.cpp.o.d"
  "/root/repo/src/apps/bc/bc_legacy.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_legacy.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_legacy.cpp.o.d"
  "/root/repo/src/apps/bc/bc_task.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_task.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/bc/bc_task.cpp.o.d"
  "/root/repo/src/apps/common/cuckoo_core.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/common/cuckoo_core.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/common/cuckoo_core.cpp.o.d"
  "/root/repo/src/apps/common/dsp.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/common/dsp.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/common/dsp.cpp.o.d"
  "/root/repo/src/apps/cuckoo/cuckoo_chinchilla.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_chinchilla.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_chinchilla.cpp.o.d"
  "/root/repo/src/apps/cuckoo/cuckoo_legacy.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_legacy.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_legacy.cpp.o.d"
  "/root/repo/src/apps/cuckoo/cuckoo_task.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_task.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_task.cpp.o.d"
  "/root/repo/src/apps/ghm/ghm.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/ghm/ghm.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/ghm/ghm.cpp.o.d"
  "/root/repo/src/apps/study/study.cpp" "src/apps/CMakeFiles/ticsim_apps.dir/study/study.cpp.o" "gcc" "src/apps/CMakeFiles/ticsim_apps.dir/study/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/board/CMakeFiles/ticsim_board.dir/DependInfo.cmake"
  "/root/repo/build/src/tics/CMakeFiles/ticsim_tics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/ticsim_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/tinyos/CMakeFiles/ticsim_tinyos.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ticsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ticsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/ticsim_context.dir/DependInfo.cmake"
  "/root/repo/build/src/timekeeper/CMakeFiles/ticsim_timekeeper.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ticsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ticsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
