file(REMOVE_RECURSE
  "CMakeFiles/ticsim_apps.dir/ar/ar_chinchilla.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ar/ar_chinchilla.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/ar/ar_common.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ar/ar_common.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/ar/ar_legacy.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ar/ar_legacy.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/ar/ar_task.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ar/ar_task.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/ar/ar_timed.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ar/ar_timed.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/bc/bc_chinchilla.cpp.o"
  "CMakeFiles/ticsim_apps.dir/bc/bc_chinchilla.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/bc/bc_legacy.cpp.o"
  "CMakeFiles/ticsim_apps.dir/bc/bc_legacy.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/bc/bc_task.cpp.o"
  "CMakeFiles/ticsim_apps.dir/bc/bc_task.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/common/cuckoo_core.cpp.o"
  "CMakeFiles/ticsim_apps.dir/common/cuckoo_core.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/common/dsp.cpp.o"
  "CMakeFiles/ticsim_apps.dir/common/dsp.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_chinchilla.cpp.o"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_chinchilla.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_legacy.cpp.o"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_legacy.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_task.cpp.o"
  "CMakeFiles/ticsim_apps.dir/cuckoo/cuckoo_task.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/ghm/ghm.cpp.o"
  "CMakeFiles/ticsim_apps.dir/ghm/ghm.cpp.o.d"
  "CMakeFiles/ticsim_apps.dir/study/study.cpp.o"
  "CMakeFiles/ticsim_apps.dir/study/study.cpp.o.d"
  "libticsim_apps.a"
  "libticsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
