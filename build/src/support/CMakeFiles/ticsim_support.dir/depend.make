# Empty dependencies file for ticsim_support.
# This may be replaced when dependencies are built.
