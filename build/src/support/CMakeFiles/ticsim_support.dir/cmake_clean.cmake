file(REMOVE_RECURSE
  "CMakeFiles/ticsim_support.dir/logging.cpp.o"
  "CMakeFiles/ticsim_support.dir/logging.cpp.o.d"
  "CMakeFiles/ticsim_support.dir/rng.cpp.o"
  "CMakeFiles/ticsim_support.dir/rng.cpp.o.d"
  "CMakeFiles/ticsim_support.dir/stats.cpp.o"
  "CMakeFiles/ticsim_support.dir/stats.cpp.o.d"
  "CMakeFiles/ticsim_support.dir/table.cpp.o"
  "CMakeFiles/ticsim_support.dir/table.cpp.o.d"
  "libticsim_support.a"
  "libticsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
