file(REMOVE_RECURSE
  "libticsim_support.a"
)
