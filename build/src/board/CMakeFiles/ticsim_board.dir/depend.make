# Empty dependencies file for ticsim_board.
# This may be replaced when dependencies are built.
