file(REMOVE_RECURSE
  "libticsim_board.a"
)
