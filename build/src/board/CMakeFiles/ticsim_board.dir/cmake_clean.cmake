file(REMOVE_RECURSE
  "CMakeFiles/ticsim_board.dir/board.cpp.o"
  "CMakeFiles/ticsim_board.dir/board.cpp.o.d"
  "CMakeFiles/ticsim_board.dir/violation.cpp.o"
  "CMakeFiles/ticsim_board.dir/violation.cpp.o.d"
  "libticsim_board.a"
  "libticsim_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
