file(REMOVE_RECURSE
  "CMakeFiles/ticsim_context.dir/exec_context.cpp.o"
  "CMakeFiles/ticsim_context.dir/exec_context.cpp.o.d"
  "libticsim_context.a"
  "libticsim_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
