file(REMOVE_RECURSE
  "libticsim_context.a"
)
