# Empty dependencies file for ticsim_context.
# This may be replaced when dependencies are built.
