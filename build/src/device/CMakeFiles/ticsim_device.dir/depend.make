# Empty dependencies file for ticsim_device.
# This may be replaced when dependencies are built.
