file(REMOVE_RECURSE
  "CMakeFiles/ticsim_device.dir/radio.cpp.o"
  "CMakeFiles/ticsim_device.dir/radio.cpp.o.d"
  "CMakeFiles/ticsim_device.dir/sensors.cpp.o"
  "CMakeFiles/ticsim_device.dir/sensors.cpp.o.d"
  "libticsim_device.a"
  "libticsim_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticsim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
