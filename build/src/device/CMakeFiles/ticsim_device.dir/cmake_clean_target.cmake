file(REMOVE_RECURSE
  "libticsim_device.a"
)
