file(REMOVE_RECURSE
  "CMakeFiles/greenhouse.dir/greenhouse.cpp.o"
  "CMakeFiles/greenhouse.dir/greenhouse.cpp.o.d"
  "greenhouse"
  "greenhouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
