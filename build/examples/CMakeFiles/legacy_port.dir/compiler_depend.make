# Empty compiler generated dependencies file for legacy_port.
# This may be replaced when dependencies are built.
