file(REMOVE_RECURSE
  "CMakeFiles/legacy_port.dir/legacy_port.cpp.o"
  "CMakeFiles/legacy_port.dir/legacy_port.cpp.o.d"
  "legacy_port"
  "legacy_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
