# Empty dependencies file for activity_alert.
# This may be replaced when dependencies are built.
