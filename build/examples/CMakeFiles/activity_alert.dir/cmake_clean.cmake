file(REMOVE_RECURSE
  "CMakeFiles/activity_alert.dir/activity_alert.cpp.o"
  "CMakeFiles/activity_alert.dir/activity_alert.cpp.o.d"
  "activity_alert"
  "activity_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
