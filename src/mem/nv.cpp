#include "nv.hpp"

namespace ticsim::mem {

namespace {

MemHooks passThrough;
MemHooks *current = &passThrough;

} // namespace

MemHooks &
hooks()
{
    return *current;
}

MemHooks *
setHooks(MemHooks *h)
{
    MemHooks *prev = current;
    current = h ? h : &passThrough;
    return prev;
}

} // namespace ticsim::mem
