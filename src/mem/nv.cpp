#include "nv.hpp"

#include "perf/counters.hpp"

namespace ticsim::mem {

namespace {

MemHooks passThrough;
// Thread-local like the trace sink and store gate: each concurrently
// sweeping Board installs its runtime's hooks on its own thread. The
// stateless pass-through instance is safely shared by all threads.
thread_local MemHooks *current = &passThrough;

} // namespace

MemHooks &
hooks()
{
    // Host-side dispatch-mix accounting only; the returned reference
    // and the modeled behaviour are unchanged.
    if (current == &passThrough)
        ++perf::hot().hookFastNull;
    else
        ++perf::hot().hookDispatches;
    return *current;
}

MemHooks *
setHooks(MemHooks *h)
{
    MemHooks *prev = current;
    current = h ? h : &passThrough;
    return prev;
}

} // namespace ticsim::mem
