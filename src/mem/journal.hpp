/**
 * @file
 * Write journal: dirty-delta pre-image log for snapshot/fork.
 *
 * The failure-space explorer (src/fault/explore.*) restores the
 * simulator to an earlier decision point in place instead of re-running
 * from boot. Host-side Board state is cheap to copy, but the 512 KiB
 * NV arena is not — so instead of imaging the arena per decision, an
 * installed WriteJournal records the *pre-image* of every modeled NV
 * write as it happens. Rolling back to a decision is then
 * undoTo(mark): apply the recorded pre-images newest-first and
 * truncate. Per-decision cost is proportional to bytes written since
 * the mark, not to arena size.
 *
 * Installation mirrors mem::AccessSink (trace.hpp): a thread-local
 * slot, a null check on the default path, and an RAII scope. When no
 * journal is installed — every normal benchmark / test run — each
 * journalNote() is a single null-pointer test; the gatedStore
 * null-gate fast path is untouched because gated stores are journaled
 * from inside the explorer's own StoreGate, not from gatedStore
 * itself.
 *
 * Coverage contract: every modeled-NV mutation that does not go
 * through gatedStore must call journalNote(dst, bytes) immediately
 * before writing. The current inventory: undo-log rollback copies,
 * checkpoint stack-image captures and slot invalidation, the
 * MementOS-style globals snapshot copies, task-channel
 * privatize/commit stores, and fault-injected bit flips. Writes to
 * the fiber stack region are exempt — the explorer re-arms the stack
 * from a register/stack image or a fresh boot, never from the
 * journal.
 */

#ifndef TICSIM_MEM_JOURNAL_HPP
#define TICSIM_MEM_JOURNAL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ticsim::mem {

/** Pre-image log with stack-discipline rollback. */
class WriteJournal
{
  public:
    /** Record the current contents of [dst, dst+bytes) so a later
     *  undoTo() past this point restores them. Call *before* the
     *  write. Zero-byte notes are dropped. */
    void note(const void *dst, std::size_t bytes);

    /** Position marker: everything recorded after a mark() is undone
     *  by undoTo() with that marker. */
    std::size_t mark() const { return recs_.size(); }

    /** Roll NV back to the state at @p m: apply pre-images
     *  newest-first, then truncate the log to @p m. */
    void undoTo(std::size_t m);

    /** Drop all records without applying them. */
    void reset();

    std::size_t records() const { return recs_.size(); }
    std::size_t bytesHeld() const { return pool_.size(); }

  private:
    struct Rec {
        std::uintptr_t dst = 0;
        std::size_t poolOff = 0;
        std::uint32_t bytes = 0;
    };

    std::vector<Rec> recs_;
    std::vector<std::uint8_t> pool_;
};

namespace detail {
/** Thread-local like the trace sink: one journal per simulated Board,
 *  and sweep workers on other threads never see it. */
extern thread_local WriteJournal *g_journal;
} // namespace detail

/** Install @p j as the calling thread's journal; returns the previous
 *  one (may be null). Pass nullptr to disable journaling. */
WriteJournal *setWriteJournal(WriteJournal *j);

/** Currently installed journal, or nullptr. */
inline WriteJournal *
writeJournal()
{
    return detail::g_journal;
}

/** Record a pre-image if a journal is installed; a null test
 *  otherwise. Call immediately before any raw modeled-NV write. */
inline void
journalNote(const void *dst, std::size_t bytes)
{
    if (detail::g_journal)
        detail::g_journal->note(dst, bytes);
}

/** Mark of the installed journal (0 when none): board::Snapshot pairs
 *  this with its host-state capture so restore() can roll NV back. */
inline std::size_t
journalMark()
{
    return detail::g_journal ? detail::g_journal->mark() : 0;
}

/** Roll the installed journal (if any) back to @p m. */
inline void
journalUndoTo(std::size_t m)
{
    if (detail::g_journal)
        detail::g_journal->undoTo(m);
}

/** RAII journal installation for the scope of one explored run. */
class ScopedWriteJournal
{
  public:
    explicit ScopedWriteJournal(WriteJournal *j)
        : prev_(setWriteJournal(j))
    {
    }
    ~ScopedWriteJournal() { setWriteJournal(prev_); }

    ScopedWriteJournal(const ScopedWriteJournal &) = delete;
    ScopedWriteJournal &operator=(const ScopedWriteJournal &) = delete;

  private:
    WriteJournal *prev_;
};

} // namespace ticsim::mem

#endif // TICSIM_MEM_JOURNAL_HPP
