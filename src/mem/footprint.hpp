/**
 * @file
 * Modeled program-memory footprint accounting for Table 3.
 *
 * We do not produce MSP430 ELF binaries, so .text/.data sizes are
 * modeled instead of measured from a linker map:
 *  - .data: the NV bytes the runtime statically reserves (checkpoint
 *    buffers, control blocks, task descriptors, double-buffered global
 *    copies, ...) plus the application's own globals. For TICS the
 *    configurable segment array and undo log are excluded, matching the
 *    paper's footnote.
 *  - .text: a fixed per-runtime code-size constant plus a per-site cost
 *    for every instrumentation point the system inserts (TICS: frame
 *    guards and NV-store thunks; Chinchilla: per-variable versioning
 *    thunks; task systems: per-task/channel dispatch code).
 *
 * The constants live with the runtime that registers them; this module
 * only aggregates.
 */

#ifndef TICSIM_MEM_FOOTPRINT_HPP
#define TICSIM_MEM_FOOTPRINT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ticsim::mem {

/** One contribution to a program's modeled footprint. */
struct FootprintItem {
    std::string component;  ///< e.g. "runtime core", "frame guards"
    std::uint32_t textBytes = 0;
    std::uint32_t dataBytes = 0;
    /** Excluded from the reported total (paper footnote semantics). */
    bool excluded = false;
};

/**
 * Per-program footprint ledger. A runtime and its application variant
 * both record items; the bench sums them into the Table 3 cells.
 */
class Footprint
{
  public:
    void add(const std::string &component, std::uint32_t textBytes,
             std::uint32_t dataBytes, bool excluded = false);

    std::uint32_t textTotal() const;
    std::uint32_t dataTotal() const;

    const std::vector<FootprintItem> &items() const { return items_; }

    void clear() { items_.clear(); }

  private:
    std::vector<FootprintItem> items_;
};

} // namespace ticsim::mem

#endif // TICSIM_MEM_FOOTPRINT_HPP
