#include "store_gate.hpp"

namespace ticsim::mem {

namespace detail {
thread_local StoreGate *g_gate = nullptr;
} // namespace detail

StoreGate *
setStoreGate(StoreGate *g)
{
    StoreGate *prev = detail::g_gate;
    detail::g_gate = g;
    return prev;
}

const char *
storeSiteName(StoreSite s)
{
    switch (s) {
      case StoreSite::AppGlobal:
        return "store";
      case StoreSite::UndoPool:
        return "undo-store";
      case StoreSite::CkptHeader:
        return "hdr-store";
    }
    return "?";
}

} // namespace ticsim::mem
