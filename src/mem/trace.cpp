#include "trace.hpp"

namespace ticsim::mem {

namespace detail {
thread_local AccessSink *g_sink = nullptr;
} // namespace detail

AccessSink *
setAccessSink(AccessSink *s)
{
    AccessSink *prev = detail::g_sink;
    detail::g_sink = s;
    return prev;
}

} // namespace ticsim::mem
