/**
 * @file
 * Gated non-volatile stores: the torn-write injection point.
 *
 * Real FRAM writes multi-byte values word by word; a power failure in
 * the middle leaves a prefix written, a garbage tail, or an
 * interleaved mix of old and new words (NORM-style NVM emulation).
 * Every multi-byte NV store the simulator models — application-global
 * assignments, undo-log appends, and checkpoint header persists —
 * funnels through gatedStore() so an installed StoreGate can replace
 * the atomic host memcpy with a torn partial write followed by an
 * immediate power failure.
 *
 * When no gate is installed (the default, and every normal benchmark
 * or test run), gatedStore() is a null-pointer test plus memcpy:
 * no modeled costs and no behaviour change.
 */

#ifndef TICSIM_MEM_STORE_GATE_HPP
#define TICSIM_MEM_STORE_GATE_HPP

#include <cstdint>
#include <cstring>

#include "perf/counters.hpp"

namespace ticsim::mem {

/** Which protocol step a gated store belongs to; fault plans target
 *  tears by site so a schedule can name "the 3rd undo-pool write". */
enum class StoreSite : std::uint8_t {
    AppGlobal,  ///< nv<T>/nvArray/storeBytes application data
    UndoPool,   ///< undo-log record (entry fields or saved bytes)
    CkptHeader, ///< checkpoint slot header (the commit point)
};

/** Number of StoreSite enumerators (for occurrence-count arrays). */
constexpr int kStoreSiteCount = 3;

/** Short stable name for plan serialization and reports. */
const char *storeSiteName(StoreSite s);

/**
 * Interceptor for instrumented NV stores. store() must either copy
 * [src, src+bytes) to dst itself (possibly partially, modeling a torn
 * write) or not return at all (abandoning the context like a power
 * failure mid-store).
 */
class StoreGate
{
  public:
    virtual ~StoreGate() = default;
    virtual void store(StoreSite site, void *dst, const void *src,
                       std::uint32_t bytes) = 0;
};

namespace detail {
/** Thread-local for the same reason as mem::detail::g_sink: concurrent
 *  sweep Boards each install their own injector without cross-talk. */
extern thread_local StoreGate *g_gate;
} // namespace detail

/** Install @p g as the calling thread's store gate; returns the
 *  previous one (may be null). Pass nullptr to restore direct stores. */
StoreGate *setStoreGate(StoreGate *g);

/** Perform an instrumented NV store through the installed gate. */
inline void
gatedStore(StoreSite site, void *dst, const void *src,
           std::uint32_t bytes)
{
    if (detail::g_gate) {
        ++perf::hot().gateDispatches;
        detail::g_gate->store(site, dst, src, bytes);
    } else {
        ++perf::hot().gateFastNull;
        std::memcpy(dst, src, bytes);
    }
}

/** RAII gate installation for the scope of one faulted Board::run on
 *  the current thread. */
class ScopedStoreGate
{
  public:
    explicit ScopedStoreGate(StoreGate *g) : prev_(setStoreGate(g)) {}
    ~ScopedStoreGate() { setStoreGate(prev_); }

    ScopedStoreGate(const ScopedStoreGate &) = delete;
    ScopedStoreGate &operator=(const ScopedStoreGate &) = delete;

  private:
    StoreGate *prev_;
};

/** Short name used by the sweep/fault/verify subsystems. */
using ScopedGate = ScopedStoreGate;

} // namespace ticsim::mem

#endif // TICSIM_MEM_STORE_GATE_HPP
