#include "journal.hpp"

#include <cstring>

#include "support/logging.hpp"

namespace ticsim::mem {

namespace detail {
thread_local WriteJournal *g_journal = nullptr;
} // namespace detail

WriteJournal *
setWriteJournal(WriteJournal *j)
{
    WriteJournal *prev = detail::g_journal;
    detail::g_journal = j;
    return prev;
}

void
WriteJournal::note(const void *dst, std::size_t bytes)
{
    if (bytes == 0)
        return;
    Rec r;
    r.dst = reinterpret_cast<std::uintptr_t>(dst);
    r.poolOff = pool_.size();
    r.bytes = static_cast<std::uint32_t>(bytes);
    pool_.resize(r.poolOff + bytes);
    std::memcpy(pool_.data() + r.poolOff, dst, bytes);
    recs_.push_back(r);
}

void
WriteJournal::undoTo(std::size_t m)
{
    TICSIM_ASSERT(m <= recs_.size(), "journal undoTo past the head");
    for (std::size_t i = recs_.size(); i > m; --i) {
        const Rec &r = recs_[i - 1];
        std::memcpy(reinterpret_cast<void *>(r.dst),
                    pool_.data() + r.poolOff, r.bytes);
    }
    if (m == 0) {
        recs_.clear();
        pool_.clear();
        return;
    }
    const Rec &keep = recs_[m - 1];
    pool_.resize(keep.poolOff + keep.bytes);
    recs_.resize(m);
}

void
WriteJournal::reset()
{
    recs_.clear();
    pool_.clear();
}

} // namespace ticsim::mem
