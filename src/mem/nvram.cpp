#include "nvram.hpp"

#include "support/logging.hpp"

namespace ticsim::mem {

NvRam::NvRam(std::uint32_t size)
    : size_(size), data_(size, 0), stats_("nvram")
{
}

Addr
NvRam::allocate(const std::string &name, std::uint32_t size,
                std::uint32_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("nvram: alignment %u is not a power of two", align);
    const std::uint32_t base = (next_ + align - 1) & ~(align - 1);
    if (base + size > size_ || base + size < base) {
        fatal("nvram: out of memory allocating '%s' (%u bytes; %u of %u "
              "used)", name.c_str(), size, next_, size_);
    }
    next_ = base + size;
    regions_.push_back({name, base, size});
    return base;
}

std::uint8_t *
NvRam::hostPtr(Addr a)
{
    TICSIM_ASSERT(a < size_, "addr %u", a);
    return data_.data() + a;
}

const std::uint8_t *
NvRam::hostPtr(Addr a) const
{
    TICSIM_ASSERT(a < size_, "addr %u", a);
    return data_.data() + a;
}

Addr
NvRam::addrOf(const void *hostPtr) const
{
    const auto *p = static_cast<const std::uint8_t *>(hostPtr);
    TICSIM_ASSERT(contains(hostPtr), "host pointer outside arena");
    return static_cast<Addr>(p - data_.data());
}

bool
NvRam::contains(const void *hostPtr) const
{
    const auto *p = static_cast<const std::uint8_t *>(hostPtr);
    return p >= data_.data() && p < data_.data() + size_;
}

const NvRegion *
NvRam::regionAt(Addr a) const
{
    // First region with base > a, then step back one.
    std::size_t lo = 0, hi = regions_.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (regions_[mid].base <= a)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return nullptr;
    const NvRegion &r = regions_[lo - 1];
    return a < r.base + r.size ? &r : nullptr;
}

void
NvRam::accountWrite(std::uint32_t bytes)
{
    stats_.counter("bytesWritten") += bytes;
    ++stats_.counter("writes");
}

void
NvRam::accountRead(std::uint32_t bytes)
{
    stats_.counter("bytesRead") += bytes;
    ++stats_.counter("reads");
}

} // namespace ticsim::mem
