/**
 * @file
 * Memory-consistency trace channel.
 *
 * The analysis subsystem (src/analysis/) observes every instrumented
 * non-volatile access in the simulator through one installable sink:
 * the nv<T> accessors and pointer-store paths report reads and writes
 * at the same sites that call into mem::MemHooks, the versioning
 * machinery (undo logs, snapshot checkpoints, privatized channels)
 * reports when the original bytes of a location have been made
 * recoverable, and the Board reports the interval boundaries (power-on
 * and commit) between which the Surbatovich consistency condition is
 * evaluated.
 *
 * When no sink is installed (the default, and all normal benchmark /
 * test runs) every trace call is a null-pointer test and nothing else;
 * tracing changes no modeled costs and no runtime behaviour.
 */

#ifndef TICSIM_MEM_TRACE_HPP
#define TICSIM_MEM_TRACE_HPP

#include <cstdint>

#include "perf/counters.hpp"

namespace ticsim::mem {

/**
 * Non-memory observation points the static verifier cares about:
 * timestamp traffic, peripheral effects, and scheduling anchors.
 * These ride on the same sink as the NV access stream so one observer
 * sees both in program order.
 */
enum class SideEventKind : std::uint8_t {
    TimeRead,        ///< persistent-clock read (Board::deviceNow)
    TimedAssign,     ///< timed assignment committed; id = variable
    TimedUse,        ///< timed datum consumed; id = variable
    TimedCheck,      ///< freshness check evaluated; id = variable
    PeripheralSend,  ///< physical (externally visible) transmission
    PeripheralStage, ///< message staged in NV for a guarded drain
    IoGuardEnter,    ///< post-commit guarded-drain window opens
    IoGuardExit,     ///< post-commit guarded-drain window closes
    TaskDispatch,    ///< task runtime dispatching task `id`
    CkptCommitStart, ///< checkpoint commit protocol begins; id = runtime
    BootRestore,     ///< boot-time restore from a checkpoint begins
};

/**
 * One side event. @p id (may be null) names the subject — a timed
 * variable, a peripheral, a task — and must outlive the sink call;
 * sinks that keep it copy the string. u0/u1 carry kind-specific
 * payloads (lifetime ns, payload bytes, ...).
 */
struct SideEvent {
    SideEventKind kind;
    const char *id = nullptr;
    std::uint64_t u0 = 0;
    std::uint64_t u1 = 0;
};

/**
 * Observer of instrumented NV traffic and consistency-interval
 * boundaries. All pointers are host addresses; implementations that
 * care about modeled addresses translate via NvRam::addrOf().
 */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;

    /** An instrumented read of @p bytes at @p p is about to happen. */
    virtual void memRead(const void *p, std::uint32_t bytes) = 0;

    /** An instrumented write of @p bytes at @p p is about to happen. */
    virtual void memWrite(const void *p, std::uint32_t bytes) = 0;

    /**
     * The current contents of [p, p+bytes) have been versioned: a
     * reboot (or rollback) before the next commit restores them. Undo
     * logs report this per append; snapshot checkpointers report their
     * whole tracked regions at every commit/restore; task channels
     * report privatized writes (the committed copy is never at risk).
     */
    virtual void memVersioned(const void *p, std::uint32_t bytes) = 0;

    /** Power is back; a new boot (and consistency interval) begins. */
    virtual void powerOn() = 0;

    /**
     * A runtime committed forward progress (checkpoint commit, task
     * transition, restart-from-main); the current interval's writes
     * can no longer be lost to a reboot.
     */
    virtual void commit() = 0;

    /**
     * A non-memory observation (time read, peripheral effect, task
     * dispatch, ...). Default no-op so sinks that only care about the
     * NV stream — the dynamic checker — ignore it for free.
     */
    virtual void sideEvent(const SideEvent & /*ev*/) {}
};

namespace detail {
/**
 * The installed sink is thread-local: every simulated Board lives on
 * exactly one host thread, and the sweep engine (src/sweep/) runs many
 * Boards on concurrent threads — each with its own tracer — so the
 * sink must never leak between them. Serial code is unaffected (one
 * thread, one slot, same semantics as the old process global).
 */
extern thread_local AccessSink *g_sink;
} // namespace detail

/** Install @p s as the calling thread's trace sink; returns the
 *  previous one (may be null). Pass nullptr to disable tracing. */
AccessSink *setAccessSink(AccessSink *s);

/** Currently installed sink, or nullptr when tracing is off. */
inline AccessSink *
accessSink()
{
    return detail::g_sink;
}

// ---- forwarding helpers (no-ops while no sink is installed) ------------
//
// Each helper also bumps the calling thread's perf::HotCounters —
// host-side observation only (no modeled cost, no NV state), so the
// conservation invariant "sink installed => counted NV stores ==
// delivered memWrite events" holds by construction: both tallies are
// taken at the same dispatch point.

inline void
traceRead(const void *p, std::uint32_t bytes)
{
    perf::HotCounters &c = perf::hot();
    ++c.nvLoads;
    c.nvLoadBytes += bytes;
    if (detail::g_sink) {
        ++c.sinkDispatches;
        detail::g_sink->memRead(p, bytes);
    } else {
        ++c.sinkFastNull;
    }
}

inline void
traceWrite(const void *p, std::uint32_t bytes)
{
    perf::HotCounters &c = perf::hot();
    ++c.nvStores;
    c.nvStoreBytes += bytes;
    if (detail::g_sink) {
        ++c.sinkDispatches;
        detail::g_sink->memWrite(p, bytes);
    } else {
        ++c.sinkFastNull;
    }
}

inline void
traceVersioned(const void *p, std::uint32_t bytes)
{
    perf::HotCounters &c = perf::hot();
    ++c.nvVersioned;
    c.nvVersionedBytes += bytes;
    if (detail::g_sink) {
        ++c.sinkDispatches;
        detail::g_sink->memVersioned(p, bytes);
    } else {
        ++c.sinkFastNull;
    }
}

inline void
traceBoot()
{
    if (detail::g_sink) {
        ++perf::hot().sinkDispatches;
        detail::g_sink->powerOn();
    } else {
        ++perf::hot().sinkFastNull;
    }
}

inline void
traceCommit()
{
    if (detail::g_sink) {
        ++perf::hot().sinkDispatches;
        detail::g_sink->commit();
    } else {
        ++perf::hot().sinkFastNull;
    }
}

inline void
traceSideEvent(SideEventKind kind, const char *id = nullptr,
               std::uint64_t u0 = 0, std::uint64_t u1 = 0)
{
    if (detail::g_sink) {
        ++perf::hot().sinkDispatches;
        detail::g_sink->sideEvent(SideEvent{kind, id, u0, u1});
    } else {
        ++perf::hot().sinkFastNull;
    }
}

/** RAII sink installation for the scope of one traced Board::run on
 *  the current thread. */
class ScopedAccessSink
{
  public:
    explicit ScopedAccessSink(AccessSink *s) : prev_(setAccessSink(s)) {}
    ~ScopedAccessSink() { setAccessSink(prev_); }

    ScopedAccessSink(const ScopedAccessSink &) = delete;
    ScopedAccessSink &operator=(const ScopedAccessSink &) = delete;

  private:
    AccessSink *prev_;
};

/** Short name used by the sweep/fault/verify subsystems. */
using ScopedSink = ScopedAccessSink;

} // namespace ticsim::mem

#endif // TICSIM_MEM_TRACE_HPP
