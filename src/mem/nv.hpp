/**
 * @file
 * Typed accessors for non-volatile application globals, and the write
 * interception hook through which the active runtime versions memory.
 *
 * On the real platform, TICS's source-instrumentation pass rewrites
 * every store to .data/.bss (and every pointer store) into a call into
 * the memory manager. Here the same surface is expressed in the type
 * system: application globals are nv<T>, and assignments route through
 * the installed MemHooks before the byte is changed, so an undo log can
 * capture the old value.
 */

#ifndef TICSIM_MEM_NV_HPP
#define TICSIM_MEM_NV_HPP

#include <cstring>
#include <type_traits>

#include "mem/nvram.hpp"
#include "mem/store_gate.hpp"
#include "mem/trace.hpp"
#include "support/logging.hpp"

namespace ticsim::mem {

/**
 * Write/read interception installed by the Board while application
 * code runs. The default instance performs no versioning (plain-C
 * semantics: FRAM writes land directly and persist).
 */
class MemHooks
{
  public:
    virtual ~MemHooks() = default;

    /**
     * Called before @p bytes at @p hostAddr are overwritten. The
     * runtime may undo-log the old contents, charge cycles, or force a
     * checkpoint.
     */
    virtual void preWrite(void *hostAddr, std::uint32_t bytes) {}

    /** Called before @p bytes at @p hostAddr are read. */
    virtual void preRead(const void *hostAddr, std::uint32_t bytes) {}
};

/** The calling thread's installed hooks (never null; defaults to a
 *  shared stateless pass-through). */
MemHooks &hooks();

/** Install hooks on the calling thread; returns the previous set. */
MemHooks *setHooks(MemHooks *h);

/** RAII hook installation for Board::run scopes. */
class ScopedHooks
{
  public:
    explicit ScopedHooks(MemHooks *h) : prev_(setHooks(h)) {}
    ~ScopedHooks() { setHooks(prev_); }

    ScopedHooks(const ScopedHooks &) = delete;
    ScopedHooks &operator=(const ScopedHooks &) = delete;

  private:
    MemHooks *prev_;
};

/**
 * A T stored in the simulated FRAM arena. All mutation goes through
 * the installed MemHooks. Trivially-copyable T only (this is firmware
 * state, not a general container).
 */
template <typename T>
class nv
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "nv<T> holds raw firmware state");

  public:
    /** Slot width as the arena's 32-bit size type. */
    static constexpr std::uint32_t kBytes =
        static_cast<std::uint32_t>(sizeof(T));

    /** Allocate a slot in @p ram under @p name, default-initialized. */
    nv(NvRam &ram, const std::string &name)
    {
        const Addr a = ram.allocate(name, kBytes, alignof(T));
        slot_ = reinterpret_cast<T *>(ram.hostPtr(a));
        std::memset(static_cast<void *>(slot_), 0, sizeof(T));
    }

    nv(NvRam &ram, const std::string &name, const T &init)
        : nv(ram, name)
    {
        std::memcpy(static_cast<void *>(slot_), &init, sizeof(T));
    }

    nv(const nv &) = delete;
    nv &operator=(const nv &) = delete;

    /** Instrumented read. */
    operator T() const
    {
        hooks().preRead(slot_, kBytes);
        traceRead(slot_, kBytes);
        T v;
        std::memcpy(&v, slot_, sizeof(T));
        return v;
    }

    T get() const { return static_cast<T>(*this); }

    /** Instrumented write. The trace event follows preWrite so that a
     *  runtime's versioning is visible to the sink before the write. */
    nv &operator=(const T &v)
    {
        hooks().preWrite(slot_, kBytes);
        traceWrite(slot_, kBytes);
        gatedStore(StoreSite::AppGlobal, slot_, &v, kBytes);
        return *this;
    }

    nv &operator+=(const T &v) { return *this = get() + v; }
    nv &operator-=(const T &v) { return *this = get() - v; }
    nv &operator++() { return *this = get() + T(1); }

    /**
     * Raw slot pointer, for passing to pointer-based legacy code. Any
     * store through it must go via the runtime's instrumented store()
     * (mirroring the paper's pointer-write instrumentation).
     */
    T *raw() { return slot_; }
    const T *raw() const { return slot_; }

  private:
    T *slot_;
};

/**
 * A fixed-size array of T in the FRAM arena with instrumented element
 * access.
 */
template <typename T, std::uint32_t N>
class nvArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "nvArray<T> holds raw firmware state");

  public:
    /** Element width as the arena's 32-bit size type. */
    static constexpr std::uint32_t kElemBytes =
        static_cast<std::uint32_t>(sizeof(T));

    nvArray(NvRam &ram, const std::string &name)
    {
        const Addr a = ram.allocate(name, kElemBytes * N, alignof(T));
        slots_ = reinterpret_cast<T *>(ram.hostPtr(a));
        std::memset(static_cast<void *>(slots_), 0, sizeof(T) * N);
    }

    nvArray(const nvArray &) = delete;
    nvArray &operator=(const nvArray &) = delete;

    static constexpr std::uint32_t size() { return N; }

    T get(std::uint32_t i) const
    {
        TICSIM_ASSERT(i < N, "index %u", i);
        hooks().preRead(slots_ + i, kElemBytes);
        traceRead(slots_ + i, kElemBytes);
        return slots_[i];
    }

    void set(std::uint32_t i, const T &v)
    {
        TICSIM_ASSERT(i < N, "index %u", i);
        hooks().preWrite(slots_ + i, kElemBytes);
        traceWrite(slots_ + i, kElemBytes);
        gatedStore(StoreSite::AppGlobal, slots_ + i, &v, kElemBytes);
    }

    T *raw() { return slots_; }
    const T *raw() const { return slots_; }

  private:
    T *slots_;
};

} // namespace ticsim::mem

#endif // TICSIM_MEM_NV_HPP
