/**
 * @file
 * Simulated byte-addressable non-volatile memory (FRAM).
 *
 * All modeled persistent state lives in one NvRam arena: the segmented
 * stack array, checkpoint double buffers, undo log, runtime control
 * blocks and application globals. Contents survive simulated power
 * failures by construction (the arena is ordinary host memory that the
 * Board never clears), exactly like FRAM on an MSP430FR5969. Volatility
 * is modeled the other way around: anything *not* in the arena —
 * machine registers and abandoned execution contexts — is what a power
 * failure destroys.
 */

#ifndef TICSIM_MEM_NVRAM_HPP
#define TICSIM_MEM_NVRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "support/units.hpp"

namespace ticsim::mem {

/** A named allocation inside the arena. */
struct NvRegion {
    std::string name;
    Addr base = 0;
    std::uint32_t size = 0;
};

/**
 * Bump-allocated non-volatile arena with named regions and traffic
 * accounting. Region layout is fixed for the lifetime of an
 * experiment (embedded firmware has a static memory map).
 */
class NvRam
{
  public:
    /** @param size Arena size in bytes (MSP430FR5969: 64 KiB). */
    explicit NvRam(std::uint32_t size = 64 * 1024);

    /**
     * Allocate a named region.
     * @param align Alignment of the region base (power of two).
     * @return base address of the region.
     */
    Addr allocate(const std::string &name, std::uint32_t size,
                  std::uint32_t align = 8);

    /** Host pointer to a modeled address. */
    std::uint8_t *hostPtr(Addr a);
    const std::uint8_t *hostPtr(Addr a) const;

    /** Modeled address of a host pointer into the arena. */
    Addr addrOf(const void *hostPtr) const;

    /** Whether a host pointer points into the arena. */
    bool contains(const void *hostPtr) const;

    std::uint32_t size() const { return size_; }
    std::uint32_t used() const { return next_; }
    std::uint32_t remaining() const { return size_ - next_; }

    const std::vector<NvRegion> &regions() const { return regions_; }

    /**
     * The named region covering modeled address @p a, or nullptr for
     * addresses in unallocated arena space. Regions are bump-allocated
     * in address order, so this is a binary search.
     */
    const NvRegion *regionAt(Addr a) const;

    /** Traffic accounting (charged by the runtimes that move data). */
    void accountWrite(std::uint32_t bytes);
    void accountRead(std::uint32_t bytes);

    StatGroup &stats() { return stats_; }

  private:
    std::uint32_t size_;
    std::uint32_t next_ = 0;
    std::vector<std::uint8_t> data_;
    std::vector<NvRegion> regions_;
    StatGroup stats_;
};

} // namespace ticsim::mem

#endif // TICSIM_MEM_NVRAM_HPP
