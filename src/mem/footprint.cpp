#include "footprint.hpp"

namespace ticsim::mem {

void
Footprint::add(const std::string &component, std::uint32_t textBytes,
               std::uint32_t dataBytes, bool excluded)
{
    items_.push_back({component, textBytes, dataBytes, excluded});
}

std::uint32_t
Footprint::textTotal() const
{
    std::uint32_t total = 0;
    for (const auto &it : items_) {
        if (!it.excluded)
            total += it.textBytes;
    }
    return total;
}

std::uint32_t
Footprint::dataTotal() const
{
    std::uint32_t total = 0;
    for (const auto &it : items_) {
        if (!it.excluded)
            total += it.dataBytes;
    }
    return total;
}

} // namespace ticsim::mem
