/**
 * @file
 * Virtualized I/O across power failures (the paper's Section 7 future
 * work: "Virtualizing the I/O interface across power failures could
 * also lead to better ported applications").
 *
 * The problem: a radio transmission is an irrevocable side effect. If
 * a power failure lands between the send and the next checkpoint,
 * re-execution sends the packet again (see the Table 1 consistency
 * discussion); if it lands inside the send, the packet may be lost.
 * VirtualRadio decouples the application's send() from the physical
 * transmission:
 *
 *  1. send() *stages* the message into a small non-volatile ring
 *     (undo-logged like any other write) under a persistent sequence
 *     number — a failure before the staging epoch commits rolls it
 *     back, and re-execution re-stages the identical message;
 *  2. the post-commit hook *drains* every committed-but-unsent stage,
 *     persistently advancing the sent cursor after each transmission;
 *  3. when the ring is full of committed, undrained messages, send()
 *     forces a checkpoint (re-checking in a loop, so resuming past the
 *     checkpoint can never overwrite an undrained slot).
 *
 * Guarantee: every committed message is transmitted at least once and
 * in order, with no gaps. Duplicates can occur only in the window
 * between a physical transmission and the commit of its cursor
 * advance (no software can close that race against a non-transactional
 * radio); they carry repeated sequence numbers, so the receiver
 * deduplicates trivially — end-to-end exactly-once.
 */

#ifndef TICSIM_TICS_IO_HPP
#define TICSIM_TICS_IO_HPP

#include "tics/runtime.hpp"

namespace ticsim::tics {

class VirtualRadio
{
  public:
    static constexpr std::uint32_t kMaxPayload = 64;
    static constexpr std::uint32_t kRingSlots = 4;

    /** Wire header prepended to every physical packet. */
    struct Header {
        std::uint32_t seq;
    };

    VirtualRadio(TicsRuntime &rt, mem::NvRam &ram,
                 const std::string &name);

    /**
     * Stage @p bytes of @p data for transmission at the next
     * checkpoint commit (forcing commits when the ring is full).
     */
    void send(const void *data, std::uint32_t bytes);

    /** Sequence number of the next message to be staged. */
    std::uint32_t nextSeq() const { return *stagedSeq_ + 1; }

    /** Highest sequence number confirmed transmitted. */
    std::uint32_t sentSeq() const { return *sentSeqNv_; }

    /**
     * Block (checkpointing) until every staged message has been
     * physically transmitted — call before a planned shutdown so no
     * committed output is left sitting in the ring.
     */
    void drainAll();

  private:
    struct Slot {
        std::uint32_t len;
        std::uint8_t bytes[sizeof(Header) + kMaxPayload];
    };

    void flush();

    TicsRuntime &rt_;
    Slot *ring_;                 // NV: kRingSlots staged messages
    std::uint32_t *stagedSeq_;   // NV: highest staged sequence
    std::uint32_t *sentSeqNv_;   // NV: highest transmitted sequence
};

} // namespace ticsim::tics

#endif // TICSIM_TICS_IO_HPP
