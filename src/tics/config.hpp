/**
 * @file
 * TICS runtime configuration: working-stack segment size, undo-log
 * capacity, and the automatic-checkpoint policy (paper Section 4).
 */

#ifndef TICSIM_TICS_CONFIG_HPP
#define TICSIM_TICS_CONFIG_HPP

#include <cstdint>

#include "support/units.hpp"

namespace ticsim::tics {

/** When automatic checkpoints are taken. */
enum class PolicyKind {
    None,         ///< only grow/shrink-forced and manual checkpoints
    Timer,        ///< periodic (paper: 10 ms timer in S1*/S2*)
    Voltage,      ///< hardware-assisted: below a supply-voltage threshold
    EveryTrigger, ///< checkpoint at every trigger point (stress mode)
};

struct TicsConfig {
    /**
     * Working-stack segment size in modeled bytes. Paper
     * configurations: S1 = 50 B, S2 = 256 B. Must be at least the
     * largest declared frame in the program.
     */
    std::uint32_t segmentBytes = 256;

    /** Modeled segment-array capacity (segments). */
    std::uint32_t segmentCount = 16;

    /** Undo-log byte-pool capacity (paper configuration: 2048 B). */
    std::uint32_t undoLogBytes = 2048;

    /** Undo-log entry-table capacity. */
    std::uint32_t undoLogEntries = 128;

    PolicyKind policy = PolicyKind::Timer;

    /** Timer policy period (paper: 10 ms). */
    TimeNs timerPeriod = 10 * kNsPerMs;

    /** Voltage policy threshold. */
    Volts voltageThreshold = 2.1;

    /**
     * Host red-zone below the probed stack pointer included in the
     * checkpoint image (covers the capture function's own frame).
     */
    static constexpr std::uint32_t kHostRedzone = 640;
};

} // namespace ticsim::tics

#endif // TICSIM_TICS_CONFIG_HPP
