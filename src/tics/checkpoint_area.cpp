#include "checkpoint_area.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "board/board.hpp"
#include "mem/journal.hpp"
#include "mem/store_gate.hpp"
#include "perf/counters.hpp"
#include "perf/host_profiler.hpp"
#include "support/crc32.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

namespace {

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TICSIM_ASAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define TICSIM_ASAN_ACTIVE 1
#endif

#if defined(TICSIM_ASAN_ACTIVE)
#define TICSIM_NO_ASAN __attribute__((no_sanitize_address))
#else
#define TICSIM_NO_ASAN
#endif

/**
 * Copies a live stack image without sanitizer interception. The image
 * spans the fiber's active frames, whose ASan redzones are poisoned by
 * design — an intercepted memcpy over them reports a false
 * stack-buffer-underflow. A volatile byte loop keeps the compiler from
 * lowering this back into a memcpy libcall.
 */
TICSIM_NO_ASAN void
rawCopy(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<volatile unsigned char *>(dst);
    auto *s = static_cast<const volatile unsigned char *>(src);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = s[i];
}

} // namespace

static_assert(sizeof(CheckpointArea::SlotHeader) == 24,
              "slot header must be packed: the fault model addresses "
              "its exact NV bytes");

CheckpointArea::CheckpointArea(mem::NvRam &ram, const std::string &name,
                               std::uint32_t imageCapacity)
    : imageCapacity_(imageCapacity)
{
    for (int i = 0; i < 2; ++i) {
        const auto a = ram.allocate(
            name + ".image" + std::to_string(i), imageCapacity, 16);
        slots_[i].image = ram.hostPtr(a);
        const auto h = ram.allocate(
            name + ".hdr" + std::to_string(i),
            static_cast<std::uint32_t>(sizeof(SlotHeader)), 8);
        hdr_[i] = reinterpret_cast<SlotHeader *>(ram.hostPtr(h));
        // The arena is zero-initialized, so fresh headers fail the
        // magic check and the area starts with no restore point.
    }
}

std::uint32_t
CheckpointArea::headerCrc(const SlotHeader &h,
                          const std::uint8_t *image) const
{
    const std::uint32_t fields =
        crc32(&h, offsetof(SlotHeader, crc));
    return crc32(image, h.imgSize, fields);
}

bool
CheckpointArea::headerValid(int i, SlotHeader &out)
{
    std::memcpy(&out, hdr_[i], sizeof(SlotHeader));
    if (out.magic != kMagic)
        return false; // never committed (or explicitly invalidated)
    if (out.imgSize > imageCapacity_ || out.generation == 0 ||
        headerCrc(out, slots_[i].image) != out.crc) {
        // Looked committed but fails validation: a torn header store
        // or a retention bit flip in the header or the image.
        ++rejected_;
        return false;
    }
    return true;
}

CheckpointArea::Slot *
CheckpointArea::valid()
{
    // Boot-time slot validation (CRC over both images) is the host
    // cost of a restore; the image copy itself must stay scope-free
    // because it runs on — and overwrites — the fiber stack.
    perf::HostScope scope(perf::HostZone::Restore);
    SlotHeader h;
    int best = -1;
    std::uint32_t bestGen = 0;
    SlotHeader bestHdr;
    for (int i = 0; i < 2; ++i) {
        if (headerValid(i, h) && h.generation > bestGen) {
            bestGen = h.generation;
            bestHdr = h;
            best = i;
        }
    }
    validIdx_ = static_cast<std::int8_t>(best);
    if (best < 0)
        return nullptr;
    // Restore geometry from the committed header, not from whatever
    // the host slot fields last held (a later, uncommitted capture may
    // have scribbled on the write slot before dying).
    Slot &s = slots_[best];
    s.imgLow = static_cast<std::uintptr_t>(bestHdr.imgLow);
    s.imgSize = bestHdr.imgSize;
    return &s;
}

std::uint32_t
CheckpointArea::generation(int i)
{
    SlotHeader h;
    return headerValid(i, h) ? h.generation : 0;
}

std::uint8_t *
CheckpointArea::headerHostPtr(int i)
{
    return reinterpret_cast<std::uint8_t *>(hdr_[i]);
}

void
CheckpointArea::commit()
{
    perf::HostScope scope(perf::HostZone::Checkpoint);
    const int w = writeIndex();
    const Slot &s = slots_[w];
    SlotHeader h;
    h.magic = kMagic;
    // Derive the next generation from the NV headers themselves, so a
    // torn previous commit can never fork or rewind the counter.
    SlotHeader cur;
    std::uint32_t maxGen = 0;
    for (int i = 0; i < 2; ++i) {
        if (headerValid(i, cur))
            maxGen = std::max(maxGen, cur.generation);
    }
    h.generation = maxGen + 1;
    h.imgLow = static_cast<std::uint64_t>(s.imgLow);
    h.imgSize = s.imgSize;
    h.crc = headerCrc(h, s.image);
    // The commit point: one gated NV store. Power can fail before it,
    // tear it, or flip its bits later — every such outcome fails
    // validation and recovery falls back to the other slot.
    mem::gatedStore(mem::StoreSite::CkptHeader, hdr_[w], &h,
                    static_cast<std::uint32_t>(sizeof(SlotHeader)));
    validIdx_ = static_cast<std::int8_t>(w);
    {
        perf::HotCounters &c = perf::hot();
        ++c.ckptCommits;
        c.ckptBytesMoved += sizeof(SlotHeader);
    }
}

void
CheckpointArea::invalidate()
{
    for (auto *h : hdr_) {
        mem::journalNote(h, sizeof(SlotHeader));
        *h = SlotHeader{}; // all-zero = fails the magic check
    }
    validIdx_ = -1;
}

bool
captureStackImage(board::Board &b, CheckpointArea::Slot &slot,
                  std::uint32_t redzoneBytes)
{
    auto &ctx = b.ctx();
    ctx.armResumedCheck();
    getcontext(&slot.regs.uc);
    if (ctx.wasResumed())
        return false;

    const auto base = reinterpret_cast<std::uintptr_t>(ctx.stackBase());
    std::uintptr_t low = context::ExecContext::probeSp();
    low = low > redzoneBytes ? low - redzoneBytes : 0;
    low = std::max(low, base);
    slot.imgLow = low;
    slot.imgSize = static_cast<std::uint32_t>(ctx.stackTop() - low);
    // Journal the image pool overwrite (raw NV write); the stack
    // source itself is exempt from journaling by design.
    mem::journalNote(slot.image, slot.imgSize);
    rawCopy(slot.image, reinterpret_cast<void *>(low), slot.imgSize);
    // Count on the capture path only (the resume path bailed above);
    // perf::hot() is re-resolved here on purpose — no cached pointer
    // may live across the getcontext boundary.
    perf::hot().ckptBytesMoved += slot.imgSize;
    return true;
}

void
restoreStackImage(const CheckpointArea::Slot &slot)
{
    {
        perf::HotCounters &c = perf::hot();
        ++c.ckptRestores;
        c.ckptRestoreBytes += slot.imgSize;
    }
    rawCopy(reinterpret_cast<void *>(slot.imgLow), slot.image,
            slot.imgSize);
}

} // namespace ticsim::tics
