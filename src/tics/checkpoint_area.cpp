#include "checkpoint_area.hpp"

#include <algorithm>
#include <cstring>

#include "board/board.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

namespace {

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TICSIM_ASAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define TICSIM_ASAN_ACTIVE 1
#endif

#if defined(TICSIM_ASAN_ACTIVE)
#define TICSIM_NO_ASAN __attribute__((no_sanitize_address))
#else
#define TICSIM_NO_ASAN
#endif

/**
 * Copies a live stack image without sanitizer interception. The image
 * spans the fiber's active frames, whose ASan redzones are poisoned by
 * design — an intercepted memcpy over them reports a false
 * stack-buffer-underflow. A volatile byte loop keeps the compiler from
 * lowering this back into a memcpy libcall.
 */
TICSIM_NO_ASAN void
rawCopy(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<volatile unsigned char *>(dst);
    auto *s = static_cast<const volatile unsigned char *>(src);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = s[i];
}

} // namespace

CheckpointArea::CheckpointArea(mem::NvRam &ram, const std::string &name,
                               std::uint32_t imageCapacity)
    : imageCapacity_(imageCapacity)
{
    for (int i = 0; i < 2; ++i) {
        const auto a = ram.allocate(
            name + ".image" + std::to_string(i), imageCapacity, 16);
        slots_[i].image = ram.hostPtr(a);
    }
}

bool
captureStackImage(board::Board &b, CheckpointArea::Slot &slot,
                  std::uint32_t redzoneBytes)
{
    auto &ctx = b.ctx();
    ctx.armResumedCheck();
    getcontext(&slot.regs.uc);
    if (ctx.wasResumed())
        return false;

    const auto base = reinterpret_cast<std::uintptr_t>(ctx.stackBase());
    std::uintptr_t low = context::ExecContext::probeSp();
    low = low > redzoneBytes ? low - redzoneBytes : 0;
    low = std::max(low, base);
    slot.imgLow = low;
    slot.imgSize = static_cast<std::uint32_t>(ctx.stackTop() - low);
    rawCopy(slot.image, reinterpret_cast<void *>(low), slot.imgSize);
    return true;
}

void
restoreStackImage(const CheckpointArea::Slot &slot)
{
    rawCopy(reinterpret_cast<void *>(slot.imgLow), slot.image,
            slot.imgSize);
}

} // namespace ticsim::tics
