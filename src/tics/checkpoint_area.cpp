#include "checkpoint_area.hpp"

#include <algorithm>
#include <cstring>

#include "board/board.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

CheckpointArea::CheckpointArea(mem::NvRam &ram, const std::string &name,
                               std::uint32_t imageCapacity)
    : imageCapacity_(imageCapacity)
{
    for (int i = 0; i < 2; ++i) {
        const auto a = ram.allocate(
            name + ".image" + std::to_string(i), imageCapacity, 16);
        slots_[i].image = ram.hostPtr(a);
    }
}

bool
captureStackImage(board::Board &b, CheckpointArea::Slot &slot,
                  std::uint32_t redzoneBytes)
{
    auto &ctx = b.ctx();
    ctx.armResumedCheck();
    getcontext(&slot.regs.uc);
    if (ctx.wasResumed())
        return false;

    const auto base = reinterpret_cast<std::uintptr_t>(ctx.stackBase());
    std::uintptr_t low = context::ExecContext::probeSp();
    low = low > redzoneBytes ? low - redzoneBytes : 0;
    low = std::max(low, base);
    slot.imgLow = low;
    slot.imgSize = static_cast<std::uint32_t>(ctx.stackTop() - low);
    std::memcpy(slot.image, reinterpret_cast<void *>(low), slot.imgSize);
    return true;
}

void
restoreStackImage(const CheckpointArea::Slot &slot)
{
    std::memcpy(reinterpret_cast<void *>(slot.imgLow), slot.image,
                slot.imgSize);
}

} // namespace ticsim::tics
