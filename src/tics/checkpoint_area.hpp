/**
 * @file
 * Double-buffered checkpoint storage with a failure-atomic,
 * NV-validated commit (paper Section 4 "Automatic Checkpoints",
 * hardened per DESIGN.md Section 8).
 *
 * Two slots alternate as write target and valid restore point. Commit
 * persists a small NV header — magic, generation counter, image
 * geometry, CRC-32 over the header fields and the live image bytes —
 * as the *last* store of the protocol, so the header is the commit
 * point: a power failure at any instant before or during the header
 * store (including a torn multi-byte header write) leaves the previous
 * generation's header intact and recovery falls back to it.
 *
 * Validity is derived from the NV headers on every boot, not from host
 * bookkeeping: valid() revalidates both headers (magic, geometry
 * bounds, CRC over the current image bytes) and restores from the
 * highest surviving generation. Retention bit flips in a header or an
 * image therefore demote that slot instead of restoring garbage.
 *
 * Each slot additionally holds the machine-register snapshot and the
 * stack-segmentation bookkeeping. The *modeled* checkpoint payload is
 * registers + one working segment (what the cost model charges); the
 * host image covers the live stack region for bit-exact resume
 * mechanics (see DESIGN.md Section 4). The CRC computation is modeled
 * at zero extra cycles — on FRAM hardware it rides along the
 * sequential image write/read the checkpoint and restore costs
 * already charge.
 */

#ifndef TICSIM_TICS_CHECKPOINT_AREA_HPP
#define TICSIM_TICS_CHECKPOINT_AREA_HPP

#include <cstdint>
#include <string>

#include "context/exec_context.hpp"
#include "mem/nvram.hpp"
#include "support/statebuf.hpp"
#include "tics/segmentation.hpp"

namespace ticsim::board {
class Board;
}

namespace ticsim::tics {

class CheckpointArea
{
  public:
    struct Slot {
        context::RegSlot regs;
        Segmentation seg;
        std::uintptr_t imgLow = 0;
        std::uint32_t imgSize = 0;
        std::uint8_t *image = nullptr; ///< NV pool of imageCapacity bytes
    };

    /**
     * NV-resident per-slot commit record. The layout is part of the
     * fault model: tears and bit flips land on these exact bytes.
     * No padding (4+4+8+4+4 = 24 bytes); crc is last so a prefix-torn
     * header always fails validation.
     */
    struct SlotHeader {
        std::uint32_t magic = 0;
        std::uint32_t generation = 0; ///< 1-based, monotonic across slots
        std::uint64_t imgLow = 0;
        std::uint32_t imgSize = 0;
        std::uint32_t crc = 0; ///< over the fields above + image bytes
    };

    static constexpr std::uint32_t kMagic = 0x54434B31u; // "TCK1"

    /**
     * @param ram Arena for the image pools and headers.
     * @param name Region-name prefix.
     * @param imageCapacity Host bytes reserved per slot (the full app
     *                      stack buffer size; actual images are the
     *                      live region only).
     */
    CheckpointArea(mem::NvRam &ram, const std::string &name,
                   std::uint32_t imageCapacity);

    /** The slot the next checkpoint writes into (never the valid one). */
    Slot &writeSlot() { return slots_[writeIndex()]; }

    /**
     * The committed restore point, or nullptr before the first commit
     * or after every header failed validation. Revalidates both NV
     * headers (magic, bounds, CRC against the current image bytes),
     * picks the highest valid generation, and refreshes the slot's
     * image geometry from the committed header.
     */
    Slot *valid();

    /**
     * Commit the write slot: derive the next generation from the NV
     * headers and persist the slot's header (a gated NV store — the
     * single commit point) with a CRC sealing the image bytes.
     */
    void commit();

    /** Drop both restore points (fresh-start experiments). */
    void invalidate();

    /** Index of the slot writeSlot() returns (for parallel buffers). */
    int writeIndex() const { return validIdx_ == 0 ? 1 : 0; }

    /** Index of the committed slot as of the last valid()/commit(),
     *  or -1. NV headers are the ground truth; this is a cache. */
    int validIndex() const { return validIdx_; }

    std::uint32_t imageCapacity() const { return imageCapacity_; }

    // ---- fault-injection / test surface ----------------------------------

    /** Committed generation recorded in slot @p i's header, or 0 when
     *  the header fails validation. */
    std::uint32_t generation(int i);

    /** Raw NV bytes of slot @p i's header (tests corrupt these). */
    std::uint8_t *headerHostPtr(int i);

    /** Headers that carried the magic but failed CRC/bounds validation
     *  (torn commits and retention flips detected and demoted). */
    std::uint64_t rejectedHeaders() const { return rejected_; }

    /**
     * Host-side snapshot/restore for the failure-space explorer. The
     * NV headers and image pools are restored by the write journal;
     * this covers the host fields: both slots' register snapshots,
     * segmentation copies and image geometry, plus the validity cache
     * and rejection counter. Only replayed into the same object (the
     * register snapshot contains self-referential ucontext pointers
     * that survive an in-place byte copy but not relocation).
     */
    void
    saveHostState(StateWriter &w) const
    {
        for (const Slot &s : slots_) {
            w.put(s.regs);
            w.put(s.seg);
            w.put(s.imgLow);
            w.put(s.imgSize);
        }
        w.put(validIdx_);
        w.put(rejected_);
    }
    void
    loadHostState(StateReader &r)
    {
        for (Slot &s : slots_) {
            s.regs = r.get<context::RegSlot>();
            s.seg = r.get<Segmentation>();
            s.imgLow = r.get<std::uintptr_t>();
            s.imgSize = r.get<std::uint32_t>();
        }
        validIdx_ = r.get<std::int8_t>();
        rejected_ = r.get<std::uint64_t>();
    }

  private:
    /** Parse + validate header @p i; true iff restorable. */
    bool headerValid(int i, SlotHeader &out);

    std::uint32_t headerCrc(const SlotHeader &h,
                            const std::uint8_t *image) const;

    Slot slots_[2];
    SlotHeader *hdr_[2] = {nullptr, nullptr}; ///< in NvRam
    std::int8_t validIdx_ = -1;
    std::uint32_t imageCapacity_;
    std::uint64_t rejected_ = 0;
};

/**
 * Capture the machine registers and the live host stack image into
 * @p slot. The getcontext() and the image copy happen in this one
 * frame, *in that order*, so every stack byte the resume path can read
 * — including this function's own spill slots — is part of the image.
 * Callers on the capture path then fill the slot's remaining fields
 * and commit; on the resume path they must return immediately.
 *
 * @return true on the capture path; false when execution re-entered
 *         the capture point through ExecContext::prepareResume().
 */
bool captureStackImage(board::Board &b, CheckpointArea::Slot &slot,
                       std::uint32_t redzoneBytes);

/** Restore the stack image saved in @p slot (reboot path). */
void restoreStackImage(const CheckpointArea::Slot &slot);

} // namespace ticsim::tics

#endif // TICSIM_TICS_CHECKPOINT_AREA_HPP
