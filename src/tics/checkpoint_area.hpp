/**
 * @file
 * Double-buffered checkpoint storage with two-phase commit (paper
 * Section 4 "Automatic Checkpoints").
 *
 * Two slots alternate as write target and valid restore point; a
 * commit flips the valid index only after the write slot is fully
 * populated, so a power failure during checkpointing always leaves one
 * consistent restore point (or none, before the first commit).
 *
 * Each slot holds the machine-register snapshot, the stack-
 * segmentation bookkeeping, and the host stack image. The *modeled*
 * checkpoint payload is registers + one working segment (that is what
 * the cost model charges); the host image covers the live stack region
 * for bit-exact resume mechanics (see DESIGN.md Section 4).
 */

#ifndef TICSIM_TICS_CHECKPOINT_AREA_HPP
#define TICSIM_TICS_CHECKPOINT_AREA_HPP

#include <cstdint>
#include <string>

#include "context/exec_context.hpp"
#include "mem/nvram.hpp"
#include "tics/segmentation.hpp"

namespace ticsim::board {
class Board;
}

namespace ticsim::tics {

class CheckpointArea
{
  public:
    struct Slot {
        context::RegSlot regs;
        Segmentation seg;
        std::uintptr_t imgLow = 0;
        std::uint32_t imgSize = 0;
        std::uint8_t *image = nullptr; ///< NV pool of imageCapacity bytes
    };

    /**
     * @param ram Arena for the image pools.
     * @param name Region-name prefix.
     * @param imageCapacity Host bytes reserved per slot (the full app
     *                      stack buffer size; actual images are the
     *                      live region only).
     */
    CheckpointArea(mem::NvRam &ram, const std::string &name,
                   std::uint32_t imageCapacity);

    /** The slot the next checkpoint writes into (never the valid one). */
    Slot &writeSlot() { return slots_[validIdx_ == 0 ? 1 : 0]; }

    /** The committed restore point, or nullptr before the first commit. */
    Slot *valid()
    {
        return validIdx_ < 0 ? nullptr : &slots_[validIdx_];
    }

    /** Flip the commit flag: the write slot becomes the valid one. */
    void commit() { validIdx_ = (validIdx_ == 0) ? 1 : 0; }

    /** Drop the restore point (fresh-start experiments). */
    void invalidate() { validIdx_ = -1; }

    /** Index of the slot writeSlot() returns (for parallel buffers). */
    int writeIndex() const { return validIdx_ == 0 ? 1 : 0; }

    /** Index of the committed slot, or -1 before the first commit. */
    int validIndex() const { return validIdx_; }

    std::uint32_t imageCapacity() const { return imageCapacity_; }

  private:
    Slot slots_[2];
    std::int8_t validIdx_ = -1;
    std::uint32_t imageCapacity_;
};

/**
 * Capture the machine registers and the live host stack image into
 * @p slot. The getcontext() and the image copy happen in this one
 * frame, *in that order*, so every stack byte the resume path can read
 * — including this function's own spill slots — is part of the image.
 * Callers on the capture path then fill the slot's remaining fields
 * and commit; on the resume path they must return immediately.
 *
 * @return true on the capture path; false when execution re-entered
 *         the capture point through ExecContext::prepareResume().
 */
bool captureStackImage(board::Board &b, CheckpointArea::Slot &slot,
                       std::uint32_t redzoneBytes);

/** Restore the stack image saved in @p slot (reboot path). */
void restoreStackImage(const CheckpointArea::Slot &slot);

} // namespace ticsim::tics

#endif // TICSIM_TICS_CHECKPOINT_AREA_HPP
