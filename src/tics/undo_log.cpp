#include "undo_log.hpp"

#include <cstddef>
#include <cstring>

#include "mem/journal.hpp"
#include "mem/store_gate.hpp"
#include "mem/trace.hpp"
#include "perf/counters.hpp"
#include "support/crc32.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

UndoLog::UndoLog(mem::NvRam &ram, const std::string &name,
                 std::uint32_t poolBytes, std::uint32_t maxEntries)
    : poolBytes_(poolBytes), maxEntries_(maxEntries)
{
    const auto poolAddr = ram.allocate(name + ".pool", poolBytes, 8);
    const auto tblAddr = ram.allocate(
        name + ".entries",
        maxEntries * static_cast<std::uint32_t>(sizeof(Entry)),
        alignof(Entry));
    pool_ = ram.hostPtr(poolAddr);
    entries_ = reinterpret_cast<Entry *>(ram.hostPtr(tblAddr));
}

bool
UndoLog::wouldOverflow(std::uint32_t bytes) const
{
    return count_ >= maxEntries_ || poolUsed_ + bytes > poolBytes_;
}

std::uint32_t
UndoLog::entryCrc(const Entry &e, const std::uint8_t *saved)
{
    return crc32(saved, e.bytes, crc32(&e, offsetof(Entry, crc)));
}

void
UndoLog::append(void *p, std::uint32_t bytes)
{
    TICSIM_ASSERT(!wouldOverflow(bytes), "undo log overflow");
    // memset, not just field assignment: Entry has tail padding, and
    // gatedStore copies sizeof(Entry) raw bytes into the NV arena.
    Entry e;
    std::memset(&e, 0, sizeof e);
    e.target = static_cast<std::uint8_t *>(p);
    e.bytes = bytes;
    e.poolOff = poolUsed_;
    // Seal over the *source* bytes before the (tearable) pool store:
    // a tear leaves a record whose pool contents no longer match.
    e.crc = crc32(p, bytes, crc32(&e, offsetof(Entry, crc)));
    mem::gatedStore(mem::StoreSite::UndoPool, pool_ + poolUsed_, p,
                    bytes);
    mem::gatedStore(mem::StoreSite::UndoPool, &entries_[count_], &e,
                    static_cast<std::uint32_t>(sizeof(Entry)));
    poolUsed_ += bytes;
    // Publishing the entry is the final, host-side bump: a tear in
    // either store above dies before it and the log stays unchanged.
    ++count_;
    {
        perf::HotCounters &c = perf::hot();
        ++c.undoRecordsSealed;
        c.undoBytesSealed += bytes;
    }
    mem::traceVersioned(p, bytes);
}

std::uint32_t
UndoLog::rollback()
{
    return rollbackTo(0);
}

std::uint32_t
UndoLog::rollbackTo(std::uint32_t watermark)
{
    TICSIM_ASSERT(watermark <= count_);
    std::uint32_t applied = 0;
    // Newest first, so overlapping records end with the oldest value.
    for (std::uint32_t i = count_; i > watermark; --i) {
        Entry e;
        std::memcpy(&e, &entries_[i - 1], sizeof(Entry));
        // Bounds before CRC (a torn entry may carry a garbage length),
        // CRC before applying (a flipped pool byte must not reach the
        // target).
        if (e.poolOff > poolBytes_ || e.bytes > poolBytes_ - e.poolOff ||
            entryCrc(e, pool_ + e.poolOff) != e.crc) {
            ++corrupt_;
            ++perf::hot().undoRecordsCorrupt;
            warn("undo log: record %u fails validation "
                 "(torn append or NV corruption); skipped",
                 i - 1);
            continue;
        }
        mem::journalNote(e.target, e.bytes);
        std::memcpy(e.target, pool_ + e.poolOff, e.bytes);
        ++applied;
        ++perf::hot().undoRecordsRolledBack;
    }
    count_ = watermark;
    poolUsed_ = watermark == 0 ? 0 : entries_[watermark - 1].poolOff +
                                         entries_[watermark - 1].bytes;
    return applied;
}

void
UndoLog::clear()
{
    count_ = 0;
    poolUsed_ = 0;
}

std::uint32_t
UndoLog::bytesSince(std::uint32_t watermark) const
{
    std::uint32_t total = 0;
    for (std::uint32_t i = watermark; i < count_; ++i)
        total += entries_[i].bytes;
    return total;
}

} // namespace ticsim::tics
