#include "undo_log.hpp"

#include <cstring>

#include "mem/trace.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

UndoLog::UndoLog(mem::NvRam &ram, const std::string &name,
                 std::uint32_t poolBytes, std::uint32_t maxEntries)
    : poolBytes_(poolBytes), maxEntries_(maxEntries)
{
    const auto poolAddr = ram.allocate(name + ".pool", poolBytes, 8);
    const auto tblAddr = ram.allocate(
        name + ".entries",
        maxEntries * static_cast<std::uint32_t>(sizeof(Entry)),
        alignof(Entry));
    pool_ = ram.hostPtr(poolAddr);
    entries_ = reinterpret_cast<Entry *>(ram.hostPtr(tblAddr));
}

bool
UndoLog::wouldOverflow(std::uint32_t bytes) const
{
    return count_ >= maxEntries_ || poolUsed_ + bytes > poolBytes_;
}

void
UndoLog::append(void *p, std::uint32_t bytes)
{
    TICSIM_ASSERT(!wouldOverflow(bytes), "undo log overflow");
    Entry &e = entries_[count_];
    e.target = static_cast<std::uint8_t *>(p);
    e.bytes = bytes;
    e.poolOff = poolUsed_;
    std::memcpy(pool_ + poolUsed_, p, bytes);
    poolUsed_ += bytes;
    ++count_;
    mem::traceVersioned(p, bytes);
}

std::uint32_t
UndoLog::rollback()
{
    return rollbackTo(0);
}

std::uint32_t
UndoLog::rollbackTo(std::uint32_t watermark)
{
    TICSIM_ASSERT(watermark <= count_);
    std::uint32_t applied = 0;
    // Newest first, so overlapping records end with the oldest value.
    for (std::uint32_t i = count_; i > watermark; --i) {
        const Entry &e = entries_[i - 1];
        std::memcpy(e.target, pool_ + e.poolOff, e.bytes);
        ++applied;
    }
    count_ = watermark;
    poolUsed_ = watermark == 0 ? 0 : entries_[watermark - 1].poolOff +
                                         entries_[watermark - 1].bytes;
    return applied;
}

void
UndoLog::clear()
{
    count_ = 0;
    poolUsed_ = 0;
}

std::uint32_t
UndoLog::bytesSince(std::uint32_t watermark) const
{
    std::uint32_t total = 0;
    for (std::uint32_t i = watermark; i < count_; ++i)
        total += entries_[i].bytes;
    return total;
}

} // namespace ticsim::tics
