#include "io.hpp"

#include <cstring>

#include "mem/trace.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

VirtualRadio::VirtualRadio(TicsRuntime &rt, mem::NvRam &ram,
                           const std::string &name)
    : rt_(rt)
{
    constexpr auto kRingBytes =
        static_cast<std::uint32_t>(sizeof(Slot) * kRingSlots);
    const auto ringAddr = ram.allocate(name + ".ring", kRingBytes, 8);
    const auto stg = ram.allocate(name + ".staged", 4, 4);
    const auto snt = ram.allocate(name + ".sent", 4, 4);
    ring_ = reinterpret_cast<Slot *>(ram.hostPtr(ringAddr));
    stagedSeq_ = reinterpret_cast<std::uint32_t *>(ram.hostPtr(stg));
    sentSeqNv_ = reinterpret_cast<std::uint32_t *>(ram.hostPtr(snt));
    std::memset(static_cast<void *>(ring_), 0, kRingBytes);
    *stagedSeq_ = 0;
    *sentSeqNv_ = 0;
    rt.setPostCommitHook([this] { flush(); });
    rt.footprint().add("virtual radio " + name, 420, kRingBytes + 8);
}

void
VirtualRadio::send(const void *data, std::uint32_t bytes)
{
    TICSIM_ASSERT(bytes <= kMaxPayload, "payload %u > %u", bytes,
                  kMaxPayload);
    // Ring full of committed-but-undrained messages: force commits
    // (whose post-commit hooks drain). Re-checked in a loop so that
    // resuming past one of these checkpoints can never skip the guard
    // and overwrite an undrained slot.
    while (*stagedSeq_ - *sentSeqNv_ >= kRingSlots)
        rt_.checkpointNow();

    const std::uint32_t seq = *stagedSeq_ + 1;
    Slot *slot = &ring_[seq % kRingSlots];
    Header hdr{seq};
    constexpr auto kHdrBytes = static_cast<std::uint32_t>(sizeof(Header));
    rt_.storeBytes(slot->bytes, &hdr, kHdrBytes);
    rt_.storeBytes(slot->bytes + kHdrBytes, data, bytes);
    rt_.store(&slot->len, kHdrBytes + bytes);
    rt_.store(stagedSeq_, seq);
    mem::traceSideEvent(mem::SideEventKind::PeripheralStage, "radio",
                        bytes, seq);
}

void
VirtualRadio::drainAll()
{
    // Each checkpoint's post-commit hook durably delivers at least one
    // message, and a resume lands back inside this loop.
    while (*sentSeqNv_ < *stagedSeq_)
        rt_.checkpointNow();
}

void
VirtualRadio::flush()
{
    // Drain every committed, unsent stage in order. A brown-out inside
    // radioSend abandons the drain; the cursor still points at the
    // interrupted message, so the next commit retries it (at-least-
    // once). Cursor advances within one epoch roll back together,
    // which can only cause same-sequence re-transmissions.
    // (Reentrancy through a hook-triggered checkpoint is prevented by
    // the runtime's volatile post-commit guard.)
    while (*sentSeqNv_ < *stagedSeq_) {
        const std::uint32_t seq = *sentSeqNv_ + 1;
        const Slot *slot = &ring_[seq % kRingSlots];
        mem::traceSideEvent(mem::SideEventKind::IoGuardEnter, "radio",
                            seq);
        rt_.board().radioSend(slot->bytes, slot->len);
        rt_.store(sentSeqNv_, seq);
        mem::traceSideEvent(mem::SideEventKind::IoGuardExit, "radio",
                            seq);
        // Make the cursor advance durable immediately (the runtime's
        // guard keeps this checkpoint from re-entering the hook).
        // Without this, a fixed-length power window that always dies
        // mid-drain rolls the whole drain back each time and the
        // system livelocks re-transmitting the same prefix forever;
        // with it, every window durably delivers at least one message.
        rt_.checkpointNow();
    }
}

} // namespace ticsim::tics
