/**
 * @file
 * Fixed-capacity non-volatile undo log (paper Section 3.1.2).
 *
 * Writes that land outside the working stack (global variables and
 * pointer targets) save the original bytes here before modification.
 * A successful checkpoint clears the log; on reboot the log is rolled
 * back, restoring memory to its state at the last checkpoint. The log
 * is fixed-size, so a full log forces a checkpoint — this is what
 * bounds TICS's memory overhead and eliminates whole-memory
 * checkpointing for pointer programs.
 *
 * Every record carries a CRC-32 sealing its entry fields and saved
 * bytes, and the record stores themselves are gated NV stores (see
 * mem/store_gate.hpp): a record torn by a power failure mid-append or
 * corrupted by a retention bit flip fails validation at rollback and
 * is skipped (and counted) instead of spraying garbage over the
 * target. The entry-table bump that publishes a record is the last
 * step of append, so a tear before it leaves the log unchanged.
 */

#ifndef TICSIM_TICS_UNDO_LOG_HPP
#define TICSIM_TICS_UNDO_LOG_HPP

#include <cstdint>

#include "mem/nvram.hpp"
#include "support/stats.hpp"

namespace ticsim::tics {

/**
 * Undo log stored in the FRAM arena: an entry table (target pointer +
 * length + pool offset) and a byte pool of original values.
 */
class UndoLog
{
  public:
    /**
     * @param ram Arena to allocate from.
     * @param name Region-name prefix.
     * @param poolBytes Byte-pool capacity.
     * @param maxEntries Entry-table capacity.
     */
    UndoLog(mem::NvRam &ram, const std::string &name,
            std::uint32_t poolBytes, std::uint32_t maxEntries);

    /** Would appending @p bytes overflow the log? */
    bool wouldOverflow(std::uint32_t bytes) const;

    /**
     * Save the current contents of [p, p+bytes) as an undo record.
     * The caller must have checked wouldOverflow() first.
     */
    void append(void *p, std::uint32_t bytes);

    /**
     * Write every record's original bytes back, newest first, leaving
     * memory as it was when the log was last cleared.
     * @return number of records applied.
     */
    std::uint32_t rollback();

    /**
     * Roll back only records appended after @p watermark (used by the
     * @expires/catch exception path), truncating the log to it.
     */
    std::uint32_t rollbackTo(std::uint32_t watermark);

    /** Drop all records (after a successful checkpoint commit). */
    void clear();

    std::uint32_t entryCount() const { return count_; }
    std::uint32_t usedBytes() const { return poolUsed_; }
    std::uint32_t poolCapacity() const { return poolBytes_; }

    /** Records that failed CRC validation during rollback and were
     *  skipped (torn appends / retention bit flips), cumulative. */
    std::uint32_t corruptSkipped() const { return corrupt_; }

    /** Sum of record sizes in [watermark, end) (for cost charging). */
    std::uint32_t bytesSince(std::uint32_t watermark) const;

    /**
     * Host-side cursor state for snapshot/restore (the records and
     * pool bytes live in NV and are restored by the write journal;
     * these cursors model registers a reboot would rebuild but a
     * mid-run restore must reinstate directly).
     */
    struct Cursor {
        std::uint32_t count = 0;
        std::uint32_t poolUsed = 0;
        std::uint32_t corrupt = 0;
    };

    Cursor cursor() const { return Cursor{count_, poolUsed_, corrupt_}; }
    void
    setCursor(const Cursor &c)
    {
        count_ = c.count;
        poolUsed_ = c.poolUsed;
        corrupt_ = c.corrupt;
    }

  private:
    struct Entry {
        std::uint8_t *target;
        std::uint32_t bytes;
        std::uint32_t poolOff;
        std::uint32_t crc; ///< over the fields above + saved bytes
    };

    /** CRC sealing @p e's fields and the @p saved byte range. */
    static std::uint32_t entryCrc(const Entry &e,
                                  const std::uint8_t *saved);

    std::uint32_t poolBytes_;
    std::uint32_t maxEntries_;
    std::uint8_t *pool_;    // in NvRam
    Entry *entries_;        // in NvRam
    std::uint32_t count_ = 0;
    std::uint32_t poolUsed_ = 0;
    std::uint32_t corrupt_ = 0;
};

} // namespace ticsim::tics

#endif // TICSIM_TICS_UNDO_LOG_HPP
