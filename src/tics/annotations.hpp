/**
 * @file
 * Time-sensitivity semantics (paper Sections 3.2 and 4, Fig. 6).
 *
 * The paper extends C with declarative annotations that its
 * source-instrumentation pass lowers into runtime calls:
 *
 *  | paper syntax              | this API                              |
 *  |---------------------------|---------------------------------------|
 *  | @expires_after=1s int x;  | Expiring<int> x(rt, "x", 1s);         |
 *  | x @= read_sensor();       | x.assignTimed(read_sensor(), i);      |
 *  | @expires(x){ ... }        | expires(rt, x, [&]{ ... });           |
 *  | @expires(x){...}catch{...}| expiresCatch(rt, x, body, handler);   |
 *  | @timely(T){...}else{...}  | timely(rt, id, i, T, then, orElse);   |
 *
 * All blocks open an atomic window (automatic checkpoints disabled) and
 * close with the checkpoint the paper mandates, so a power failure
 * inside a block re-executes it from its freshness test.
 *
 * The @p instance arguments identify one logical evaluation (normally
 * a persistent iteration counter); they feed the ViolationMonitor that
 * scores Table 2 and add no device cost.
 */

#ifndef TICSIM_TICS_ANNOTATIONS_HPP
#define TICSIM_TICS_ANNOTATIONS_HPP

#include <string>

#include "mem/nv.hpp"
#include "tics/runtime.hpp"

namespace ticsim::tics {

/**
 * A non-volatile variable with an expiration constraint
 * (@expires_after). Every timed assignment updates the associated
 * persistent timestamp atomically with the value.
 */
template <typename T>
class Expiring
{
  public:
    /**
     * @param ram The FRAM arena (annotated variables are created at
     *            program-construction time, before the runtime is
     *            attached to a board).
     * @param id Stable identifier (also the NV region name).
     * @param lifetime Freshness window; 0 means "timestamped but never
     *                 expires" (the paper's @expires_after=0s).
     */
    Expiring(TicsRuntime &rt, mem::NvRam &ram, const std::string &id,
             TimeNs lifetime)
        : rt_(rt), id_(id), lifetime_(lifetime),
          value_(ram, id + ".value"), ts_(ram, id + ".ts")
    {
    }

    /**
     * The @= operator: assign value and timestamp as one atomic block
     * (checkpoints disabled inside, checkpoint placed right after), so
     * a power failure can never split data from its timestamp.
     */
    void
    assignTimed(const T &v, std::uint64_t instance,
                TimeNs misalignTolerance = 10 * kNsPerMs)
    {
        rt_.beginAtomic();
        value_ = v;
        rt_.chargeTimestampWrite();
        const TimeNs t = rt_.deviceNow();
        ts_ = t;
        rt_.board().monitor().timestampAssigned(id_, instance, t,
                                                misalignTolerance);
        mem::traceSideEvent(mem::SideEventKind::TimedAssign, id_.c_str(),
                            static_cast<std::uint64_t>(lifetime_));
        rt_.endAtomic(/*checkpoint=*/true);
    }

    /** Plain (un-timed) update: the timestamp is deliberately kept —
     *  e.g. converting raw ADC counts to degrees must not refresh the
     *  data's age (paper Section 3.2.2). */
    void set(const T &v) { value_ = v; }

    /** Uninstrumented peek (no consumption semantics). */
    T get() const { return value_.get(); }

    /**
     * Consume the value: reports the consumption to the violation
     * monitor so stale uses outside @expires blocks are scored.
     */
    T
    read(std::uint64_t instance)
    {
        rt_.board().monitor().dataConsumed(id_, instance, lifetime_,
                                           rt_.board().now());
        mem::traceSideEvent(mem::SideEventKind::TimedUse, id_.c_str(),
                            static_cast<std::uint64_t>(lifetime_));
        return value_.get();
    }

    /** Freshness per the device's own clock (charges a clock read). */
    bool
    fresh()
    {
        mem::traceSideEvent(mem::SideEventKind::TimedCheck, id_.c_str(),
                            static_cast<std::uint64_t>(lifetime_));
        if (lifetime_ == 0)
            return true;
        const TimeNs now = rt_.deviceNow();
        const TimeNs ts = ts_.get();
        return now <= ts || now - ts <= lifetime_;
    }

    TimeNs timestamp() const { return ts_.get(); }
    TimeNs lifetime() const { return lifetime_; }
    const std::string &id() const { return id_; }

  private:
    TicsRuntime &rt_;
    std::string id_;
    TimeNs lifetime_;
    mem::nv<T> value_;
    mem::nv<TimeNs> ts_;
};

/**
 * The @expires block: run @p body only if @p var is still fresh,
 * atomically with respect to automatic checkpoints, with the mandated
 * checkpoint at block end. Stale data is simply discarded.
 * @return whether the body ran.
 */
template <typename T, typename Body>
bool
expires(TicsRuntime &rt, Expiring<T> &var, std::uint64_t instance,
        Body &&body)
{
    rt.beginAtomic();
    const bool isFresh = var.fresh();
    if (isFresh)
        body();
    rt.endAtomic(/*checkpoint=*/true);
    return isFresh;
}

/**
 * The exception-based @expires/catch block: @p body runs under an
 * expiration timer; if the data expires mid-block, the block's writes
 * are rolled back through the parallel undo log and @p handler runs.
 * Data already stale at entry goes straight to @p handler.
 * @return whether the body completed before expiry.
 */
template <typename T, typename Body, typename Handler>
bool
expiresCatch(TicsRuntime &rt, Expiring<T> &var, std::uint64_t instance,
             Body &&body, Handler &&handler)
{
    mem::traceSideEvent(mem::SideEventKind::TimedCheck, var.id().c_str(),
                        static_cast<std::uint64_t>(var.lifetime()));
    const TimeNs now = rt.deviceNow();
    const TimeNs ts = var.timestamp();
    const TimeNs age = now > ts ? now - ts : 0;
    if (var.lifetime() != 0 && age > var.lifetime()) {
        handler();
        return false;
    }
    const TimeNs remaining =
        var.lifetime() == 0 ? ~TimeNs(0) - rt.board().now()
                            : var.lifetime() - age;
    rt.beginExpires(rt.board().now() + remaining);
    bool completed = true;
    try {
        body();
    } catch (const ExpiredException &) {
        rt.expiresRollback();
        completed = false;
    }
    rt.endExpires();
    if (!completed)
        handler();
    return completed;
}

/**
 * The @timely/else block (paper Section 3.2.1): read the persistent
 * clock with checkpoints disabled, take the then-branch only before
 * @p deadline (absolute device time), and checkpoint at the end of the
 * taken then-branch so re-execution can never take both arms.
 * @return whether the then-branch ran.
 */
template <typename Then, typename Else>
bool
timely(TicsRuntime &rt, const char *branchId, std::uint64_t instance,
       TimeNs deadline, Then &&then, Else &&orElse)
{
    rt.beginAtomic();
    const TimeNs t = rt.deviceNow();
    const bool taken = t < deadline;
    if (taken) {
        // Commit the decision before the branch body: a power failure
        // inside the body then re-executes the body only — it can
        // never re-read the clock and flip to the other arm. (A
        // failure *inside* this commit re-executes the whole block,
        // where the now-later clock can only yield the else arm; the
        // taken arm is therefore reported only after its decision is
        // durable.) A second checkpoint at the end of the branch seals
        // its effects (paper Section 3.2.1).
        rt.endAtomic(/*checkpoint=*/true);
        rt.board().monitor().branchArm(branchId, instance, 0);
        then();
        rt.checkpointNow();
    } else {
        // Time is monotonic: once missed, a deadline stays missed, so
        // re-executions can only repeat this arm.
        rt.board().monitor().branchArm(branchId, instance, 1);
        rt.endAtomic(/*checkpoint=*/false);
        orElse();
    }
    return taken;
}

} // namespace ticsim::tics

#endif // TICSIM_TICS_ANNOTATIONS_HPP
