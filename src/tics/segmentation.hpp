/**
 * @file
 * The stack-segmentation protocol (paper Sections 3.1.1 and 4, Fig. 7).
 *
 * The modeled stack is divided into fixed-size segments chosen at
 * compile time; the segment the program currently manipulates is the
 * *working stack*, the only part a checkpoint must save. Function
 * entries and exits (reported by FrameGuard with the frame sizes the
 * paper's compiler pass computes) drive grow/shrink transitions:
 *
 *  - grow: the entered frame does not fit in the working segment, so
 *    the working stack advances to the next segment (arguments are
 *    copied across on real hardware; the cost model charges this).
 *  - shrink: the returning frame leaves the working segment; if the
 *    currently checkpointed segment is now outside the live stack,
 *    an implicit checkpoint of the new working segment is enforced so
 *    its modifications can still be rolled back after a failure.
 *
 * The whole state is trivially copyable: it lives in FRAM and is
 * snapshotted with each checkpoint.
 */

#ifndef TICSIM_TICS_SEGMENTATION_HPP
#define TICSIM_TICS_SEGMENTATION_HPP

#include <cstdint>

#include "board/model_stack.hpp"
#include "support/logging.hpp"

namespace ticsim::tics {

/** What a frame event asks the runtime to do. */
struct SegAction {
    bool grew = false;
    bool shrunk = false;
    /** Enforce an implicit checkpoint (shrink past the checkpointed
     *  segment). */
    bool forceCheckpoint = false;
};

/** Trivially-copyable segmentation state (checkpointed with registers). */
class Segmentation
{
  public:
    static constexpr std::uint32_t kMaxSegs = 64;
    static constexpr std::int32_t kNoSegment = -1;

    void
    configure(std::uint32_t segmentBytes, std::uint32_t segmentCount)
    {
        TICSIM_ASSERT(segmentBytes > 0);
        TICSIM_ASSERT(segmentCount >= 1 && segmentCount <= kMaxSegs);
        segmentBytes_ = segmentBytes;
        segmentCount_ = segmentCount;
        reset();
    }

    void
    reset()
    {
        model_.clear();
        for (auto &u : segUsed_)
            u = 0;
        workingSeg_ = 0;
        checkpointedSeg_ = kNoSegment;
    }

    /** @return the grow decision for a frame of @p bytes. */
    SegAction
    frameEnter(std::uint16_t bytes)
    {
        TICSIM_ASSERT(bytes <= segmentBytes_,
                      "frame (%u B) larger than a stack segment (%u B); "
                      "raise TicsConfig::segmentBytes",
                      bytes, segmentBytes_);
        SegAction a;
        if (segUsed_[workingSeg_] + bytes > segmentBytes_) {
            TICSIM_ASSERT(
                workingSeg_ + 1 < static_cast<std::int32_t>(segmentCount_),
                "modeled stack overflow: segment array exhausted");
            ++workingSeg_;
            segUsed_[workingSeg_] = bytes;
            a.grew = true;
        } else {
            segUsed_[workingSeg_] += bytes;
        }
        frameSeg_[model_.depth] = static_cast<std::uint8_t>(workingSeg_);
        model_.push(bytes);
        return a;
    }

    /** @return the shrink / enforced-checkpoint decision. */
    SegAction
    frameExit()
    {
        SegAction a;
        TICSIM_ASSERT(model_.depth > 0, "frame exit on empty stack");
        const std::uint16_t bytes = model_.top();
        const std::int32_t seg = frameSeg_[model_.depth - 1];
        model_.pop();
        segUsed_[seg] -= bytes;
        const std::int32_t newSeg =
            model_.depth > 0 ? frameSeg_[model_.depth - 1] : 0;
        if (newSeg != seg) {
            workingSeg_ = newSeg;
            a.shrunk = true;
            // Paper rule: if the current working stack was not saved
            // into the segment checkpoint yet — because the
            // checkpointed segment is now outside the live stack, or
            // because nothing was ever checkpointed — the new working
            // stack must be checkpointed so its modifications remain
            // undoable.
            if (checkpointedSeg_ == kNoSegment ||
                checkpointedSeg_ > newSeg) {
                a.forceCheckpoint = true;
            }
        }
        return a;
    }

    /** Record that the working segment was just committed. */
    void noteCheckpointed() { checkpointedSeg_ = workingSeg_; }

    std::int32_t workingSegment() const { return workingSeg_; }
    std::int32_t checkpointedSegment() const { return checkpointedSeg_; }
    std::uint32_t segmentBytes() const { return segmentBytes_; }
    std::uint32_t depth() const { return model_.depth; }
    std::uint32_t modeledStackBytes() const { return model_.totalBytes; }
    std::uint32_t
    usedInWorking() const
    {
        return segUsed_[workingSeg_];
    }

  private:
    board::ModelStack model_;
    std::uint16_t segUsed_[kMaxSegs] = {};
    std::uint8_t frameSeg_[board::ModelStack::kMaxDepth] = {};
    std::int32_t workingSeg_ = 0;
    std::int32_t checkpointedSeg_ = kNoSegment;
    std::uint32_t segmentBytes_ = 256;
    std::uint32_t segmentCount_ = 16;
};

} // namespace ticsim::tics

#endif // TICSIM_TICS_SEGMENTATION_HPP
