/**
 * @file
 * The TICS runtime (the paper's primary contribution).
 *
 * Combines:
 *  - bounded checkpoints: only the machine registers and the working
 *    stack segment are saved, double-buffered with two-phase commit,
 *    so checkpoint and restore time are fixed by the segment size;
 *  - stack segmentation: grow/shrink transitions at function entry and
 *    exit, with enforced implicit checkpoints when a shrink leaves the
 *    checkpointed segment outside the live stack;
 *  - memory consistency: writes outside the working stack (globals and
 *    pointer targets) are undo-logged; the log is cleared on commit
 *    and rolled back on reboot, so unaltered C programs with pointers
 *    and recursion execute consistently;
 *  - checkpoint policies: timer-driven, voltage-driven, every-trigger
 *    and manual, plus atomic windows during which automatic
 *    checkpoints are disabled (the time-annotation blocks need this);
 *  - time services for the annotation layer (see annotations.hpp).
 */

#ifndef TICSIM_TICS_RUNTIME_HPP
#define TICSIM_TICS_RUNTIME_HPP

#include <unordered_map>
#include <vector>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "tics/checkpoint_area.hpp"
#include "tics/config.hpp"
#include "tics/segmentation.hpp"
#include "tics/undo_log.hpp"

namespace ticsim::tics {

/** Why a checkpoint was taken (stat key). */
enum class CkptCause {
    Manual,
    Timer,
    Voltage,
    EveryTrigger,
    UndoFull,
    Shrink,
    TaskBoundary,
    AtomicEnd,
};

/** Thrown inside an @expires/catch block when its data expires. */
struct ExpiredException {};

class TicsRuntime : public board::Runtime, private mem::MemHooks
{
  public:
    explicit TicsRuntime(TicsConfig cfg = {});

    const char *name() const override { return "TICS"; }
    void attach(board::Board &board,
                std::function<void()> appMain) override;
    bool onPowerOn() override;
    mem::MemHooks *memHooks() override { return this; }

    void frameEnter(std::uint16_t modeledBytes) override;
    void frameExit() override;
    void triggerPoint() override;
    void checkpointNow() override;
    void storeBytes(void *dst, const void *src,
                    std::uint32_t bytes) override;

    // ---- services for the time-annotation layer ------------------------

    /** Device-estimated time (charges a persistent-timekeeper read). */
    TimeNs deviceNow();

    /** Disable automatic checkpoints (nestable). */
    void beginAtomic();

    /**
     * Re-enable automatic checkpoints; when @p checkpoint, place the
     * paper-mandated checkpoint at the end of the atomic block.
     */
    void endAtomic(bool checkpoint = true);

    /**
     * Arm the data-expiration timer for an @expires/catch block; also
     * opens an atomic window and starts the parallel undo log.
     */
    void beginExpires(TimeNs trueDeadline);

    /** Roll the parallel undo log back (expiry was caught). */
    void expiresRollback();

    /** Close the @expires block (checkpoint + re-enable). */
    void endExpires();

    /** Charge the timestamp-update cost of a timed (@=) assignment. */
    void chargeTimestampWrite();

    // ---- interrupt handling (paper Section 4) ---------------------------

    /**
     * Raise an interrupt: the handler runs at the next trigger point
     * with automatic checkpoints disabled, followed by the implicit
     * checkpoint the paper mandates after return-from-interrupt.
     *
     * The pending flag is consumed *before* the handler runs (a real
     * interrupt's pending bit is volatile), so a power failure during
     * the handler rolls its memory effects back and the system
     * "continues as if the interrupt did not occur" — it is not
     * re-delivered.
     */
    void raiseInterrupt(std::function<void()> isr);

    std::uint64_t interruptsServiced() const { return isrServiced_; }
    std::uint64_t interruptsLost() const { return isrLost_; }

    /**
     * Register a hook invoked (in the app context) right after every
     * successful checkpoint commit — the anchor point for virtualized
     * I/O (io.hpp), which must flush exactly once per committed epoch.
     */
    void setPostCommitHook(std::function<void()> hook);

    const TicsConfig &config() const { return cfg_; }
    board::Board &board() { return *board_; }

    /** Segmentation bookkeeping (exposed for tests and validators). */
    const Segmentation &segmentation() const { return seg_; }

    std::uint64_t
    checkpointCount(CkptCause cause) const
    {
        return ckptByCause_[static_cast<int>(cause)];
    }

    std::uint64_t checkpointsTotal() const { return ckptTotal_; }

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    // mem::MemHooks
    void preWrite(void *hostAddr, std::uint32_t bytes) override;

    /**
     * Take a checkpoint now (capture registers, copy the live stack
     * image, two-phase commit, clear the undo log).
     * @return false when execution re-entered here through a restore.
     */
    bool doCheckpoint(CkptCause cause);

    /** Policy decision at a trigger point. */
    bool policyWantsCheckpoint();

    void noteCheckpoint(CkptCause cause);

    TicsConfig cfg_;
    std::unique_ptr<CheckpointArea> area_;
    std::unique_ptr<UndoLog> undoLog_;
    std::unique_ptr<UndoLog> expiresLog_;
    Segmentation seg_;

    /** Locations already undo-logged since the last commit, with the
     *  widest extent logged (re-log on a wider write). */
    std::unordered_map<void *, std::uint32_t> epochLogged_;

    std::uint32_t atomicDepth_ = 0;
    bool deferredCheckpoint_ = false;
    /** Volatile pending-interrupt "register" (host state; a reboot
     *  clears it, like a real pending bit on power loss). */
    std::vector<std::function<void()>> pendingIsrs_;
    bool inIsr_ = false;
    std::uint64_t isrServiced_ = 0;
    std::uint64_t isrLost_ = 0;
    std::function<void()> postCommitHook_;
    /** Volatile reentrancy guard for the hook (reset on every boot —
     *  a brown-out inside the hook must not wedge it shut). */
    bool inPostCommitHook_ = false;
    bool expiresArmed_ = false;
    TimeNs expiresDeadlineTrue_ = 0;
    TimeNs lastCkptTrue_ = 0;

    std::uint64_t ckptByCause_[8] = {};
    std::uint64_t ckptTotal_ = 0;
};

} // namespace ticsim::tics

#endif // TICSIM_TICS_RUNTIME_HPP
