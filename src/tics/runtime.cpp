#include "runtime.hpp"

#include <algorithm>
#include <cstring>

#include "mem/store_gate.hpp"
#include "support/logging.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::tics {

TicsRuntime::TicsRuntime(TicsConfig cfg) : cfg_(cfg)
{
    stats_ = StatGroup("tics");
}

void
TicsRuntime::attach(board::Board &board, std::function<void()> appMain)
{
    Runtime::attach(board, std::move(appMain));
    auto &ram = board.nvram();
    area_ = std::make_unique<CheckpointArea>(
        ram, "tics.ckpt", board.config().stackHostBytes);
    undoLog_ = std::make_unique<UndoLog>(ram, "tics.undo",
                                         cfg_.undoLogBytes,
                                         cfg_.undoLogEntries);
    expiresLog_ = std::make_unique<UndoLog>(ram, "tics.expires",
                                            cfg_.undoLogBytes,
                                            cfg_.undoLogEntries);
    seg_.configure(cfg_.segmentBytes, cfg_.segmentCount);

    // Modeled footprint (Table 3): the double-buffered segment
    // checkpoint and runtime control block count toward .data; the
    // configurable segment array and undo log are reported separately
    // and excluded, matching the paper's accounting footnote.
    footprint_.add("tics runtime code", 4150, 0);
    footprint_.add("segment checkpoint (2x)", 0,
                   2 * (cfg_.segmentBytes + device::Mcu::regFileBytes +
                        static_cast<std::uint32_t>(
                            sizeof(std::uint32_t) * 4)));
    footprint_.add("runtime control block", 0, 96);
    footprint_.add("segment array (excluded)", 0,
                   cfg_.segmentBytes * cfg_.segmentCount,
                   /*excluded=*/true);
    footprint_.add("undo log (excluded)", 0,
                   cfg_.undoLogBytes + cfg_.undoLogEntries * 8,
                   /*excluded=*/true);
}

bool
TicsRuntime::onPowerOn()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    {
        telemetry::PhaseScope boot(b.profiler(), telemetry::Phase::Boot);
        if (!b.chargeSys(costs.bootInit))
            return false;
    }

    // Volatile runtime state is rebuilt from scratch on every boot.
    atomicDepth_ = 0;
    deferredCheckpoint_ = false;
    expiresArmed_ = false;
    expiresLog_->clear();
    isrLost_ += pendingIsrs_.size(); // pending bits die with the power
    pendingIsrs_.clear();
    inIsr_ = false;
    inPostCommitHook_ = false;

    // 1. Roll back writes made after the last commit. This must happen
    //    on *every* boot, including before the first checkpoint ever
    //    commits: pre-checkpoint writes would otherwise survive a
    //    failure and be re-applied by re-execution.
    Cycles rollbackCost = 0;
    for (std::uint32_t i = 0; i < undoLog_->entryCount(); ++i) {
        // Per-entry fixed cost; the byte cost is folded in below.
        rollbackCost += costs.rollbackBase;
    }
    rollbackCost += static_cast<Cycles>(
        costs.rollbackPerByte *
        static_cast<double>(undoLog_->bytesSince(0)));
    {
        telemetry::PhaseScope rb(b.profiler(),
                                 telemetry::Phase::Rollback);
        if (!b.chargeSys(rollbackCost))
            return false; // died mid-rollback; the log survives for retry
    }
    const auto applied = undoLog_->rollback();
    if (applied > 0) {
        stats_.distribution("rollbackCyclesPerEntry")
            .sample(static_cast<double>(rollbackCost) / applied);
        b.events().emit(telemetry::EventKind::Rollback, b.now(), applied);
    }
    stats_.counter("rollbackEntries") += applied;
    undoLog_->clear();
    epochLogged_.clear();

    CheckpointArea::Slot *slot = area_->valid();
    if (!slot) {
        // Fresh start: no restore point exists yet.
        seg_.reset();
        lastCkptTrue_ = b.now();
        b.ctx().prepare([this] { appMain_(); });
        return true;
    }

    // 2. Restore the working-stack segment (modeled cost) via the host
    //    live-stack image (exact mechanics).
    telemetry::PhaseScope restore(b.profiler(),
                                  telemetry::Phase::Restore);
    mem::traceSideEvent(mem::SideEventKind::BootRestore, "tics");
    const Cycles restoreCost = device::CostModel::linear(
        costs.restoreLogic, costs.restorePerByte, cfg_.segmentBytes);
    stats_.distribution("restoreCycles")
        .sample(static_cast<double>(restoreCost));
    if (!b.chargeSys(restoreCost))
        return false;
    restoreStackImage(*slot);
    seg_ = slot->seg;
    lastCkptTrue_ = b.now();
    ++stats_.counter("restores");
    b.events().emit(telemetry::EventKind::Restore, b.now());
    b.ctx().prepareResume(slot->regs);
    return true;
}

void
TicsRuntime::noteCheckpoint(CkptCause cause)
{
    ++ckptByCause_[static_cast<int>(cause)];
    ++ckptTotal_;
    ++stats_.counter("checkpoints");
}

bool
TicsRuntime::doCheckpoint(CkptCause cause)
{
    auto &b = *board_;
    const auto &costs = b.costs();
    telemetry::PhaseScope ps(b.profiler(), telemetry::Phase::Checkpoint);

    // Charge before mutating anything: if the supply dies here, the
    // context is abandoned and the previously committed slot remains
    // the restore point (two-phase commit semantics). The cost is
    // split around the capture so the fault injector can land a cut
    // between capture and commit; the total is unchanged, so cycle
    // counts and death times match the unsplit model exactly.
    const Cycles ckptCost = device::CostModel::linear(
        costs.ckptLogic, costs.ckptPerByte, cfg_.segmentBytes);
    stats_.distribution("ckptCycles").sample(
        static_cast<double>(ckptCost));
    mem::traceSideEvent(mem::SideEventKind::CkptCommitStart, "tics");
    b.charge(ckptCost - ckptCost / 2);

    CheckpointArea::Slot &slot = area_->writeSlot();
    if (!captureStackImage(b, slot, TicsConfig::kHostRedzone)) {
        // Re-entered through onPowerOn() after a reboot.
        return false;
    }
    TICSIM_ASSERT(slot.imgSize <= area_->imageCapacity(),
                  "stack image (%u B) exceeds checkpoint capacity",
                  slot.imgSize);
    seg_.noteCheckpointed();
    slot.seg = seg_;

    // Phase two: persist the commit header, then release the undo log.
    b.charge(ckptCost / 2);
    area_->commit();
    undoLog_->clear();
    epochLogged_.clear();
    lastCkptTrue_ = b.now();
    deferredCheckpoint_ = false;
    noteCheckpoint(cause);
    b.events().emit(telemetry::EventKind::CheckpointCommit, b.now(),
                    static_cast<std::uint64_t>(cause));
    b.markProgress();
    if (postCommitHook_ && !inPostCommitHook_) {
        inPostCommitHook_ = true;
        postCommitHook_();
        inPostCommitHook_ = false;
    }
    return true;
}

void
TicsRuntime::frameEnter(std::uint16_t modeledBytes)
{
    auto &b = *board_;
    const auto &costs = b.costs();
    b.charge(costs.frameCheck);
    const SegAction a = seg_.frameEnter(modeledBytes);
    if (a.grew) {
        ++stats_.counter("stackGrows");
        b.charge(costs.stackGrow);
    }
}

void
TicsRuntime::frameExit()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    const SegAction a = seg_.frameExit();
    if (a.shrunk) {
        ++stats_.counter("stackShrinks");
        b.charge(costs.stackShrink);
    }
    if (a.forceCheckpoint) {
        if (atomicDepth_ > 0) {
            deferredCheckpoint_ = true;
        } else {
            doCheckpoint(CkptCause::Shrink);
        }
    }
}

bool
TicsRuntime::policyWantsCheckpoint()
{
    switch (cfg_.policy) {
      case PolicyKind::None:
        return false;
      case PolicyKind::Timer:
        return board_->now() - lastCkptTrue_ >= cfg_.timerPeriod;
      case PolicyKind::Voltage: {
        const Volts v = board_->supply().voltageNow();
        return v >= 0.0 && v < cfg_.voltageThreshold;
      }
      case PolicyKind::EveryTrigger:
        return true;
    }
    return false;
}

void
TicsRuntime::triggerPoint()
{
    auto &b = *board_;
    b.charge(2); // trigger-site check

    if (expiresArmed_ && b.now() >= expiresDeadlineTrue_) {
        // The data-expiration timer fired inside an @expires/catch
        // block: deliver control to the catch handler.
        expiresArmed_ = false;
        throw ExpiredException{};
    }
    if (atomicDepth_ > 0)
        return;

    // Deliver pending interrupts: consume the pending bit first, run
    // the handler with automatic checkpoints disabled, then place the
    // implicit return-from-interrupt checkpoint (paper Section 4).
    while (!pendingIsrs_.empty() && !inIsr_) {
        auto isr = std::move(pendingIsrs_.front());
        pendingIsrs_.erase(pendingIsrs_.begin());
        inIsr_ = true;
        beginAtomic();
        b.charge(26); // interrupt entry/exit latency
        isr();
        endAtomic(/*checkpoint=*/true);
        inIsr_ = false;
        ++isrServiced_;
        ++stats_.counter("interrupts");
    }
    if (deferredCheckpoint_ || policyWantsCheckpoint()) {
        doCheckpoint(deferredCheckpoint_ ? CkptCause::Shrink
                     : cfg_.policy == PolicyKind::Timer
                         ? CkptCause::Timer
                     : cfg_.policy == PolicyKind::Voltage
                         ? CkptCause::Voltage
                         : CkptCause::EveryTrigger);
    }
}

void
TicsRuntime::checkpointNow()
{
    doCheckpoint(CkptCause::Manual);
}

void
TicsRuntime::preWrite(void *hostAddr, std::uint32_t bytes)
{
    auto &b = *board_;
    if (!b.ctx().inside())
        return; // runtime/bench writes outside the device
    const auto &costs = b.costs();

    // Classify the target: working-stack writes need no versioning
    // (the segment checkpoint covers them). The whole write barrier —
    // classification, dedup lookup and the log append — is undo-log
    // machinery for attribution purposes.
    telemetry::PhaseScope ps(b.profiler(), telemetry::Phase::UndoLog);
    b.charge(costs.ptrCheck);
    if (b.ctx().onStack(hostAddr))
        return;

    if (expiresArmed_ || atomicDepth_ > 0) {
        // Parallel undo log for @expires/catch rollback.
        if (!expiresLog_->wouldOverflow(bytes))
            expiresLog_->append(hostAddr, bytes);
    }

    const auto logged = epochLogged_.find(hostAddr);
    if (logged != epochLogged_.end() && logged->second >= bytes) {
        ++stats_.counter("undoDedupHits");
        return; // already versioned since the last commit
    }

    if (undoLog_->wouldOverflow(bytes)) {
        // Forced checkpoint to drain the log and guarantee progress.
        if (atomicDepth_ > 0) {
            ++stats_.counter("atomicityBreaks");
            warn("tics: undo log overflow inside an atomic block; "
                 "forcing a checkpoint (atomicity weakened)");
        }
        doCheckpoint(CkptCause::UndoFull);
    }

    b.charge(device::CostModel::linear(costs.undoLogBase,
                                       costs.undoLogPerByte, bytes));
    undoLog_->append(hostAddr, bytes);
    epochLogged_[hostAddr] = bytes;
    ++stats_.counter("undoAppends");
    stats_.counter("undoBytes") += bytes;
}

void
TicsRuntime::storeBytes(void *dst, const void *src, std::uint32_t bytes)
{
    preWrite(dst, bytes);
    mem::traceWrite(dst, bytes);
    mem::gatedStore(mem::StoreSite::AppGlobal, dst, src, bytes);
}

TimeNs
TicsRuntime::deviceNow()
{
    return board_->deviceNow();
}

void
TicsRuntime::beginAtomic()
{
    ++atomicDepth_;
}

void
TicsRuntime::endAtomic(bool checkpoint)
{
    TICSIM_ASSERT(atomicDepth_ > 0, "unbalanced endAtomic");
    --atomicDepth_;
    if (atomicDepth_ == 0 && checkpoint)
        doCheckpoint(CkptCause::AtomicEnd);
}

void
TicsRuntime::beginExpires(TimeNs trueDeadline)
{
    beginAtomic();
    expiresLog_->clear();
    expiresArmed_ = true;
    expiresDeadlineTrue_ = trueDeadline;
}

void
TicsRuntime::expiresRollback()
{
    const auto &costs = board_->costs();
    telemetry::PhaseScope ps(board_->profiler(),
                             telemetry::Phase::Rollback);
    Cycles cost = 0;
    for (std::uint32_t i = 0; i < expiresLog_->entryCount(); ++i)
        cost += costs.rollbackBase;
    cost += static_cast<Cycles>(
        costs.rollbackPerByte *
        static_cast<double>(expiresLog_->bytesSince(0)));
    board_->charge(cost);
    stats_.counter("expiresRollbacks") += expiresLog_->rollback();
    expiresLog_->clear();
}

void
TicsRuntime::endExpires()
{
    expiresArmed_ = false;
    expiresLog_->clear();
    endAtomic(/*checkpoint=*/true);
}

void
TicsRuntime::chargeTimestampWrite()
{
    telemetry::PhaseScope ps(board_->profiler(),
                             telemetry::Phase::Timekeeper);
    board_->charge(board_->costs().timestampWrite);
}

void
TicsRuntime::raiseInterrupt(std::function<void()> isr)
{
    pendingIsrs_.push_back(std::move(isr));
}

void
TicsRuntime::setPostCommitHook(std::function<void()> hook)
{
    postCommitHook_ = std::move(hook);
}

void
TicsRuntime::saveState(StateWriter &w) const
{
    // Pending ISR closures cannot be serialized; explorer decision
    // points never carry one in the modeled workloads, and a reboot
    // would drop them anyway.
    TICSIM_ASSERT(pendingIsrs_.empty(),
                  "tics: snapshot with pending interrupts unsupported");
    w.put(seg_);
    w.put(atomicDepth_);
    w.put(deferredCheckpoint_);
    w.put(inIsr_);
    w.put(isrServiced_);
    w.put(isrLost_);
    w.put(inPostCommitHook_);
    w.put(expiresArmed_);
    w.put(expiresDeadlineTrue_);
    w.put(lastCkptTrue_);
    w.putBytes(ckptByCause_, sizeof(ckptByCause_));
    w.put(ckptTotal_);
    w.put(undoLog_->cursor());
    w.put(expiresLog_->cursor());
    w.put(static_cast<std::uint64_t>(epochLogged_.size()));
    for (const auto &[p, bytes] : epochLogged_) {
        w.put(reinterpret_cast<std::uintptr_t>(p));
        w.put(bytes);
    }
    area_->saveHostState(w);
}

void
TicsRuntime::loadState(StateReader &r)
{
    pendingIsrs_.clear();
    seg_ = r.get<Segmentation>();
    atomicDepth_ = r.get<std::uint32_t>();
    deferredCheckpoint_ = r.get<bool>();
    inIsr_ = r.get<bool>();
    isrServiced_ = r.get<std::uint64_t>();
    isrLost_ = r.get<std::uint64_t>();
    inPostCommitHook_ = r.get<bool>();
    expiresArmed_ = r.get<bool>();
    expiresDeadlineTrue_ = r.get<TimeNs>();
    lastCkptTrue_ = r.get<TimeNs>();
    r.getBytes(ckptByCause_, sizeof(ckptByCause_));
    ckptTotal_ = r.get<std::uint64_t>();
    undoLog_->setCursor(r.get<UndoLog::Cursor>());
    expiresLog_->setCursor(r.get<UndoLog::Cursor>());
    epochLogged_.clear();
    const auto n = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
        auto *p = reinterpret_cast<void *>(r.get<std::uintptr_t>());
        epochLogged_[p] = r.get<std::uint32_t>();
    }
    area_->loadHostState(r);
}

} // namespace ticsim::tics
