#include "checker.hpp"

#include <memory>
#include <utility>

#include "analysis/access_trace.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "tics/runtime.hpp"

namespace ticsim::analysis {

namespace {

tics::TicsConfig
ticsMatrixConfig()
{
    tics::TicsConfig c;
    c.segmentBytes = 256;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

/** Everything one traced-or-reference run produces. */
struct RunOutcome {
    board::RunResult res;
    std::string rtName;
    bool verified = false;
    ArenaSnapshot snap;
    WarReport war;
    std::uint64_t intervals = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
};

/**
 * One fresh board + runtime + app, run to completion or budget. The
 * factories rebuild identical objects for the reference and subject
 * runs, so the two arenas have the same region layout and the replay
 * diff is byte-to-byte meaningful.
 */
template <typename MakeRt, typename MakeApp>
RunOutcome
runOnce(const CheckConfig &cfg, const std::string &appName,
        bool continuous, TimeNs budget, const MakeRt &makeRt,
        const MakeApp &makeApp)
{
    harness::SupplySpec spec =
        continuous ? harness::continuousSpec()
                   : harness::patternSpec(cfg.patternPeriod,
                                          cfg.patternOnFraction);
    auto board = harness::makeBoard(spec, cfg.seed);
    auto rt = makeRt();
    auto app = makeApp(*board, *rt);

    std::function<void()> entry;
    if constexpr (requires { app->main(); })
        entry = [&app] { app->main(); };

    RunOutcome out;
    out.rtName = rt->name();
    if (continuous) {
        out.res = board->run(*rt, std::move(entry), budget);
    } else {
        AccessTracer tracer(*board);
        out.res = board->run(*rt, std::move(entry), budget);
        tracer.finalize();
        out.war = WarHazardDetector(board->nvram())
                      .analyze(tracer.intervals());
        out.intervals = tracer.intervals().size();
        out.readBytes = tracer.readBytes();
        out.writeBytes = tracer.writeBytes();
    }
    harness::recordRun(appName +
                           (continuous ? "/reference" : "/pattern"),
                       *rt, *board, out.res);
    out.verified = app->verify();
    out.snap = ReplayOracle::capture(board->nvram(),
                                     ReplayOracle::appStateFilter());
    return out;
}

template <typename MakeRt, typename MakeApp>
ScenarioFinding
checkPair(const CheckConfig &cfg, const std::string &app,
          bool isProtected, const MakeRt &makeRt, const MakeApp &makeApp)
{
    const TimeNs subjectBudget =
        isProtected ? cfg.budget : cfg.unprotectedBudget;
    RunOutcome ref = runOnce(cfg, app, /*continuous=*/true, cfg.budget,
                             makeRt, makeApp);
    RunOutcome sub = runOnce(cfg, app, /*continuous=*/false,
                             subjectBudget, makeRt, makeApp);

    ScenarioFinding f;
    f.app = app;
    f.runtime = sub.rtName;
    f.isProtected = isProtected;
    f.refCompleted = ref.res.completed;
    f.subject = sub.res;
    f.verified = sub.verified;
    f.intervals = sub.intervals;
    f.nvReadBytes = sub.readBytes;
    f.nvWriteBytes = sub.writeBytes;
    f.war = std::move(sub.war);
    f.replay = ReplayOracle::diff(ref.snap, sub.snap);
    return f;
}

} // namespace

bool
scenarioOk(const ScenarioFinding &f)
{
    if (!f.refCompleted)
        return false;
    if (f.isProtected) {
        return f.subject.completed && f.verified &&
               f.war.materialized() == 0 && f.replay.clean();
    }
    // The unprotected baseline only demonstrates anything if the reset
    // pattern actually interrupted it mid-interval.
    return f.subject.reboots > 0 && f.war.materialized() > 0 &&
           f.replay.divergentBytes > 0;
}

std::vector<ScenarioFinding>
checkMatrix(const CheckConfig &cfg)
{
    std::vector<ScenarioFinding> out;

    const auto bcLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::BcLegacyApp>(b, rt, cfg.bc);
    };
    const auto cuckooLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::CuckooLegacyApp>(b, rt,
                                                       cfg.cuckoo);
    };

    const auto makeTics = [] {
        return std::make_unique<tics::TicsRuntime>(ticsMatrixConfig());
    };
    const auto makeMementos = [] {
        return std::make_unique<runtimes::MementosRuntime>();
    };
    const auto makePlain = [] {
        return std::make_unique<runtimes::PlainCRuntime>();
    };
    const auto makeChinchilla = [] {
        return std::make_unique<runtimes::ChinchillaRuntime>();
    };
    const auto makeTask = [] {
        return std::make_unique<taskrt::TaskRuntime>();
    };

    out.push_back(checkPair(cfg, "BC", true, makeTics, bcLegacy));
    out.push_back(checkPair(cfg, "BC", true, makeMementos, bcLegacy));
    out.push_back(checkPair(
        cfg, "BC", true, makeChinchilla, [&cfg](board::Board &b, auto &rt) {
            return std::make_unique<apps::BcChinchillaApp>(b, rt, cfg.bc);
        }));
    out.push_back(checkPair(
        cfg, "BC", true, makeTask, [&cfg](board::Board &b, auto &rt) {
            return std::make_unique<apps::BcTaskApp>(b, rt, cfg.bc);
        }));
    out.push_back(checkPair(cfg, "BC", false, makePlain, bcLegacy));

    out.push_back(checkPair(cfg, "Cuckoo", true, makeTics, cuckooLegacy));
    out.push_back(
        checkPair(cfg, "Cuckoo", true, makeMementos, cuckooLegacy));
    out.push_back(checkPair(cfg, "Cuckoo", true, makeChinchilla,
                            [&cfg](board::Board &b, auto &rt) {
                                return std::make_unique<
                                    apps::CuckooChinchillaApp>(
                                    b, rt, cfg.cuckoo);
                            }));
    out.push_back(checkPair(cfg, "Cuckoo", true, makeTask,
                            [&cfg](board::Board &b, auto &rt) {
                                return std::make_unique<
                                    apps::CuckooTaskApp>(b, rt,
                                                         cfg.cuckoo);
                            }));
    out.push_back(checkPair(cfg, "Cuckoo", false, makePlain,
                            cuckooLegacy));
    return out;
}

Table
findingsTable(const std::vector<ScenarioFinding> &findings)
{
    Table t("ticscheck: WAR hazards and replay divergence per scenario");
    t.header({"App", "Runtime", "Done", "Reboots", "Intervals",
              "NV rd B", "NV wr B", "WAR mat", "WAR lat", "Div B",
              "Verdict"});
    for (const auto &f : findings) {
        t.row()
            .cell(f.app)
            .cell(f.runtime)
            .cell(f.subject.completed ? "yes" : "no")
            .cell(f.subject.reboots)
            .cell(f.intervals)
            .cell(f.nvReadBytes)
            .cell(f.nvWriteBytes)
            .cell(static_cast<std::uint64_t>(f.war.materialized()))
            .cell(static_cast<std::uint64_t>(f.war.latent()))
            .cell(f.replay.divergentBytes)
            .cell(scenarioOk(f)
                      ? (f.isProtected ? "consistent" : "unsafe (expected)")
                      : "FAIL");
    }
    return t;
}

Table
hazardTable(const std::vector<ScenarioFinding> &findings)
{
    Table t("ticscheck: per-hazard detail");
    t.header({"App", "Runtime", "Region", "Offset", "Bytes", "Boot",
              "Interval", "Materialized"});
    for (const auto &f : findings) {
        for (const auto &h : f.war.hazards) {
            t.row()
                .cell(f.app)
                .cell(f.runtime)
                .cell(h.region)
                .cell(static_cast<std::uint64_t>(h.offset))
                .cell(static_cast<std::uint64_t>(h.bytes))
                .cell(h.boot)
                .cell(static_cast<std::uint64_t>(h.interval))
                .cell(h.materialized ? "yes" : "no");
        }
    }
    return t;
}

} // namespace ticsim::analysis
