/**
 * @file
 * Per-checkpoint-interval access tracing over the NvRam arena.
 *
 * The AccessTracer is an mem::AccessSink that a checker installs for
 * the duration of one Board::run. It slices the instrumented NV
 * traffic into *consistency intervals* — the spans between the commit
 * points every runtime already reports through Board::markProgress()
 * (checkpoint commits, task transitions, restart-from-main) — and
 * records, per interval, the ordered sequence of reads, writes and
 * versioning events together with how the interval ended: committed,
 * interrupted by a power failure, or still open when the run finished.
 *
 * Interval end states matter downstream: a WAR hazard in an interval
 * that actually ended in a power failure *materialized* (the stale
 * value was re-read by the re-execution), while the same hazard in a
 * committed interval stayed *latent* (this run got lucky).
 */

#ifndef TICSIM_ANALYSIS_ACCESS_TRACE_HPP
#define TICSIM_ANALYSIS_ACCESS_TRACE_HPP

#include <cstdint>
#include <vector>

#include "board/board.hpp"
#include "mem/trace.hpp"
#include "support/units.hpp"

namespace ticsim::analysis {

/** One instrumented event inside an interval. */
enum class AccessKind : std::uint8_t {
    Read,      ///< NV bytes were read by application code
    Write,     ///< NV bytes were overwritten
    Versioned, ///< original contents became recoverable (log/ckpt/shadow)
};

struct AccessEvent {
    AccessKind kind;
    Addr addr;      ///< modeled arena address
    std::uint32_t bytes;
};

/** How a consistency interval ended. */
enum class IntervalEnd : std::uint8_t {
    Committed,   ///< a commit point sealed the interval's writes
    PowerFailed, ///< a brown-out abandoned it — hazards materialize
    RunEnd,      ///< the experiment finished with the interval open
};

/** The ordered event record of one consistency interval. */
struct IntervalTrace {
    std::uint64_t boot = 0; ///< boot (power cycle) index, 1-based
    IntervalEnd end = IntervalEnd::RunEnd;
    std::vector<AccessEvent> events;
};

/**
 * Records intervals for one traced Board::run. Installs itself as the
 * process-wide access sink on construction and restores the previous
 * sink on destruction; call finalize() after Board::run returns to
 * close the trailing interval.
 *
 * Filtering: reads and writes are only recorded while application code
 * is executing inside the board's context and only when they land in
 * the NvRam arena but outside the simulated stack buffer (stack bytes
 * are protected by the checkpointed stack image, not by data
 * versioning). Versioning events are recorded from either side of the
 * context boundary — restore paths legitimately establish coverage
 * from the scheduler.
 */
class AccessTracer final : public mem::AccessSink
{
  public:
    explicit AccessTracer(board::Board &board);
    ~AccessTracer() override;

    AccessTracer(const AccessTracer &) = delete;
    AccessTracer &operator=(const AccessTracer &) = delete;

    // ---- mem::AccessSink --------------------------------------------------
    void memRead(const void *p, std::uint32_t bytes) override;
    void memWrite(const void *p, std::uint32_t bytes) override;
    void memVersioned(const void *p, std::uint32_t bytes) override;
    void powerOn() override;
    void commit() override;

    /** Close the open interval (RunEnd) after Board::run returns. */
    void finalize();

    const std::vector<IntervalTrace> &intervals() const
    {
        return intervals_;
    }

    std::uint64_t boots() const { return boots_; }
    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }
    std::uint64_t versionedBytes() const { return versionedBytes_; }

  private:
    /** Record an app-side data event if it targets traced NV state. */
    void recordData(AccessKind kind, const void *p, std::uint32_t bytes);

    void closeInterval(IntervalEnd end);

    board::Board &board_;
    mem::AccessSink *prev_;
    std::vector<IntervalTrace> intervals_;
    IntervalTrace open_;
    std::uint64_t boots_ = 0;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
    std::uint64_t versionedBytes_ = 0;
    bool finalized_ = false;
};

} // namespace ticsim::analysis

#endif // TICSIM_ANALYSIS_ACCESS_TRACE_HPP
