/**
 * @file
 * Differential replay oracle: run the same application twice — once
 * failure-free on a continuous supply, once under a reset pattern —
 * and byte-diff the final contents of the application's non-volatile
 * regions. Any divergence means intermittency changed the program's
 * observable result, and the diff localizes it to region+offset so it
 * can be matched against the WAR hazards the detector reported for the
 * same run.
 *
 * Runtime-internal regions (checkpoint buffers, undo-log pools,
 * channel shadows and commit timestamps, the simulated stack buffer)
 * legitimately differ between a failure-free and an intermittent run,
 * so the default filter compares application state only.
 */

#ifndef TICSIM_ANALYSIS_REPLAY_ORACLE_HPP
#define TICSIM_ANALYSIS_REPLAY_ORACLE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/nvram.hpp"

namespace ticsim::analysis {

/** Final contents of one captured region. */
struct RegionImage {
    std::string name;
    std::uint32_t size = 0;
    std::vector<std::uint8_t> bytes;
};

/** Point-in-time copy of the (filtered) arena regions. */
struct ArenaSnapshot {
    std::vector<RegionImage> regions;
};

/** One contiguous byte range that differs between two snapshots. */
struct Divergence {
    std::string region;
    std::uint32_t offset = 0;
    std::uint32_t bytes = 0;
};

/** Result of diffing a subject snapshot against a reference. */
struct ReplayReport {
    std::vector<Divergence> divergences;
    std::uint64_t divergentBytes = 0;
    /** Regions present in one snapshot but not the other (layout
     *  mismatch — the two runs were not set up identically). */
    std::uint32_t regionMismatches = 0;

    bool clean() const
    {
        return divergences.empty() && regionMismatches == 0;
    }
};

class ReplayOracle
{
  public:
    using RegionFilter = std::function<bool(const mem::NvRegion &)>;

    /**
     * Filter selecting application state: everything except the stack
     * buffer, runtime-internal regions ("tics.", "chinchilla.",
     * "mementos." prefixes) and channel shadows / commit timestamps
     * ("chan.*.s", "chan.*.ts"). Channel committed copies ("chan.*.v")
     * are application state and are kept.
     */
    static RegionFilter appStateFilter();

    /** Copy the selected regions' current contents out of @p ram. */
    static ArenaSnapshot capture(const mem::NvRam &ram,
                                 const RegionFilter &filter);

    /** Byte-diff @p subject against @p reference (region by name). */
    static ReplayReport diff(const ArenaSnapshot &reference,
                             const ArenaSnapshot &subject);
};

} // namespace ticsim::analysis

#endif // TICSIM_ANALYSIS_REPLAY_ORACLE_HPP
