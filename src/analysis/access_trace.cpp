#include "access_trace.hpp"

namespace ticsim::analysis {

AccessTracer::AccessTracer(board::Board &board)
    : board_(board), prev_(mem::setAccessSink(this))
{
}

AccessTracer::~AccessTracer()
{
    mem::setAccessSink(prev_);
}

void
AccessTracer::recordData(AccessKind kind, const void *p,
                         std::uint32_t bytes)
{
    if (!board_.ctx().inside())
        return; // host-side peek (test verification, table printing)
    if (!board_.nvram().contains(p) || board_.ctx().onStack(p))
        return;
    open_.events.push_back(
        {kind, board_.nvram().addrOf(p), bytes});
}

void
AccessTracer::memRead(const void *p, std::uint32_t bytes)
{
    recordData(AccessKind::Read, p, bytes);
    readBytes_ += bytes;
}

void
AccessTracer::memWrite(const void *p, std::uint32_t bytes)
{
    recordData(AccessKind::Write, p, bytes);
    writeBytes_ += bytes;
}

void
AccessTracer::memVersioned(const void *p, std::uint32_t bytes)
{
    // Coverage may be established from the scheduler side (a restore
    // re-arming a surviving snapshot), so no inside() filter here.
    if (!board_.nvram().contains(p) || board_.ctx().onStack(p))
        return;
    open_.events.push_back(
        {AccessKind::Versioned, board_.nvram().addrOf(p), bytes});
    versionedBytes_ += bytes;
}

void
AccessTracer::powerOn()
{
    // The interval being closed keeps the boot index it was opened
    // with; the one opened by closeInterval belongs to the new boot.
    ++boots_;
    closeInterval(IntervalEnd::PowerFailed);
}

void
AccessTracer::commit()
{
    closeInterval(IntervalEnd::Committed);
}

void
AccessTracer::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    closeInterval(IntervalEnd::RunEnd);
}

void
AccessTracer::closeInterval(IntervalEnd end)
{
    if (!open_.events.empty()) {
        open_.end = end;
        intervals_.push_back(std::move(open_));
    }
    open_ = IntervalTrace{};
    open_.boot = boots_;
}

} // namespace ticsim::analysis
