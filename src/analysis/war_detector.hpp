/**
 * @file
 * Mechanical check of the Surbatovich memory-consistency condition
 * (Towards a Formal Foundation of Intermittent Computing, OOPSLA'20):
 * within one consistency interval, every non-volatile byte that is
 * read and later written must have its original value versioned before
 * the write. If it does not, a power failure inside the interval
 * re-executes from the interval's start and re-reads the *new* value —
 * the write-after-read inconsistency of the paper's Fig. 3a.
 *
 * The detector consumes the interval traces the AccessTracer recorded
 * and evaluates the condition per byte, per interval, accepting any of
 * the runtimes' versioning mechanisms as coverage: TICS/Chinchilla
 * undo-log appends, MementOS whole-region snapshots, Alpaca-style
 * privatized channel shadows. A hazard is *materialized* when its
 * interval actually ended in a power failure, *latent* otherwise.
 */

#ifndef TICSIM_ANALYSIS_WAR_DETECTOR_HPP
#define TICSIM_ANALYSIS_WAR_DETECTOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_trace.hpp"
#include "mem/nvram.hpp"

namespace ticsim::analysis {

/** One uncovered read-then-write range, attributed to a region. */
struct WarHazard {
    Addr addr = 0;        ///< first hazardous byte (arena address)
    std::uint32_t bytes = 0;   ///< contiguous hazardous range length
    std::string region;        ///< named region, or "?" if unallocated
    std::uint32_t offset = 0;  ///< offset of addr within the region
    std::uint64_t boot = 0;    ///< boot index of the interval
    std::size_t interval = 0;  ///< index into the analyzed trace vector
    bool materialized = false; ///< interval ended in a power failure
};

/** Result of analyzing one run's interval traces. */
struct WarReport {
    std::vector<WarHazard> hazards;
    std::size_t intervalsAnalyzed = 0;

    bool clean() const { return hazards.empty(); }

    std::size_t
    materialized() const
    {
        std::size_t n = 0;
        for (const auto &h : hazards) {
            if (h.materialized)
                ++n;
        }
        return n;
    }

    std::size_t latent() const { return hazards.size() - materialized(); }
};

/**
 * Per-byte WAR analysis over recorded intervals. Stateless between
 * intervals by construction: commit points seal an interval's writes,
 * so each interval is checked independently (the log-cleared-on-commit
 * boundary falls out of this naturally).
 */
class WarHazardDetector
{
  public:
    /** @param ram Arena the traces were recorded against (attribution). */
    explicit WarHazardDetector(const mem::NvRam &ram) : ram_(ram) {}

    WarReport analyze(const std::vector<IntervalTrace> &intervals) const;

  private:
    const mem::NvRam &ram_;
};

} // namespace ticsim::analysis

#endif // TICSIM_ANALYSIS_WAR_DETECTOR_HPP
