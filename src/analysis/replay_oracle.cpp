#include "replay_oracle.hpp"

#include <unordered_map>

#include "perf/host_profiler.hpp"

namespace ticsim::analysis {

namespace {

bool
hasPrefix(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
hasSuffix(const std::string &s, const char *suffix)
{
    const std::size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

ReplayOracle::RegionFilter
ReplayOracle::appStateFilter()
{
    return [](const mem::NvRegion &r) {
        if (r.name == "app-stack")
            return false;
        if (hasPrefix(r.name, "tics.") ||
            hasPrefix(r.name, "chinchilla.") ||
            hasPrefix(r.name, "mementos."))
            return false;
        if (hasPrefix(r.name, "chan.") &&
            (hasSuffix(r.name, ".s") || hasSuffix(r.name, ".ts")))
            return false;
        return true;
    };
}

ArenaSnapshot
ReplayOracle::capture(const mem::NvRam &ram, const RegionFilter &filter)
{
    perf::HostScope scope(perf::HostZone::Analysis);
    ArenaSnapshot snap;
    for (const mem::NvRegion &r : ram.regions()) {
        if (!filter(r))
            continue;
        RegionImage img;
        img.name = r.name;
        img.size = r.size;
        const std::uint8_t *p = ram.hostPtr(r.base);
        img.bytes.assign(p, p + r.size);
        snap.regions.push_back(std::move(img));
    }
    return snap;
}

ReplayReport
ReplayOracle::diff(const ArenaSnapshot &reference,
                   const ArenaSnapshot &subject)
{
    perf::HostScope scope(perf::HostZone::Analysis);
    ReplayReport report;
    std::unordered_map<std::string, const RegionImage *> refByName;
    for (const RegionImage &r : reference.regions)
        refByName.emplace(r.name, &r);

    for (const RegionImage &s : subject.regions) {
        const auto it = refByName.find(s.name);
        if (it == refByName.end() || it->second->size != s.size) {
            ++report.regionMismatches;
            continue;
        }
        const RegionImage &ref = *it->second;
        refByName.erase(it);
        std::uint32_t i = 0;
        while (i < s.size) {
            if (s.bytes[i] == ref.bytes[i]) {
                ++i;
                continue;
            }
            std::uint32_t j = i + 1;
            while (j < s.size && s.bytes[j] != ref.bytes[j])
                ++j;
            report.divergences.push_back({s.name, i, j - i});
            report.divergentBytes += j - i;
            i = j;
        }
    }
    report.regionMismatches +=
        static_cast<std::uint32_t>(refByName.size());
    return report;
}

} // namespace ticsim::analysis
