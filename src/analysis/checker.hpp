/**
 * @file
 * The ticscheck scenario driver: runs the paper's BC and Cuckoo
 * benchmarks under every runtime that can express them (TICS,
 * MementOS-like, Chinchilla-like, Alpaca-like tasks, and the
 * unprotected plain-C baseline), with a failure-free reference run and
 * an intermittent subject run per scenario, and reduces each pair to
 * one ScenarioFinding: WAR hazards found by the detector plus final-
 * state divergence found by the replay oracle.
 *
 * The AR benchmark is deliberately absent: its sensor samples depend
 * on virtual time, so a failure-free and an intermittent run read
 * different accelerometer sequences and their final states diverge for
 * reasons that have nothing to do with memory consistency.
 *
 * Expected split (the paper's Fig. 3a argument, machine-checked): the
 * protected runtimes produce zero materialized hazards and zero
 * divergence; plain C under a reset pattern that interrupts it
 * mid-interval produces both.
 */

#ifndef TICSIM_ANALYSIS_CHECKER_HPP
#define TICSIM_ANALYSIS_CHECKER_HPP

#include <string>
#include <vector>

#include "analysis/replay_oracle.hpp"
#include "analysis/war_detector.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/common/cuckoo_core.hpp"
#include "board/board.hpp"
#include "support/table.hpp"

namespace ticsim::analysis {

struct CheckConfig {
    /** Reset pattern for the subject runs (matches the tier-1 matrix). */
    TimeNs patternPeriod = 30 * kNsPerMs;
    double patternOnFraction = 0.6;
    /** Virtual-time budget for protected runs (they complete). */
    TimeNs budget = 600 * kNsPerSec;
    /**
     * Budget for the unprotected subject runs: plain C restarts from
     * scratch every reboot and never finishes once the work exceeds
     * one on-window, so its runs are time-boxed instead.
     */
    TimeNs unprotectedBudget = 3 * kNsPerSec;
    std::uint64_t seed = 11;
    apps::BcParams bc{};
    apps::CuckooParams cuckoo{};

    CheckConfig()
    {
        // The stock Cuckoo workload fits inside one on-window of the
        // default reset pattern, so plain C would finish before the
        // pattern could interrupt it and the unprotected half of the
        // split would show nothing. Scale the modeled per-op work so
        // one full pass always spans several power cycles.
        cuckoo.workScale = 16.0;
    }
};

/** The outcome of one (app, runtime) reference/subject pair. */
struct ScenarioFinding {
    std::string app;
    std::string runtime;
    /** Whether this runtime claims consistency protection (everything
     *  except plain C). Determines which verdict applies. */
    bool isProtected = true;
    bool refCompleted = false;
    board::RunResult subject;
    bool verified = false; ///< subject app's own output verification
    std::uint64_t intervals = 0;
    std::uint64_t nvReadBytes = 0;
    std::uint64_t nvWriteBytes = 0;
    WarReport war;
    ReplayReport replay;
};

/**
 * Verdict for one finding: protected runtimes must complete, verify,
 * materialize no hazard and show no divergence; the unprotected
 * baseline must demonstrably reboot mid-interval, materialize at
 * least one hazard and diverge.
 */
bool scenarioOk(const ScenarioFinding &f);

/** Run the full app x runtime matrix. */
std::vector<ScenarioFinding> checkMatrix(const CheckConfig &cfg = {});

/** Render findings in the repo's standard table format. */
Table findingsTable(const std::vector<ScenarioFinding> &findings);

/** Per-hazard detail rows (ticscheck --verbose). */
Table hazardTable(const std::vector<ScenarioFinding> &findings);

} // namespace ticsim::analysis

#endif // TICSIM_ANALYSIS_CHECKER_HPP
