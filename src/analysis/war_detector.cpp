#include "war_detector.hpp"

#include <algorithm>
#include <unordered_map>

namespace ticsim::analysis {

namespace {

/** Per-byte state flags within one interval. */
constexpr std::uint8_t kRead = 1u;      ///< read before any write
constexpr std::uint8_t kWritten = 2u;   ///< overwritten at least once
constexpr std::uint8_t kVersioned = 4u; ///< original value recoverable
constexpr std::uint8_t kHazard = 8u;    ///< already reported this byte

} // namespace

WarReport
WarHazardDetector::analyze(
    const std::vector<IntervalTrace> &intervals) const
{
    WarReport report;
    report.intervalsAnalyzed = intervals.size();

    std::unordered_map<Addr, std::uint8_t> state;
    std::vector<Addr> hazardBytes;

    for (std::size_t idx = 0; idx < intervals.size(); ++idx) {
        const IntervalTrace &iv = intervals[idx];
        state.clear();
        hazardBytes.clear();

        for (const AccessEvent &ev : iv.events) {
            for (std::uint32_t i = 0; i < ev.bytes; ++i) {
                const Addr a = ev.addr + i;
                std::uint8_t &s = state[a];
                switch (ev.kind) {
                  case AccessKind::Versioned:
                    s |= kVersioned;
                    break;
                  case AccessKind::Read:
                    // Only a read of the *original* value arms the
                    // hazard; a read after the byte was overwritten
                    // sees interval-local data.
                    if (!(s & kWritten))
                        s |= kRead;
                    break;
                  case AccessKind::Write:
                    if ((s & kRead) && !(s & kVersioned) &&
                        !(s & kHazard)) {
                        s |= kHazard;
                        hazardBytes.push_back(a);
                    }
                    s |= kWritten;
                    break;
                }
            }
        }

        if (hazardBytes.empty())
            continue;

        // Merge contiguous hazardous bytes into ranges and attribute
        // them to named regions.
        std::sort(hazardBytes.begin(), hazardBytes.end());
        const bool materialized = iv.end == IntervalEnd::PowerFailed;
        std::size_t i = 0;
        while (i < hazardBytes.size()) {
            // Merge a contiguous run, but never across an NV-region
            // boundary: a range straddling two regions must yield one
            // correctly-attributed hazard per region.
            const mem::NvRegion *runRegion =
                ram_.regionAt(hazardBytes[i]);
            std::size_t j = i + 1;
            while (j < hazardBytes.size() &&
                   hazardBytes[j] == hazardBytes[j - 1] + 1 &&
                   ram_.regionAt(hazardBytes[j]) == runRegion)
                ++j;
            WarHazard h;
            h.addr = hazardBytes[i];
            h.bytes = static_cast<std::uint32_t>(j - i);
            if (const mem::NvRegion *r = ram_.regionAt(h.addr)) {
                // assign() instead of operator= sidesteps GCC 12's
                // bogus -Wrestrict on string copy-assignment (PR105329).
                h.region.assign(r->name.data(), r->name.size());
                h.offset = h.addr - r->base;
            } else {
                h.region = "?";
                h.offset = 0;
            }
            h.boot = iv.boot;
            h.interval = idx;
            h.materialized = materialized;
            report.hazards.push_back(std::move(h));
            i = j;
        }
    }
    return report;
}

} // namespace ticsim::analysis
