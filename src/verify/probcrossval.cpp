#include "probcrossval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "apps/ar/ar_chinchilla.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/ar/ar_task.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "harness/experiment.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "runtimes/task_core.hpp"
#include "sweep/sweep.hpp"
#include "tics/runtime.hpp"
#include "verify/demo_app.hpp"
#include "verify/envmodel.hpp"

namespace ticsim::verify {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/**
 * One failure-free calibration run with the *sweep's* app and runtime
 * configurations (default app parameters, the 10 ms timer TICS
 * setup), so the recovered model describes exactly the programs the
 * simulated cells run. This intentionally differs from verifyMatrix,
 * which matches the dynamic checker's matrix instead.
 */
template <typename MakeRt, typename MakeApp>
ProgramModel
recoverSweepModel(const ProbCrossValConfig &cfg,
                  const std::string &appName, const MakeRt &makeRt,
                  const MakeApp &makeApp, std::uint32_t segmentBytes)
{
    auto board =
        harness::makeBoard(harness::continuousSpec(), cfg.modelSeed);
    auto rt = makeRt();
    auto app = makeApp(*board, *rt);

    std::function<void()> entry;
    if constexpr (requires { app->main(); })
        entry = [&app] { app->main(); };

    ModelRecorder rec(*board);
    const auto res =
        board->run(*rt, std::move(entry), cfg.calibrationBudget);
    rec.finalize();

    ProgramModel model = std::move(rec.model());
    model.app = appName;
    model.runtime = rt->name();
    model.calibrated = res.completed && app->verify();
    model.segmentBytes = segmentBytes;
    return model;
}

/** The sweep's TICS configuration (10 ms timer, 256 B segments). */
std::unique_ptr<tics::TicsRuntime>
makeSweepTics()
{
    tics::TicsConfig tc;
    tc.segmentBytes = 256;
    tc.policy = tics::PolicyKind::Timer;
    tc.timerPeriod = 10 * kNsPerMs;
    return std::make_unique<tics::TicsRuntime>(tc);
}

const char *const kApps[] = {"AR", "BC", "CF"};
const char *const kRuntimes[] = {"TICS", "MementOS-like",
                                 "Chinchilla-like", "Alpaca-like",
                                 "plain-C"};

double
relDev(double a, double b)
{
    const double hi = std::max(std::fabs(a), std::fabs(b));
    return hi <= 0.0 ? 0.0 : std::fabs(a - b) / hi;
}

/** P[Bin(n, p) >= k], summed directly (n stays small). */
double
binomTailGE(int n, int k, double p)
{
    if (k <= 0)
        return 1.0;
    if (k > n || p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;
    double sum = 0.0;
    for (int j = k; j <= n; ++j) {
        const double logC = std::lgamma(n + 1.0) -
                            std::lgamma(j + 1.0) -
                            std::lgamma(n - j + 1.0);
        sum += std::exp(logC + j * std::log(p) +
                        (n - j) * std::log1p(-p));
    }
    return std::min(1.0, sum);
}

/**
 * Quantile position of the k-th order statistic of n uniforms:
 * U = F(X_(k)) ~ Beta(k, n+1-k) with CDF P[U <= q] = P[Bin(n,q) >= k].
 * Returns the q where that CDF equals @p target (bisection; the tail
 * is monotone increasing in q).
 */
double
orderStatQuantile(int n, int k, double target)
{
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        (binomTailGE(n, k, mid) < target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

/** The pattern + stochastic environment pair every analysis uses. */
struct Envs {
    sweep::SupplyAxis patternAxis;
    EnvModel pat;
    EnvModel sto;
};

Envs
makeEnvs(const ProbCrossValConfig &cfg, const device::CostModel &costs)
{
    Envs e;
    // The stochastic rows pin the capacitance to cfg.stochasticCapUf —
    // the supply default (10 uF) buffers the whole workload and no
    // cell ever reboots, which validates nothing.
    e.patternAxis.kind = sweep::SupplyKind::Pattern;
    e.patternAxis.periodMs = static_cast<double>(cfg.patternPeriod) /
                             static_cast<double>(kNsPerMs);
    e.patternAxis.onFraction = cfg.patternOnFraction;

    e.pat = patternEnv(cfg.patternPeriod, cfg.patternOnFraction, costs,
                       cfg.rebootLimit);
    e.pat.name = e.patternAxis.token();

    StochasticEnvParams sp;
    sp.capacitanceF = cfg.stochasticCapUf * 1e-6;
    e.sto = stochasticEnv(sp, costs, cfg.rebootLimit);
    return e;
}

} // namespace

ProgramModel
recoverSweepPair(const ProbCrossValConfig &cfg, const std::string &app,
                const std::string &runtime)
{
    const auto makeTics = [] { return makeSweepTics(); };
    const auto makeMementos = [] {
        return std::make_unique<runtimes::MementosRuntime>();
    };
    const auto makeChinchilla = [] {
        return std::make_unique<runtimes::ChinchillaRuntime>();
    };
    const auto makeTask = [] {
        return std::make_unique<taskrt::TaskRuntime>();
    };
    const auto makePlain = [] {
        return std::make_unique<runtimes::PlainCRuntime>();
    };

    const std::uint32_t seg = runtime == "TICS" ? 256 : 0;
    const auto legacy = [&](const auto &makeRt) {
        if (app == "AR") {
            return recoverSweepModel(
                cfg, app, makeRt,
                [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::ArLegacyApp>(
                        b, rt, apps::ArParams{});
                },
                seg);
        }
        if (app == "BC") {
            return recoverSweepModel(
                cfg, app, makeRt,
                [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::BcLegacyApp>(
                        b, rt, apps::BcParams{});
                },
                seg);
        }
        return recoverSweepModel(
            cfg, app, makeRt,
            [](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooLegacyApp>(
                    b, rt, apps::CuckooParams{});
            },
            seg);
    };

    if (runtime == "TICS")
        return legacy(makeTics);
    if (runtime == "plain-C")
        return legacy(makePlain);
    if (runtime == "MementOS-like")
        return legacy(makeMementos);
    if (runtime == "Chinchilla-like") {
        if (app == "AR") {
            return recoverSweepModel(
                cfg, app, makeChinchilla,
                [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::ArChinchillaApp>(
                        b, rt, apps::ArParams{});
                },
                0);
        }
        if (app == "BC") {
            return recoverSweepModel(
                cfg, app, makeChinchilla,
                [](board::Board &b, auto &rt) {
                    return std::make_unique<apps::BcChinchillaApp>(
                        b, rt, apps::BcParams{});
                },
                0);
        }
        return recoverSweepModel(
            cfg, app, makeChinchilla,
            [](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooChinchillaApp>(
                    b, rt, apps::CuckooParams{});
            },
            0);
    }
    // Alpaca-like
    if (app == "AR") {
        return recoverSweepModel(
            cfg, app, makeTask,
            [](board::Board &b, auto &rt) {
                return std::make_unique<apps::ArTaskApp>(
                    b, rt, apps::ArParams{});
            },
            0);
    }
    if (app == "BC") {
        return recoverSweepModel(
            cfg, app, makeTask,
            [](board::Board &b, auto &rt) {
                return std::make_unique<apps::BcTaskApp>(
                    b, rt, apps::BcParams{});
            },
            0);
    }
    return recoverSweepModel(
        cfg, app, makeTask,
        [](board::Board &b, auto &rt) {
            return std::make_unique<apps::CuckooTaskApp>(
                b, rt, apps::CuckooParams{});
        },
        0);
}

ProbStaticResult
probStaticAnalyze(const ProbCrossValConfig &cfg)
{
    ProbStaticResult out;
    const device::CostModel costs{};
    const Envs envs = makeEnvs(cfg, costs);

    for (const auto *app : kApps) {
        for (const auto *runtime : kRuntimes) {
            const ProgramModel model =
                recoverSweepPair(cfg, app, runtime);
            for (const EnvModel *env : {&envs.pat, &envs.sto}) {
                const TimingEstimate est =
                    completionTime(model, *env, costs);

                ProbGateRow row;
                row.app = app;
                row.runtime = runtime;
                row.env = env->name;
                row.capUf =
                    env == &envs.sto ? cfg.stochasticCapUf : 0.0;
                row.staticP50Ms = est.completionNs.p50() / 1e6;
                row.staticP95Ms = est.completionNs.p95() / 1e6;
                row.staticP99Ms = est.completionNs.p99() / 1e6;
                row.staticMeanMs = est.completionNs.mean() / 1e6;
                row.pNonterm = est.pNonterm;
                row.meanOutages = est.meanOutages;
                // Bracket each simulated nearest-rank percentile: an
                // n-seed pXX is the order statistic of rank
                // ceil(q*n), whose quantile position scatters widely
                // for small n, so the gate brackets the static
                // distribution between that statistic's 5% and 95%
                // quantile positions instead of pinning one point.
                const int n = static_cast<int>(cfg.seeds.size());
                const auto band = [&](double q, double &loMs,
                                      double &hiMs) {
                    const int k = std::max(
                        1, static_cast<int>(std::ceil(q * n)));
                    loMs = est.completionNs.percentile(
                               orderStatQuantile(n, k, 0.05)) /
                           1e6;
                    hiMs = est.completionNs.percentile(
                               orderStatQuantile(n, k, 0.95)) /
                           1e6;
                };
                if (n > 0) {
                    band(0.50, row.staticLoP50Ms, row.staticHiP50Ms);
                    band(0.95, row.staticLoP95Ms, row.staticHiP95Ms);
                    band(0.99, row.staticLoP99Ms, row.staticHiP99Ms);
                }
                row.gateKind = "static";
                row.gatePassed = true;
                out.rows.push_back(std::move(row));

                auto fresh = freshnessViolations(model, *env, costs);
                out.freshness.insert(out.freshness.end(),
                                     fresh.begin(), fresh.end());
            }
        }
    }

    // Freshness ground truth: the verifier's SensorRelay twins under
    // the sweep's TICS configuration. The guarded twin re-samples
    // expired readings (no unguarded timed use, so no estimate at
    // all); the unguarded twin consumes them cold, so its timed
    // variable must earn a nonzero violation probability under any
    // environment that can interleave an outage between sample and
    // use.
    for (const bool guarded : {true, false}) {
        const ProgramModel model = recoverSweepModel(
            cfg, guarded ? "Relay+guard" : "Relay-unguard",
            [] { return makeSweepTics(); },
            [guarded](board::Board &b, tics::TicsRuntime &rt) {
                SensorRelayOptions o;
                o.checkFreshness = guarded;
                o.useVirtualRadio = guarded;
                return std::make_unique<SensorRelayApp>(b, rt, o);
            },
            256);
        for (const EnvModel *env : {&envs.pat, &envs.sto}) {
            auto fresh = freshnessViolations(model, *env, costs);
            out.freshness.insert(out.freshness.end(), fresh.begin(),
                                 fresh.end());
        }
    }
    return out;
}

void
gateProbRow(ProbGateRow &row, const ProbGateTolerance &tol)
{
    row.failedPercentile.clear();
    row.worstRel = 0.0;

    if (row.pNonterm > 0.5) {
        // Verdict agreement: a statically nonterminating pair must
        // never complete in simulation either.
        row.gateKind = "nonterm";
        row.gatePassed = row.simCompleted == 0;
        if (!row.gatePassed)
            row.failedPercentile = "completion";
        return;
    }

    row.gateKind = "percentiles";
    if (row.simCompleted != row.simCells) {
        // Static says "terminates" but some simulated cells did not.
        row.gatePassed = false;
        row.failedPercentile = "completion";
        return;
    }

    struct Gate {
        const char *name;
        double lo, hi, sim, tol;
    } gates[] = {
        {"p50",
         row.staticLoP50Ms > 0.0 ? row.staticLoP50Ms : row.staticP50Ms,
         row.staticHiP50Ms > 0.0 ? row.staticHiP50Ms : row.staticP50Ms,
         row.simP50Ms, tol.p50},
        {"p95",
         row.staticLoP95Ms > 0.0 ? row.staticLoP95Ms : row.staticP95Ms,
         row.staticHiP95Ms > 0.0 ? row.staticHiP95Ms : row.staticP95Ms,
         row.simP95Ms, tol.p95},
        {"p99",
         row.staticLoP99Ms > 0.0 ? row.staticLoP99Ms : row.staticP99Ms,
         row.staticHiP99Ms > 0.0 ? row.staticHiP99Ms : row.staticP99Ms,
         row.simP99Ms, tol.p99},
    };
    row.gatePassed = true;
    for (const auto &g : gates) {
        // Deviation is the relative distance outside the
        // order-statistic band; inside the band it is zero.
        double dev = 0.0;
        if (g.sim < g.lo)
            dev = relDev(g.lo, g.sim);
        else if (g.sim > g.hi)
            dev = relDev(g.hi, g.sim);
        row.worstRel = std::max(row.worstRel, dev);
        if (dev > g.tol && row.gatePassed) {
            row.gatePassed = false;
            row.failedPercentile = g.name;
        }
    }
}

Finding
probGateFinding(const ProbGateRow &row)
{
    Finding f;
    f.analysis = "prob-crossval";
    f.app = row.app;
    f.runtime = row.runtime;
    f.subject = row.env;
    f.anchor = row.failedPercentile.empty() ? "gate"
                                            : row.failedPercentile;
    f.detail =
        row.gateKind == "nonterm"
            ? fmt("static model predicts nontermination (p=%.3f) but "
                  "%llu of %llu simulated cells completed under %s",
                  row.pNonterm,
                  static_cast<unsigned long long>(row.simCompleted),
                  static_cast<unsigned long long>(row.simCells),
                  row.env.c_str())
            : fmt("completion-time %s gate failed under %s: static "
                  "%.2f/%.2f/%.2f ms vs simulated %.2f/%.2f/%.2f ms "
                  "at p50/p95/p99 (worst rel. dev. %.2f)",
                  row.failedPercentile.c_str(), row.env.c_str(),
                  row.staticP50Ms, row.staticP95Ms, row.staticP99Ms,
                  row.simP50Ms, row.simP95Ms, row.simP99Ms,
                  row.worstRel);
    return f;
}

ProbCrossValReport
probCrossValidate(const ProbCrossValConfig &cfg)
{
    ProbCrossValReport report;
    const device::CostModel costs{};
    const Envs envs = makeEnvs(cfg, costs);

    // Static side first (also recovers the models).
    ProbStaticResult st = probStaticAnalyze(cfg);
    report.freshness = std::move(st.freshness);

    // Simulated side: one sweep covering both supplies and every
    // seed; per-cell elapsed times aggregate into cross-seed
    // distributions keyed like the static rows.
    sweep::SweepConfig sc;
    sc.grid.apps = {kApps[0], kApps[1], kApps[2]};
    sc.grid.runtimes.assign(std::begin(kRuntimes),
                            std::end(kRuntimes));
    sweep::SupplyAxis stochasticAxis;
    stochasticAxis.kind = sweep::SupplyKind::Stochastic;
    sc.grid.supplies = {envs.patternAxis, stochasticAxis};
    sc.grid.capsUf = {cfg.stochasticCapUf};
    sc.grid.segments = {256};
    sc.grid.seeds = cfg.seeds;
    sc.jobs = cfg.jobs;
    sc.useCache = cfg.useCache;
    sc.cacheDir = cfg.cacheDir;
    const sweep::SweepResult sim = sweep::runSweep(sc);

    struct SimGroup {
        Distribution elapsedMs;
        std::uint64_t cells = 0;
        std::uint64_t completed = 0;
    };
    std::map<std::string, SimGroup> groups; // app|runtime|env
    for (const auto &c : sim.cells) {
        auto &g = groups[c.cell.app + "|" + c.cell.runtime + "|" +
                         c.cell.supply.token()];
        ++g.cells;
        if (c.result.completed) {
            ++g.completed;
            g.elapsedMs.sample(
                static_cast<double>(c.result.elapsedNs) / 1e6);
        }
    }

    // Attach each row's simulated distribution and gate it.
    for (ProbGateRow &row : st.rows) {
        const auto it =
            groups.find(row.app + "|" + row.runtime + "|" + row.env);
        if (it != groups.end()) {
            row.simCells = it->second.cells;
            row.simCompleted = it->second.completed;
            row.simP50Ms = it->second.elapsedMs.p50();
            row.simP95Ms = it->second.elapsedMs.p95();
            row.simP99Ms = it->second.elapsedMs.p99();
        }
        gateProbRow(row, cfg.tol);
        if (!row.gatePassed) {
            report.pass = false;
            report.findings.push_back(probGateFinding(row));
        }
        report.rows.push_back(std::move(row));
    }
    return report;
}

Table
probCrossValTable(const ProbCrossValReport &r)
{
    Table t("ticsverify --prob: completion time (static vs simulated; "
            "sim columns zero without --crossval)");
    t.header({"App", "Runtime", "Env", "StaP50", "StaP95", "StaP99",
              "SimP50", "SimP95", "SimP99", "Nonterm", "Gate"});
    for (const auto &row : r.rows) {
        t.row()
            .cell(row.app)
            .cell(row.runtime)
            .cell(row.env)
            .cell(fmt("%.2f", row.staticP50Ms))
            .cell(fmt("%.2f", row.staticP95Ms))
            .cell(fmt("%.2f", row.staticP99Ms))
            .cell(fmt("%.2f", row.simP50Ms))
            .cell(fmt("%.2f", row.simP95Ms))
            .cell(fmt("%.2f", row.simP99Ms))
            .cell(fmt("%.2f", row.pNonterm))
            .cell(row.gatePassed
                      ? (row.gateKind == "nonterm" ? "ok (nonterm)"
                                                   : "ok")
                      : "FAIL " + row.failedPercentile);
    }
    return t;
}

Table
freshnessTable(const std::vector<FreshnessEstimate> &rows)
{
    Table t("ticsverify --prob: freshness-violation probability");
    t.header({"App", "Runtime", "Env", "Subject", "Lifetime",
              "P[viol]", "Sites"});
    for (const auto &f : rows) {
        t.row()
            .cell(f.app)
            .cell(f.runtime)
            .cell(f.env)
            .cell(f.subject)
            .cell(fmt("%.1f ms", f.lifetimeNs / 1e6))
            .cell(fmt("%.4f", f.pViolation))
            .cell(static_cast<std::uint64_t>(f.sites));
    }
    return t;
}

} // namespace ticsim::verify
