#include "crossval.hpp"

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "analysis/access_trace.hpp"
#include "analysis/war_detector.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/ghm/ghm.hpp"
#include "apps/study/study.hpp"
#include "harness/experiment.hpp"
#include "runtimes/plainc.hpp"
#include "sweep/job_pool.hpp"
#include "verify/demo_app.hpp"

namespace ticsim::verify {

namespace {

/** Dynamic evidence of one (app, runtime) pattern-supply probe. */
struct DynamicEvidence {
    std::string app;
    std::string runtime;
    analysis::WarReport war;
    std::uint64_t expirationsObserved = 0;
    std::size_t duplicateSends = 0;
    bool completed = false;
};

/** Count payloads the radio log carries more than once. */
std::size_t
countDuplicateSends(board::Board &b)
{
    std::map<std::vector<std::uint8_t>, std::size_t> seen;
    for (const auto &p : b.radio().packets())
        ++seen[p.payload];
    std::size_t dups = 0;
    for (const auto &[payload, n] : seen) {
        if (n > 1)
            dups += n - 1;
    }
    return dups;
}

tics::TicsConfig
probeTicsConfig()
{
    tics::TicsConfig c;
    c.segmentBytes = 256;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

/**
 * One intermittent probe run under the deployment reset pattern,
 * traced with the dynamic checker's own pipeline.
 */
template <typename MakeRt, typename MakeApp>
DynamicEvidence
runProbe(const VerifyConfig &cfg, const std::string &appName,
         TimeNs budget, const MakeRt &makeRt, const MakeApp &makeApp)
{
    const auto spec = harness::patternSpec(cfg.patternPeriod,
                                           cfg.patternOnFraction);
    auto board = harness::makeBoard(spec, cfg.seed);
    auto rt = makeRt();
    auto app = makeApp(*board, *rt);

    std::function<void()> entry;
    if constexpr (requires { app->main(); })
        entry = [&app] { app->main(); };

    analysis::AccessTracer tracer(*board);
    const auto res = board->run(*rt, std::move(entry), budget);
    tracer.finalize();

    DynamicEvidence ev;
    ev.app = appName;
    ev.runtime = rt->name();
    ev.war = analysis::WarHazardDetector(board->nvram())
                 .analyze(tracer.intervals());
    ev.expirationsObserved =
        board->monitor()
            .counts(board::ViolationKind::Expiration)
            .observed;
    ev.duplicateSends = countDuplicateSends(*board);
    ev.completed = res.completed;
    return ev;
}

/** [offset, offset+bytes) overlap on the same NV region. */
bool
rangesOverlap(const Finding &f, const std::string &region,
              std::uint32_t offset, std::uint32_t bytes)
{
    return f.subject == region && offset < f.offset + f.bytes &&
           f.offset < offset + bytes;
}

struct PairKey {
    std::string app;
    std::string runtime;
    bool operator<(const PairKey &o) const
    {
        return app != o.app ? app < o.app : runtime < o.runtime;
    }
};

} // namespace

CrossValReport
crossValidate(const VerifyConfig &cfg)
{
    // The evidence gatherers — the static verifier matrix, the dynamic
    // checker matrix and the seven probe runs — are independent (every
    // run builds a fresh Board and all runtime hooks are thread_local),
    // so they execute as coarse jobs on the sweep pool. Each writes
    // into its own pre-allocated slot; the matching below walks the
    // slots in a fixed order, so the report does not depend on the job
    // count or completion order.
    analysis::CheckConfig dyn;
    dyn.patternPeriod = cfg.patternPeriod;
    dyn.patternOnFraction = cfg.patternOnFraction;
    dyn.seed = cfg.seed;
    dyn.bc = cfg.bc;
    dyn.cuckoo = cfg.cuckoo;

    const auto makeTics = [] {
        return std::make_unique<tics::TicsRuntime>(probeTicsConfig());
    };
    const auto makePlain = [] {
        return std::make_unique<runtimes::PlainCRuntime>();
    };
    const TimeNs protectedBudget = cfg.calibrationBudget;
    const TimeNs unprotectedBudget = 3 * kNsPerSec;

    const auto arLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::ArLegacyApp>(b, rt, cfg.ar);
    };
    const auto ghmPlain = [](board::Board &b, auto &rt) {
        apps::GhmParams p;
        p.rounds = 8;
        return std::make_unique<apps::GhmPlainApp>(b, rt, p);
    };

    std::vector<AppVerdict> verdicts;
    std::vector<analysis::ScenarioFinding> scenarios;
    std::vector<DynamicEvidence> probes(7);

    std::vector<std::function<void()>> gather;
    gather.push_back([&] { verdicts = verifyMatrix(cfg); });
    gather.push_back([&] { scenarios = analysis::checkMatrix(dyn); });
    gather.push_back([&] {
        probes[0] = runProbe(cfg, "AR", protectedBudget, makeTics,
                             arLegacy);
    });
    gather.push_back([&] {
        probes[1] = runProbe(cfg, "AR", unprotectedBudget, makePlain,
                             arLegacy);
    });
    gather.push_back([&] {
        probes[2] = runProbe(cfg, "GHM", protectedBudget, makeTics,
                             ghmPlain);
    });
    gather.push_back([&] {
        probes[3] = runProbe(cfg, "GHM", unprotectedBudget, makePlain,
                             ghmPlain);
    });
    gather.push_back([&] {
        probes[4] = runProbe(
            cfg, "Study", protectedBudget, makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                return std::make_unique<apps::study::TimekeepTics>(
                    b, rt, 40 * kNsPerMs);
            });
    });
    gather.push_back([&] {
        probes[5] = runProbe(
            cfg, "Relay+guard", protectedBudget, makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                SensorRelayOptions o;
                return std::make_unique<SensorRelayApp>(b, rt, o);
            });
    });
    gather.push_back([&] {
        probes[6] = runProbe(
            cfg, "Relay-unguard", protectedBudget, makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                SensorRelayOptions o;
                o.checkFreshness = false;
                o.useVirtualRadio = false;
                return std::make_unique<SensorRelayApp>(b, rt, o);
            });
    });

    const sweep::JobPool pool(cfg.jobs);
    pool.run(gather.size(),
             [&](std::size_t i) { gather[i](); });

    std::map<PairKey, const AppVerdict *> staticByPair;
    for (const auto &v : verdicts)
        staticByPair[{v.app, v.runtime}] = &v;

    // --- matching --------------------------------------------------------
    std::map<PairKey, CrossValRow> rows;
    const auto rowFor = [&](const std::string &app,
                            const std::string &runtime)
        -> CrossValRow & {
        auto &r = rows[{app, runtime}];
        r.app = app;
        r.runtime = runtime;
        return r;
    };
    // Static findings that gathered dynamic proof, by address.
    std::map<const Finding *, bool> confirmedMap;
    for (const auto &[key, v] : staticByPair) {
        for (const auto &f : v->findings)
            confirmedMap[&f] = false;
    }

    const auto matchWar = [&](const std::string &app,
                              const std::string &runtime,
                              const analysis::WarReport &war) {
        auto &row = rowFor(app, runtime);
        const auto *v = staticByPair.count({app, runtime})
                            ? staticByPair[{app, runtime}]
                            : nullptr;
        for (const auto &h : war.hazards) {
            ++row.dynamicDetections;
            if (!v)
                continue;
            const Finding *regionMatch = nullptr;
            const Finding *exactMatch = nullptr;
            for (const auto &f : v->findings) {
                if (f.analysis != "war-possibility")
                    continue;
                if (f.subject == h.region) {
                    regionMatch = &f;
                    if (rangesOverlap(f, h.region, h.offset, h.bytes))
                        exactMatch = &f;
                }
            }
            if (exactMatch) {
                ++row.matchedExact;
                ++row.matched;
                confirmedMap[exactMatch] = true;
            } else if (regionMatch) {
                ++row.matched;
                confirmedMap[regionMatch] = true;
            }
        }
    };

    const auto matchKind = [&](const std::string &app,
                               const std::string &runtime,
                               const char *analysisKind,
                               std::size_t detections) {
        if (detections == 0)
            return;
        auto &row = rowFor(app, runtime);
        row.dynamicDetections += detections;
        const auto *v = staticByPair.count({app, runtime})
                            ? staticByPair[{app, runtime}]
                            : nullptr;
        if (!v)
            return;
        for (const auto &f : v->findings) {
            if (f.analysis == analysisKind) {
                row.matched += detections;
                row.matchedExact += detections;
                confirmedMap[&f] = true;
                return;
            }
        }
    };

    for (const auto &s : scenarios) {
        matchWar(s.app, s.runtime, s.war);
        // A plain-C subject that demonstrably cannot finish under the
        // pattern is the dynamic face of the energy-progress finding.
        if (!s.isProtected && !s.subject.completed)
            matchKind(s.app, s.runtime, "energy-progress", 1);
    }
    for (const auto &p : probes) {
        matchWar(p.app, p.runtime, p.war);
        matchKind(p.app, p.runtime, "timeliness",
                  p.expirationsObserved > 0 ? 1 : 0);
        matchKind(p.app, p.runtime, "io-idempotency",
                  p.duplicateSends > 0 ? 1 : 0);
        if (p.runtime == "plain-C" && !p.completed)
            matchKind(p.app, p.runtime, "energy-progress", 1);
    }

    // --- reduce ----------------------------------------------------------
    CrossValReport report;
    for (const auto &[key, v] : staticByPair) {
        auto &row = rowFor(key.app, key.runtime);
        row.staticFindings = v->findings.size();
        for (const auto &f : v->findings) {
            if (confirmedMap[&f])
                ++row.confirmed;
        }
    }
    for (auto &[key, row] : rows) {
        report.totalDynamic += row.dynamicDetections;
        report.totalMatched += row.matched;
        report.totalStatic += row.staticFindings;
        report.totalConfirmed += row.confirmed;
        report.rows.push_back(row);
    }
    return report;
}

Table
crossValTable(const CrossValReport &report)
{
    Table t("ticsverify: cross-validation vs dynamic ticscheck");
    t.header({"App", "Runtime", "Dynamic", "Matched", "Exact",
              "Static", "Confirmed", "Coverage", "FP rate"});
    char cov[32];
    char fp[32];
    for (const auto &r : report.rows) {
        std::snprintf(cov, sizeof(cov), "%.0f%%", r.coverage() * 100.0);
        std::snprintf(fp, sizeof(fp), "%.0f%%",
                      r.falsePositiveRate() * 100.0);
        t.row()
            .cell(r.app)
            .cell(r.runtime)
            .cell(static_cast<std::uint64_t>(r.dynamicDetections))
            .cell(static_cast<std::uint64_t>(r.matched))
            .cell(static_cast<std::uint64_t>(r.matchedExact))
            .cell(static_cast<std::uint64_t>(r.staticFindings))
            .cell(static_cast<std::uint64_t>(r.confirmed))
            .cell(cov)
            .cell(fp);
    }
    return t;
}

} // namespace ticsim::verify
