/**
 * @file
 * The ticsverify driver: recovers a ProgramModel per (app, runtime)
 * pair from one failure-free calibration run, derives the deployment
 * supply's energy budget, runs the four static analyses, and reduces
 * everything to per-pair verdicts and a flat findings list.
 *
 * The verdict mirrors ticscheck's split: protected runtimes must come
 * out clean of WAR possibilities, while the unprotected plain-C
 * baseline (whole program = one region, no versioning) must be flagged
 * WAR-unsafe — and, whenever that one region outgrows a charge
 * window, statically non-terminating too.
 * Applications that bypass the guard layers (direct radio sends,
 * unchecked timed reads) are flagged regardless of runtime — the point
 * of a static pass is that "no violation observed" is not "none
 * possible".
 */

#ifndef TICSIM_VERIFY_VERIFIER_HPP
#define TICSIM_VERIFY_VERIFIER_HPP

#include <string>
#include <vector>

#include "analysis/checker.hpp"
#include "apps/ar/ar_common.hpp"
#include "support/table.hpp"
#include "verify/analyses.hpp"
#include "verify/model.hpp"

namespace ticsim::verify {

struct VerifyConfig {
    /** Deployment supply the static analyses verify against (the
     *  tier-1 reset pattern by default, matching ticscheck). */
    TimeNs patternPeriod = 30 * kNsPerMs;
    double patternOnFraction = 0.6;
    /** > 0: verify against a capacitor budget of this capacitance
     *  instead of the pattern (the non-terminating demo scenario). */
    double capacitanceF = 0.0;
    double capVOn = 3.0;
    double capVOff = 1.8;
    TimeNs capMaxOffTime = 3600 * kNsPerSec;

    /** Virtual-time budget of one calibration run. */
    TimeNs calibrationBudget = 600 * kNsPerSec;
    std::uint64_t seed = 11;
    std::uint64_t rebootLimit = 300; ///< starvation bound (outages)

    /**
     * Worker threads for the cross-validation harness's independent
     * evidence gatherers (static matrix, dynamic matrix, probe runs);
     * 0 = all hardware threads. Results are matched in a fixed order
     * afterwards, so the report is identical for any job count. Note
     * that with more than one job the per-run report records
     * (--json `runs`) are skipped for worker-thread runs; coverage
     * numbers are unaffected.
     */
    unsigned jobs = 1;

    apps::BcParams bc{};
    apps::CuckooParams cuckoo{};
    apps::ArParams ar{};

    VerifyConfig()
    {
        // Match the dynamic checker's matrix workload so the cross-
        // validation compares like with like.
        cuckoo.workScale = 16.0;
    }
};

/** One (app, runtime) pair's static verification outcome. */
struct AppVerdict {
    std::string app;
    std::string runtime;
    bool isProtected = true; ///< same meaning as ticscheck's flag
    /** Pair is expected to carry WAR-possibility findings: the
     *  unprotected baseline (no versioning at all) and MementOS-like
     *  (no undo log — writes before the first checkpoint are
     *  unrecoverable, the latent window ticscheck also reports). */
    bool expectWar = false;
    ProgramModel model;
    std::vector<Finding> findings;

    std::size_t count(const std::string &analysis) const
    {
        std::size_t n = 0;
        for (const auto &f : findings) {
            if (f.analysis == analysis)
                ++n;
        }
        return n;
    }
};

/** The deployment budget the config describes. */
EnergyBudget deploymentBudget(const VerifyConfig &cfg,
                              const device::CostModel &costs);

/**
 * Statically verify the full app matrix (ar/bc/cuckoo/ghm/study plus
 * the SensorRelay self-test pair) against the configured budget.
 */
std::vector<AppVerdict> verifyMatrix(const VerifyConfig &cfg = {});

/**
 * Whether a verdict matches the expected split: protected pairs that
 * keep to the guard layers are clean; plain C is energy- and WAR-
 * flagged; apps that bypass the guards carry exactly the io/timeliness
 * findings they earned.
 */
bool verdictOk(const AppVerdict &v);

/** Per-pair summary table. */
Table verdictTable(const std::vector<AppVerdict> &verdicts);

/** Per-finding detail table (ticsverify --verbose). */
Table findingTable(const std::vector<AppVerdict> &verdicts);

/** Flatten all findings of a verdict set. */
std::vector<Finding>
allFindings(const std::vector<AppVerdict> &verdicts);

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_VERIFIER_HPP
