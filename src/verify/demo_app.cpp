#include "demo_app.hpp"

namespace ticsim::verify {

SensorRelayApp::SensorRelayApp(board::Board &b, tics::TicsRuntime &rt,
                               SensorRelayOptions opt)
    : b_(b), rt_(rt), opt_(opt),
      reading_(rt, b.nvram(), "relay.reading", opt.lifetime),
      rounds_(b.nvram(), "relay.rounds"), used_(b.nvram(), "relay.used"),
      stale_(b.nvram(), "relay.stale")
{
    if (opt_.useVirtualRadio)
        radio_ = std::make_unique<tics::VirtualRadio>(rt, b.nvram(),
                                                      "relay.radio");
}

// ticslint on this function reports the unguarded read (timeliness),
// the unguarded transmission (io), and the counter read-modify-writes
// (war). All are intentional: this app is the guarded-vs-unguarded
// demonstration the verifier cross-validates against, so the findings
// are baselined as expected (tools/ticslint.baseline.json). The
// path-insensitive analyzer reports them in the +guard configuration
// too — the documented false-positive pair in the crossval table.
void
SensorRelayApp::main()
{
    board::FrameGuard fg(rt_, 24);
    while (rounds_.get() < opt_.rounds) {
        rt_.triggerPoint();
        const std::uint64_t round = rounds_.get();
        reading_.assignTimed(b_.sampleTemp(), round);
        b_.charge(opt_.workCycles); // processing: the reading ages
        rt_.triggerPoint(); // a checkpoint here splits sample from use
        Packet p{static_cast<std::uint32_t>(round), 0};
        bool use = true;
        if (opt_.checkFreshness) {
            use = tics::expires(rt_, reading_, round, [&] {
                p.value = reading_.read(round);
                b_.charge(200); // consume(reading)
            });
        } else {
            p.value = reading_.read(round); // unguarded cold read
            b_.charge(200);
        }
        if (use) {
            if (radio_)
                radio_->send(&p, sizeof(p));
            else
                b_.radioSend(&p, sizeof(p)); // unguarded transmission
            used_ += 1;
        } else {
            stale_ += 1;
        }
        rounds_ = static_cast<std::uint32_t>(round) + 1;
    }
    if (radio_)
        radio_->drainAll();
}

bool
SensorRelayApp::verify() const
{
    return rounds_.get() == opt_.rounds &&
           used_.get() + stale_.get() == opt_.rounds;
}

} // namespace ticsim::verify
