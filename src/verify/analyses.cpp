#include "analyses.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace ticsim::verify {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** "a, b, c" of the NV regions @p r touches most, by bytes. */
std::string
touchedPath(const ProgramModel &m, const RegionNode &r, std::size_t k)
{
    std::map<std::string, std::uint64_t> bytesPer;
    for (const auto &e : r.events) {
        if (e.kind == analysis::AccessKind::Versioned)
            continue;
        bytesPer[m.regionNameAt(e.addr)] += e.bytes;
    }
    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    ranked.reserve(bytesPer.size());
    for (const auto &[name, bytes] : bytesPer)
        ranked.emplace_back(bytes, name);
    std::sort(ranked.rbegin(), ranked.rend());
    std::string out;
    for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
        if (!out.empty())
            out += ", ";
        out += ranked[i].second;
    }
    return out.empty() ? std::string("(no NV traffic)") : out;
}

} // namespace

Cycles
reentryCycles(const ProgramModel &m, const RegionNode &r,
              const device::CostModel &costs)
{
    // Re-entering an interrupted region: boot, restore the execution
    // image (the TICS working segment, or the region's versioned set
    // for snapshot/shadow runtimes), and undo the region's versioning
    // traffic — the worst case is dying right before the commit, with
    // the full calibrated log populated.
    const std::uint32_t image =
        m.segmentBytes > 0
            ? m.segmentBytes
            : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                  r.versionedBytes, 0xFFFFFFFFull));
    Cycles c = costs.bootInit;
    c += device::CostModel::linear(costs.restoreLogic,
                                   costs.restorePerByte, image);
    c += static_cast<Cycles>(r.versionedEntries) * costs.rollbackBase;
    c += static_cast<Cycles>(costs.rollbackPerByte *
                             static_cast<double>(r.versionedBytes));
    return c;
}

std::vector<Finding>
analyzeEnergyProgress(const ProgramModel &m, const EnergyBudget &budget,
                      const device::CostModel &costs)
{
    std::vector<Finding> out;
    if (!budget.bounded)
        return out;
    for (const auto &r : m.regions) {
        const Cycles reentry = reentryCycles(m, r, costs);
        const Cycles need = reentry + r.cycles;
        if (need <= budget.windowCycles)
            continue;
        Finding f;
        f.analysis = "energy-progress";
        f.app = m.app;
        f.runtime = m.runtime;
        f.subject = r.anchor;
        f.regionIndex = r.index;
        f.anchor = r.anchor;
        f.detail = fmt(
            "region needs %llu cycles (%llu work + %llu re-entry) but "
            "one charge of %s executes only %llu; it can never "
            "commit. Path: %s",
            static_cast<unsigned long long>(need),
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(reentry),
            budget.source.c_str(),
            static_cast<unsigned long long>(budget.windowCycles),
            touchedPath(m, r, 3).c_str());
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
analyzeTimeliness(const ProgramModel &m, const EnergyBudget &budget,
                  const device::CostModel &costs)
{
    std::vector<Finding> out;
    if (!budget.bounded)
        return out;

    struct Taint {
        std::size_t region = 0;
        Cycles atCycle = 0;
        bool seen = false;
    };
    std::map<std::string, Taint> taint; // id -> last timed assignment
    struct Worst {
        std::size_t sites = 0;
        TimeNs worstAge = 0;
        std::size_t regionIndex = 0;
        std::string anchor;
        TimeNs lifetime = 0;
    };
    std::map<std::string, Worst> flagged;

    for (const auto &r : m.regions) {
        std::set<std::string> checkedHere;
        for (const auto &s : r.sites) {
            switch (s.kind) {
              case mem::SideEventKind::TimedAssign:
                taint[s.id] = {r.index, s.atCycle, true};
                break;
              case mem::SideEventKind::TimedCheck:
                checkedHere.insert(s.id);
                break;
              case mem::SideEventKind::TimedUse: {
                const auto lifetime = static_cast<TimeNs>(s.u0);
                if (lifetime == 0)
                    break; // timestamped but never expires
                if (checkedHere.count(s.id))
                    break; // guarded: re-execution re-runs the check
                const Taint &t = taint[s.id];
                if (t.seen && t.region == r.index)
                    break; // re-execution re-assigns fresh data
                const TimeNs onPath = costs.cyclesToNs(
                    t.seen ? s.atCycle - t.atCycle : s.atCycle);
                const TimeNs worstAge =
                    onPath + budget.worstOutageAccumulationNs();
                if (worstAge <= lifetime)
                    break;
                auto &w = flagged[s.id];
                ++w.sites;
                if (worstAge > w.worstAge) {
                    w.worstAge = worstAge;
                    w.regionIndex = r.index;
                    w.anchor = r.anchor;
                    w.lifetime = lifetime;
                }
                break;
              }
              default:
                break;
            }
        }
    }

    for (const auto &[id, w] : flagged) {
        Finding f;
        f.analysis = "timeliness";
        f.app = m.app;
        f.runtime = m.runtime;
        f.subject = id;
        f.regionIndex = w.regionIndex;
        f.anchor = w.anchor;
        f.detail = fmt(
            "%zu unguarded use(s) of '%s': worst-case age %.1f ms "
            "(on-path + outages under %s) exceeds the %.1f ms "
            "expiration window with no freshness check in the "
            "re-executable region",
            w.sites, id.c_str(),
            static_cast<double>(w.worstAge) / kNsPerMs,
            budget.source.c_str(),
            static_cast<double>(w.lifetime) / kNsPerMs);
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
analyzeIoIdempotency(const ProgramModel &m, const EnergyBudget &budget)
{
    std::vector<Finding> out;
    if (!budget.bounded)
        return out;

    struct Worst {
        std::size_t sites = 0;
        std::size_t regionIndex = 0;
        std::string anchor;
    };
    std::map<std::string, Worst> flagged;

    for (const auto &r : m.regions) {
        for (const auto &s : r.sites) {
            if (s.kind != mem::SideEventKind::PeripheralSend)
                continue;
            if (s.inIoGuard)
                continue; // staged + sequence-guarded drain: at-most-
                          // once per committed stage
            auto &w = flagged[s.id.empty() ? "peripheral" : s.id];
            if (w.sites == 0) {
                w.regionIndex = r.index;
                w.anchor = r.anchor;
            }
            ++w.sites;
        }
    }

    for (const auto &[id, w] : flagged) {
        Finding f;
        f.analysis = "io-idempotency";
        f.app = m.app;
        f.runtime = m.runtime;
        f.subject = id;
        f.regionIndex = w.regionIndex;
        f.anchor = w.anchor;
        f.detail = fmt(
            "%zu direct %s transmission(s) inside re-executable "
            "regions (first: %s): a rollback after the send "
            "re-transmits with no undo-log or stage/sequence guard",
            w.sites, id.c_str(), w.anchor.c_str());
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
analyzeWarPossibility(const ProgramModel &m, const EnergyBudget &budget)
{
    std::vector<Finding> out;
    if (!budget.bounded)
        return out;
    for (const auto &w : m.warLatent) {
        Finding f;
        f.analysis = "war-possibility";
        f.app = m.app;
        f.runtime = m.runtime;
        f.subject = w.region;
        f.offset = w.offset;
        f.bytes = w.bytes;
        f.regionIndex = w.regionIndex;
        f.anchor = w.regionIndex < m.regions.size()
                       ? m.regions[w.regionIndex].anchor
                       : "?";
        f.detail = fmt(
            "bytes [%u, %u) of '%s' are read then overwritten without "
            "versioning in %s: a power failure inside the region "
            "re-reads the new value (Surbatovich WAR condition)",
            w.offset, w.offset + w.bytes, w.region.c_str(),
            f.anchor.c_str());
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
analyzeAll(const ProgramModel &m, const EnergyBudget &budget,
           const device::CostModel &costs)
{
    std::vector<Finding> out = analyzeEnergyProgress(m, budget, costs);
    auto timed = analyzeTimeliness(m, budget, costs);
    out.insert(out.end(), timed.begin(), timed.end());
    auto io = analyzeIoIdempotency(m, budget);
    out.insert(out.end(), io.begin(), io.end());
    auto war = analyzeWarPossibility(m, budget);
    out.insert(out.end(), war.begin(), war.end());
    return out;
}

} // namespace ticsim::verify
