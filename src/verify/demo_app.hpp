/**
 * @file
 * SensorRelay: the verifier's self-test workload. A sample-process-
 * transmit loop with two independently guardable hazards, so the
 * cross-validation harness has ground truth in both directions:
 *
 *  - timeliness: the sampled reading carries an expiration window; the
 *    guarded variant consumes it through an @expires freshness check,
 *    the unguarded variant reads it cold after the processing delay —
 *    statically flaggable, and dynamically observable as Expiration
 *    violations under an intermittent supply;
 *  - I/O idempotency: the guarded variant transmits through the
 *    virtualized radio (NV staging + post-commit drain), the unguarded
 *    variant calls the radio directly from mid-region code — statically
 *    flaggable, and dynamically observable as duplicate payloads.
 *
 * Both variants complete and verify under a continuous calibration
 * run, so every finding against the unguarded variant is a genuine
 * "possible under failures", never a "broken program".
 */

#ifndef TICSIM_VERIFY_DEMO_APP_HPP
#define TICSIM_VERIFY_DEMO_APP_HPP

#include <memory>

#include "board/board.hpp"
#include "tics/annotations.hpp"
#include "tics/io.hpp"
#include "tics/runtime.hpp"

namespace ticsim::verify {

struct SensorRelayOptions {
    bool checkFreshness = true;  ///< guard timed uses with @expires
    bool useVirtualRadio = true; ///< guard transmissions via staging
    std::uint32_t rounds = 12;
    TimeNs lifetime = 15 * kNsPerMs; ///< reading expiration window
    Cycles workCycles = 8000;        ///< processing between sample+use
};

class SensorRelayApp
{
  public:
    SensorRelayApp(board::Board &b, tics::TicsRuntime &rt,
                   SensorRelayOptions opt = {});

    void main();
    bool verify() const;

    std::uint32_t used() const { return used_.get(); }
    std::uint32_t stale() const { return stale_.get(); }

  private:
    struct Packet {
        std::uint32_t round;
        std::int32_t value;
    };

    board::Board &b_;
    tics::TicsRuntime &rt_;
    SensorRelayOptions opt_;
    tics::Expiring<std::int32_t> reading_;
    mem::nv<std::uint32_t> rounds_;
    mem::nv<std::uint32_t> used_;
    mem::nv<std::uint32_t> stale_;
    std::unique_ptr<tics::VirtualRadio> radio_;
};

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_DEMO_APP_HPP
