/**
 * @file
 * The three static analyses of ticsverify, run over a recovered
 * ProgramModel (plus the WAR-possibility pass that re-evaluates the
 * dynamic checker's condition over *every* region of the model):
 *
 *  1. energy-progress: per checkpoint region, compare the worst-case
 *     charge-to-execute (calibrated region work + re-entry overhead:
 *     boot, restore, worst-case rollback of the region's versioning
 *     traffic) against the power supply's per-window cycle budget. A
 *     region that needs more than one full charge can never commit —
 *     the program is statically non-terminating under that supply.
 *
 *  2. timeliness reachability: timestamped data is tainted at its
 *     timed assignment; a consumption is *guarded* when a freshness
 *     check on the same variable precedes it within the same region
 *     (re-execution then always re-evaluates the check before the
 *     use). Unguarded uses are flagged when the worst-case data age —
 *     calibrated on-path time plus the supply's worst-case outage
 *     accumulation — can exceed the variable's expiration window.
 *
 *  3. I/O idempotency: a peripheral transmission inside a region that
 *     can re-execute after rollback is flagged unless it happens
 *     inside a guarded post-commit drain window (the virtualized-I/O
 *     pattern: staged in NV, sequence-numbered, sent exactly once per
 *     committed stage).
 *
 * Soundness/completeness: the analyses are conservative — every
 * violation the dynamic checker can observe corresponds to a static
 * finding (the cross-validation harness machine-checks this), while
 * the reverse does not hold: a static finding is a *possibility*
 * under some failure schedule, not a certainty under the one schedule
 * ticscheck happened to run.
 */

#ifndef TICSIM_VERIFY_ANALYSES_HPP
#define TICSIM_VERIFY_ANALYSES_HPP

#include <string>
#include <vector>

#include "device/costs.hpp"
#include "energy/budget.hpp"
#include "verify/model.hpp"

namespace ticsim::verify {

// The budget arithmetic lives in energy/budget.hpp so the simulator's
// energy layer and the prob/envmodel passes share one definition; the
// verify names remain the canonical spelling inside the analyses.
using energy::EnergyBudget;
using energy::capacitorBudget;
using energy::patternBudget;
using energy::unboundedBudget;

/** One static finding, in run-report style. */
struct Finding {
    std::string analysis; ///< energy-progress | timeliness |
                          ///< io-idempotency | war-possibility
    std::string app;
    std::string runtime;
    std::string subject;  ///< NV region, timed variable, or peripheral
    std::size_t regionIndex = 0;
    std::string anchor;   ///< region anchor (task name or region#N)
    std::uint32_t offset = 0; ///< WAR ranges: offset within subject
    std::uint32_t bytes = 0;  ///< WAR ranges: range length
    std::string detail;   ///< human explanation with the offending path
};

/** Worst-case re-entry cost of @p r: boot + restore + rollback. */
Cycles reentryCycles(const ProgramModel &m, const RegionNode &r,
                     const device::CostModel &costs);

/** Analysis 1: statically non-terminating regions. */
std::vector<Finding> analyzeEnergyProgress(
    const ProgramModel &m, const EnergyBudget &budget,
    const device::CostModel &costs);

/** Analysis 2: unguarded timed uses that can exceed their window. */
std::vector<Finding> analyzeTimeliness(const ProgramModel &m,
                                       const EnergyBudget &budget,
                                       const device::CostModel &costs);

/** Analysis 3: re-executable unguarded peripheral transmissions. */
std::vector<Finding> analyzeIoIdempotency(const ProgramModel &m,
                                          const EnergyBudget &budget);

/** WAR pass: every latent range in the model becomes a finding. */
std::vector<Finding> analyzeWarPossibility(const ProgramModel &m,
                                           const EnergyBudget &budget);

/** All four analyses over one model. */
std::vector<Finding> analyzeAll(const ProgramModel &m,
                                const EnergyBudget &budget,
                                const device::CostModel &costs);

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_ANALYSES_HPP
