/**
 * @file
 * Probabilistic energy-aware timing analysis (the ETAP direction of
 * the ROADMAP): derives per-region completion-time *distributions* and
 * per-timed-variable freshness-violation *probabilities* statically
 * from the recovered ProgramModel and a probabilistic environment
 * model, instead of the boolean reachability verdicts of analyses.hpp.
 *
 * The Pmf type is a discrete distribution over the exact log-bucketed
 * layout of support/stats.hpp::Distribution. Sharing the layout is
 * what makes cross-validation meaningful: a statically derived
 * percentile and a ticssweep-simulated one are compared bucket-to-
 * bucket, so agreement is not an artifact of interpolation. Each
 * bucket additionally carries its first two weighted moments, so
 * means and variances stay exact under convolution even though the
 * support is bucketed.
 *
 * Completion-time model (per region, composed sequentially):
 *
 *   T_region = work + sum_{i=1..K} (outage_i + waste_i)
 *
 * where K is the number of power failures hitting the region. Runs
 * start at the top of a fresh window (the simulator boots at pattern
 * phase zero with the capacitor charged), so the analysis tracks the
 * window *position* distribution across regions: a region entered at
 * position v fits with the hazard-conditioned probability
 * P[W >= v + need | W >= v], retries restart at a fresh window top
 * and fail with the renewal probability P[W < need + re-entry] — an
 * outage draws from the environment's off-time distribution, and
 * waste accounts for the partial execution lost to the failed
 * attempt plus the boot/restore/rollback re-entry charge. Regions
 * whose retries can never fit a window contribute their mass to
 * pNonterm instead (the probabilistic face of the energy-progress
 * finding).
 */

#ifndef TICSIM_VERIFY_PROB_HPP
#define TICSIM_VERIFY_PROB_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "device/costs.hpp"
#include "support/stats.hpp"
#include "verify/model.hpp"

namespace ticsim::verify {

struct EnvModel; // envmodel.hpp

/**
 * Sparse probability mass function over Distribution's bucket layout.
 * Invariant: total mass stays in [0, 1]; operations that drop mass
 * (truncation, pruning) leave it sub-normalized — callers that need a
 * proper distribution call normalize().
 */
class Pmf
{
  public:
    /** Per-bucket mass and weighted moments: sum p, sum v*p, sum v^2*p. */
    struct Bucket {
        double mass = 0.0;
        double m1 = 0.0;
        double m2 = 0.0;
    };

    /** Point mass at @p v. */
    static Pmf delta(double v, double p = 1.0);

    /**
     * Truncated geometric count of failures before a success: P[K=k] =
     * (1-s)^k * s for k < maxCount, with the remaining tail mass at
     * maxCount. Untruncated mean (1-s)/s, variance (1-s)/s^2.
     */
    static Pmf geometric(double successProb, std::uint64_t maxCount);

    /**
     * Exponential with mean @p meanV, discretized into @p atoms
     * equal-mass quantile atoms (atom i sits at the conditional
     * median of its probability slice).
     */
    static Pmf exponential(double meanV, int atoms = 64);

    /** Exponential conditioned on v <= @p cap (same discretization). */
    static Pmf truncatedExponential(double meanV, double cap,
                                    int atoms = 64);

    /** Accumulate point mass @p p at value @p v. */
    void add(double v, double p);

    /** Distribution of the sum of independent draws (this + other). */
    Pmf convolve(const Pmf &o) const;

    /** Values scaled by @p k > 0 (unit conversion); masses unchanged. */
    Pmf scaled(double k) const;

    /** this += w * other (mixture accumulation). */
    void mixIn(const Pmf &o, double w);

    /** Rescale masses so totalMass() == 1 (no-op when empty). */
    void normalize();

    /** Drop buckets lighter than @p eps * totalMass(). */
    void prune(double eps = 1e-12);

    double totalMass() const;
    double mean() const;
    double variance() const;

    /**
     * Quantile by cumulative mass, reported as the bucket midpoint
     * clamped to the exact [min, max] envelope — the same reduction
     * Distribution::percentile applies, so the two agree whenever
     * their per-bucket masses agree.
     */
    double percentile(double fraction) const;
    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    /** P[X <= v], resolving each bucket at its own mean value. */
    double cdfAt(double v) const;

    double minValue() const { return any_ ? min_ : 0.0; }
    double maxValue() const { return any_ ? max_ : 0.0; }
    bool empty() const { return b_.empty(); }
    std::size_t bucketCount() const { return b_.size(); }
    const std::map<int, Bucket> &buckets() const { return b_; }

  private:
    std::map<int, Bucket> b_;
    double min_ = 0.0;
    double max_ = 0.0;
    bool any_ = false;
};

/** One region's contribution to the completion-time model. */
struct RegionTiming {
    std::size_t index = 0;
    std::string anchor;
    double needCycles = 0.0;      ///< calibrated work, overhead-scaled
    double reentryCycles = 0.0;   ///< boot + restore + rollback
    double pFirstFail = 0.0;      ///< P[first attempt hits an outage]
    double pRetryFail = 0.0;      ///< P[fresh window still too small]
    double meanOutages = 0.0;
};

/** Statically derived completion-time distribution of one pair. */
struct TimingEstimate {
    std::string app;
    std::string runtime;
    std::string env;            ///< environment model name
    Pmf completionNs;           ///< elapsed (powered + off) time
    double pNonterm = 0.0;      ///< P[program never completes]
    double meanOutages = 0.0;   ///< expected reboot count
    std::vector<RegionTiming> regions;
};

/** Whole-program completion-time distribution under @p env. */
TimingEstimate completionTime(const ProgramModel &m, const EnvModel &env,
                              const device::CostModel &costs);

/** One timed variable's freshness-violation probability. */
struct FreshnessEstimate {
    std::string app;
    std::string runtime;
    std::string env;
    std::string subject;       ///< timed variable
    std::string anchor;        ///< region of the worst use
    double lifetimeNs = 0.0;
    double pViolation = 0.0;   ///< P[age at use > lifetime]
    std::size_t sites = 0;     ///< unguarded use sites considered
};

/**
 * P[age at use > lifetime] for every unguarded cross-region timed use
 * (the same taint/guard walk as analyzeTimeliness, quantified): age =
 * on-path time between the timed assignment and the use, plus the
 * off-time of every outage the spanned regions can suffer.
 */
std::vector<FreshnessEstimate>
freshnessViolations(const ProgramModel &m, const EnvModel &env,
                    const device::CostModel &costs);

/** An SLO query: "at least @p slo of completions within deadline". */
struct SloQuery {
    double slo = 0.95;
    double deadlineNs = 0.0;
};

/** Result of the inverse capacitor-sizing query. */
struct CapacitorSizing {
    bool feasible = false;
    double capacitanceF = 0.0;  ///< smallest step meeting the SLO
    double pOnTime = 0.0;       ///< P[on time] at that capacitance
    /** (capacitance, P[on time]) for every step probed, ascending. */
    std::vector<std::pair<double, double>> curve;
};

/** Probed capacitance grid: geometric steps over [minF, maxF]. */
struct CapacitorGrid {
    double minF = 0.5e-6;
    double maxF = 512e-6;
    double stepFactor = 1.5;
};

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_PROB_HPP
