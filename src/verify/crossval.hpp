/**
 * @file
 * Cross-validation of the static verifier against the dynamic checker
 * — the soundness argument, machine-checked:
 *
 *  - every *dynamic* detection (a WAR hazard ticscheck's detector
 *    found in a real intermittent run, an expiration violation the
 *    ViolationMonitor observed, a duplicate transmission the radio
 *    log recorded) must be covered by a static ticsverify finding on
 *    the same (app, runtime) pair — 100% coverage or the harness
 *    fails;
 *  - the reverse gap is *reported, not failed*: static findings with
 *    no dynamic counterpart are the false-positive rate, the price of
 *    verifying every region instead of the failure schedule one run
 *    happened to see.
 *
 * Dynamic evidence comes from analysis::checkMatrix (BC/Cuckoo under
 * every runtime) plus pattern-supply probe runs of the pairs the
 * checker's matrix excludes (AR, GHM, Study, SensorRelay), traced
 * with the same AccessTracer + WarHazardDetector pipeline.
 */

#ifndef TICSIM_VERIFY_CROSSVAL_HPP
#define TICSIM_VERIFY_CROSSVAL_HPP

#include <string>
#include <vector>

#include "support/table.hpp"
#include "verify/verifier.hpp"

namespace ticsim::verify {

/** Coverage accounting for one (app, runtime) pair. */
struct CrossValRow {
    std::string app;
    std::string runtime;
    /** Dynamic detections: WAR hazards + observed expirations +
     *  duplicate transmissions. */
    std::size_t dynamicDetections = 0;
    /** Matched by a static finding with overlapping byte range. */
    std::size_t matchedExact = 0;
    /** Matched at NV-region / subject granularity. */
    std::size_t matched = 0;
    std::size_t staticFindings = 0;
    std::size_t confirmed = 0; ///< static findings with dynamic proof

    double coverage() const
    {
        return dynamicDetections == 0
                   ? 1.0
                   : static_cast<double>(matched) /
                         static_cast<double>(dynamicDetections);
    }

    double falsePositiveRate() const
    {
        return staticFindings == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(confirmed) /
                               static_cast<double>(staticFindings);
    }
};

struct CrossValReport {
    std::vector<CrossValRow> rows;
    std::size_t totalDynamic = 0;
    std::size_t totalMatched = 0;
    std::size_t totalStatic = 0;
    std::size_t totalConfirmed = 0;

    bool fullCoverage() const { return totalMatched == totalDynamic; }
};

/** Run static + dynamic matrices and match their findings. */
CrossValReport crossValidate(const VerifyConfig &cfg = {});

/** Per-pair coverage / false-positive table. */
Table crossValTable(const CrossValReport &report);

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_CROSSVAL_HPP
