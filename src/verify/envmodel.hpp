/**
 * @file
 * Probabilistic environment models for the static timing analysis: a
 * distribution over powered-window lengths (in cycles) and one over
 * per-death off times (in ns), derived from the same parameters the
 * simulated supplies use, via the shared energy/budget arithmetic.
 *
 *  - patternEnv: the deterministic tier-1 reset pattern; both
 *    distributions are point masses, so the probabilistic analysis
 *    degenerates to the boolean one's arithmetic.
 *
 *  - stochasticEnv: the Gilbert-style bursty harvester feeding a
 *    capacitor (harness PowerSetup::Stochastic). The device rides
 *    through a harvester-off interval when the capacitor's stored
 *    energy outlasts it; a window is therefore a geometric number of
 *    exponential on-intervals joined by survived off-intervals, ending
 *    in the ride-through drain of a fatal off. The off-time after a
 *    death is the memoryless off remainder plus the vOff-to-vOn
 *    recharge time at the mean harvest rate.
 *
 * Known approximations (see DESIGN.md): ride-through energy is taken
 * at the full vMax charge (the capacitor tops up within ~2 ms of a
 * 1 uF window, but a death early in a window rides on less), harvest
 * power uses its mean (the simulator jitters per-interval by
 * U(0.6, 1.4)), and recharging is assumed uninterrupted.
 */

#ifndef TICSIM_VERIFY_ENVMODEL_HPP
#define TICSIM_VERIFY_ENVMODEL_HPP

#include <cstdint>
#include <string>

#include "device/costs.hpp"
#include "energy/budget.hpp"
#include "verify/prob.hpp"

namespace ticsim::verify {

/** The environment as the timing analysis sees it. */
struct EnvModel {
    std::string name;           ///< supply-axis token, e.g. "stochastic"
    Pmf windowCycles;           ///< powered-window length distribution
    Pmf outageNs;               ///< off time per death
    std::uint64_t maxOutages = 300; ///< starvation bound (reboot limit)
};

/** Deterministic reset pattern: delta window, delta outage. */
EnvModel patternEnv(TimeNs period, double onFraction,
                    const device::CostModel &costs,
                    std::uint64_t rebootLimit);

/**
 * Parameters of the stochastic harvesting environment; defaults match
 * harness::SupplySpec / energy::HarvestingSupply::Config, so an
 * unmodified struct models the ticssweep "stochastic" supply axis.
 */
struct StochasticEnvParams {
    double capacitanceF = 10e-6;
    double vMax = 5.25;
    double vOn = 3.0;
    double vOff = 1.8;
    Watts leakage = 1e-6;
    Watts meanPower = 2.2e-3;
    TimeNs meanOnNs = 80 * kNsPerMs;
    TimeNs meanOffNs = 150 * kNsPerMs;
    int atoms = 64;             ///< quantile atoms per exponential
};

/** Stochastic-harvester environment for a given capacitance. */
EnvModel stochasticEnv(const StochasticEnvParams &p,
                       const device::CostModel &costs,
                       std::uint64_t rebootLimit);

/**
 * Inverse SLO query: smallest capacitance on the grid whose derived
 * completion-time distribution satisfies @p q, i.e. (1 - pNonterm) *
 * P[T <= deadline] >= slo. The probability is monotone in capacitance
 * (a bigger buffer rides out more outages), so the scan records the
 * whole probability curve and stops at the first satisfying step.
 */
CapacitorSizing sizeCapacitor(const ProgramModel &m,
                              const StochasticEnvParams &base,
                              const device::CostModel &costs,
                              const SloQuery &q,
                              const CapacitorGrid &grid = {},
                              std::uint64_t rebootLimit = 300);

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_ENVMODEL_HPP
