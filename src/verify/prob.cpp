#include "prob.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "verify/analyses.hpp"
#include "verify/envmodel.hpp"

namespace ticsim::verify {

namespace {

/** Mass below which a geometric/convolution tail is folded away. */
constexpr double kTailEps = 1e-9;

/** Retry-failure probability treated as "never fits a window". */
constexpr double kNontermThreshold = 1.0 - 1e-9;

double
bucketRep(const Pmf::Bucket &b)
{
    return b.mass > 0.0 ? b.m1 / b.mass : 0.0;
}

} // namespace

// ---- Pmf ------------------------------------------------------------------

Pmf
Pmf::delta(double v, double p)
{
    Pmf out;
    out.add(v, p);
    return out;
}

Pmf
Pmf::geometric(double successProb, std::uint64_t maxCount)
{
    Pmf out;
    const double s = std::clamp(successProb, 0.0, 1.0);
    if (s <= 0.0) {
        out.add(static_cast<double>(maxCount), 1.0);
        return out;
    }
    double tail = 1.0; // (1-s)^k, mass not yet assigned
    for (std::uint64_t k = 0; k < maxCount; ++k) {
        out.add(static_cast<double>(k), tail * s);
        tail *= 1.0 - s;
        if (tail < kTailEps)
            break;
    }
    if (tail >= kTailEps)
        out.add(static_cast<double>(maxCount), tail);
    else
        out.normalize();
    return out;
}

Pmf
Pmf::exponential(double meanV, int atoms)
{
    Pmf out;
    atoms = std::max(1, atoms);
    const double w = 1.0 / atoms;
    for (int i = 0; i < atoms; ++i) {
        const double p = (i + 0.5) * w;
        out.add(-meanV * std::log1p(-p), w);
    }
    return out;
}

Pmf
Pmf::truncatedExponential(double meanV, double cap, int atoms)
{
    Pmf out;
    atoms = std::max(1, atoms);
    if (meanV <= 0.0 || cap <= 0.0)
        return delta(std::max(0.0, cap) * 0.5);
    // Inverse CDF of Exp(mean) | v <= cap:
    //   x(p) = -mean * ln(1 - p * (1 - e^{-cap/mean}))
    const double capMass = -std::expm1(-cap / meanV);
    const double w = 1.0 / atoms;
    for (int i = 0; i < atoms; ++i) {
        const double p = (i + 0.5) * w;
        out.add(-meanV * std::log1p(-p * capMass), w);
    }
    return out;
}

void
Pmf::add(double v, double p)
{
    if (p <= 0.0)
        return;
    auto &b = b_[Distribution::bucketIndex(v)];
    b.mass += p;
    b.m1 += v * p;
    b.m2 += v * v * p;
    if (!any_) {
        min_ = max_ = v;
        any_ = true;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

Pmf
Pmf::convolve(const Pmf &o) const
{
    Pmf out;
    if (b_.empty() || o.b_.empty())
        return out;
    for (const auto &[ia, a] : b_) {
        const double va = bucketRep(a);
        for (const auto &[ib, b] : o.b_) {
            const double vb = bucketRep(b);
            auto &dst = out.b_[Distribution::bucketIndex(va + vb)];
            // Product measure restricted to this sum bucket; the
            // cross-moment identities keep the global mean and
            // variance exact: E[(A+B)^2] = E[A^2] + 2 E[A]E[B] +
            // E[B^2] for independent A, B.
            dst.mass += a.mass * b.mass;
            dst.m1 += a.m1 * b.mass + b.m1 * a.mass;
            dst.m2 += a.m2 * b.mass + b.m2 * a.mass + 2.0 * a.m1 * b.m1;
        }
    }
    out.any_ = true;
    out.min_ = min_ + o.min_;
    out.max_ = max_ + o.max_;
    return out;
}

Pmf
Pmf::scaled(double k) const
{
    Pmf out;
    for (const auto &[idx, b] : b_) {
        auto &dst = out.b_[Distribution::bucketIndex(bucketRep(b) * k)];
        dst.mass += b.mass;
        dst.m1 += b.m1 * k;
        dst.m2 += b.m2 * k * k;
    }
    out.any_ = any_;
    out.min_ = min_ * k;
    out.max_ = max_ * k;
    return out;
}

void
Pmf::mixIn(const Pmf &o, double w)
{
    if (w <= 0.0 || o.b_.empty())
        return;
    for (const auto &[idx, b] : o.b_) {
        auto &dst = b_[idx];
        dst.mass += b.mass * w;
        dst.m1 += b.m1 * w;
        dst.m2 += b.m2 * w;
    }
    if (!any_) {
        min_ = o.min_;
        max_ = o.max_;
        any_ = o.any_;
    } else if (o.any_) {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
}

void
Pmf::normalize()
{
    const double total = totalMass();
    if (total <= 0.0)
        return;
    for (auto &[idx, b] : b_) {
        b.mass /= total;
        b.m1 /= total;
        b.m2 /= total;
    }
}

void
Pmf::prune(double eps)
{
    const double floor = eps * totalMass();
    for (auto it = b_.begin(); it != b_.end();) {
        if (it->second.mass < floor)
            it = b_.erase(it);
        else
            ++it;
    }
}

double
Pmf::totalMass() const
{
    double t = 0.0;
    for (const auto &[idx, b] : b_)
        t += b.mass;
    return t;
}

double
Pmf::mean() const
{
    const double t = totalMass();
    if (t <= 0.0)
        return 0.0;
    double m1 = 0.0;
    for (const auto &[idx, b] : b_)
        m1 += b.m1;
    return m1 / t;
}

double
Pmf::variance() const
{
    const double t = totalMass();
    if (t <= 0.0)
        return 0.0;
    double m1 = 0.0, m2 = 0.0;
    for (const auto &[idx, b] : b_) {
        m1 += b.m1;
        m2 += b.m2;
    }
    const double mu = m1 / t;
    return std::max(0.0, m2 / t - mu * mu);
}

double
Pmf::percentile(double fraction) const
{
    const double t = totalMass();
    if (t <= 0.0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * t;
    double seen = 0.0;
    for (const auto &[idx, b] : b_) {
        seen += b.mass;
        if (seen >= target)
            return std::clamp(Distribution::bucketMid(idx), min_, max_);
    }
    return max_;
}

double
Pmf::cdfAt(double v) const
{
    const double t = totalMass();
    if (t <= 0.0)
        return 0.0;
    double below = 0.0;
    for (const auto &[idx, b] : b_) {
        if (bucketRep(b) <= v)
            below += b.mass;
    }
    return below / t;
}

// ---- completion time ------------------------------------------------------

namespace {

/**
 * E over W of min(1, need / W): the probability that an attempt
 * starting at a uniformly random position of a window of length W
 * does not fit before the window ends. Used by the freshness walk,
 * where a timed span starts at an arbitrary point of the schedule.
 */
double
uniformStartFailProb(const Pmf &windowCycles, double needCycles)
{
    double p = 0.0;
    const double total = windowCycles.totalMass();
    if (total <= 0.0)
        return 1.0;
    for (const auto &[idx, b] : windowCycles.buckets()) {
        const double w = bucketRep(b);
        p += b.mass * (w <= needCycles || w <= 0.0
                           ? 1.0
                           : needCycles / w);
    }
    return std::clamp(p / total, 0.0, 1.0);
}

/**
 * E[W - lo | lo <= W < hi]: mean wasted run time of a window that
 * survived to position @p lo but ends before @p hi. Zero when no
 * window mass lies in the range.
 */
double
condWasteInRange(const Pmf &w, double lo, double hi)
{
    double num = 0.0, mass = 0.0;
    for (const auto &[idx, b] : w.buckets()) {
        const double r = bucketRep(b);
        if (r < lo * (1.0 - 1e-12))
            continue; // window ended before reaching lo
        if (r > hi * (1.0 - 1e-12))
            continue; // window fits the attempt
        num += (r - lo) * b.mass;
        mass += b.mass;
    }
    return mass > 0.0 ? std::max(0.0, num / mass) : 0.0;
}

/**
 * One region advanced through the window chain. The position of the
 * region's start within the current powered window is tracked as a
 * distribution, so a program that deterministically fits its windows
 * is predicted outage-free — matching the simulator, whose runs start
 * at the beginning of a fresh window (pattern phase zero, capacitor
 * charged to the turn-on threshold).
 */
struct RegionMix {
    Pmf elapsedNs;  ///< region wall time incl. outage costs
    Pmf newPos;     ///< window position after the region completes
    double pFail = 0.0;      ///< first-attempt failure probability
    double pRetryFail = 0.0; ///< fresh-window retry failure prob.
    double pNonterm = 0.0;
    double meanOutages = 0.0;
};

RegionMix
advanceRegion(const EnvModel &env, const device::CostModel &costs,
              double need, double reentry, const Pmf &pos)
{
    RegionMix out;
    const double ct = static_cast<double>(costs.cycleTimeNs());
    const Pmf &W = env.windowCycles;

    // First attempt: hazard-conditioned on the window having survived
    // to the region's start position. P[fit | alive at v] =
    // P[W >= v + need] / P[W >= v]; the epsilon keeps an exact fit on
    // the success side of the bucket edge.
    double wasteNum = 0.0;
    for (const auto &[idx, b] : pos.buckets()) {
        const double v = bucketRep(b);
        const double p = b.mass;
        const double denom = 1.0 - W.cdfAt(v * (1.0 - 1e-12));
        if (denom <= 1e-12) {
            out.pFail += p; // window exhausted exactly here
            continue;
        }
        const double pFit = std::clamp(
            (1.0 - W.cdfAt((v + need) * (1.0 - 1e-12))) / denom, 0.0,
            1.0);
        out.newPos.add(v + need, p * pFit);
        const double pf = p * (1.0 - pFit);
        if (pf > 0.0) {
            out.pFail += pf;
            wasteNum += pf * condWasteInRange(W, v, v + need);
        }
    }
    out.pFail = std::clamp(out.pFail, 0.0, 1.0);

    // A retry restarts the region at the top of a fresh window,
    // paying the re-entry charge before the region's work.
    const double q =
        W.cdfAt((need + reentry) * (1.0 - 1e-12));
    out.pRetryFail = q;

    out.elapsedNs.mixIn(Pmf::delta(need * ct), 1.0 - out.pFail);
    if (out.pFail <= kTailEps)
        return out;

    if (q >= kNontermThreshold) {
        // Retries can never fit: completing requires the first
        // attempt to succeed; the failure mass starves.
        out.pNonterm = out.pFail;
        return out;
    }

    // K >= 1 outages: the rest of the first window (the device keeps
    // running until the energy dies), one off time, then k - 1 failed
    // full-window retries, then the successful retry (re-entry +
    // work). Waste terms carry conditional means only — the off-time
    // distributions keep their full shape.
    const double wasteFirst = wasteNum / out.pFail;
    const double retryWaste = condWasteInRange(W, 0.0, need + reentry);
    Pmf perRetry = env.outageNs.convolve(Pmf::delta(retryWaste * ct));
    perRetry.prune();
    Pmf acc = env.outageNs.convolve(
        Pmf::delta((wasteFirst + reentry + need) * ct));
    acc.prune(1e-10);

    double w = out.pFail; // P[K >= k] entering iteration k
    for (std::uint64_t k = 1; w > kTailEps; ++k) {
        if (k > 1) {
            acc = acc.convolve(perRetry);
            acc.prune(1e-10);
        }
        if (k >= env.maxOutages) {
            out.pNonterm += w; // starvation bound exhausted
            break;
        }
        out.elapsedNs.mixIn(acc, w * (1.0 - q)); // exactly k outages
        out.meanOutages += w; // sum over k of P[K >= k] = E[K]
        w *= q;
    }

    // A successful retry leaves the device at re-entry + work of a
    // fresh window.
    out.newPos.add(reentry + need,
                   std::max(0.0, out.pFail - out.pNonterm));
    return out;
}

} // namespace

TimingEstimate
completionTime(const ProgramModel &m, const EnvModel &env,
               const device::CostModel &costs)
{
    TimingEstimate est;
    est.app = m.app;
    est.runtime = m.runtime;
    est.env = env.name;

    // The calibration run measures the true failure-free on-path time
    // including runtime overhead outside the recorded regions (boot,
    // checkpoint logic, timekeeping); spread that overhead over the
    // regions proportionally so per-region failure probabilities see
    // the cycles the simulator actually burns there.
    double regionCycles = 0.0;
    for (const auto &r : m.regions)
        regionCycles += static_cast<double>(r.cycles);
    const double overheadScale =
        (regionCycles > 0.0 && m.totalCycles > 0)
            ? static_cast<double>(m.totalCycles) / regionCycles
            : 1.0;

    est.completionNs = Pmf::delta(0.0);
    Pmf pos = Pmf::delta(0.0); // runs start at a fresh window's top
    double pAlive = 1.0; // P[no nonterminating region hit so far]

    for (const auto &r : m.regions) {
        const double need =
            static_cast<double>(r.cycles) * overheadScale;
        const double reentry =
            static_cast<double>(reentryCycles(m, r, costs));

        RegionMix mix = advanceRegion(env, costs, need, reentry, pos);

        RegionTiming rt;
        rt.index = r.index;
        rt.anchor = r.anchor;
        rt.needCycles = need;
        rt.reentryCycles = reentry;
        rt.pFirstFail = mix.pFail;
        rt.pRetryFail = mix.pRetryFail;
        rt.meanOutages = mix.meanOutages;
        est.regions.push_back(std::move(rt));

        est.pNonterm += pAlive * mix.pNonterm;
        pAlive *= 1.0 - mix.pNonterm;
        est.meanOutages += mix.meanOutages;

        if (mix.newPos.totalMass() <= 0.0) {
            // Nothing survives this region; the estimate is the
            // failure-free prefix.
            est.completionNs = est.completionNs.convolve(
                Pmf::delta(need * static_cast<double>(
                                      costs.cycleTimeNs())));
            break;
        }

        mix.elapsedNs.normalize();
        est.completionNs = est.completionNs.convolve(mix.elapsedNs);
        est.completionNs.prune(1e-10);
        mix.newPos.normalize();
        pos = std::move(mix.newPos);
    }

    est.pNonterm = std::clamp(est.pNonterm, 0.0, 1.0);
    est.completionNs.normalize();
    return est;
}

// ---- freshness ------------------------------------------------------------

std::vector<FreshnessEstimate>
freshnessViolations(const ProgramModel &m, const EnvModel &env,
                    const device::CostModel &costs)
{
    std::vector<FreshnessEstimate> out;

    struct Taint {
        std::size_t region = 0;
        Cycles atCycle = 0;
        bool seen = false;
    };
    std::map<std::string, Taint> taint;
    std::map<std::string, FreshnessEstimate> flagged;

    // Precompute each region's outage mixture once; a use's age
    // accumulates the off-time of every region between its timed
    // assignment and itself (inclusive).
    std::vector<Pmf> regionOffNs(m.regions.size());
    for (const auto &r : m.regions) {
        const double need = static_cast<double>(r.cycles);
        const double reentry =
            static_cast<double>(reentryCycles(m, r, costs));
        const double pFirstFail =
            uniformStartFailProb(env.windowCycles, need);
        const double pRetryFail =
            env.windowCycles.cdfAt(need + reentry);
        Pmf mix = Pmf::delta(0.0, 1.0 - pFirstFail);
        if (pRetryFail < kNontermThreshold) {
            Pmf acc;
            double w = pFirstFail;
            for (std::uint64_t k = 1;
                 w > kTailEps && k <= env.maxOutages; ++k) {
                acc = k == 1 ? env.outageNs : acc.convolve(env.outageNs);
                acc.prune(1e-10);
                mix.mixIn(acc, w * (1.0 - pRetryFail));
                w *= pRetryFail;
            }
        } else {
            // Nonterminating region: a use after it is unreachable;
            // saturate with the worst single outage.
            mix.mixIn(Pmf::delta(env.outageNs.maxValue()), pFirstFail);
        }
        mix.normalize();
        regionOffNs[r.index] = std::move(mix);
    }

    for (const auto &r : m.regions) {
        std::set<std::string> checkedHere;
        for (const auto &s : r.sites) {
            switch (s.kind) {
              case mem::SideEventKind::TimedAssign:
                taint[s.id] = {r.index, s.atCycle, true};
                break;
              case mem::SideEventKind::TimedCheck:
                checkedHere.insert(s.id);
                break;
              case mem::SideEventKind::TimedUse: {
                const auto lifetime = static_cast<double>(s.u0);
                if (lifetime <= 0.0)
                    break; // never expires
                if (checkedHere.count(s.id))
                    break; // guarded: the check re-runs on re-entry
                const Taint &t = taint[s.id];
                if (t.seen && t.region == r.index)
                    break; // same region: re-execution re-assigns
                const double onPathNs =
                    static_cast<double>(costs.cyclesToNs(
                        t.seen ? s.atCycle - t.atCycle : s.atCycle));
                Pmf age = Pmf::delta(onPathNs);
                const std::size_t from = t.seen ? t.region : 0;
                for (std::size_t i = from; i <= r.index; ++i) {
                    age = age.convolve(regionOffNs[i]);
                    age.prune(1e-10);
                }
                const double pViol = 1.0 - age.cdfAt(lifetime);
                auto &f = flagged[s.id];
                ++f.sites;
                if (pViol >= f.pViolation) {
                    f.pViolation = pViol;
                    f.anchor = r.anchor;
                    f.lifetimeNs = lifetime;
                }
                break;
              }
              default:
                break;
            }
        }
    }

    for (auto &[id, f] : flagged) {
        f.app = m.app;
        f.runtime = m.runtime;
        f.env = env.name;
        f.subject = id;
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace ticsim::verify
