/**
 * @file
 * Recovered program model for static verification (ticsverify).
 *
 * The verifier never executes the application under power failures.
 * Instead it recovers a whole-program model from one *failure-free
 * calibration run* under a continuous supply, observed through the
 * same mem::AccessSink bus the dynamic checker uses, plus the task
 * graph the task runtimes expose directly. The model is a sequence of
 * *checkpoint regions* — the spans between commit points — each
 * carrying:
 *
 *  - the ordered NV access events (read/write/versioned), exactly as
 *    the dynamic AccessTracer would record them, so the static WAR
 *    analysis is byte-for-byte the dynamic detector's condition
 *    evaluated over every region instead of only the intervals a
 *    particular failure schedule happened to cut;
 *  - calibrated cycle costs (region work, versioning traffic) from
 *    which worst-case re-entry charges are derived;
 *  - side events: persistent-clock reads, timed assignments / uses /
 *    freshness checks, peripheral transmissions and the guarded-drain
 *    windows of the virtualized I/O layer, and task-dispatch anchors.
 *
 * Everything is resolved to stable names (NV region table snapshot,
 * task names) at recovery time, so the model outlives the board it
 * was recorded on and the analyses run on plain data.
 */

#ifndef TICSIM_VERIFY_MODEL_HPP
#define TICSIM_VERIFY_MODEL_HPP

#include <string>
#include <vector>

#include "analysis/access_trace.hpp"
#include "board/board.hpp"
#include "mem/trace.hpp"

namespace ticsim::verify {

/** One side event, stamped with the absolute calibration cycle. */
struct SiteEvent {
    mem::SideEventKind kind;
    std::string id;          ///< timed variable / peripheral / task name
    std::uint64_t u0 = 0;    ///< kind-specific (lifetime ns, bytes, ...)
    Cycles atCycle = 0;      ///< absolute cycle count when observed
    bool inIoGuard = false;  ///< inside a guarded post-commit drain
};

/** Snapshot of one named NV region (survives the board). */
struct NvRegionInfo {
    std::string name;
    Addr base = 0;
    std::uint32_t size = 0;
};

/** One recovered checkpoint region. */
struct RegionNode {
    std::size_t index = 0;
    /** Dispatch anchor: the task running in this region, or
     *  "region#N" for checkpoint-based runtimes. */
    std::string anchor;
    analysis::IntervalEnd end = analysis::IntervalEnd::RunEnd;
    Cycles cycles = 0;          ///< calibrated work inside the region
    Cycles startCycle = 0;      ///< absolute cycle at region entry
    std::uint64_t versionedEntries = 0; ///< undo/snapshot version ops
    std::uint64_t versionedBytes = 0;   ///< bytes made recoverable
    std::vector<analysis::AccessEvent> events; ///< NV traffic, in order
    std::vector<SiteEvent> sites;              ///< side events, in order
};

/** A statically reachable WAR range (latent hazard in the model). */
struct WarRange {
    std::string region;       ///< NV region name
    std::uint32_t offset = 0; ///< offset within the region
    std::uint32_t bytes = 0;
    std::size_t regionIndex = 0; ///< model region it occurs in
};

/** One task node recovered from the task runtime's graph. */
struct TaskInfo {
    std::string name;
    std::uint64_t dispatches = 0; ///< calibration dispatch count
};

/** The recovered whole-program model. */
struct ProgramModel {
    std::string app;
    std::string runtime;
    bool calibrated = false; ///< calibration run completed + verified
    Cycles totalCycles = 0;
    TimeNs elapsed = 0;
    std::vector<RegionNode> regions;
    std::vector<NvRegionInfo> nvRegions;
    std::vector<WarRange> warLatent; ///< uncovered read-then-write ranges
    std::vector<TaskInfo> tasks;     ///< empty for non-task runtimes
    std::size_t channelCount = 0;
    /** Segmentation metadata (0 for non-TICS runtimes). */
    std::uint32_t segmentBytes = 0;

    /** Name of the NV region covering @p a, or "?". */
    std::string regionNameAt(Addr a) const;

    /** Largest single-region calibrated cycle count. */
    Cycles worstRegionCycles() const;
};

/**
 * Records a ProgramModel during one failure-free Board::run. Installs
 * itself as the process-wide access sink on construction (restoring
 * the previous one on destruction); call finalize() after the run to
 * close the trailing region and snapshot the NV region table.
 *
 * Data-event filtering matches the dynamic AccessTracer exactly: app
 * context only, NvRam arena only, simulated stack excluded — so the
 * static WAR condition sees the same stream the dynamic checker sees.
 */
class ModelRecorder final : public mem::AccessSink
{
  public:
    explicit ModelRecorder(board::Board &board);
    ~ModelRecorder() override;

    ModelRecorder(const ModelRecorder &) = delete;
    ModelRecorder &operator=(const ModelRecorder &) = delete;

    // ---- mem::AccessSink --------------------------------------------------
    void memRead(const void *p, std::uint32_t bytes) override;
    void memWrite(const void *p, std::uint32_t bytes) override;
    void memVersioned(const void *p, std::uint32_t bytes) override;
    void powerOn() override;
    void commit() override;
    void sideEvent(const mem::SideEvent &ev) override;

    /** Close the open region and snapshot the NV layout. */
    void finalize();

    /** The recovered model (valid after finalize()). */
    ProgramModel &model() { return model_; }
    const ProgramModel &model() const { return model_; }

    /** Interval view of the recorded regions for the WAR detector. */
    std::vector<analysis::IntervalTrace> intervalView() const;

  private:
    void recordData(analysis::AccessKind kind, const void *p,
                    std::uint32_t bytes);
    void closeRegion(analysis::IntervalEnd end);

    board::Board &board_;
    mem::AccessSink *prev_;
    ProgramModel model_;
    RegionNode open_;
    std::uint32_t guardDepth_ = 0;
    bool finalized_ = false;
};

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_MODEL_HPP
