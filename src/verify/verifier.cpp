#include "verifier.hpp"

#include <memory>
#include <utility>

#include "analysis/war_detector.hpp"
#include "apps/ar/ar_legacy.hpp"
#include "apps/bc/bc_chinchilla.hpp"
#include "apps/bc/bc_task.hpp"
#include "apps/cuckoo/cuckoo_chinchilla.hpp"
#include "apps/cuckoo/cuckoo_legacy.hpp"
#include "apps/cuckoo/cuckoo_task.hpp"
#include "apps/ghm/ghm.hpp"
#include "apps/study/study.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "runtimes/chinchilla.hpp"
#include "runtimes/mementos.hpp"
#include "runtimes/plainc.hpp"
#include "verify/demo_app.hpp"

namespace ticsim::verify {

namespace {

tics::TicsConfig
ticsMatrixConfig()
{
    // Matches the dynamic checker's matrix configuration so the
    // cross-validation compares the same programs.
    tics::TicsConfig c;
    c.segmentBytes = 256;
    c.policy = tics::PolicyKind::Timer;
    c.timerPeriod = 5 * kNsPerMs;
    return c;
}

/** Collapse detector hazards to deduplicated model WAR ranges. */
void
fillWarRanges(ProgramModel &model, const analysis::WarReport &war)
{
    for (const auto &h : war.hazards) {
        bool dup = false;
        for (const auto &w : model.warLatent) {
            if (w.region == h.region && w.offset == h.offset &&
                w.bytes == h.bytes) {
                dup = true;
                break;
            }
        }
        if (!dup)
            model.warLatent.push_back(
                {h.region, h.offset, h.bytes, h.interval});
    }
}

/** Count task dispatches out of the recorded side events. */
void
fillTaskDispatches(ProgramModel &model)
{
    for (const auto &r : model.regions) {
        for (const auto &s : r.sites) {
            if (s.kind != mem::SideEventKind::TaskDispatch)
                continue;
            for (auto &t : model.tasks) {
                if (t.name == s.id) {
                    ++t.dispatches;
                    break;
                }
            }
        }
    }
}

/**
 * One failure-free calibration run: fresh board + runtime + app under
 * a continuous supply, recorded through the ModelRecorder, WAR-
 * analyzed while the arena is still alive. @p extras lets a pair
 * harvest runtime-specific structure (task graph, segment size).
 */
template <typename MakeRt, typename MakeApp, typename Extras>
ProgramModel
recoverModel(const VerifyConfig &cfg, const std::string &appName,
             const MakeRt &makeRt, const MakeApp &makeApp,
             const Extras &extras)
{
    auto board = harness::makeBoard(harness::continuousSpec(), cfg.seed);
    auto rt = makeRt();
    auto app = makeApp(*board, *rt);

    std::function<void()> entry;
    if constexpr (requires { app->main(); })
        entry = [&app] { app->main(); };

    ModelRecorder rec(*board);
    const auto res =
        board->run(*rt, std::move(entry), cfg.calibrationBudget);
    rec.finalize();

    // Interval view before the move below empties the recorder.
    const auto war = analysis::WarHazardDetector(board->nvram())
                         .analyze(rec.intervalView());

    ProgramModel model = std::move(rec.model());
    model.app = appName;
    model.runtime = rt->name();
    bool verified = true;
    if constexpr (requires { app->verify(); })
        verified = app->verify();
    else if constexpr (requires { app->outcome(); })
        verified = app->outcome().consistent;
    model.calibrated = res.completed && verified;

    fillWarRanges(model, war);
    extras(*rt, model);
    fillTaskDispatches(model);

    harness::recordRun(appName + "/calibration", *rt, *board, res);
    return model;
}

const auto kNoExtras = [](auto & /*rt*/, ProgramModel & /*m*/) {};

const auto kTicsExtras = [](tics::TicsRuntime &rt, ProgramModel &m) {
    m.segmentBytes = rt.config().segmentBytes;
};

const auto kTaskExtras = [](taskrt::TaskRuntime &rt, ProgramModel &m) {
    for (std::size_t i = 0; i < rt.taskCount(); ++i)
        m.tasks.push_back(
            {rt.task(static_cast<taskrt::TaskId>(i)).name, 0});
    m.channelCount = rt.channelCount();
};

} // namespace

EnergyBudget
deploymentBudget(const VerifyConfig &cfg,
                 const device::CostModel &costs)
{
    if (cfg.capacitanceF > 0.0)
        return capacitorBudget(cfg.capacitanceF, cfg.capVOn,
                               cfg.capVOff, cfg.capMaxOffTime, costs,
                               cfg.rebootLimit);
    return patternBudget(cfg.patternPeriod, cfg.patternOnFraction,
                         costs, cfg.rebootLimit);
}

std::vector<AppVerdict>
verifyMatrix(const VerifyConfig &cfg)
{
    const device::CostModel costs{};
    const EnergyBudget budget = deploymentBudget(cfg, costs);

    const auto makeTics = [] {
        return std::make_unique<tics::TicsRuntime>(ticsMatrixConfig());
    };
    const auto makeMementos = [] {
        return std::make_unique<runtimes::MementosRuntime>();
    };
    const auto makeChinchilla = [] {
        return std::make_unique<runtimes::ChinchillaRuntime>();
    };
    const auto makeTask = [] {
        return std::make_unique<taskrt::TaskRuntime>();
    };
    const auto makePlain = [] {
        return std::make_unique<runtimes::PlainCRuntime>();
    };

    const auto bcLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::BcLegacyApp>(b, rt, cfg.bc);
    };
    const auto cuckooLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::CuckooLegacyApp>(b, rt,
                                                       cfg.cuckoo);
    };
    const auto arLegacy = [&cfg](board::Board &b, auto &rt) {
        return std::make_unique<apps::ArLegacyApp>(b, rt, cfg.ar);
    };
    const auto ghmPlain = [](board::Board &b, auto &rt) {
        apps::GhmParams p;
        p.rounds = 8;
        return std::make_unique<apps::GhmPlainApp>(b, rt, p);
    };

    std::vector<AppVerdict> out;
    const auto add = [&](const std::string &app, bool isProtected,
                         ProgramModel model) {
        AppVerdict v;
        v.app = app;
        v.runtime = model.runtime;
        v.isProtected = isProtected;
        // MementOS-like used to carry expected WAR possibilities here:
        // with no undo log, globals written before a boot's first
        // checkpoint were unrecoverable. The genesis-snapshot
        // hardening (DESIGN.md Section 8) closed that window — fresh
        // boots rewrite tracked globals from their initial .data image
        // — so every protected runtime must now verify WAR-clean.
        v.expectWar = !isProtected;
        v.findings = analyzeAll(model, budget, costs);
        v.model = std::move(model);
        out.push_back(std::move(v));
    };

    // BC and Cuckoo under every runtime (the ticscheck matrix).
    add("BC", true,
        recoverModel(cfg, "BC", makeTics, bcLegacy, kTicsExtras));
    add("BC", true,
        recoverModel(cfg, "BC", makeMementos, bcLegacy, kNoExtras));
    add("BC", true,
        recoverModel(
            cfg, "BC", makeChinchilla,
            [&cfg](board::Board &b, auto &rt) {
                return std::make_unique<apps::BcChinchillaApp>(b, rt,
                                                               cfg.bc);
            },
            kNoExtras));
    add("BC", true,
        recoverModel(
            cfg, "BC", makeTask,
            [&cfg](board::Board &b, auto &rt) {
                return std::make_unique<apps::BcTaskApp>(b, rt, cfg.bc);
            },
            kTaskExtras));
    add("BC", false,
        recoverModel(cfg, "BC", makePlain, bcLegacy, kNoExtras));

    add("Cuckoo", true,
        recoverModel(cfg, "Cuckoo", makeTics, cuckooLegacy,
                     kTicsExtras));
    add("Cuckoo", true,
        recoverModel(cfg, "Cuckoo", makeMementos, cuckooLegacy,
                     kNoExtras));
    add("Cuckoo", true,
        recoverModel(
            cfg, "Cuckoo", makeChinchilla,
            [&cfg](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooChinchillaApp>(
                    b, rt, cfg.cuckoo);
            },
            kNoExtras));
    add("Cuckoo", true,
        recoverModel(
            cfg, "Cuckoo", makeTask,
            [&cfg](board::Board &b, auto &rt) {
                return std::make_unique<apps::CuckooTaskApp>(
                    b, rt, cfg.cuckoo);
            },
            kTaskExtras));
    add("Cuckoo", false,
        recoverModel(cfg, "Cuckoo", makePlain, cuckooLegacy,
                     kNoExtras));

    // AR and GHM: the legacy apps under TICS and unprotected.
    add("AR", true,
        recoverModel(cfg, "AR", makeTics, arLegacy, kTicsExtras));
    add("AR", false,
        recoverModel(cfg, "AR", makePlain, arLegacy, kNoExtras));
    add("GHM", true,
        recoverModel(cfg, "GHM", makeTics, ghmPlain, kTicsExtras));
    add("GHM", false,
        recoverModel(cfg, "GHM", makePlain, ghmPlain, kNoExtras));

    // Study: the timekeeping workload, @expires-guarded.
    add("Study", true,
        recoverModel(
            cfg, "Study", makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                return std::make_unique<apps::study::TimekeepTics>(
                    b, rt, 40 * kNsPerMs);
            },
            kTicsExtras));

    // SensorRelay self-test: guarded twin must verify clean, the
    // unguarded twin must earn timeliness + io findings.
    add("Relay+guard", true,
        recoverModel(
            cfg, "Relay+guard", makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                SensorRelayOptions o;
                return std::make_unique<SensorRelayApp>(b, rt, o);
            },
            kTicsExtras));
    add("Relay-unguard", true,
        recoverModel(
            cfg, "Relay-unguard", makeTics,
            [](board::Board &b, tics::TicsRuntime &rt) {
                SensorRelayOptions o;
                o.checkFreshness = false;
                o.useVirtualRadio = false;
                return std::make_unique<SensorRelayApp>(b, rt, o);
            },
            kTicsExtras));

    return out;
}

bool
verdictOk(const AppVerdict &v)
{
    if (!v.model.calibrated)
        return false;
    // Pairs without full versioning coverage (plain C, MementOS-like)
    // must come out WAR-flagged; everything else must be WAR-clean.
    // The energy verdict is size-dependent — a whole program that fits
    // one charge window (AR under plain C) legitimately passes it —
    // and guard-bypassing app findings (io/timeliness) are reported
    // but are the app's problem, not the runtime's.
    if (v.expectWar)
        return v.count("war-possibility") > 0;
    return v.count("war-possibility") == 0;
}

Table
verdictTable(const std::vector<AppVerdict> &verdicts)
{
    Table t("ticsverify: static verification per (app, runtime)");
    t.header({"App", "Runtime", "Calib", "Regions", "WorstCyc",
              "Energy", "Timely", "IO", "WAR", "Verdict"});
    for (const auto &v : verdicts) {
        t.row()
            .cell(v.app)
            .cell(v.runtime)
            .cell(v.model.calibrated ? "yes" : "NO")
            .cell(static_cast<std::uint64_t>(v.model.regions.size()))
            .cell(v.model.worstRegionCycles())
            .cell(static_cast<std::uint64_t>(v.count("energy-progress")))
            .cell(static_cast<std::uint64_t>(v.count("timeliness")))
            .cell(static_cast<std::uint64_t>(v.count("io-idempotency")))
            .cell(static_cast<std::uint64_t>(
                v.count("war-possibility")))
            .cell(!verdictOk(v)          ? "FAIL"
                  : !v.isProtected       ? "unsafe (expected)"
                  : v.expectWar          ? "flagged (known)"
                                         : "verified");
    }
    return t;
}

Table
findingTable(const std::vector<AppVerdict> &verdicts)
{
    Table t("ticsverify: per-finding detail");
    t.header({"Analysis", "App", "Runtime", "Subject", "Region",
              "Anchor", "Detail"});
    for (const auto &v : verdicts) {
        for (const auto &f : v.findings) {
            std::string detail = f.detail;
            if (detail.size() > 72)
                detail = detail.substr(0, 69) + "...";
            t.row()
                .cell(f.analysis)
                .cell(f.app)
                .cell(f.runtime)
                .cell(f.subject)
                .cell(static_cast<std::uint64_t>(f.regionIndex))
                .cell(f.anchor)
                .cell(detail);
        }
    }
    return t;
}

std::vector<Finding>
allFindings(const std::vector<AppVerdict> &verdicts)
{
    std::vector<Finding> out;
    for (const auto &v : verdicts)
        out.insert(out.end(), v.findings.begin(), v.findings.end());
    return out;
}

} // namespace ticsim::verify
