#include "model.hpp"

namespace ticsim::verify {

std::string
ProgramModel::regionNameAt(Addr a) const
{
    for (const auto &r : nvRegions) {
        if (a >= r.base && a < r.base + r.size)
            return r.name;
    }
    return "?";
}

Cycles
ProgramModel::worstRegionCycles() const
{
    Cycles worst = 0;
    for (const auto &r : regions) {
        if (r.cycles > worst)
            worst = r.cycles;
    }
    return worst;
}

ModelRecorder::ModelRecorder(board::Board &board)
    : board_(board), prev_(mem::setAccessSink(this))
{
    open_.startCycle = board_.mcu().cycles();
}

ModelRecorder::~ModelRecorder()
{
    mem::setAccessSink(prev_);
}

void
ModelRecorder::recordData(analysis::AccessKind kind, const void *p,
                          std::uint32_t bytes)
{
    if (!board_.ctx().inside())
        return; // host-side peek (verification, table printing)
    if (!board_.nvram().contains(p) || board_.ctx().onStack(p))
        return;
    open_.events.push_back({kind, board_.nvram().addrOf(p), bytes});
}

void
ModelRecorder::memRead(const void *p, std::uint32_t bytes)
{
    recordData(analysis::AccessKind::Read, p, bytes);
}

void
ModelRecorder::memWrite(const void *p, std::uint32_t bytes)
{
    recordData(analysis::AccessKind::Write, p, bytes);
}

void
ModelRecorder::memVersioned(const void *p, std::uint32_t bytes)
{
    // Coverage may be established from the scheduler side, so no
    // inside() filter (mirrors the dynamic AccessTracer).
    if (!board_.nvram().contains(p) || board_.ctx().onStack(p))
        return;
    open_.events.push_back(
        {analysis::AccessKind::Versioned, board_.nvram().addrOf(p),
         bytes});
    ++open_.versionedEntries;
    open_.versionedBytes += bytes;
}

void
ModelRecorder::powerOn()
{
    // Calibration runs are failure-free; the only powerOn is the run's
    // first boot. Close anything open anyway so a model recorded from
    // a non-calibration run is still well-formed.
    closeRegion(analysis::IntervalEnd::PowerFailed);
}

void
ModelRecorder::commit()
{
    closeRegion(analysis::IntervalEnd::Committed);
}

void
ModelRecorder::sideEvent(const mem::SideEvent &ev)
{
    if (ev.kind == mem::SideEventKind::IoGuardEnter) {
        ++guardDepth_;
    }
    SiteEvent site;
    site.kind = ev.kind;
    if (ev.id)
        site.id = ev.id;
    site.u0 = ev.u0;
    site.atCycle = board_.mcu().cycles();
    site.inIoGuard = guardDepth_ > 0;
    open_.sites.push_back(std::move(site));
    if (ev.kind == mem::SideEventKind::IoGuardExit && guardDepth_ > 0)
        --guardDepth_;
}

void
ModelRecorder::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    closeRegion(analysis::IntervalEnd::RunEnd);
    model_.totalCycles = board_.mcu().cycles();
    model_.elapsed = board_.now();
    for (const auto &r : board_.nvram().regions())
        model_.nvRegions.push_back(
            {std::string(r.name), r.base, r.size});
}

void
ModelRecorder::closeRegion(analysis::IntervalEnd end)
{
    const Cycles nowCycles = board_.mcu().cycles();
    open_.cycles = nowCycles - open_.startCycle;
    // Keep any region that did work or touched state; skip the empty
    // artifacts of back-to-back commits.
    if (open_.cycles > 0 || !open_.events.empty() ||
        !open_.sites.empty()) {
        open_.index = model_.regions.size();
        if (open_.anchor.empty()) {
            // Checkpoint-based runtimes have no dispatch anchor; the
            // last task dispatched names task-runtime regions.
            for (const auto &s : open_.sites) {
                if (s.kind == mem::SideEventKind::TaskDispatch)
                    open_.anchor = s.id;
            }
            if (open_.anchor.empty())
                open_.anchor =
                    "region#" + std::to_string(open_.index);
        }
        open_.end = end;
        model_.regions.push_back(std::move(open_));
    }
    open_ = RegionNode{};
    open_.startCycle = nowCycles;
}

std::vector<analysis::IntervalTrace>
ModelRecorder::intervalView() const
{
    std::vector<analysis::IntervalTrace> out;
    out.reserve(model_.regions.size());
    for (const auto &r : model_.regions) {
        analysis::IntervalTrace t;
        t.boot = 1;
        t.end = r.end;
        t.events = r.events;
        out.push_back(std::move(t));
    }
    return out;
}

} // namespace ticsim::verify
