/**
 * @file
 * Cross-validation of the probabilistic timing analysis against
 * simulation: every sweep-matched (app, runtime) pair is run through
 * the ticssweep pool under the tier-1 reset pattern and the
 * stochastic harvesting supply, and the statically derived
 * completion-time percentiles are gated against the simulated
 * cross-seed distribution at p50/p95/p99 within a declared
 * per-percentile tolerance.
 *
 * Pairs whose static model says "never completes" (pNonterm ~ 1) are
 * gated on verdict agreement instead: the simulation must show zero
 * completed cells. That keeps plain-C-under-pattern — whose region
 * outgrows every charge window — inside the gate rather than excused
 * from it.
 *
 * The declared tolerances are honest about the model's approximation
 * error (DESIGN.md section 10): the geometric outage-count model adds
 * variance a deterministic pattern run does not have, and a 16-24
 * seed simulated p99 is itself a noisy order statistic, so the gate
 * widens toward the tail.
 */

#ifndef TICSIM_VERIFY_PROBCROSSVAL_HPP
#define TICSIM_VERIFY_PROBCROSSVAL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "verify/analyses.hpp"
#include "verify/prob.hpp"

namespace ticsim::verify {

/** Relative tolerance per gated percentile. */
struct ProbGateTolerance {
    double p50 = 0.35;
    double p95 = 0.60;
    double p99 = 0.80;
};

/** One (app, runtime, environment) gate row. */
struct ProbGateRow {
    std::string app;
    std::string runtime;
    std::string env;        ///< supply-axis token
    double capUf = 0.0;     ///< stochastic rows: modeled capacitance

    // Static side (milliseconds).
    double staticP50Ms = 0.0;
    double staticP95Ms = 0.0;
    double staticP99Ms = 0.0;
    double staticMeanMs = 0.0;
    double pNonterm = 0.0;
    double meanOutages = 0.0;

    // Order-statistic bracket of each simulated percentile. A
    // nearest-rank pXX over n seeds is the order statistic of rank
    // k = ceil(xx * n) — for n = 16 the "p99" is simply the sample
    // maximum, whose quantile position is spread over roughly
    // [0.83, 0.997]. The gate therefore brackets the static
    // distribution between the 5% and 95% quantile positions of that
    // order statistic (solved from the binomial tail) and requires
    // the simulated value to fall inside the band, widened by the
    // declared tolerance. Zeros mean "degenerate band at the nominal
    // static percentile" (synthetic test rows).
    double staticLoP50Ms = 0.0, staticHiP50Ms = 0.0;
    double staticLoP95Ms = 0.0, staticHiP95Ms = 0.0;
    double staticLoP99Ms = 0.0, staticHiP99Ms = 0.0;

    // Simulated side.
    std::uint64_t simCells = 0;
    std::uint64_t simCompleted = 0;
    double simP50Ms = 0.0;
    double simP95Ms = 0.0;
    double simP99Ms = 0.0;

    // Gate outcome (filled by gateProbRow).
    bool gatePassed = false;
    std::string gateKind;         ///< "percentiles" | "nonterm"
    std::string failedPercentile; ///< "p50"/"p95"/"p99"/"completion"
    double worstRel = 0.0;        ///< worst relative deviation seen
};

struct ProbCrossValConfig {
    /** Simulated seeds per cell group (cross-seed distribution). */
    std::vector<std::uint64_t> seeds;
    ProbGateTolerance tol;
    /** Stochastic supply rows model/simulate this capacitance. */
    double stochasticCapUf = 1.0;
    TimeNs patternPeriod = 30 * kNsPerMs;
    double patternOnFraction = 0.6;
    unsigned jobs = 0;          ///< sweep pool width; 0 = hardware
    bool useCache = true;
    std::string cacheDir = ".ticssweep-cache";
    std::uint64_t rebootLimit = 300;
    std::uint64_t modelSeed = 11; ///< calibration-run seed
    TimeNs calibrationBudget = 600 * kNsPerSec;

    ProbCrossValConfig()
    {
        for (std::uint64_t s = 11; s < 11 + 16; ++s)
            seeds.push_back(s);
    }
};

struct ProbCrossValReport {
    std::vector<ProbGateRow> rows;          ///< app/runtime/env order
    std::vector<FreshnessEstimate> freshness; ///< static, all envs
    bool pass = true;
    std::vector<Finding> findings; ///< one per failed gate row
};

/** Static half only: rows carry no simulated side (gateKind
 *  "static") and no gate runs. What `--prob` without `--crossval`
 *  computes, and the source of the baseline's probabilistic verdicts. */
struct ProbStaticResult {
    std::vector<ProbGateRow> rows;
    std::vector<FreshnessEstimate> freshness;
};

/**
 * Recover the sweep-matched model of one (app, runtime) pair: default
 * app parameters and the sweep's runtime configurations (TICS 10 ms
 * timer, 256 B segment), mirroring sweep::runCell — deliberately not
 * verifyMatrix's checker-matched configuration.
 */
ProgramModel recoverSweepPair(const ProbCrossValConfig &cfg,
                              const std::string &app,
                              const std::string &runtime);

/**
 * Static probabilistic analysis of the sweep matrix under the pattern
 * and stochastic environments, plus freshness-only coverage of the
 * SensorRelay self-test pair (guarded twin ~0, unguarded twin > 0).
 */
ProbStaticResult probStaticAnalyze(const ProbCrossValConfig &cfg);

/**
 * Evaluate the gate outcome of one row against @p tol: verdict
 * agreement for nonterminating rows, relative percentile agreement
 * (and full completion) otherwise. Pure function of the row's static
 * and simulated fields, so tests can feed synthetic (miscalibrated)
 * rows without running a sweep.
 */
void gateProbRow(ProbGateRow &row, const ProbGateTolerance &tol);

/** The findings entry a failed gate row earns. */
Finding probGateFinding(const ProbGateRow &row);

/** Recover models, run the sweep, gate every row. */
ProbCrossValReport
probCrossValidate(const ProbCrossValConfig &cfg = {});

/** Per-row static-vs-simulated table. */
Table probCrossValTable(const ProbCrossValReport &r);

/** Static freshness-violation probability table. */
Table freshnessTable(const std::vector<FreshnessEstimate> &rows);

} // namespace ticsim::verify

#endif // TICSIM_VERIFY_PROBCROSSVAL_HPP
