#include "envmodel.hpp"

#include <algorithm>
#include <cmath>

namespace ticsim::verify {

EnvModel
patternEnv(TimeNs period, double onFraction,
           const device::CostModel &costs, std::uint64_t rebootLimit)
{
    const energy::EnergyBudget b =
        energy::patternBudget(period, onFraction, costs, rebootLimit);
    EnvModel env;
    env.name = b.source;
    env.windowCycles =
        Pmf::delta(static_cast<double>(b.windowCycles));
    env.outageNs = Pmf::delta(static_cast<double>(b.maxOutageNs));
    env.maxOutages = rebootLimit;
    return env;
}

EnvModel
stochasticEnv(const StochasticEnvParams &p,
              const device::CostModel &costs,
              std::uint64_t rebootLimit)
{
    EnvModel env;
    env.name = "stochastic";
    env.maxOutages = rebootLimit;

    const double load = costs.activePower + p.leakage;
    const double meanOnSec = nsToSec(p.meanOnNs);
    const double meanOffSec = nsToSec(p.meanOffNs);

    // Ride-through: the seconds the capacitor sustains the load with
    // no harvest. Taken at the full vMax charge — during an on
    // interval the surplus (mean harvest ~3x the load) tops the
    // capacitor up within a few ms, so most off intervals start from
    // a full buffer.
    const double rideSec = energy::drainSeconds(
        energy::usableEnergyJ(p.capacitanceF, p.vMax, p.vOff), load);
    // An off interval is fatal when it outlasts the ride-through.
    const double pDie = std::exp(-rideSec / meanOffSec);

    // A powered window: N ~ Geometric(pDie) harvester-on intervals
    // joined by the N-1 survived (truncated) off intervals, ending in
    // the fatal off's ride-through drain.
    const Pmf onSec = Pmf::exponential(meanOnSec, p.atoms);
    const Pmf shortOffSec =
        Pmf::truncatedExponential(meanOffSec, rideSec, p.atoms);

    Pmf windowSec;
    Pmf chain; // sum of k on intervals and k-1 survived offs
    double tail = 1.0; // P[N > k-1]
    for (int k = 1; tail > 1e-6 && k <= 64; ++k) {
        chain = k == 1 ? onSec
                       : chain.convolve(shortOffSec).convolve(onSec);
        chain.prune(1e-8);
        windowSec.mixIn(chain.convolve(Pmf::delta(rideSec)),
                        tail * pDie);
        tail *= 1.0 - pDie;
    }
    windowSec.normalize();
    env.windowCycles = windowSec.scaled(
        1e9 / static_cast<double>(costs.cycleTimeNs()));

    // Off time per death: the fatal off's remainder past the ride-
    // through is again Exp(meanOff) (memoryless), plus recharging
    // from vOff to vOn at the mean net harvest rate.
    const double rechargeSec = energy::chargeSeconds(
        energy::usableEnergyJ(p.capacitanceF, p.vOn, p.vOff),
        p.meanPower - p.leakage);
    env.outageNs =
        Pmf::exponential(meanOffSec, p.atoms)
            .convolve(Pmf::delta(rechargeSec))
            .scaled(1e9);
    env.outageNs.prune(1e-10);
    return env;
}

CapacitorSizing
sizeCapacitor(const ProgramModel &m, const StochasticEnvParams &base,
              const device::CostModel &costs, const SloQuery &q,
              const CapacitorGrid &grid, std::uint64_t rebootLimit)
{
    CapacitorSizing out;
    for (double c = grid.minF; c <= grid.maxF * (1.0 + 1e-9);
         c *= grid.stepFactor) {
        StochasticEnvParams p = base;
        p.capacitanceF = c;
        const EnvModel env = stochasticEnv(p, costs, rebootLimit);
        const TimingEstimate est = completionTime(m, env, costs);
        const double pOnTime = (1.0 - est.pNonterm) *
                               est.completionNs.cdfAt(q.deadlineNs);
        out.curve.emplace_back(c, pOnTime);
        if (pOnTime >= q.slo) {
            out.feasible = true;
            out.capacitanceF = c;
            out.pOnTime = pOnTime;
            break;
        }
    }
    return out;
}

} // namespace ticsim::verify
