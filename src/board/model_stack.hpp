/**
 * @file
 * Modeled (target-scale) call-stack bookkeeping.
 *
 * Host x86-64 frames are roughly an order of magnitude larger than
 * MSP430 frames, so runtime cost accounting cannot use host stack
 * extents. Instead, every instrumented application function declares
 * its target-scale frame size through a FrameGuard (exactly the
 * information the paper's compiler pass computes at build time), and
 * this structure tracks the modeled stack the runtimes charge against.
 *
 * The structure is trivially copyable on purpose: runtimes that keep
 * stack bookkeeping in non-volatile memory (TICS does) snapshot it as
 * part of their checkpoint.
 */

#ifndef TICSIM_BOARD_MODEL_STACK_HPP
#define TICSIM_BOARD_MODEL_STACK_HPP

#include <cstdint>

#include "support/logging.hpp"

namespace ticsim::board {

/** Fixed-capacity modeled call stack (frame sizes in target bytes). */
struct ModelStack {
    static constexpr std::uint32_t kMaxDepth = 256;

    std::uint16_t frameBytes[kMaxDepth] = {};
    std::uint32_t depth = 0;
    std::uint32_t totalBytes = 0;

    void
    push(std::uint16_t bytes)
    {
        TICSIM_ASSERT(depth < kMaxDepth, "modeled stack overflow");
        frameBytes[depth++] = bytes;
        totalBytes += bytes;
    }

    void
    pop()
    {
        TICSIM_ASSERT(depth > 0, "modeled stack underflow");
        totalBytes -= frameBytes[--depth];
    }

    std::uint16_t
    top() const
    {
        TICSIM_ASSERT(depth > 0);
        return frameBytes[depth - 1];
    }

    void
    clear()
    {
        depth = 0;
        totalBytes = 0;
    }
};

} // namespace ticsim::board

#endif // TICSIM_BOARD_MODEL_STACK_HPP
