#include "violation.hpp"

#include "support/logging.hpp"

namespace ticsim::board {

void
ViolationMonitor::noteObserved(ViolationKind k, ViolationCounts &c)
{
    ++c.observed;
    if (eventHook_)
        eventHook_(k);
}

void
ViolationMonitor::branchArm(const std::string &branchId,
                            std::uint64_t instance, int arm)
{
    ++timelyBranch_.potential;
    auto key = std::make_pair(branchId, instance);
    auto it = branchArms_.find(key);
    if (it == branchArms_.end()) {
        branchArms_.emplace(key, std::make_pair(arm, false));
        return;
    }
    if (it->second.first != arm && !it->second.second) {
        // Both arms executed for one logical evaluation.
        it->second.second = true;
        noteObserved(ViolationKind::TimelyBranch, timelyBranch_);
    }
}

void
ViolationMonitor::dataSampled(const std::string &dataId,
                              std::uint64_t instance, TimeNs trueNow)
{
    sampledAt_[std::make_pair(dataId, instance)] = trueNow;
}

void
ViolationMonitor::timestampAssigned(const std::string &dataId,
                                    std::uint64_t instance, TimeNs tsValue,
                                    TimeNs tolerance)
{
    ++misalignment_.potential;
    auto it = sampledAt_.find(std::make_pair(dataId, instance));
    if (it == sampledAt_.end()) {
        // Timestamp for data never acquired: count as misaligned.
        noteObserved(ViolationKind::Misalignment, misalignment_);
        return;
    }
    const TimeNs truth = it->second;
    const TimeNs diff = tsValue > truth ? tsValue - truth : truth - tsValue;
    if (diff > tolerance)
        noteObserved(ViolationKind::Misalignment, misalignment_);
}

void
ViolationMonitor::dataConsumed(const std::string &dataId,
                               std::uint64_t instance, TimeNs lifetime,
                               TimeNs trueNow)
{
    ++expiration_.potential;
    auto it = sampledAt_.find(std::make_pair(dataId, instance));
    if (it == sampledAt_.end())
        return; // nothing known about this datum
    const TimeNs age = trueNow >= it->second ? trueNow - it->second : 0;
    if (age > lifetime)
        noteObserved(ViolationKind::Expiration, expiration_);
}

const ViolationCounts &
ViolationMonitor::counts(ViolationKind k) const
{
    switch (k) {
      case ViolationKind::TimelyBranch:
        return timelyBranch_;
      case ViolationKind::Misalignment:
        return misalignment_;
      case ViolationKind::Expiration:
        return expiration_;
    }
    panic("unknown violation kind");
}

void
ViolationMonitor::reset()
{
    timelyBranch_ = {};
    misalignment_ = {};
    expiration_ = {};
    branchArms_.clear();
    sampledAt_.clear();
}

} // namespace ticsim::board
