/**
 * @file
 * The interface every intermittency-protection system implements.
 *
 * A Runtime owns the protocol that makes (or fails to make) forward
 * progress across power failures: what it persists, when it
 * checkpoints, and how it re-enters the application after a reboot.
 * TICS, the MementOS-like naive checkpointer, the Chinchilla-like
 * promoted-globals checkpointer, the task-based systems and the
 * unprotected plain-C baseline are all Runtime implementations driven
 * by the same Board.
 */

#ifndef TICSIM_BOARD_RUNTIME_HPP
#define TICSIM_BOARD_RUNTIME_HPP

#include <cstdint>
#include <cstring>
#include <functional>

#include "mem/footprint.hpp"
#include "mem/nv.hpp"
#include "support/statebuf.hpp"
#include "support/stats.hpp"

namespace ticsim::board {

class Board;

class Runtime
{
  public:
    Runtime() : stats_("runtime") {}
    virtual ~Runtime() = default;

    virtual const char *name() const = 0;

    /**
     * Bind to a board and the application entry. Called exactly once,
     * before the first boot; allocates the runtime's non-volatile
     * structures.
     */
    virtual void attach(Board &board, std::function<void()> appMain);

    /**
     * Power is back: decide between a fresh start and a restore, roll
     * back / restore state, charge the boot cost, and arm the
     * execution context.
     * @return false if the device browned out during boot/restore
     *         (the starvation path).
     */
    virtual bool onPowerOn() = 0;

    /** Write-interception hooks, or nullptr for direct stores. */
    virtual mem::MemHooks *memHooks() { return nullptr; }

    // ---- instrumentation surface (called from the app context) ----

    /** Instrumented function entry with modeled frame size. */
    virtual void frameEnter(std::uint16_t modeledBytes) {}

    /** Instrumented function exit. */
    virtual void frameExit() {}

    /**
     * Compiler-inserted trigger point (loop latch / basic-block edge):
     * an opportunity to checkpoint per the active policy.
     */
    virtual void triggerPoint() {}

    /** Explicit (manual) checkpoint request; no-op where unsupported. */
    virtual void checkpointNow() {}

    /**
     * Instrumented raw store of @p bytes from @p src to @p dst —
     * the pointer-write path of the paper. Default: direct store.
     */
    virtual void storeBytes(void *dst, const void *src,
                            std::uint32_t bytes);

    /** Typed convenience wrapper over storeBytes(). */
    template <typename T>
    void
    store(T *dst, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        storeBytes(dst, &v, sizeof(T));
    }

    /**
     * Instrumented raw load — the pointer-read half of the paper's
     * instrumentation surface. Reads need no versioning on any of the
     * modeled systems, so this never dispatches to the runtime; it
     * exists to make the read set visible to an installed analysis
     * sink (mem::AccessSink) at zero modeled cost.
     */
    void
    loadBytes(void *dst, const void *src, std::uint32_t bytes)
    {
        mem::traceRead(src, bytes);
        std::memcpy(dst, src, bytes);
    }

    /** Typed convenience wrapper over loadBytes(). */
    template <typename T>
    T
    load(const T *src)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        loadBytes(&v, src, sizeof(T));
        return v;
    }

    /** Whether the system can express recursive programs. */
    virtual bool supportsRecursion() const { return true; }

    /**
     * Register a block of application global state. Snapshot-based
     * runtimes (MementOS-like) copy it into every checkpoint; log-based
     * runtimes version writes instead and ignore this.
     */
    virtual void trackGlobals(void *base, std::uint32_t bytes) {}

    /**
     * Snapshot/restore hooks for the failure-space explorer
     * (board::Snapshot). A runtime serializes every *host-side*
     * mutable field that models volatile or NV-backed state and is
     * not already covered by the NV write journal — caches of NV
     * contents (undo-log cursors, checkpoint-slot validity), pending
     * ISR queues, policy clocks, per-cause counters. Modeled NV bytes
     * themselves are restored by mem::WriteJournal; the statistics
     * group and footprint are captured separately by the Board. The
     * default covers runtimes with no host state (plain C). A blob is
     * only ever replayed into the same object it was captured from.
     */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}

    /** Modeled .text/.data footprint ledger (Table 3). */
    mem::Footprint &footprint() { return footprint_; }

    StatGroup &stats() { return stats_; }

  protected:
    Board *board_ = nullptr;
    std::function<void()> appMain_;
    StatGroup stats_;
    mem::Footprint footprint_;
};

/**
 * RAII guard for an instrumented application function. Declares the
 * function's modeled (target-scale) frame size, which is exactly what
 * the paper's compiler backend computes and checks at function entry.
 *
 * Note: when a power failure abandons the context, destructors do not
 * run (as on real hardware); runtimes reconstruct their stack
 * bookkeeping from non-volatile state on reboot.
 */
class FrameGuard
{
  public:
    FrameGuard(Runtime &rt, std::uint16_t modeledBytes) : rt_(rt)
    {
        rt_.frameEnter(modeledBytes);
    }

    ~FrameGuard() { rt_.frameExit(); }

    FrameGuard(const FrameGuard &) = delete;
    FrameGuard &operator=(const FrameGuard &) = delete;

  private:
    Runtime &rt_;
};

} // namespace ticsim::board

#endif // TICSIM_BOARD_RUNTIME_HPP
