/**
 * @file
 * Detector for the paper's four consistency-violation classes (Fig. 3).
 *
 * Applications (or the TICS annotation layer on their behalf) report
 * semantically interesting events — branch-arm executions, sensor
 * acquisitions, timestamp assignments, data consumptions — keyed by a
 * stable instance identifier held in non-volatile state. The monitor
 * compares against *true* virtual time and scores:
 *
 *  - Timely-branch violations (Fig. 3b): both arms of the same branch
 *    instance observed to execute (re-execution took the other arm).
 *  - Time/data misalignment (Fig. 3c): the timestamp associated with a
 *    sample differs from the true acquisition time by more than the
 *    tolerance.
 *  - Data expiration (Fig. 3d): data consumed later than its declared
 *    freshness lifetime without being discarded.
 *
 * (Write-after-read memory violations, Fig. 3a, are detected by the
 * applications' own output verification: corrupted state produces a
 * wrong final answer.)
 *
 * The monitor is pure host-side observability; it charges no cycles.
 */

#ifndef TICSIM_BOARD_VIOLATION_HPP
#define TICSIM_BOARD_VIOLATION_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "support/units.hpp"

namespace ticsim::board {

/** Violation classes tracked for Table 2. */
enum class ViolationKind {
    TimelyBranch,
    Misalignment,
    Expiration,
};

/** Tally of potential sites executed and violations observed. */
struct ViolationCounts {
    std::uint64_t potential = 0;
    std::uint64_t observed = 0;
};

class ViolationMonitor
{
  public:
    /**
     * A branch arm executed. @p instance must identify one logical
     * evaluation of the branch (e.g. a persistent iteration counter).
     * A second, different arm for the same instance is a violation.
     */
    void branchArm(const std::string &branchId, std::uint64_t instance,
                   int arm);

    /** A sensor datum was physically acquired at true time @p trueNow. */
    void dataSampled(const std::string &dataId, std::uint64_t instance,
                     TimeNs trueNow);

    /**
     * A timestamp claiming to date the acquisition of
     * (@p dataId, @p instance) was assigned the value @p tsValue.
     * Misaligned when it differs from the true acquisition time by
     * more than @p tolerance.
     */
    void timestampAssigned(const std::string &dataId,
                           std::uint64_t instance, TimeNs tsValue,
                           TimeNs tolerance);

    /**
     * The datum was consumed at true time @p trueNow. Expired when
     * its true age exceeds @p lifetime.
     */
    void dataConsumed(const std::string &dataId, std::uint64_t instance,
                      TimeNs lifetime, TimeNs trueNow);

    const ViolationCounts &counts(ViolationKind k) const;

    /** Observer notified once per *observed* violation (the Board
     *  forwards these onto the telemetry timeline). Host-side only. */
    void setEventHook(std::function<void(ViolationKind)> hook)
    {
        eventHook_ = std::move(hook);
    }

    void reset();

  private:
    ViolationCounts timelyBranch_;
    ViolationCounts misalignment_;
    ViolationCounts expiration_;

    /** (branchId, instance) -> first arm observed / poisoned flag. */
    std::map<std::pair<std::string, std::uint64_t>, std::pair<int, bool>>
        branchArms_;
    /** (dataId, instance) -> true acquisition time. */
    std::map<std::pair<std::string, std::uint64_t>, TimeNs> sampledAt_;

    std::function<void(ViolationKind)> eventHook_;

    void noteObserved(ViolationKind k, ViolationCounts &c);
};

} // namespace ticsim::board

#endif // TICSIM_BOARD_VIOLATION_HPP
