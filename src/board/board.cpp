#include "board.hpp"

#include <type_traits>

#include "board/runtime.hpp"
#include "mem/journal.hpp"
#include "support/logging.hpp"

namespace ticsim::board {

// Snapshot captures the sensor objects as raw byte images.
static_assert(std::is_trivially_copyable_v<device::Accelerometer> &&
                  std::is_trivially_copyable_v<device::ScalarSensor>,
              "sensors must stay trivially copyable for board::Snapshot");

void
Runtime::attach(Board &board, std::function<void()> appMain)
{
    board_ = &board;
    appMain_ = std::move(appMain);
}

void
Runtime::storeBytes(void *dst, const void *src, std::uint32_t bytes)
{
    mem::traceWrite(dst, bytes);
    mem::gatedStore(mem::StoreSite::AppGlobal, dst, src, bytes);
}

Board::Board(BoardConfig cfg, std::unique_ptr<energy::Supply> supply,
             std::unique_ptr<timekeeper::Timekeeper> tk)
    : cfg_(cfg), nvram_(cfg.nvramBytes), mcu_(cfg.costs),
      supply_(std::move(supply)), tk_(std::move(tk)), rng_(cfg.seed),
      accel_(Rng(cfg.seed ^ 0xACCE1ULL), cfg.accelRegimePeriod),
      temp_(Rng(cfg.seed ^ 0x7E3Full), 22.0, 6.0, 60 * kNsPerSec, 0.5),
      moisture_(Rng(cfg.seed ^ 0x5011ULL), 400.0, 120.0, 120 * kNsPerSec,
                8.0),
      events_(cfg.eventRingCapacity)
{
    if (!supply_)
        fatal("board: null supply");
    if (!tk_)
        fatal("board: null timekeeper");
    mcu_.setPhaseProfiler(&profiler_);
    profiler_.bindTimeline(&now_, &events_);
    monitor_.setEventHook([this](ViolationKind k) {
        events_.emit(telemetry::EventKind::Violation, now_,
                     static_cast<std::uint64_t>(k));
    });
    const Addr stackAddr =
        nvram_.allocate("app-stack", cfg.stackHostBytes, 64);
    ctx_ = std::make_unique<context::ExecContext>(nvram_.hostPtr(stackAddr),
                                                  cfg.stackHostBytes);
}

bool
Board::drainCycles(Cycles c)
{
    const TimeNs dur = mcu_.cyclesToNs(c);
    const auto r = supply_->drain(now_, dur, costs().activePower);
    now_ += r.ranFor;
    onTime_ += r.ranFor;
    const Cycles ran = r.died
        ? static_cast<Cycles>(r.ranFor / costs().cycleTimeNs())
        : c;
    mcu_.addCycles(ran);
    return r.died;
}

void
Board::charge(Cycles c)
{
    if (!ctx_->inside()) {
        if (drainCycles(c))
            sysDied_ = true;
        return;
    }
    if (drainCycles(c))
        ctx_->exitWith(context::ExitReason::PowerFail);
    if (now_ >= endTime_)
        ctx_->exitWith(context::ExitReason::TimeLimit);
}

void
Board::forcePowerFail()
{
    // Flag the death as injected before the lights go out, so traces
    // can tell a campaign kill from an organic brown-out (the matching
    // BrownOut event follows on the outage path).
    events_.emit(telemetry::EventKind::InjectedFail, now_);
    if (ctx_->inside())
        ctx_->exitWith(context::ExitReason::PowerFail);
    sysDied_ = true;
}

void
Board::markInjectedDeath()
{
    TICSIM_ASSERT(!ctx_->inside(),
                  "markInjectedDeath() from inside the context");
    events_.emit(telemetry::EventKind::InjectedFail, now_);
    sysDied_ = true;
    phase_ = RunPhase::Death;
}

bool
Board::chargeSys(Cycles c)
{
    if (sysDied_)
        return false;
    if (drainCycles(c)) {
        sysDied_ = true;
        return false;
    }
    return true;
}

/** Scoped binding of the board's virtual clock to the log prefix. */
class LogClockScope
{
  public:
    explicit LogClockScope(const TimeNs *now)
        : prev_(Logger::get().setClock(now))
    {
    }
    ~LogClockScope() { Logger::get().setClock(prev_); }
    LogClockScope(const LogClockScope &) = delete;
    LogClockScope &operator=(const LogClockScope &) = delete;

  private:
    const std::uint64_t *prev_;
};

RunResult
Board::run(Runtime &rt, std::function<void()> appMain, TimeNs budget)
{
    beginRun(rt, std::move(appMain), budget);
    return continueRun();
}

void
Board::beginRun(Runtime &rt, std::function<void()> appMain, TimeNs budget)
{
    rt.attach(*this, std::move(appMain));
    rt_ = &rt;
    endTime_ = now_ + budget;
    runStart_ = now_;
    res_ = RunResult{};
    noProgressReboots_ = 0;
    phase_ = RunPhase::Boot;
}

RunResult
Board::continueRun()
{
    TICSIM_ASSERT(rt_ != nullptr, "continueRun() without beginRun()");
    LogClockScope logClock(&now_);

    while (phase_ != RunPhase::Done) {
        switch (phase_) {
        case RunPhase::Boot:
        case RunPhase::BootNoTrace: {
            if (now_ >= endTime_) {
                phase_ = RunPhase::Done;
                break;
            }
            if (phase_ == RunPhase::Boot)
                mem::traceBoot();
            sysDied_ = false;
            progressSinceBoot_ = false;
            // Scopes opened on a stack a brown-out abandoned never
            // closed; attribution restarts from App on every boot.
            profiler_.resetScopes();
            events_.emit(telemetry::EventKind::Boot, now_);
            const bool bootOk = rt_->onPowerOn() && !sysDied_;
            phase_ = bootOk ? RunPhase::Enter : RunPhase::Death;
            break;
        }
        case RunPhase::Enter: {
            mem::ScopedHooks sh(rt_->memHooks());
            const auto reason = ctx_->run();
            if (reason == context::ExitReason::Completed) {
                res_.completed = true;
                phase_ = RunPhase::Done;
            } else if (reason == context::ExitReason::TimeLimit) {
                phase_ = RunPhase::Done;
            } else if (reason == context::ExitReason::Starved) {
                res_.starved = true;
                phase_ = RunPhase::Done;
            } else {
                // PowerFail: take the outage path.
                phase_ = RunPhase::Death;
            }
            break;
        }
        case RunPhase::Death:
            deathPath();
            break;
        case RunPhase::Done:
            break;
        }
    }
    return finishRun();
}

void
Board::deathPath()
{
    ++res_.reboots;
    if (progressSinceBoot_) {
        noProgressReboots_ = 0;
    } else if (++noProgressReboots_ > cfg_.starvationRebootLimit) {
        res_.starved = true;
        phase_ = RunPhase::Done;
        return;
    }
    tk_->onPowerFail(now_);
    events_.emit(telemetry::EventKind::BrownOut, now_);
    const TimeNs off = supply_->offTimeAfterDeath(now_);
    events_.emit(telemetry::EventKind::Outage, now_, 0, off);
    now_ += off;
    tk_->onPowerOn(now_);
    phase_ = RunPhase::Boot;
}

RunResult
Board::finishRun()
{
    RunResult res = res_;
    res.cycles = mcu_.cycles();
    res.elapsed = now_ - runStart_;
    res.onTime = onTime_;
    return res;
}

bool
Board::snapshot(Snapshot &s, bool withFiber)
{
    if (withFiber) {
        s.hasFiber = true;
        if (!ctx_->captureFiber(s.fiber))
            return false; // re-entry path after a restore()
    } else {
        s.hasFiber = false;
        s.fiber = context::FiberImage{};
    }
    s.now = now_;
    s.onTime = onTime_;
    s.endTime = endTime_;
    s.runStart = runStart_;
    s.sysDied = sysDied_;
    s.progressSinceBoot = progressSinceBoot_;
    s.phase = phase_;
    s.partial = res_;
    s.noProgressReboots = noProgressReboots_;
    s.mcuCycles = mcu_.cycles();
    s.rng = rng_;
    {
        StateWriter w;
        w.put(accel_);
        w.put(temp_);
        w.put(moisture_);
        s.sensors = w.take();
    }
    s.radioPackets = radio_.sentCount();
    s.monitor = monitor_;
    s.profiler = profiler_;
    s.events = events_.mark();
    {
        StateWriter w;
        supply_->saveState(w);
        s.supply = w.take();
    }
    {
        StateWriter w;
        tk_->saveState(w);
        s.timekeeper = w.take();
    }
    {
        StateWriter w;
        if (rt_ != nullptr)
            rt_->saveState(w);
        s.runtime = w.take();
    }
    if (rt_ != nullptr)
        s.runtimeStats = rt_->stats();
    s.journalMark = mem::journalMark();
    return true;
}

void
Board::restore(const Snapshot &s)
{
    TICSIM_ASSERT(!ctx_->inside(), "restore() from inside the context");
    // NV first: the journal rolls modeled memory back to the mark
    // taken when the snapshot's host state was captured.
    mem::journalUndoTo(s.journalMark);
    now_ = s.now;
    onTime_ = s.onTime;
    endTime_ = s.endTime;
    runStart_ = s.runStart;
    sysDied_ = s.sysDied;
    progressSinceBoot_ = s.progressSinceBoot;
    phase_ = s.phase;
    res_ = s.partial;
    noProgressReboots_ = s.noProgressReboots;
    mcu_.setCycles(s.mcuCycles);
    rng_ = s.rng;
    {
        StateReader r(s.sensors);
        r.getBytes(&accel_, sizeof(accel_));
        r.getBytes(&temp_, sizeof(temp_));
        r.getBytes(&moisture_, sizeof(moisture_));
        TICSIM_ASSERT(r.exhausted(), "sensor blob mismatch");
    }
    radio_.truncate(s.radioPackets);
    monitor_ = s.monitor;
    profiler_ = s.profiler;
    events_.rewind(s.events);
    {
        StateReader r(s.supply);
        supply_->loadState(r);
        TICSIM_ASSERT(r.exhausted(), "supply blob mismatch");
    }
    {
        StateReader r(s.timekeeper);
        tk_->loadState(r);
        TICSIM_ASSERT(r.exhausted(), "timekeeper blob mismatch");
    }
    if (rt_ != nullptr) {
        StateReader r(s.runtime);
        rt_->loadState(r);
        TICSIM_ASSERT(r.exhausted(), "runtime blob mismatch");
        rt_->stats() = s.runtimeStats;
    }
    if (s.hasFiber)
        ctx_->armFiberResume(s.fiber);
}

device::AccelSample
Board::sampleAccel()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return accel_.sample(now_);
}

std::int32_t
Board::sampleTemp()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return temp_.sample(now_);
}

std::int32_t
Board::sampleMoisture()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return moisture_.sample(now_);
}

void
Board::radioSend(const void *data, std::uint32_t bytes)
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(device::CostModel::linear(costs().radioSend,
                                     costs().radioPerByte, bytes));
    radio_.send(now_, data, bytes);
    events_.emit(telemetry::EventKind::RadioSend, now_, bytes);
    mem::traceSideEvent(mem::SideEventKind::PeripheralSend, "radio", bytes);
}

TimeNs
Board::deviceNow()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Timekeeper);
    charge(costs().timeRead);
    const TimeNs t = tk_->read(now_);
    mem::traceSideEvent(mem::SideEventKind::TimeRead, nullptr,
                        static_cast<std::uint64_t>(t));
    return t;
}

} // namespace ticsim::board
