#include "board.hpp"

#include "board/runtime.hpp"
#include "support/logging.hpp"

namespace ticsim::board {

void
Runtime::attach(Board &board, std::function<void()> appMain)
{
    board_ = &board;
    appMain_ = std::move(appMain);
}

void
Runtime::storeBytes(void *dst, const void *src, std::uint32_t bytes)
{
    mem::traceWrite(dst, bytes);
    mem::gatedStore(mem::StoreSite::AppGlobal, dst, src, bytes);
}

Board::Board(BoardConfig cfg, std::unique_ptr<energy::Supply> supply,
             std::unique_ptr<timekeeper::Timekeeper> tk)
    : cfg_(cfg), nvram_(cfg.nvramBytes), mcu_(cfg.costs),
      supply_(std::move(supply)), tk_(std::move(tk)), rng_(cfg.seed),
      accel_(Rng(cfg.seed ^ 0xACCE1ULL), cfg.accelRegimePeriod),
      temp_(Rng(cfg.seed ^ 0x7E3Full), 22.0, 6.0, 60 * kNsPerSec, 0.5),
      moisture_(Rng(cfg.seed ^ 0x5011ULL), 400.0, 120.0, 120 * kNsPerSec,
                8.0),
      events_(cfg.eventRingCapacity)
{
    if (!supply_)
        fatal("board: null supply");
    if (!tk_)
        fatal("board: null timekeeper");
    mcu_.setPhaseProfiler(&profiler_);
    profiler_.bindTimeline(&now_, &events_);
    monitor_.setEventHook([this](ViolationKind k) {
        events_.emit(telemetry::EventKind::Violation, now_,
                     static_cast<std::uint64_t>(k));
    });
    const Addr stackAddr =
        nvram_.allocate("app-stack", cfg.stackHostBytes, 64);
    ctx_ = std::make_unique<context::ExecContext>(nvram_.hostPtr(stackAddr),
                                                  cfg.stackHostBytes);
}

bool
Board::drainCycles(Cycles c)
{
    const TimeNs dur = mcu_.cyclesToNs(c);
    const auto r = supply_->drain(now_, dur, costs().activePower);
    now_ += r.ranFor;
    onTime_ += r.ranFor;
    const Cycles ran = r.died
        ? static_cast<Cycles>(r.ranFor / costs().cycleTimeNs())
        : c;
    mcu_.addCycles(ran);
    return r.died;
}

void
Board::charge(Cycles c)
{
    if (!ctx_->inside()) {
        if (drainCycles(c))
            sysDied_ = true;
        return;
    }
    if (drainCycles(c))
        ctx_->exitWith(context::ExitReason::PowerFail);
    if (now_ >= endTime_)
        ctx_->exitWith(context::ExitReason::TimeLimit);
}

void
Board::forcePowerFail()
{
    if (ctx_->inside())
        ctx_->exitWith(context::ExitReason::PowerFail);
    sysDied_ = true;
}

bool
Board::chargeSys(Cycles c)
{
    if (sysDied_)
        return false;
    if (drainCycles(c)) {
        sysDied_ = true;
        return false;
    }
    return true;
}

/** Scoped binding of the board's virtual clock to the log prefix. */
class LogClockScope
{
  public:
    explicit LogClockScope(const TimeNs *now)
        : prev_(Logger::get().setClock(now))
    {
    }
    ~LogClockScope() { Logger::get().setClock(prev_); }
    LogClockScope(const LogClockScope &) = delete;
    LogClockScope &operator=(const LogClockScope &) = delete;

  private:
    const std::uint64_t *prev_;
};

RunResult
Board::run(Runtime &rt, std::function<void()> appMain, TimeNs budget)
{
    rt.attach(*this, std::move(appMain));
    endTime_ = now_ + budget;
    RunResult res;
    const TimeNs start = now_;
    std::uint32_t noProgressReboots = 0;
    LogClockScope logClock(&now_);

    while (now_ < endTime_) {
        mem::traceBoot();
        sysDied_ = false;
        progressSinceBoot_ = false;
        // Scopes opened on a stack a brown-out abandoned never closed;
        // attribution restarts from App on every boot.
        profiler_.resetScopes();
        events_.emit(telemetry::EventKind::Boot, now_);
        const bool bootOk = rt.onPowerOn() && !sysDied_;
        if (bootOk) {
            mem::ScopedHooks sh(rt.memHooks());
            const auto reason = ctx_->run();
            if (reason == context::ExitReason::Completed) {
                res.completed = true;
                break;
            }
            if (reason == context::ExitReason::TimeLimit)
                break;
            if (reason == context::ExitReason::Starved) {
                res.starved = true;
                break;
            }
            // PowerFail: fall through to the outage path.
        }
        ++res.reboots;
        if (progressSinceBoot_) {
            noProgressReboots = 0;
        } else if (++noProgressReboots > cfg_.starvationRebootLimit) {
            res.starved = true;
            break;
        }
        tk_->onPowerFail(now_);
        events_.emit(telemetry::EventKind::BrownOut, now_);
        const TimeNs off = supply_->offTimeAfterDeath(now_);
        events_.emit(telemetry::EventKind::Outage, now_, 0, off);
        now_ += off;
        tk_->onPowerOn(now_);
    }

    res.cycles = mcu_.cycles();
    res.elapsed = now_ - start;
    res.onTime = onTime_;
    return res;
}

device::AccelSample
Board::sampleAccel()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return accel_.sample(now_);
}

std::int32_t
Board::sampleTemp()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return temp_.sample(now_);
}

std::int32_t
Board::sampleMoisture()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(costs().sensorSample);
    return moisture_.sample(now_);
}

void
Board::radioSend(const void *data, std::uint32_t bytes)
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Peripheral);
    charge(device::CostModel::linear(costs().radioSend,
                                     costs().radioPerByte, bytes));
    radio_.send(now_, data, bytes);
    events_.emit(telemetry::EventKind::RadioSend, now_, bytes);
    mem::traceSideEvent(mem::SideEventKind::PeripheralSend, "radio", bytes);
}

TimeNs
Board::deviceNow()
{
    telemetry::PhaseScope ps(profiler_, telemetry::Phase::Timekeeper);
    charge(costs().timeRead);
    const TimeNs t = tk_->read(now_);
    mem::traceSideEvent(mem::SideEventKind::TimeRead, nullptr,
                        static_cast<std::uint64_t>(t));
    return t;
}

} // namespace ticsim::board
