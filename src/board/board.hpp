/**
 * @file
 * The Board: one simulated batteryless device.
 *
 * Owns the MCU cost model, the FRAM arena, the power supply, the
 * persistent timekeeper, the peripherals and the application execution
 * context, and drives the boot / run / brown-out / recharge loop.
 * Virtual time only advances through cycle charges (while on) and
 * supply recharge intervals (while off).
 */

#ifndef TICSIM_BOARD_BOARD_HPP
#define TICSIM_BOARD_BOARD_HPP

#include <functional>
#include <memory>

#include "board/violation.hpp"
#include "context/exec_context.hpp"
#include "device/mcu.hpp"
#include "device/radio.hpp"
#include "device/sensors.hpp"
#include "energy/supply.hpp"
#include "mem/nvram.hpp"
#include "mem/trace.hpp"
#include "support/rng.hpp"
#include "support/statebuf.hpp"
#include "telemetry/events.hpp"
#include "telemetry/phase.hpp"
#include "timekeeper/timekeeper.hpp"

namespace ticsim::board {

class Runtime;

/** Static configuration of a simulated device. */
struct BoardConfig {
    /** FRAM arena size. Larger than the real 64 KiB because host
     *  stack frames are an order of magnitude bigger than MSP430
     *  frames; modeled footprints (Table 3) are accounted separately. */
    std::uint32_t nvramBytes = 512 * 1024;
    /** Host bytes reserved for the application stack buffer. */
    std::uint32_t stackHostBytes = 96 * 1024;
    device::CostModel costs{};
    std::uint64_t seed = 1;
    /** Consecutive no-progress reboots before declaring starvation. */
    std::uint32_t starvationRebootLimit = 300;
    /** Accelerometer activity-regime switching period. */
    TimeNs accelRegimePeriod = 500 * kNsPerMs;
    /** Telemetry event-timeline capacity (drop-oldest beyond this). */
    std::uint32_t eventRingCapacity = 1 << 16;
};

/** Outcome of one Board::run(). */
struct RunResult {
    bool completed = false;  ///< the application entry returned
    bool starved = false;    ///< no forward progress across many reboots
    std::uint64_t reboots = 0;
    Cycles cycles = 0;       ///< MCU cycles executed
    TimeNs elapsed = 0;      ///< total virtual time (on + off)
    TimeNs onTime = 0;       ///< powered time
};

/**
 * Where the boot / run / brown-out loop stands between continueRun()
 * steps. Exposed so the failure-space explorer can restore a Snapshot
 * and steer the loop (e.g. force the death path at a decision point).
 */
enum class RunPhase : std::uint8_t {
    Boot,        ///< about to boot the runtime (traceBoot fires)
    BootNoTrace, ///< ditto, without re-announcing the boot to the sink
    Enter,       ///< context armed; about to enter application code
    Death,       ///< power failed; about to take the outage path
    Done,        ///< run finished (completed / starved / budget)
};

/**
 * Everything needed to roll a Board (and its attached runtime) back to
 * an earlier point of the same run, in place. Host-side state is
 * copied; modeled NV bytes are *not* imaged — the caller must have a
 * mem::WriteJournal installed, whose mark is captured here and undone
 * by restore(). With a FiberImage the restored run resumes mid-
 * application; without one the restore is only meaningful if the
 * explorer immediately forces the death path (markInjectedDeath()) or
 * the snapshot was taken outside the application context.
 */
struct Snapshot {
    TimeNs now = 0;
    TimeNs onTime = 0;
    TimeNs endTime = 0;
    TimeNs runStart = 0;
    bool sysDied = false;
    bool progressSinceBoot = false;
    RunPhase phase = RunPhase::Boot;
    RunResult partial{};
    std::uint32_t noProgressReboots = 0;
    Cycles mcuCycles = 0;
    Rng rng{};
    StateBlob sensors;          ///< accel + temp + moisture images
    std::size_t radioPackets = 0;
    ViolationMonitor monitor{};
    telemetry::PhaseProfiler profiler{};
    telemetry::EventRing::Mark events{};
    StateBlob supply;
    StateBlob timekeeper;
    StateBlob runtime;
    StatGroup runtimeStats{""};
    std::size_t journalMark = 0;
    bool hasFiber = false;
    context::FiberImage fiber{};
};

class Board
{
  public:
    Board(BoardConfig cfg, std::unique_ptr<energy::Supply> supply,
          std::unique_ptr<timekeeper::Timekeeper> tk);

    /**
     * Execute @p appMain under @p rt until it completes, starves, or
     * the virtual-time budget runs out.
     */
    RunResult run(Runtime &rt, std::function<void()> appMain,
                  TimeNs budget);

    // ---- stepwise run control (snapshot / fork support) -------------------

    /** Attach @p rt and arm the run loop without entering it yet.
     *  run() is exactly beginRun() + continueRun(). */
    void beginRun(Runtime &rt, std::function<void()> appMain,
                  TimeNs budget);

    /** Drive the boot / run / brown-out loop from the current RunPhase
     *  to completion. Also the re-entry point after restore(). */
    RunResult continueRun();

    /** Current position of the run loop. */
    RunPhase phase() const { return phase_; }

    /** The runtime of the active run (null outside beginRun/run). */
    Runtime *runtime() { return rt_; }

    /**
     * Capture the board's host-side state (plus the installed write
     * journal's mark) into @p s. With @p withFiber, also images the
     * live application stack + registers so the restored run resumes
     * mid-application; in that case the call must come from inside the
     * app context and returns false on the re-entry path after a
     * restore() (mirroring ExecContext::captureFiber).
     */
    bool snapshot(Snapshot &s, bool withFiber = false);

    /**
     * Roll the board back to @p s, in place, undoing journaled NV
     * writes. Must be called from the scheduler side; if the snapshot
     * holds a fiber image the context is re-armed so continueRun()
     * resumes mid-application.
     */
    void restore(const Snapshot &s);

    /**
     * Explorer-side emulated death: mark the current boot dead (as
     * forcePowerFail() would from the scheduler side) and steer the
     * run loop onto the outage path. Emits an InjectedFail event so
     * traces distinguish it from an organic brown-out.
     */
    void markInjectedDeath();

    // ---- component access -------------------------------------------------
    mem::NvRam &nvram() { return nvram_; }
    device::Mcu &mcu() { return mcu_; }
    context::ExecContext &ctx() { return *ctx_; }
    ViolationMonitor &monitor() { return monitor_; }
    energy::Supply &supply() { return *supply_; }
    timekeeper::Timekeeper &timekeeper() { return *tk_; }
    device::Radio &radio() { return radio_; }
    device::Accelerometer &accel() { return accel_; }
    Rng &rng() { return rng_; }

    /** Phase-attributed cycle profile of everything this board ran. */
    telemetry::PhaseProfiler &profiler() { return profiler_; }
    const telemetry::PhaseProfiler &profiler() const { return profiler_; }

    /** Virtual-time event timeline (bounded; see BoardConfig). */
    telemetry::EventRing &events() { return events_; }
    const telemetry::EventRing &events() const { return events_; }

    const device::CostModel &costs() const { return mcu_.costs(); }
    const BoardConfig &config() const { return cfg_; }

    /** True virtual time. */
    TimeNs now() const { return now_; }

    /** The running experiment's end time. */
    TimeNs endTime() const { return endTime_; }

    // ---- cycle accounting -------------------------------------------------

    /**
     * Charge @p c cycles. From inside the app context this does not
     * return if the supply browns out or the time budget expires (the
     * context is abandoned, like a real power failure). From the
     * scheduler side it records the death for the caller to observe.
     */
    void charge(Cycles c);

    /**
     * Charge cycles on the scheduler side (boot/restore work).
     * @return false if the supply browned out.
     */
    bool chargeSys(Cycles c);

    /** Whether a scheduler-side charge browned out this boot. */
    bool sysDied() const { return sysDied_; }

    /**
     * Kill the device right now, independent of the supply (fault
     * injection: a torn NV store is the last thing that happens before
     * the lights go out). From inside the app context this abandons
     * the context and does not return; from the scheduler side it
     * marks the boot dead for the run loop to observe. The caller's
     * supply decides the off time, as for any other death.
     */
    void forcePowerFail();

    /** Runtime reports forward progress (a commit); clears the
     *  starvation counter and closes the consistency interval the
     *  analysis tracer is accumulating. */
    void
    markProgress()
    {
        progressSinceBoot_ = true;
        mem::traceCommit();
    }

    // ---- peripherals (call from the app context; charge internally) ------
    device::AccelSample sampleAccel();
    std::int32_t sampleTemp();
    std::int32_t sampleMoisture();
    void radioSend(const void *data, std::uint32_t bytes);

    /** Device's own estimate of current time (charges a clock read). */
    TimeNs deviceNow();

  private:
    BoardConfig cfg_;
    mem::NvRam nvram_;
    device::Mcu mcu_;
    std::unique_ptr<energy::Supply> supply_;
    std::unique_ptr<timekeeper::Timekeeper> tk_;
    std::unique_ptr<context::ExecContext> ctx_;
    ViolationMonitor monitor_;
    device::Radio radio_;
    Rng rng_;
    device::Accelerometer accel_;
    device::ScalarSensor temp_;
    device::ScalarSensor moisture_;
    telemetry::PhaseProfiler profiler_;
    telemetry::EventRing events_;

    TimeNs now_ = 0;
    TimeNs onTime_ = 0;
    TimeNs endTime_ = 0;
    bool sysDied_ = false;
    bool progressSinceBoot_ = false;

    // ---- run-loop state (lives in members so snapshot/restore can
    //      re-enter the loop mid-run) ------------------------------------
    Runtime *rt_ = nullptr;
    RunResult res_{};
    TimeNs runStart_ = 0;
    std::uint32_t noProgressReboots_ = 0;
    RunPhase phase_ = RunPhase::Done;

    /** @return true if the supply browned out during the charge. */
    bool drainCycles(Cycles c);

    /** One brown-out: reboot bookkeeping, outage, clock re-sync. */
    void deathPath();

    /** Finalize the cross-boot totals of the active run. */
    RunResult finishRun();
};

} // namespace ticsim::board

#endif // TICSIM_BOARD_BOARD_HPP
