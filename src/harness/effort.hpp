/**
 * @file
 * Developer-effort proxy metrics for the Fig. 10 user study.
 *
 * The paper's study is a human-subject experiment (bug-finding time
 * and accuracy on three programs written in TICS vs. InK styles) and
 * cannot be replicated without participants. The repository instead
 * quantifies the property the study attributes the result to: task
 * decomposition spreads one logical operation across more program
 * elements and more shared-state plumbing, so there is more surface to
 * search for a bug. These are objective, static measures over the
 * exact program texts used by the study tasks (see apps/study).
 */

#ifndef TICSIM_HARNESS_EFFORT_HPP
#define TICSIM_HARNESS_EFFORT_HPP

#include <cstdint>
#include <string>

namespace ticsim::harness {

struct EffortMetrics {
    std::uint32_t loc = 0;            ///< non-blank source lines
    std::uint32_t decisionPoints = 0; ///< if/for/while/case/?:/&&/||
    std::uint32_t elements = 0;       ///< functions, or tasks + channels
    std::uint32_t sharedState = 0;    ///< cross-element state items
};

/**
 * Count lines and decision points in @p source; @p elements and
 * @p sharedState are structural facts supplied by the program author
 * (task/channel counts cannot be inferred reliably from text).
 */
EffortMetrics analyzeSource(const std::string &source,
                            std::uint32_t elements,
                            std::uint32_t sharedState);

} // namespace ticsim::harness

#endif // TICSIM_HARNESS_EFFORT_HPP
