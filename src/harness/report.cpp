#include "report.hpp"

#include <cstring>
#include <fstream>

#include "perf/host_profiler.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace ticsim::harness {

namespace {

BenchSession *gSession = nullptr;

/** Match "--flag <v>" / "--flag=<v>"; returns true when consumed. */
bool
takeFlag(const char *flag, int &i, int argc, char **argv,
         std::string &out, int &removed)
{
    const std::size_t flagLen = std::strlen(flag);
    const char *arg = argv[i];
    if (std::strncmp(arg, flag, flagLen) != 0)
        return false;
    if (arg[flagLen] == '=') {
        out = arg + flagLen + 1;
        removed = 1;
        return true;
    }
    if (arg[flagLen] != '\0')
        return false; // e.g. --jsonx
    if (i + 1 >= argc)
        fatal("%s requires a path argument", flag);
    out = argv[i + 1];
    removed = 2;
    return true;
}

void
writeStatGroup(JsonWriter &w, const StatGroup &g)
{
    w.beginObject();
    w.member("group", g.name());
    w.key("counters").beginObject();
    for (const auto &[name, c] : g.counters())
        w.member(name, c.value());
    w.endObject();
    w.key("scalars").beginObject();
    for (const auto &[name, v] : g.scalars())
        w.member(name, v);
    w.endObject();
    w.key("distributions").beginObject();
    for (const auto &[name, d] : g.distributions()) {
        w.key(name)
            .beginObject()
            .member("count", d.count())
            .member("mean", d.mean())
            .member("min", d.min())
            .member("max", d.max())
            .member("stddev", d.stddev())
            .member("p50", d.p50())
            .member("p95", d.p95())
            .member("p99", d.p99())
            .endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace

ReportOptions
parseReportArgs(int &argc, char **argv)
{
    ReportOptions opts;
    int out = 1;
    for (int i = 1; i < argc;) {
        int removed = 0;
        if (takeFlag("--json", i, argc, argv, opts.jsonPath, removed) ||
            takeFlag("--trace", i, argc, argv, opts.tracePath, removed)) {
            i += removed;
            continue;
        }
        argv[out++] = argv[i++];
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

BenchSession::BenchSession(std::string bench, ReportOptions opts)
    : bench_(std::move(bench)), opts_(std::move(opts)),
      owner_(std::this_thread::get_id())
{
    gSession = this;
}

BenchSession::BenchSession(std::string bench, int &argc, char **argv)
    : BenchSession(std::move(bench), parseReportArgs(argc, argv))
{
}

BenchSession::~BenchSession()
{
    finish();
    if (gSession == this)
        gSession = nullptr;
}

BenchSession *
BenchSession::current()
{
    return gSession;
}

void
BenchSession::record(const std::string &label, board::Runtime &rt,
                     board::Board &b, const board::RunResult &res)
{
    if (!opts_.enabled())
        return;
    // Only the session owner's thread records runs. When a driver
    // (fault campaign, cross-validation) fans board runs out across a
    // JobPool, worker-thread runs are summarized by that driver's own
    // deterministic result assembly instead of appending here in
    // nondeterministic completion order; single-job runs execute
    // inline on the owner thread and keep recording exactly as
    // before.
    if (std::this_thread::get_id() != owner_)
        return;
    RunRecord r;
    r.label = label;
    r.runtime = rt.name();
    r.result = res;
    for (int p = 0; p < telemetry::kPhaseCount; ++p)
        r.phases[p] =
            b.profiler().phaseCycles(static_cast<telemetry::Phase>(p));
    r.stats.push_back(rt.stats());
    r.stats.push_back(b.supply().stats());
    r.eventsRecorded = b.events().size();
    r.eventsDropped = b.events().dropped();
    if (!opts_.tracePath.empty())
        r.events = b.events().snapshot();
    runs_.push_back(std::move(r));
}

void
BenchSession::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    haveSeed_ = true;
}

void
BenchSession::addFinding(ReportFinding finding)
{
    findings_.push_back(std::move(finding));
}

void
BenchSession::setGrid(GridSection grid)
{
    grid_ = std::move(grid);
    haveGrid_ = true;
}

void
BenchSession::setProb(ProbSection prob)
{
    prob_ = std::move(prob);
    haveProb_ = true;
}

void
BenchSession::setPerf(PerfSection perf)
{
    perf_ = std::move(perf);
    havePerf_ = true;
}

void
BenchSession::setLint(LintSection lint)
{
    lint_ = std::move(lint);
    haveLint_ = true;
}

void
BenchSession::setMc(McSection mc)
{
    mc_ = std::move(mc);
    haveMc_ = true;
}

void
BenchSession::setFleet(FleetSection fleet)
{
    fleet_ = std::move(fleet);
    haveFleet_ = true;
}

void
BenchSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    perf::HostScope scope(perf::HostZone::Report);
    if (!opts_.jsonPath.empty())
        writeJson();
    if (!opts_.tracePath.empty())
        writeTrace();
}

void
BenchSession::writeJson() const
{
    std::ofstream os(opts_.jsonPath);
    if (!os)
        fatal("cannot open report file '%s'", opts_.jsonPath.c_str());

    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "ticsim.run_report");
    // Documents without findings keep emitting version 1 byte-for-byte
    // and documents without a grid stay at version 2 (or 1); each
    // optional section only bumps the version of documents that
    // actually carry it.
    w.member("version", haveFleet_  ? kReportVersionFleet
                        : haveMc_   ? kReportVersionMc
                        : haveLint_ ? kReportVersionLint
                        : havePerf_ ? kReportVersionPerf
                        : haveProb_ ? kReportVersionProb
                        : haveGrid_ ? kReportVersionGrid
                        : findings_.empty() ? kReportVersion
                                            : kReportVersionFindings);
    w.member("bench", bench_);
    // Optional: absent from documents whose bench never set a seed, so
    // their output stays byte-identical.
    if (haveSeed_)
        w.member("seed", seed_);
    w.key("runs").beginArray();
    for (const RunRecord &r : runs_) {
        w.beginObject();
        w.member("label", r.label);
        w.member("runtime", r.runtime);
        w.key("result")
            .beginObject()
            .member("completed", r.result.completed)
            .member("starved", r.result.starved)
            .member("reboots", r.result.reboots)
            .member("cycles", r.result.cycles)
            .member("elapsed_ns", r.result.elapsed)
            .member("on_time_ns", r.result.onTime)
            .endObject();
        w.key("phases").beginObject();
        Cycles total = 0;
        for (int p = 0; p < telemetry::kPhaseCount; ++p) {
            w.member(telemetry::phaseName(
                         static_cast<telemetry::Phase>(p)),
                     r.phases[p]);
            total += r.phases[p];
        }
        w.member("total", total);
        w.endObject();
        w.key("stats").beginArray();
        for (const StatGroup &g : r.stats)
            writeStatGroup(w, g);
        w.endArray();
        w.key("events")
            .beginObject()
            .member("recorded", r.eventsRecorded)
            .member("dropped", r.eventsDropped)
            .endObject();
        w.endObject();
    }
    w.endArray();
    if (!findings_.empty()) {
        w.key("findings").beginArray();
        for (const ReportFinding &f : findings_) {
            w.beginObject();
            w.member("analysis", f.analysis);
            w.member("app", f.app);
            w.member("runtime", f.runtime);
            w.member("subject", f.subject);
            w.member("region_index", f.regionIndex);
            w.member("anchor", f.anchor);
            w.member("offset", f.offset);
            w.member("bytes", f.bytes);
            w.member("detail", f.detail);
            w.endObject();
        }
        w.endArray();
    }
    if (haveGrid_) {
        w.key("grid").beginObject();
        w.member("jobs", grid_.jobs);
        w.member("wall_ms", grid_.wallMs);
        w.key("cache")
            .beginObject()
            .member("hits", grid_.cacheHits)
            .member("misses", grid_.cacheMisses)
            .endObject();
        w.key("cells").beginArray();
        for (const GridCellEntry &c : grid_.cells) {
            w.beginObject();
            w.member("job_id", c.jobId);
            w.member("app", c.app);
            w.member("runtime", c.runtime);
            w.member("supply", c.supply);
            w.member("cap_uf", c.capUf);
            w.member("segment_bytes", c.segmentBytes);
            // Optional: absent for plain-supply cells so pre-env
            // documents stay byte-identical.
            if (!c.env.empty())
                w.member("env", c.env);
            w.member("seed", c.seed);
            w.key("result")
                .beginObject()
                .member("completed", c.completed)
                .member("starved", c.starved)
                .member("verified", c.verified)
                .member("reboots", c.reboots)
                .member("cycles", c.cycles)
                .member("elapsed_ns", c.elapsedNs)
                .member("on_time_ns", c.onTimeNs)
                .member("sim_ms", c.simMs)
                .endObject();
            w.member("cached", c.cached);
            w.endObject();
        }
        w.endArray();
        w.key("aggregates").beginArray();
        for (const GridAggregateEntry &a : grid_.aggregates) {
            w.beginObject();
            w.member("app", a.app);
            w.member("runtime", a.runtime);
            w.member("supply", a.supply);
            w.member("cap_uf", a.capUf);
            w.member("segment_bytes", a.segmentBytes);
            if (!a.env.empty())
                w.member("env", a.env);
            w.member("cells", a.cells);
            w.member("completed", a.completed);
            w.key("sim_ms")
                .beginObject()
                .member("mean", a.mean)
                .member("stddev", a.stddev)
                .member("min", a.min)
                .member("max", a.max)
                .member("p50", a.p50)
                .member("p95", a.p95)
                .member("p99", a.p99)
                .endObject();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    if (haveProb_) {
        w.key("prob").beginObject();
        w.key("tolerance")
            .beginObject()
            .member("p50", prob_.tolP50)
            .member("p95", prob_.tolP95)
            .member("p99", prob_.tolP99)
            .endObject();
        w.member("crossval", prob_.crossval);
        w.key("rows").beginArray();
        for (const ProbRowEntry &r : prob_.rows) {
            w.beginObject();
            w.member("app", r.app);
            w.member("runtime", r.runtime);
            w.member("env", r.env);
            w.member("cap_uf", r.capUf);
            w.key("static")
                .beginObject()
                .member("p50_ms", r.staticP50Ms)
                .member("p95_ms", r.staticP95Ms)
                .member("p99_ms", r.staticP99Ms)
                .member("mean_ms", r.staticMeanMs)
                .member("p_nonterm", r.pNonterm)
                .member("mean_outages", r.meanOutages)
                .endObject();
            w.key("simulated")
                .beginObject()
                .member("cells", r.simCells)
                .member("completed", r.simCompleted)
                .member("p50_ms", r.simP50Ms)
                .member("p95_ms", r.simP95Ms)
                .member("p99_ms", r.simP99Ms)
                .endObject();
            w.member("within_tolerance", r.withinTolerance);
            w.member("gate", r.gateKind);
            w.member("failed_percentile", r.failedPercentile);
            w.endObject();
        }
        w.endArray();
        w.key("freshness").beginArray();
        for (const ProbFreshnessEntry &f : prob_.freshness) {
            w.beginObject();
            w.member("app", f.app);
            w.member("runtime", f.runtime);
            w.member("env", f.env);
            w.member("subject", f.subject);
            w.member("lifetime_ms", f.lifetimeMs);
            w.member("p_violation", f.pViolation);
            w.member("sites", f.sites);
            w.endObject();
        }
        w.endArray();
        if (prob_.haveSlo) {
            w.key("slo")
                .beginObject()
                .member("app", prob_.slo.app)
                .member("runtime", prob_.slo.runtime)
                .member("slo", prob_.slo.slo)
                .member("deadline_ms", prob_.slo.deadlineMs)
                .member("feasible", prob_.slo.feasible)
                .member("capacitance_uf", prob_.slo.capacitanceUf)
                .member("p_on_time", prob_.slo.pOnTime)
                .endObject();
        }
        w.endObject();
    }
    if (havePerf_) {
        w.key("perf").beginObject();
        w.member("bench_version", perf_.benchVersion);
        w.key("build")
            .beginObject()
            .member("type", perf_.buildType)
            .member("optimized", perf_.optimized)
            .member("quick", perf_.quick)
            .endObject();
        w.key("counters").beginObject();
        for (const PerfCounterEntry &c : perf_.counters)
            w.member(c.name, c.value);
        w.endObject();
        w.key("microbench").beginArray();
        for (const PerfMicrobenchEntry &m : perf_.microbench) {
            w.beginObject();
            w.member("name", m.name);
            w.member("iters", m.iters);
            w.member("ns_per_op", m.nsPerOp);
            w.member("ops_per_sec", m.opsPerSec);
            w.endObject();
        }
        w.endArray();
        w.key("macro")
            .beginObject()
            .member("cells", perf_.macroCells)
            .member("host_ms", perf_.macroHostMs)
            .member("cells_per_sec", perf_.cellsPerSec)
            .member("sim_cycles", perf_.macroSimCycles)
            .member("sim_ns", perf_.macroSimNs)
            .member("sim_cycles_per_host_sec", perf_.simCyclesPerHostSec)
            .member("sim_seconds_per_host_sec",
                    perf_.simSecondsPerHostSec)
            .endObject();
        w.key("host_time").beginObject();
        w.member("total_ms", perf_.hostTotalMs);
        w.key("zones").beginArray();
        for (const PerfZoneEntry &z : perf_.zones) {
            w.beginObject();
            w.member("name", z.name);
            w.member("ms", z.ms);
            w.member("scopes", z.scopes);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.key("profiler_overhead")
            .beginObject()
            .member("clock_reads", perf_.clockReads)
            .member("scope_ns", perf_.scopeNsPerEnterExit)
            .endObject();
        w.endObject();
    }
    if (haveLint_) {
        w.key("lint").beginObject();
        w.member("files_analyzed", lint_.filesAnalyzed);
        w.member("functions_analyzed", lint_.functionsAnalyzed);
        w.key("findings").beginArray();
        for (const LintFindingEntry &f : lint_.findings) {
            w.beginObject();
            w.member("rule", f.rule);
            w.member("subject", f.subject);
            w.member("file", f.file);
            w.member("line", f.line);
            w.member("function", f.function);
            w.member("detail", f.detail);
            w.endObject();
        }
        w.endArray();
        w.member("crossval", lint_.crossval);
        if (lint_.crossval) {
            w.member("full_coverage", lint_.fullCoverage);
            w.key("rows").beginArray();
            for (const LintCrossValEntry &r : lint_.rows) {
                w.beginObject();
                w.member("app", r.app);
                w.member("runtime", r.runtime);
                w.member("file", r.file);
                w.member("dynamic_findings", r.dynamicFindings);
                w.member("matched_findings", r.matchedFindings);
                w.member("static_findings", r.staticFindings);
                w.member("confirmed_static", r.confirmedStatic);
                w.member("coverage", r.coverage);
                w.member("fp_rate", r.fpRate);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    if (haveMc_) {
        w.key("mc").beginObject();
        w.member("max_faults", mc_.maxFaults);
        w.member("max_decisions", mc_.maxDecisions);
        w.member("jobs", mc_.jobs);
        w.member("all_exhausted", mc_.allExhausted);
        w.key("pairs").beginArray();
        for (const McPairEntry &p : mc_.pairs) {
            w.beginObject();
            w.member("app", p.app);
            w.member("runtime", p.runtime);
            w.member("protected", p.isProtected);
            w.member("ref_completed", p.refCompleted);
            w.member("recording_consistent", p.recordingConsistent);
            w.member("decision_points", p.decisionPoints);
            w.member("branches_taken", p.branchesTaken);
            w.member("states_explored", p.statesExplored);
            w.member("frontier_cutoffs", p.frontierCutoffs);
            w.member("exhausted", p.exhausted);
            w.member("confirmed_violations", p.confirmedViolations);
            w.endObject();
        }
        w.endArray();
        w.key("violations").beginArray();
        for (const McViolationEntry &v : mc_.violations) {
            w.beginObject();
            w.member("app", v.app);
            w.member("runtime", v.runtime);
            w.member("kind", v.kind);
            w.member("plan", v.plan);
            w.member("found_as", v.foundAs);
            w.member("divergent_bytes", v.divergentBytes);
            w.member("confirmed", v.confirmed);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    if (haveFleet_) {
        w.key("fleet").beginObject();
        w.member("workers_requested", fleet_.workersRequested);
        w.member("workers_spawned", fleet_.workersSpawned);
        w.member("retries", fleet_.retries);
        w.member("crashes", fleet_.crashes);
        w.member("timeouts", fleet_.timeouts);
        w.member("stragglers_cancelled", fleet_.stragglersCancelled);
        w.member("duplicate_results", fleet_.duplicateResults);
        w.member("heartbeats", fleet_.heartbeats);
        w.member("cells_total", fleet_.cellsTotal);
        w.member("cells_completed", fleet_.cellsCompleted);
        w.member("complete", fleet_.complete);
        w.member("require_complete", fleet_.requireComplete);
        w.member("wall_ms", fleet_.wallMs);
        w.key("envs").beginArray();
        for (const std::string &e : fleet_.envs)
            w.value(e);
        w.endArray();
        w.key("workers").beginArray();
        for (const FleetWorkerEntry &fw : fleet_.workers) {
            w.beginObject();
            w.member("shard", fw.shard);
            w.member("spawns", fw.spawns);
            w.member("assigned", fw.assigned);
            w.member("completed", fw.completed);
            w.member("crashed", fw.crashed);
            w.member("timed_out", fw.timedOut);
            w.member("cancelled", fw.cancelled);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    os << '\n';
}

void
BenchSession::writeTrace() const
{
    std::ofstream os(opts_.tracePath);
    if (!os)
        fatal("cannot open trace file '%s'", opts_.tracePath.c_str());

    std::vector<telemetry::TraceProcess> procs;
    for (const RunRecord &r : runs_) {
        if (r.events.empty())
            continue;
        procs.push_back(telemetry::TraceProcess{
            r.label + " [" + r.runtime + "]", r.events, r.eventsDropped});
    }
    writeChromeTrace(os, procs);
}

void
recordRun(const std::string &label, board::Runtime &rt, board::Board &b,
          const board::RunResult &res)
{
    if (BenchSession *s = BenchSession::current())
        s->record(label, rt, b, res);
}

} // namespace ticsim::harness
