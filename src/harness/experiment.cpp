#include "experiment.hpp"

#include <cstdio>

#include "energy/trace_supply.hpp"
#include "support/logging.hpp"

namespace ticsim::harness {

std::unique_ptr<energy::Supply>
makeSupply(const SupplySpec &spec)
{
    switch (spec.setup) {
      case PowerSetup::Continuous:
        return std::make_unique<energy::ContinuousSupply>();
      case PowerSetup::Pattern:
        if (spec.patternOnFraction >= 1.0)
            return std::make_unique<energy::ContinuousSupply>();
        return std::make_unique<energy::PatternSupply>(
            spec.patternPeriod, spec.patternOnFraction);
      case PowerSetup::RfHarvested: {
        energy::HarvestingSupply::Config cfg;
        if (spec.capacitanceF > 0.0)
            cfg.capacitance = spec.capacitanceF;
        auto rf = std::make_unique<energy::RfHarvester>(
            spec.rfTxEirp, spec.rfDistanceM);
        rf->setFading(/*sigmaDb=*/2.2, /*blockNs=*/40 * kNsPerMs,
                      spec.seed ^ 0xFAD3u);
        return std::make_unique<energy::HarvestingSupply>(cfg,
                                                          std::move(rf));
      }
      case PowerSetup::Stochastic: {
        energy::HarvestingSupply::Config cfg;
        if (spec.capacitanceF > 0.0)
            cfg.capacitance = spec.capacitanceF;
        return std::make_unique<energy::HarvestingSupply>(
            cfg, std::make_unique<energy::StochasticHarvester>(
                     spec.stochasticPower, spec.stochasticOn,
                     spec.stochasticOff, Rng(spec.seed ^ 0x57E9u)));
      }
      case PowerSetup::TraceEnv: {
        std::string err;
        auto trace = energy::EnvTrace::forEnv(spec.traceEnv, err);
        if (!trace)
            fatal("trace env '%s': %s", spec.traceEnv.c_str(),
                  err.c_str());
        energy::TraceSupply::Config cfg;
        if (spec.capacitanceF > 0.0)
            cfg.capacitance = spec.capacitanceF;
        cfg.startOffset =
            energy::TraceSupply::offsetForSeed(spec.seed, *trace);
        return std::make_unique<energy::TraceSupply>(cfg,
                                                     std::move(trace));
      }
    }
    return std::make_unique<energy::ContinuousSupply>();
}

SupplySpec
continuousSpec()
{
    SupplySpec spec;
    spec.setup = PowerSetup::Continuous;
    return spec;
}

SupplySpec
patternSpec(TimeNs period, double onFraction)
{
    SupplySpec spec;
    spec.setup = PowerSetup::Pattern;
    spec.patternPeriod = period;
    spec.patternOnFraction = onFraction;
    return spec;
}

std::unique_ptr<board::Board>
makeBoard(const SupplySpec &spec, std::uint64_t seed,
          device::CostModel costs)
{
    board::BoardConfig cfg;
    cfg.seed = seed;
    cfg.costs = costs;
    cfg.accelRegimePeriod = spec.accelRegimePeriod;
    return std::make_unique<board::Board>(
        cfg, makeSupply(spec),
        std::make_unique<timekeeper::PerfectTimekeeper>());
}

const TicsSetup kSetupS1{"S1", 50, tics::PolicyKind::None, 0};
const TicsSetup kSetupS2{"S2", 256, tics::PolicyKind::None, 0};
const TicsSetup kSetupS1Star{"S1*", 50, tics::PolicyKind::Timer,
                             10 * kNsPerMs};
const TicsSetup kSetupS2Star{"S2*", 256, tics::PolicyKind::Timer,
                             10 * kNsPerMs};
const TicsSetup kSetupST{"ST", 256, tics::PolicyKind::EveryTrigger, 0};

tics::TicsConfig
makeTicsConfig(const TicsSetup &s)
{
    tics::TicsConfig cfg;
    cfg.segmentBytes = s.segmentBytes;
    cfg.policy = s.policy;
    if (s.timerPeriod)
        cfg.timerPeriod = s.timerPeriod;
    return cfg;
}

double
simMs(const board::RunResult &r)
{
    return static_cast<double>(r.onTime) /
           static_cast<double>(kNsPerMs);
}

std::string
msCell(bool supported, bool completed, double ms)
{
    if (!supported)
        return "x";
    if (!completed)
        return "DNF";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    return buf;
}

} // namespace ticsim::harness
