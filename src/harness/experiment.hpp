/**
 * @file
 * Experiment plumbing shared by the benchmark binaries: supply
 * factories for the paper's three power setups, board construction,
 * and common result formatting.
 */

#ifndef TICSIM_HARNESS_EXPERIMENT_HPP
#define TICSIM_HARNESS_EXPERIMENT_HPP

#include <memory>
#include <string>

#include "board/board.hpp"
#include "tics/runtime.hpp"

namespace ticsim::harness {

/** The paper's power setups, plus trace-driven environments. */
enum class PowerSetup {
    Continuous,   ///< bench supply (Fig. 9 overhead runs)
    Pattern,      ///< pre-programmed reset pattern (Table 1)
    RfHarvested,  ///< Powercast-like RF + capacitor (Table 2 / Fig. 8)
    Stochastic,   ///< bursty ambient source (ablations)
    TraceEnv,     ///< replayed docs/traces CSV (fleet env axis)
};

struct SupplySpec {
    PowerSetup setup = PowerSetup::Continuous;
    /** Pattern: reset period and powered fraction. */
    TimeNs patternPeriod = 100 * kNsPerMs;
    double patternOnFraction = 1.0;
    /** RF: transmitter EIRP and distance. */
    Watts rfTxEirp = 3.0;
    double rfDistanceM = 2.9;
    /**
     * Energy-buffer capacitance override for the harvested setups
     * (RfHarvested/Stochastic). 0 keeps the supply's default; the
     * capacitor-sweep experiments (Fig. 9-style) set it per cell.
     */
    double capacitanceF = 0.0;
    /** Stochastic: mean power and interval lengths. */
    Watts stochasticPower = 2.2e-3;
    TimeNs stochasticOn = 80 * kNsPerMs;
    TimeNs stochasticOff = 150 * kNsPerMs;
    std::uint64_t seed = 1;
    /**
     * TraceEnv: the environment-trace name (docs/traces/<name>.csv).
     * The seed picks a deterministic start offset into the trace, so
     * a seed axis becomes a population of device-days.
     */
    std::string traceEnv;
    /** Accelerometer activity-regime switching period (the timed AR
     *  experiments use fast switching so alert deadlines bind). */
    TimeNs accelRegimePeriod = 500 * kNsPerMs;
};

/** Build a supply per spec. */
std::unique_ptr<energy::Supply> makeSupply(const SupplySpec &spec);

/** Failure-free spec (reference runs of the consistency checker). */
SupplySpec continuousSpec();

/** Pre-programmed reset-pattern spec (Table 1 setups, ticscheck). */
SupplySpec patternSpec(TimeNs period, double onFraction);

/** Build a board with a perfect timekeeper (the common case). */
std::unique_ptr<board::Board>
makeBoard(const SupplySpec &spec, std::uint64_t seed = 1,
          device::CostModel costs = {});

/** Paper configuration names for TICS working-stack setups. */
struct TicsSetup {
    const char *name;
    std::uint32_t segmentBytes;
    tics::PolicyKind policy;
    TimeNs timerPeriod;
};

/** S1 / S2 / S1* / S2* / ST from Fig. 9. */
tics::TicsConfig makeTicsConfig(const TicsSetup &s);

extern const TicsSetup kSetupS1;      ///< 50 B, grow/shrink only
extern const TicsSetup kSetupS2;      ///< 256 B, grow/shrink only
extern const TicsSetup kSetupS1Star;  ///< 50 B + 10 ms timer
extern const TicsSetup kSetupS2Star;  ///< 256 B + 10 ms timer
extern const TicsSetup kSetupST;      ///< 256 B + task-boundary ckpts

/** Simulated milliseconds of powered execution. */
double simMs(const board::RunResult &r);

/** "12.3" or "x" when the configuration cannot run the program. */
std::string msCell(bool supported, bool completed, double ms);

} // namespace ticsim::harness

#endif // TICSIM_HARNESS_EXPERIMENT_HPP
