/**
 * @file
 * Machine-readable run reports for the benchmark binaries.
 *
 * Every bench accepts two common flags on top of whatever it already
 * parses:
 *
 *     --json <path>    write a ticsim.run_report JSON document
 *     --trace <path>   write a Chrome trace_event timeline (Perfetto)
 *
 * A BenchSession collects one record per board run — the RunResult,
 * the phase-attributed cycle breakdown, the runtime's and supply's
 * StatGroups, and (when tracing) the event-ring snapshot — and
 * serializes everything on finish(). The human-readable tables on
 * stdout are untouched; reports go to the named files only, so a
 * bench's printed output is byte-identical with and without the flags.
 *
 * The JSON document layout is pinned by tools/run_report.schema.json;
 * bump kReportVersion when changing it.
 */

#ifndef TICSIM_HARNESS_REPORT_HPP
#define TICSIM_HARNESS_REPORT_HPP

#include <string>
#include <thread>
#include <vector>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "telemetry/trace_export.hpp"

namespace ticsim::harness {

/** Schema version of the JSON run report. */
constexpr int kReportVersion = 1;

/** Version emitted when the report carries a `findings` section. */
constexpr int kReportVersionFindings = 2;

/** Version emitted when the report carries a `grid` section. */
constexpr int kReportVersionGrid = 3;

/** Version emitted when the report carries a `prob` section. */
constexpr int kReportVersionProb = 4;

/** Version emitted when the report carries a `perf` section. */
constexpr int kReportVersionPerf = 5;

/** Version emitted when the report carries a `lint` section. */
constexpr int kReportVersionLint = 6;

/** Version emitted when the report carries an `mc` section. */
constexpr int kReportVersionMc = 7;

/** Version emitted when the report carries a `fleet` section. */
constexpr int kReportVersionFleet = 8;

/**
 * One analysis finding in the report's optional `findings` section
 * (written by static-analysis benches like ticsverify; plain benches
 * never emit the section, so their documents stay at version 1 and
 * are byte-identical to before the section existed).
 */
struct ReportFinding {
    std::string analysis; ///< e.g. war-possibility, energy-progress
    std::string app;
    std::string runtime;
    std::string subject;  ///< NV region / timed variable / peripheral
    std::uint64_t regionIndex = 0;
    std::string anchor;   ///< checkpoint-region anchor
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::string detail;
};

/**
 * One sweep cell in the report's optional `grid` section. Plain data,
 * deliberately decoupled from the sweep subsystem's types so the
 * harness stays below it in the library layering.
 */
struct GridCellEntry {
    std::string jobId; ///< 16-hex content hash of the configuration
    std::string app;
    std::string runtime;
    std::string supply;
    double capUf = 0.0;
    std::uint64_t segmentBytes = 0;
    std::string env; ///< environment-trace name; "" = plain supply
    std::uint64_t seed = 0;
    bool completed = false;
    bool starved = false;
    bool verified = false;
    std::uint64_t reboots = 0;
    std::uint64_t cycles = 0;
    std::uint64_t elapsedNs = 0;
    std::uint64_t onTimeNs = 0;
    double simMs = 0.0;
    bool cached = false;
};

/** One cross-seed aggregate row in the `grid` section. */
struct GridAggregateEntry {
    std::string app;
    std::string runtime;
    std::string supply;
    double capUf = 0.0;
    std::uint64_t segmentBytes = 0;
    std::string env; ///< environment-trace name; "" = plain supply
    std::uint64_t cells = 0;
    std::uint64_t completed = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * The `grid` section (written by ticssweep; bumps the report to
 * version 3). Cells must already be in canonical JobId order — the
 * writer serializes them verbatim, which is what makes serial and
 * parallel sweeps emit byte-identical documents. `jobs` and `wallMs`
 * are the only fields that legitimately vary between otherwise
 * identical runs; --stable mode zeroes them before recording.
 */
struct GridSection {
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t jobs = 0;
    double wallMs = 0.0;
    std::vector<GridCellEntry> cells;
    std::vector<GridAggregateEntry> aggregates;
};

/**
 * One (app, runtime, environment) row of the probabilistic timing
 * section: statically derived completion-time percentiles beside the
 * simulated cross-seed ones when cross-validation ran (sim_cells == 0
 * means static-only).
 */
struct ProbRowEntry {
    std::string app;
    std::string runtime;
    std::string env;     ///< supply-axis token
    double capUf = 0.0;
    double staticP50Ms = 0.0;
    double staticP95Ms = 0.0;
    double staticP99Ms = 0.0;
    double staticMeanMs = 0.0;
    double pNonterm = 0.0;
    double meanOutages = 0.0;
    std::uint64_t simCells = 0;
    std::uint64_t simCompleted = 0;
    double simP50Ms = 0.0;
    double simP95Ms = 0.0;
    double simP99Ms = 0.0;
    bool withinTolerance = true;
    std::string gateKind;         ///< "percentiles" | "nonterm" | "static"
    std::string failedPercentile; ///< empty when within tolerance
};

/** One timed variable's freshness-violation probability. */
struct ProbFreshnessEntry {
    std::string app;
    std::string runtime;
    std::string env;
    std::string subject;
    double lifetimeMs = 0.0;
    double pViolation = 0.0;
    std::uint64_t sites = 0;
};

/** The inverse capacitor-sizing query's outcome, when one ran. */
struct ProbSloEntry {
    std::string app;
    std::string runtime;
    double slo = 0.0;
    double deadlineMs = 0.0;
    bool feasible = false;
    double capacitanceUf = 0.0;
    double pOnTime = 0.0;
};

/**
 * The `prob` section (written by ticsverify --prob; bumps the report
 * to version 4): probabilistic completion-time and freshness analysis
 * results, the declared cross-validation tolerances, and optionally
 * the capacitor-sizing SLO query.
 */
struct ProbSection {
    double tolP50 = 0.0;
    double tolP95 = 0.0;
    double tolP99 = 0.0;
    bool crossval = false; ///< rows carry a simulated side
    std::vector<ProbRowEntry> rows;
    std::vector<ProbFreshnessEntry> freshness;
    bool haveSlo = false;
    ProbSloEntry slo;
};

/** One named hot-path counter value in the `perf` section. */
struct PerfCounterEntry {
    std::string name; ///< perf::counterFields() snake_case name
    std::uint64_t value = 0;
};

/** One per-subsystem microbenchmark result. */
struct PerfMicrobenchEntry {
    std::string name; ///< e.g. nv_store, undo_append_clear
    std::uint64_t iters = 0;
    double nsPerOp = 0.0;
    double opsPerSec = 0.0;
};

/** One host wall-time zone of the macro run's partition. */
struct PerfZoneEntry {
    std::string name; ///< perf::hostZoneName(), plus "other"
    double ms = 0.0;
    std::uint64_t scopes = 0; ///< 0 for the computed "other" remainder
};

/**
 * The `perf` section (written by ticsperf; bumps the report to
 * version 5): build provenance, the macro run's hot-path counter
 * deltas, per-subsystem microbenchmarks, macro throughput, and the
 * host wall-time partition. Only ticsperf calls setPerf(), so every
 * other bench's document stays at version <= 4 byte-for-byte.
 */
struct PerfSection {
    std::uint64_t benchVersion = 0; ///< trajectory point (BENCH_<n>)
    std::string buildType;          ///< CMAKE_BUILD_TYPE at compile time
    bool optimized = false;         ///< compiled with optimization on
    bool quick = false;             ///< --quick (reduced iterations)

    std::vector<PerfCounterEntry> counters; ///< macro-phase deltas
    std::vector<PerfMicrobenchEntry> microbench;

    std::uint64_t macroCells = 0;
    double macroHostMs = 0.0;
    double cellsPerSec = 0.0;
    std::uint64_t macroSimCycles = 0;
    std::uint64_t macroSimNs = 0;
    double simCyclesPerHostSec = 0.0;
    double simSecondsPerHostSec = 0.0;

    double hostTotalMs = 0.0; ///< zones (incl. "other") sum to this
    std::vector<PerfZoneEntry> zones;

    std::uint64_t clockReads = 0;  ///< profiler clock queries, whole run
    double scopeNsPerEnterExit = 0.0; ///< measured HostScope overhead
};

/** One source-level finding in the `lint` section. */
struct LintFindingEntry {
    std::string rule; ///< war | timeliness | io | segmentation
    std::string subject;
    std::string file; ///< repo-relative source path
    std::uint64_t line = 0;
    std::string function; ///< analysis entry point (qualified)
    std::string detail;
};

/** One (app, runtime) row of the lint cross-validation. */
struct LintCrossValEntry {
    std::string app;
    std::string runtime;
    std::string file;
    std::uint64_t dynamicFindings = 0;
    std::uint64_t matchedFindings = 0;
    std::uint64_t staticFindings = 0;
    std::uint64_t confirmedStatic = 0;
    double coverage = 1.0; ///< matched / dynamic (1.0 when no dynamic)
    double fpRate = 0.0;   ///< (static - confirmed) / static
};

/**
 * The `lint` section (written by ticslint; bumps the report to
 * version 6): source-level findings from the whole-file dogfood pass
 * and, when --crossval ran, the per-pair source-vs-model coverage
 * rows. Only ticslint calls setLint(), so every other bench's
 * document stays at version <= 5 byte-for-byte.
 */
struct LintSection {
    std::uint64_t filesAnalyzed = 0;
    std::uint64_t functionsAnalyzed = 0;
    std::vector<LintFindingEntry> findings;
    bool crossval = false;
    bool fullCoverage = true; ///< meaningful when crossval is true
    std::vector<LintCrossValEntry> rows;
};

/** One (app, runtime) row of the `mc` section. */
struct McPairEntry {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    bool refCompleted = false;
    bool recordingConsistent = true;
    std::uint64_t decisionPoints = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t statesExplored = 0;
    std::uint64_t frontierCutoffs = 0;
    bool exhausted = false; ///< proof-of-exhaustion flag for this pair
    std::uint64_t confirmedViolations = 0;
};

/** One violating schedule the explorer found. */
struct McViolationEntry {
    std::string app;
    std::string runtime;
    std::string kind;
    std::string plan;    ///< minimal confirmed schedule
    std::string foundAs; ///< schedule the walk first hit it with
    std::uint64_t divergentBytes = 0;
    bool confirmed = false; ///< replayed from boot and still violates
};

/**
 * The `mc` section (written by ticsmc; bumps the report to version 7):
 * the exhaustive failure-space census — per-pair decision/branch/leaf
 * counts, frontier cut-offs, the proof-of-exhaustion flags, and every
 * violation with its minimal schedule. Only ticsmc calls setMc(), so
 * every other bench's document stays at version <= 6 byte-for-byte.
 */
struct McSection {
    std::uint64_t maxFaults = 1;
    std::uint64_t maxDecisions = 0; ///< frontier cap (0 = unbounded)
    std::uint64_t jobs = 1;
    bool allExhausted = false;
    std::vector<McPairEntry> pairs;
    std::vector<McViolationEntry> violations;
};

/** One worker shard's account in the `fleet` section. */
struct FleetWorkerEntry {
    std::uint64_t shard = 0;    ///< shard index (stable across retries)
    std::uint64_t spawns = 0;   ///< processes launched for this shard
    std::uint64_t assigned = 0; ///< cells assigned over all attempts
    std::uint64_t completed = 0;
    bool crashed = false;       ///< at least one attempt died
    bool timedOut = false;      ///< at least one attempt missed heartbeats
    bool cancelled = false;     ///< straggler killed after coverage
};

/**
 * The `fleet` section (written by ticsfleet; bumps the report to
 * version 8): the multi-process orchestration account — worker/retry/
 * failure bookkeeping beside (never inside) the deterministic grid
 * section. Only ticsfleet calls setFleet(), so every other bench's
 * document stays at version <= 7 byte-for-byte.
 */
struct FleetSection {
    std::uint64_t workersRequested = 0;
    std::uint64_t workersSpawned = 0; ///< incl. retry respawns
    std::uint64_t retries = 0;
    std::uint64_t crashes = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t stragglersCancelled = 0;
    std::uint64_t duplicateResults = 0; ///< late frames ignored
    std::uint64_t heartbeats = 0;
    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsCompleted = 0;
    bool complete = false; ///< every cell produced a result
    bool requireComplete = false;
    double wallMs = 0.0;
    std::vector<std::string> envs; ///< distinct trace names in the grid
    std::vector<FleetWorkerEntry> workers; ///< by shard index
};

struct ReportOptions {
    std::string jsonPath;  ///< empty = no JSON report
    std::string tracePath; ///< empty = no timeline trace

    bool enabled() const { return !jsonPath.empty() || !tracePath.empty(); }
};

/**
 * Strip the common report flags (--json <path>, --json=<path>,
 * --trace <path>, --trace=<path>) out of argv, compacting it in
 * place and updating @p argc, so benches with their own argument
 * parsing never see them. Unknown arguments are left alone.
 */
ReportOptions parseReportArgs(int &argc, char **argv);

/**
 * One bench binary's report collector. Construct it first thing in
 * main(); record every board run; reports are written on finish() (or
 * from the destructor). The constructor registers the session as the
 * process-wide current one so deeply nested run helpers can report
 * through recordRun() without plumbing a pointer.
 */
class BenchSession
{
  public:
    BenchSession(std::string bench, ReportOptions opts);
    /** Convenience: parse + strip the report flags from argv. */
    BenchSession(std::string bench, int &argc, char **argv);
    ~BenchSession();

    BenchSession(const BenchSession &) = delete;
    BenchSession &operator=(const BenchSession &) = delete;

    const ReportOptions &options() const { return opts_; }

    /**
     * Record the bench's master seed. Reported as an optional `seed`
     * member so a run report is reproducible from the document alone.
     */
    void setSeed(std::uint64_t seed);

    /** Snapshot one finished board run under @p label. */
    void record(const std::string &label, board::Runtime &rt,
                board::Board &b, const board::RunResult &res);

    /** Attach an analysis finding; bumps the report to version 2. */
    void addFinding(ReportFinding finding);

    /** Attach the sweep grid; bumps the report to version 3. */
    void setGrid(GridSection grid);

    /** Attach the probabilistic timing section; bumps to version 4. */
    void setProb(ProbSection prob);

    /** Attach the perf section; bumps the report to version 5. */
    void setPerf(PerfSection perf);

    /** Attach the lint section; bumps the report to version 6. */
    void setLint(LintSection lint);

    /** Attach the mc section; bumps the report to version 7. */
    void setMc(McSection mc);

    /** Attach the fleet section; bumps the report to version 8. */
    void setFleet(FleetSection fleet);

    /** Write the JSON report and trace now (idempotent). */
    void finish();

    /** The live session, or nullptr outside main()'s scope. */
    static BenchSession *current();

  private:
    struct RunRecord {
        std::string label;
        std::string runtime;
        board::RunResult result;
        Cycles phases[telemetry::kPhaseCount] = {};
        std::vector<StatGroup> stats;
        std::uint64_t eventsRecorded = 0;
        std::uint64_t eventsDropped = 0;
        std::vector<telemetry::Event> events; ///< tracing only
    };

    void writeJson() const;
    void writeTrace() const;

    std::string bench_;
    ReportOptions opts_;
    std::uint64_t seed_ = 0;
    bool haveSeed_ = false;
    std::vector<RunRecord> runs_;
    std::vector<ReportFinding> findings_;
    GridSection grid_;
    bool haveGrid_ = false;
    ProbSection prob_;
    bool haveProb_ = false;
    PerfSection perf_;
    bool havePerf_ = false;
    LintSection lint_;
    bool haveLint_ = false;
    McSection mc_;
    bool haveMc_ = false;
    FleetSection fleet_;
    bool haveFleet_ = false;
    bool finished_ = false;
    /** The thread that constructed the session (see record()). */
    std::thread::id owner_;
};

/**
 * Record a run against the current session; no-op when reporting is
 * disabled or no session exists. This is what the bench run helpers
 * call right after Board::run().
 */
void recordRun(const std::string &label, board::Runtime &rt,
               board::Board &b, const board::RunResult &res);

} // namespace ticsim::harness

#endif // TICSIM_HARNESS_REPORT_HPP
