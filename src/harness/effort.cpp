#include "effort.hpp"

#include <cctype>

namespace ticsim::harness {

namespace {

/** Count whole-word occurrences of @p word in @p src. */
std::uint32_t
countWord(const std::string &src, const std::string &word)
{
    std::uint32_t n = 0;
    std::size_t pos = 0;
    while ((pos = src.find(word, pos)) != std::string::npos) {
        const bool leftOk =
            pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                             src[pos - 1])) &&
                         src[pos - 1] != '_');
        const std::size_t end = pos + word.size();
        const bool rightOk =
            end >= src.size() ||
            (!std::isalnum(static_cast<unsigned char>(src[end])) &&
             src[end] != '_');
        if (leftOk && rightOk)
            ++n;
        pos = end;
    }
    return n;
}

std::uint32_t
countToken(const std::string &src, const std::string &tok)
{
    std::uint32_t n = 0;
    std::size_t pos = 0;
    while ((pos = src.find(tok, pos)) != std::string::npos) {
        ++n;
        pos += tok.size();
    }
    return n;
}

} // namespace

EffortMetrics
analyzeSource(const std::string &source, std::uint32_t elements,
              std::uint32_t sharedState)
{
    EffortMetrics m;
    m.elements = elements;
    m.sharedState = sharedState;

    bool lineHasContent = false;
    for (const char c : source) {
        if (c == '\n') {
            if (lineHasContent)
                ++m.loc;
            lineHasContent = false;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            lineHasContent = true;
        }
    }
    if (lineHasContent)
        ++m.loc;

    m.decisionPoints = countWord(source, "if") +
                       countWord(source, "for") +
                       countWord(source, "while") +
                       countWord(source, "case") +
                       countToken(source, "&&") +
                       countToken(source, "||") +
                       countToken(source, "?");
    return m;
}

} // namespace ticsim::harness
