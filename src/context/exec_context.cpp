#include "exec_context.hpp"

#include "support/logging.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TICSIM_ASAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define TICSIM_ASAN_ACTIVE 1
#endif

#if defined(TICSIM_ASAN_ACTIVE)
#include <sanitizer/asan_interface.h>
#endif

namespace ticsim::context {

namespace {

/**
 * Clears ASan's shadow for the fiber stack before (re-)entering it.
 * Power failures abandon the stack mid-frame and checkpoint restores
 * overwrite it with an earlier image, so leftover redzone poison from
 * the previous incarnation no longer matches the frames about to run
 * and would be reported as stack-use-after-scope.
 */
inline void
unpoisonFiberStack(std::uint8_t *base, std::size_t size)
{
#if defined(TICSIM_ASAN_ACTIVE)
    __asan_unpoison_memory_region(base, size);
#else
    (void)base;
    (void)size;
#endif
}

/** The context whose trampoline should run next. Thread-local so
 *  concurrent sweep Boards (one ucontext pair per thread) never see
 *  each other's contexts; a context must be entered and exited on the
 *  same thread, which Board::run guarantees by construction. */
thread_local ExecContext *currentCtx = nullptr;

} // namespace

ExecContext::ExecContext(std::uint8_t *stackBase, std::size_t stackSize)
    : stackBase_(stackBase), stackSize_(stackSize)
{
    if (!stackBase || stackSize < 8 * 1024)
        fatal("exec context: stack buffer must be at least 8 KiB");
}

void
ExecContext::trampoline()
{
    ExecContext *self = currentCtx;
    TICSIM_ASSERT(self != nullptr);
    self->entry_();
    // Entry returned normally: report completion; uc_link brings us
    // back to the scheduler context.
    self->reason_ = ExitReason::Completed;
    self->inside_ = false;
}

void
ExecContext::prepare(Entry entry)
{
    TICSIM_ASSERT(!inside_, "prepare() from inside the context");
    entry_ = std::move(entry);
    if (getcontext(&startCtx_) != 0)
        panic("getcontext failed");
    startCtx_.uc_stack.ss_sp = stackBase_;
    startCtx_.uc_stack.ss_size = stackSize_;
    startCtx_.uc_link = &schedCtx_;
    makecontext(&startCtx_, &ExecContext::trampoline, 0);
    armedFresh_ = true;
    armedResume_ = false;
}

void
ExecContext::prepareResume(RegSlot &slot)
{
    TICSIM_ASSERT(!inside_, "prepareResume() from inside the context");
    resumeSlot_ = &slot;
    armedResume_ = true;
    armedFresh_ = false;
}

ExitReason
ExecContext::run()
{
    TICSIM_ASSERT(armedFresh_ || armedResume_, "run() without arming");
    reason_ = ExitReason::Completed;
    inside_ = true;
    currentCtx = this;
    unpoisonFiberStack(stackBase_, stackSize_);
    if (armedFresh_) {
        armedFresh_ = false;
        if (swapcontext(&schedCtx_, &startCtx_) != 0)
            panic("swapcontext (fresh) failed");
    } else {
        armedResume_ = false;
        resumedFlag_ = true;
        if (swapcontext(&schedCtx_, &resumeSlot_->uc) != 0)
            panic("swapcontext (resume) failed");
    }
    inside_ = false;
    currentCtx = nullptr;
    return reason_;
}

bool
ExecContext::captureRegs(RegSlot &slot)
{
    TICSIM_ASSERT(inside_, "captureRegs() outside the context");
    resumedFlag_ = false;
    if (getcontext(&slot.uc) != 0)
        panic("getcontext (capture) failed");
    // Two returns: directly after the capture (resumedFlag_ still
    // false) or re-entered from run() after prepareResume() (which set
    // the flag). The flag is volatile host state, never on the
    // simulated stack, so the restored stack image cannot forge it.
    if (resumedFlag_) {
        resumedFlag_ = false;
        return false;
    }
    return true;
}

void
ExecContext::exitWith(ExitReason reason)
{
    TICSIM_ASSERT(inside_, "exitWith() outside the context");
    reason_ = reason;
    inside_ = false;
    // Abandon the context without unwinding, like a brown-out.
    setcontext(&schedCtx_);
    panic("setcontext returned");
}

std::uintptr_t
ExecContext::probeSp()
{
    // Address of a local approximates the caller's stack pointer
    // closely enough for red-zone arithmetic.
    volatile char probe = 0;
    return reinterpret_cast<std::uintptr_t>(&probe);
}

std::uintptr_t
ExecContext::stackTop() const
{
    return reinterpret_cast<std::uintptr_t>(stackBase_) + stackSize_;
}

bool
ExecContext::onStack(const void *p) const
{
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    const auto base = reinterpret_cast<std::uintptr_t>(stackBase_);
    return v >= base && v < base + stackSize_;
}

} // namespace ticsim::context
