#include "exec_context.hpp"

#include <algorithm>

#include "support/logging.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TICSIM_ASAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define TICSIM_ASAN_ACTIVE 1
#endif

#if defined(TICSIM_ASAN_ACTIVE)
#include <sanitizer/asan_interface.h>
#define TICSIM_NO_ASAN_CTX __attribute__((no_sanitize_address))
#else
#define TICSIM_NO_ASAN_CTX
#endif

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TICSIM_TSAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define TICSIM_TSAN_ACTIVE 1
#endif

#if defined(TICSIM_TSAN_ACTIVE)
#include <sanitizer/tsan_interface.h>
#endif

namespace ticsim::context {

namespace {

/**
 * Clears ASan's shadow for the fiber stack before (re-)entering it.
 * Power failures abandon the stack mid-frame and checkpoint restores
 * overwrite it with an earlier image, so leftover redzone poison from
 * the previous incarnation no longer matches the frames about to run
 * and would be reported as stack-use-after-scope.
 */
inline void
unpoisonFiberStack(std::uint8_t *base, std::size_t size)
{
#if defined(TICSIM_ASAN_ACTIVE)
    __asan_unpoison_memory_region(base, size);
#else
    (void)base;
    (void)size;
#endif
}

/**
 * TSan fiber shims. TSan tracks shadow state per stack; without
 * telling it about ucontext switches it sees one OS thread's accesses
 * jump between the scheduler stack and the simulated FRAM stack and
 * reports them as races against the sweep pool's other workers. Each
 * ExecContext owns one fiber (its stack buffer survives simulated
 * reboots, so the fiber does too), and every swapcontext/setcontext
 * is bracketed by a switch annotation.
 *
 * Known limitation: a brown-out abandonment leaves the fiber via
 * setcontext without unwinding, and a checkpoint resume re-enters a
 * frame captured by an earlier getcontext. Neither jump runs the
 * instrumented function exits in between, and the fiber API has no
 * longjmp-style shadow-stack rewind, so each abandon/resume cycle
 * leaks (abandon depth - capture depth) stale shadow frames. Fresh
 * boots reset the fiber (see prepare()), which keeps restart-style
 * runtimes bounded, but checkpoint-resume runs with hundreds of
 * reboots can still exhaust TSan's fixed-size shadow stack. The TSan
 * preset therefore targets the genuinely concurrent layer (sweep
 * pool, perf counters/profiler); reboot-heavy single-threaded
 * simulation suites are exercised under ASan instead.
 */
inline void *
tsanFiberCreate()
{
#if defined(TICSIM_TSAN_ACTIVE)
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

inline void
tsanFiberDestroy(void *fiber)
{
#if defined(TICSIM_TSAN_ACTIVE)
    if (fiber != nullptr)
        __tsan_destroy_fiber(fiber);
#else
    (void)fiber;
#endif
}

/* Forced inline: if these helpers kept their own frames, TSan's
 * function-entry would be recorded on one fiber's shadow stack and the
 * matching exit popped from the other's. */
__attribute__((always_inline)) inline void *
tsanFiberCurrent()
{
#if defined(TICSIM_TSAN_ACTIVE)
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

__attribute__((always_inline)) inline void
tsanFiberSwitch(void *fiber)
{
#if defined(TICSIM_TSAN_ACTIVE)
    if (fiber != nullptr)
        __tsan_switch_to_fiber(fiber, 0);
#else
    (void)fiber;
#endif
}

/**
 * Copies a live stack image without sanitizer interception (the image
 * spans frames whose ASan redzones are poisoned by design). A volatile
 * byte loop keeps the compiler from lowering this back into a memcpy
 * libcall.
 */
TICSIM_NO_ASAN_CTX void
rawStackCopy(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<volatile unsigned char *>(dst);
    auto *s = static_cast<const volatile unsigned char *>(src);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = s[i];
}

/** The context whose trampoline should run next. Thread-local so
 *  concurrent sweep Boards (one ucontext pair per thread) never see
 *  each other's contexts; a context must be entered and exited on the
 *  same thread, which Board::run guarantees by construction. */
thread_local ExecContext *currentCtx = nullptr;

} // namespace

ExecContext::ExecContext(std::uint8_t *stackBase, std::size_t stackSize)
    : stackBase_(stackBase), stackSize_(stackSize)
{
    if (!stackBase || stackSize < 8 * 1024)
        fatal("exec context: stack buffer must be at least 8 KiB");
    tsanFiber_ = tsanFiberCreate();
}

ExecContext::~ExecContext()
{
    tsanFiberDestroy(tsanFiber_);
}

void
ExecContext::trampoline()
{
    ExecContext *self = currentCtx;
    TICSIM_ASSERT(self != nullptr);
    self->entry_();
    // Entry returned normally: report completion and jump back to the
    // scheduler context explicitly (uc_link stays armed as a backstop).
    // setcontext instead of a plain return keeps the TSan fiber switch
    // coherent: after the annotation below, a normal return would run
    // this function's instrumented exit and pop a frame from the
    // *scheduler's* shadow stack.
    self->reason_ = ExitReason::Completed;
    self->inside_ = false;
    tsanFiberSwitch(self->tsanSchedFiber_);
    setcontext(&self->schedCtx_);
    panic("setcontext (trampoline) returned");
}

void
ExecContext::prepare(Entry entry)
{
    TICSIM_ASSERT(!inside_, "prepare() from inside the context");
    // A fresh boot starts the stack from scratch, but a brown-out
    // abandonment (exitWith) leaves TSan's per-fiber shadow stack with
    // all the abandoned frames still pushed — the fiber API has no
    // longjmp-style rewind. Recreate the fiber so reboot-heavy
    // restart-style runs cannot exhaust the shadow stack.
    tsanFiberDestroy(tsanFiber_);
    tsanFiber_ = tsanFiberCreate();
    entry_ = std::move(entry);
    if (getcontext(&startCtx_) != 0)
        panic("getcontext failed");
    startCtx_.uc_stack.ss_sp = stackBase_;
    startCtx_.uc_stack.ss_size = stackSize_;
    startCtx_.uc_link = &schedCtx_;
    makecontext(&startCtx_, &ExecContext::trampoline, 0);
    armedFresh_ = true;
    armedResume_ = false;
}

void
ExecContext::prepareResume(RegSlot &slot)
{
    TICSIM_ASSERT(!inside_, "prepareResume() from inside the context");
    resumeSlot_ = &slot;
    armedResume_ = true;
    armedFresh_ = false;
}

ExitReason
ExecContext::run()
{
    TICSIM_ASSERT(armedFresh_ || armedResume_, "run() without arming");
    reason_ = ExitReason::Completed;
    inside_ = true;
    currentCtx = this;
    unpoisonFiberStack(stackBase_, stackSize_);
    tsanSchedFiber_ = tsanFiberCurrent();
    tsanFiberSwitch(tsanFiber_);
    if (armedFresh_) {
        armedFresh_ = false;
        if (swapcontext(&schedCtx_, &startCtx_) != 0)
            panic("swapcontext (fresh) failed");
    } else {
        armedResume_ = false;
        resumedFlag_ = true;
        if (swapcontext(&schedCtx_, &resumeSlot_->uc) != 0)
            panic("swapcontext (resume) failed");
    }
    inside_ = false;
    currentCtx = nullptr;
    return reason_;
}

bool
ExecContext::captureRegs(RegSlot &slot)
{
    TICSIM_ASSERT(inside_, "captureRegs() outside the context");
    resumedFlag_ = false;
    if (getcontext(&slot.uc) != 0)
        panic("getcontext (capture) failed");
    // Two returns: directly after the capture (resumedFlag_ still
    // false) or re-entered from run() after prepareResume() (which set
    // the flag). The flag is volatile host state, never on the
    // simulated stack, so the restored stack image cannot forge it.
    if (resumedFlag_) {
        resumedFlag_ = false;
        return false;
    }
    return true;
}

bool
ExecContext::captureFiber(FiberImage &img, std::uint32_t redzoneBytes)
{
    TICSIM_ASSERT(inside_, "captureFiber() outside the context");
    resumedFlag_ = false;
    if (getcontext(&img.regs.uc) != 0)
        panic("getcontext (fiber capture) failed");
    // Two returns, like captureRegs(): the resume path must not touch
    // @p img (the snapshot that carried it may have been relocated).
    if (resumedFlag_) {
        resumedFlag_ = false;
        return false;
    }
    const auto base = reinterpret_cast<std::uintptr_t>(stackBase_);
    std::uintptr_t low = probeSp();
    low = low > redzoneBytes ? low - redzoneBytes : 0;
    low = std::max(low, base);
    img.low = low;
    img.bytes.resize(stackTop() - low);
    rawStackCopy(img.bytes.data(), reinterpret_cast<void *>(low),
                 img.bytes.size());
    return true;
}

void
ExecContext::armFiberResume(const FiberImage &img)
{
    TICSIM_ASSERT(!inside_, "armFiberResume() from inside the context");
    TICSIM_ASSERT(img.low >= reinterpret_cast<std::uintptr_t>(stackBase_) &&
                      img.low + img.bytes.size() == stackTop(),
                  "fiber image does not describe this stack buffer");
    rawStackCopy(reinterpret_cast<void *>(img.low), img.bytes.data(),
                 img.bytes.size());
    fiberResumeRegs_ = img.regs;
#if defined(__x86_64__) && defined(__GLIBC__)
    // glibc's getcontext points uc_mcontext.fpregs into the ucontext_t
    // itself; after relocating the slot the pointer must be re-homed
    // or setcontext restores FP state from a dangling address.
    fiberResumeRegs_.uc.uc_mcontext.fpregs =
        &fiberResumeRegs_.uc.__fpregs_mem;
#endif
    prepareResume(fiberResumeRegs_);
}

void
ExecContext::exitWith(ExitReason reason)
{
    TICSIM_ASSERT(inside_, "exitWith() outside the context");
    reason_ = reason;
    inside_ = false;
    // Abandon the context without unwinding, like a brown-out.
    tsanFiberSwitch(tsanSchedFiber_);
    setcontext(&schedCtx_);
    panic("setcontext returned");
}

std::uintptr_t
ExecContext::probeSp()
{
    // Address of a local approximates the caller's stack pointer
    // closely enough for red-zone arithmetic.
    volatile char probe = 0;
    return reinterpret_cast<std::uintptr_t>(&probe);
}

std::uintptr_t
ExecContext::stackTop() const
{
    return reinterpret_cast<std::uintptr_t>(stackBase_) + stackSize_;
}

bool
ExecContext::onStack(const void *p) const
{
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    const auto base = reinterpret_cast<std::uintptr_t>(stackBase_);
    return v >= base && v < base + stackSize_;
}

} // namespace ticsim::context
