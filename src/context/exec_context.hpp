/**
 * @file
 * Execution contexts for intermittently-powered application code.
 *
 * Application code is real, natively compiled C++ (full pointers and
 * recursion), but it runs on a stack buffer carved out of the simulated
 * FRAM arena inside a ucontext. This gives the simulator the three
 * properties an FRAM MCU has:
 *
 *  1. The call stack physically persists across power failures (the
 *     buffer is never cleared), but
 *  2. machine registers (PC, SP, callee state) are volatile: a power
 *     failure abandons the context, and
 *  3. a register checkpoint (getcontext) plus a copy of the live stack
 *     region is sufficient to resume execution mid-function after a
 *     reboot, at the same addresses, so pointers into the stack stay
 *     valid.
 *
 * A note on abandonment: a simulated power failure leaves the context
 * via setcontext without unwinding, exactly as a real brown-out would.
 * Application code must therefore keep only trivially-destructible
 * state on the simulated stack (which embedded firmware does anyway).
 */

#ifndef TICSIM_CONTEXT_EXEC_CONTEXT_HPP
#define TICSIM_CONTEXT_EXEC_CONTEXT_HPP

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <vector>

namespace ticsim::context {

/** Why control returned from the application context. */
enum class ExitReason {
    Completed,  ///< the entry function returned
    PowerFail,  ///< a brown-out abandoned the context
    TimeLimit,  ///< the experiment's time budget expired mid-run
    Starved,    ///< the runtime detected unrecoverable starvation
};

/**
 * Machine-register checkpoint slot. Opaque to callers; the TICS
 * runtime double-buffers two of these. The modeled size of this
 * structure on the target is Mcu::regFileBytes, not sizeof(RegSlot).
 */
struct RegSlot {
    ucontext_t uc;
};

/**
 * A relocatable suspended-fiber image: machine registers plus the live
 * stack bytes, owned on the host heap. Unlike a checkpoint slot (whose
 * RegSlot must stay at its capture address), a FiberImage may be moved
 * and stored inside a board::Snapshot; armFiberResume() re-homes the
 * registers before resuming. Captured by captureFiber() from inside
 * the context, resumed by armFiberResume() + run() from outside.
 */
struct FiberImage {
    RegSlot regs{};
    std::uintptr_t low = 0;         ///< lowest stack address in the image
    std::vector<std::uint8_t> bytes; ///< [low, stackTop) at capture time
};

/**
 * One application execution context on a caller-provided stack buffer.
 * Single-threaded simulation: exactly one context runs at a time,
 * entered and exited only through run()/exitWith()/captureRegs().
 */
class ExecContext
{
  public:
    using Entry = std::function<void()>;

    /**
     * @param stackBase Base (lowest address) of the stack buffer,
     *                  normally inside the NvRam arena.
     * @param stackSize Buffer size in bytes.
     */
    ExecContext(std::uint8_t *stackBase, std::size_t stackSize);
    ~ExecContext();

    ExecContext(const ExecContext &) = delete;
    ExecContext &operator=(const ExecContext &) = delete;

    /** Arm a fresh boot: the next run() starts @p entry from scratch. */
    void prepare(Entry entry);

    /**
     * Arm a resume-from-checkpoint: the next run() re-enters the
     * captureRegs() call that filled @p slot (whose stack contents the
     * caller must already have restored).
     */
    void prepareResume(RegSlot &slot);

    /**
     * Transfer control to the application context until it exits.
     * Must be armed by prepare() or prepareResume() first.
     */
    ExitReason run();

    /**
     * From inside the application context: capture the machine
     * registers into @p slot.
     * @return true on the capture path; false when execution re-enters
     *         here through prepareResume()/run() after a reboot.
     *
     * NOTE: only safe when the caller does not rely on stack-spilled
     * locals after the call (the resumed stack image may predate the
     * call). Checkpointing runtimes should instead use
     * armResumedCheck()/getcontext()/wasResumed() inline, in the same
     * frame that copies the stack image *after* the capture, so every
     * spill slot the resume path can read is part of the image.
     */
    bool captureRegs(RegSlot &slot);

    /** Clear the resume discriminator before an inline getcontext(). */
    void armResumedCheck() { resumedFlag_ = false; }

    /**
     * Test-and-clear the resume discriminator after an inline
     * getcontext(): true when execution re-entered the capture point
     * via prepareResume()/run().
     */
    bool
    wasResumed()
    {
        if (resumedFlag_) {
            resumedFlag_ = false;
            return true;
        }
        return false;
    }

    /**
     * From inside the application context: capture the registers and
     * the live stack region into @p img (heap-owned, relocatable).
     * Mirrors the checkpoint capture discipline: the stack copy is
     * taken *after* the register capture in the same frame, so every
     * spill slot the resume path can read is part of the image.
     * @return true on the capture path; false when execution re-enters
     *         here through armFiberResume()/run().
     */
    bool captureFiber(FiberImage &img, std::uint32_t redzoneBytes = 256);

    /**
     * Arm a resume from @p img: restores the stack bytes and re-homes
     * the register slot into this context, so the next run() re-enters
     * the captureFiber() call that produced the image. @p img must
     * describe this context's stack buffer.
     */
    void armFiberResume(const FiberImage &img);

    /**
     * From inside the application context: abandon execution (no
     * unwinding) and return @p reason from the pending run().
     */
    [[noreturn]] void exitWith(ExitReason reason);

    /** Approximate current stack pointer of the caller (app side). */
    static std::uintptr_t probeSp();

    std::uint8_t *stackBase() const { return stackBase_; }
    std::size_t stackSize() const { return stackSize_; }
    /** One past the highest stack address (stack grows down from it). */
    std::uintptr_t stackTop() const;

    /** Whether @p p points into this context's stack buffer. */
    bool onStack(const void *p) const;

    /** True while application code is executing in this context. */
    bool inside() const { return inside_; }

  private:
    static void trampoline();

    std::uint8_t *stackBase_;
    std::size_t stackSize_;
    Entry entry_;
    ucontext_t schedCtx_{};
    ucontext_t startCtx_{};
    RegSlot *resumeSlot_ = nullptr;
    /** Stable home for relocated FiberImage registers: glibc x86-64
     *  ucontext_t points at its own FP-state member, so a moved copy
     *  must be re-homed into one fixed slot before setcontext. */
    RegSlot fiberResumeRegs_{};
    bool armedFresh_ = false;
    bool armedResume_ = false;
    volatile bool resumedFlag_ = false;
    bool inside_ = false;
    ExitReason reason_ = ExitReason::Completed;
    /** TSan fiber handles (null outside TSan builds): one fiber per
     *  context stack, plus the scheduler fiber to switch back to. */
    void *tsanFiber_ = nullptr;
    void *tsanSchedFiber_ = nullptr;
};

} // namespace ticsim::context

#endif // TICSIM_CONTEXT_EXEC_CONTEXT_HPP
