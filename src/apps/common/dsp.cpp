#include "dsp.hpp"

namespace ticsim::apps {

std::uint32_t
isqrt(std::uint64_t v)
{
    if (v == 0)
        return 0;
    std::uint64_t x = v;
    std::uint64_t next = (x + 1) / 2;
    while (next < x) {
        x = next;
        next = (x + v / x) / 2;
    }
    return static_cast<std::uint32_t>(x);
}

std::int32_t
meanI16(const std::int16_t *x, std::uint32_t n)
{
    if (n == 0)
        return 0;
    std::int64_t sum = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        sum += x[i];
    return static_cast<std::int32_t>(sum / n);
}

std::uint32_t
stddevI16(const std::int16_t *x, std::uint32_t n)
{
    if (n < 2)
        return 0;
    const std::int64_t m = meanI16(x, n);
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::int64_t d = x[i] - m;
        acc += static_cast<std::uint64_t>(d * d);
    }
    return isqrt(acc / n);
}

std::uint64_t
featureDistance(const ArFeatures &a, const ArFeatures &b)
{
    const std::int64_t dm = a.meanMag - b.meanMag;
    const std::int64_t ds = static_cast<std::int64_t>(a.stddevMag) -
                            static_cast<std::int64_t>(b.stddevMag);
    return static_cast<std::uint64_t>(dm * dm) +
           static_cast<std::uint64_t>(ds * ds);
}

int
classify(const ArModel &m, const ArFeatures &f)
{
    return featureDistance(m.centroid[0], f) <=
                   featureDistance(m.centroid[1], f)
               ? 0
               : 1;
}

int
bitcountOptimized(std::uint32_t x)
{
    int n = 0;
    while (x) {
        n += static_cast<int>(x & 1u);
        x >>= 1;
        if (!x)
            break;
        n += static_cast<int>(x & 1u);
        x >>= 1;
    }
    return n;
}

int
bitcountRecursive(std::uint32_t x)
{
    if (x == 0)
        return 0;
    return static_cast<int>(x & 1u) + bitcountRecursive(x >> 1);
}

namespace {

constexpr int kNibbleBits[16] = {0, 1, 1, 2, 1, 2, 2, 3,
                                 1, 2, 2, 3, 2, 3, 3, 4};

struct ByteLut {
    std::uint8_t bits[256];

    constexpr ByteLut() : bits{}
    {
        for (int i = 0; i < 256; ++i) {
            int n = 0;
            for (int b = 0; b < 8; ++b)
                n += (i >> b) & 1;
            bits[i] = static_cast<std::uint8_t>(n);
        }
    }
};

constexpr ByteLut kByteLut{};

} // namespace

int
bitcountNibbleLut(std::uint32_t x)
{
    int n = 0;
    for (int i = 0; i < 8; ++i) {
        n += kNibbleBits[x & 0xFu];
        x >>= 4;
    }
    return n;
}

int
bitcountByteLut(std::uint32_t x)
{
    return kByteLut.bits[x & 0xFFu] + kByteLut.bits[(x >> 8) & 0xFFu] +
           kByteLut.bits[(x >> 16) & 0xFFu] + kByteLut.bits[x >> 24];
}

int
bitcountShift(std::uint32_t x)
{
    int n = 0;
    for (int i = 0; i < 32; ++i)
        n += static_cast<int>((x >> i) & 1u);
    return n;
}

int
bitcountKernighan(std::uint32_t x)
{
    int n = 0;
    while (x) {
        x &= x - 1;
        ++n;
    }
    return n;
}

int
bitcountSwar(std::uint32_t x)
{
    x = x - ((x >> 1) & 0x55555555u);
    x = (x & 0x33333333u) + ((x >> 2) & 0x33333333u);
    x = (x + (x >> 4)) & 0x0F0F0F0Fu;
    return static_cast<int>((x * 0x01010101u) >> 24);
}

} // namespace ticsim::apps
