/**
 * @file
 * Cuckoo-filter core (the paper's Cuckoo benchmark): insertion with
 * bounded eviction kicks and membership queries over 4-way buckets of
 * 16-bit fingerprints.
 *
 * The table mutation is parameterized on a store policy so the same
 * verified logic serves (a) the host-side golden reference, (b) the
 * legacy pointer-based variant whose stores go through the runtime's
 * instrumented pointer-write path, and (c) the Chinchilla variant.
 * Bucket count must be a power of two so the partner-bucket XOR stays
 * in range and is involutive.
 */

#ifndef TICSIM_APPS_COMMON_CUCKOO_CORE_HPP
#define TICSIM_APPS_COMMON_CUCKOO_CORE_HPP

#include <cstdint>

#include "support/logging.hpp"

namespace ticsim::apps {

struct CuckooParams {
    std::uint32_t buckets = 32;  ///< power of two
    std::uint32_t keys = 48;     ///< keys inserted then recovered
    std::uint32_t maxKicks = 16;
    std::uint32_t seed = 0xC0FFEEu;
    double workScale = 1.0;

    std::uint32_t slots() const { return buckets * 4; }
};

inline std::uint32_t
cuckooHash(std::uint32_t v)
{
    v ^= v >> 16;
    v *= 0x45D9F3Bu;
    v ^= v >> 16;
    return v;
}

inline std::uint16_t
cuckooFingerprint(std::uint32_t key)
{
    const auto fp =
        static_cast<std::uint16_t>(cuckooHash(key ^ 0x5BD1E995u));
    return fp ? fp : 1;
}

/** Default slot-read policy: a direct (uninstrumented) load. */
struct CuckooDirectLoad {
    std::uint16_t
    operator()(const std::uint16_t *slot) const
    {
        return *slot;
    }
};

/**
 * Table operations over a caller-owned slot array. @p StoreFn is
 * invoked as store(std::uint16_t *slot, std::uint16_t value) for every
 * mutation — the instrumented-pointer-write surface. @p LoadFn is
 * invoked as load(const std::uint16_t *slot) for every fingerprint
 * read, so variants whose table lives in FRAM can expose the read set
 * to the consistency checker (the host-side golden run and the
 * task-private-copy variant keep the direct default).
 */
template <typename StoreFn, typename LoadFn = CuckooDirectLoad>
class CuckooTable
{
  public:
    CuckooTable(std::uint16_t *slots, std::uint32_t buckets,
                std::uint32_t maxKicks, StoreFn store,
                LoadFn load = LoadFn{})
        : slots_(slots), buckets_(buckets), maxKicks_(maxKicks),
          store_(store), load_(load)
    {
        TICSIM_ASSERT((buckets & (buckets - 1)) == 0,
                      "cuckoo bucket count must be a power of two");
    }

    /** @return true if the key was placed (false: table overflow). */
    bool
    insert(std::uint32_t key)
    {
        const std::uint16_t fp = cuckooFingerprint(key);
        const std::uint32_t i1 = cuckooHash(key) & (buckets_ - 1);
        const std::uint32_t i2 = altBucket(i1, fp);
        if (tryPlace(i1, fp) || tryPlace(i2, fp))
            return true;

        // Evict: displace fingerprints until something lands.
        std::uint16_t cur = fp;
        std::uint32_t bucket = i1;
        for (std::uint32_t k = 0; k < maxKicks_; ++k) {
            const std::uint32_t victimSlot =
                bucket * 4 + ((cur + k) & 3u);
            const std::uint16_t victim = load_(&slots_[victimSlot]);
            store_(&slots_[victimSlot], cur);
            cur = victim;
            bucket = altBucket(bucket, cur);
            if (tryPlace(bucket, cur))
                return true;
        }
        return false;
    }

    bool
    contains(std::uint32_t key) const
    {
        const std::uint16_t fp = cuckooFingerprint(key);
        const std::uint32_t i1 = cuckooHash(key) & (buckets_ - 1);
        const std::uint32_t i2 = altBucket(i1, fp);
        return bucketHas(i1, fp) || bucketHas(i2, fp);
    }

  private:
    std::uint32_t
    altBucket(std::uint32_t bucket, std::uint16_t fp) const
    {
        return (bucket ^ cuckooHash(fp)) & (buckets_ - 1);
    }

    bool
    tryPlace(std::uint32_t bucket, std::uint16_t fp)
    {
        for (std::uint32_t s = 0; s < 4; ++s) {
            std::uint16_t *slot = &slots_[bucket * 4 + s];
            if (load_(slot) == 0) {
                store_(slot, fp);
                return true;
            }
        }
        return false;
    }

    bool
    bucketHas(std::uint32_t bucket, std::uint16_t fp) const
    {
        for (std::uint32_t s = 0; s < 4; ++s) {
            if (load_(&slots_[bucket * 4 + s]) == fp)
                return true;
        }
        return false;
    }

    std::uint16_t *slots_;
    std::uint32_t buckets_;
    std::uint32_t maxKicks_;
    StoreFn store_;
    LoadFn load_;
};

/** Host-side golden run: expected (inserted, recovered) counts. */
struct CuckooExpected {
    std::uint32_t inserted = 0;
    std::uint32_t recovered = 0;
};

CuckooExpected cuckooGolden(const CuckooParams &p);

} // namespace ticsim::apps

#endif // TICSIM_APPS_COMMON_CUCKOO_CORE_HPP
