/**
 * @file
 * Integer DSP helpers shared by the benchmark applications: fixed-point
 * mean / standard deviation, integer square root, a nearest-neighbour
 * classifier and a deterministic pseudo-random sequence (the embedded
 * equivalents of what the MiBench-derived benchmarks use).
 *
 * Everything here is pure (no device access, no instrumentation) so
 * every application variant — legacy, Chinchilla-style, task-based —
 * can share one verified implementation, exactly as the paper reuses
 * one algorithm across runtimes.
 */

#ifndef TICSIM_APPS_COMMON_DSP_HPP
#define TICSIM_APPS_COMMON_DSP_HPP

#include <cstdint>

namespace ticsim::apps {

/** Integer square root (floor). */
std::uint32_t isqrt(std::uint64_t v);

/** Mean of @p n int16 samples (rounded toward zero). */
std::int32_t meanI16(const std::int16_t *x, std::uint32_t n);

/** Population standard deviation of @p n int16 samples. */
std::uint32_t stddevI16(const std::int16_t *x, std::uint32_t n);

/** Feature vector of one accelerometer window. */
struct ArFeatures {
    std::int32_t meanMag = 0;   ///< mean of |x|+|y|+|z|
    std::uint32_t stddevMag = 0;
};

/** Two-class nearest-neighbour model (stationary vs. moving). */
struct ArModel {
    ArFeatures centroid[2]; ///< [0]=stationary, [1]=moving
};

/** Squared distance between feature vectors. */
std::uint64_t featureDistance(const ArFeatures &a, const ArFeatures &b);

/** Classify features against the model; returns the class index. */
int classify(const ArModel &m, const ArFeatures &f);

/**
 * MiBench-style deterministic pseudo-random sequence (a 32-bit LCG);
 * used to drive bitcount and the cuckoo filter identically in every
 * runtime variant.
 */
class Lcg
{
  public:
    explicit Lcg(std::uint32_t seed) : state_(seed) {}

    std::uint32_t
    next()
    {
        state_ = state_ * 1664525u + 1013904223u;
        return state_;
    }

    void reset(std::uint32_t seed) { state_ = seed; }

  private:
    std::uint32_t state_;
};

// ---- bitcount methods (MiBench's seven counting strategies) -----------

/** 1. Optimized single-loop counter. */
int bitcountOptimized(std::uint32_t x);
/** 2. Recursive divide-by-two counter (the method Chinchilla and the
 *     task systems cannot express). */
int bitcountRecursive(std::uint32_t x);
/** 3. 4-bit nibble lookup table. */
int bitcountNibbleLut(std::uint32_t x);
/** 4. 8-bit byte lookup table. */
int bitcountByteLut(std::uint32_t x);
/** 5. Naive shift-and-test. */
int bitcountShift(std::uint32_t x);
/** 6. Kernighan clear-lowest-set-bit. */
int bitcountKernighan(std::uint32_t x);
/** 7. SWAR parallel reduction. */
int bitcountSwar(std::uint32_t x);

} // namespace ticsim::apps

#endif // TICSIM_APPS_COMMON_DSP_HPP
