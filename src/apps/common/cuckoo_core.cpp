#include "cuckoo_core.hpp"

#include <vector>

#include "apps/common/dsp.hpp"

namespace ticsim::apps {

CuckooExpected
cuckooGolden(const CuckooParams &p)
{
    std::vector<std::uint16_t> slots(p.slots(), 0);
    auto store = [](std::uint16_t *slot, std::uint16_t v) { *slot = v; };
    CuckooTable<decltype(store)> table(slots.data(), p.buckets,
                                       p.maxKicks, store);
    CuckooExpected e;
    Lcg lcg(p.seed);
    std::vector<std::uint32_t> keys;
    keys.reserve(p.keys);
    for (std::uint32_t i = 0; i < p.keys; ++i) {
        const std::uint32_t k = lcg.next();
        keys.push_back(k);
        if (table.insert(k))
            ++e.inserted;
    }
    for (const auto k : keys) {
        if (table.contains(k))
            ++e.recovered;
    }
    return e;
}

} // namespace ticsim::apps
