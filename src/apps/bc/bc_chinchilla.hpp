/**
 * @file
 * Bitcount in the Chinchilla programming model: every variable that
 * lives across a checkpoint boundary is promoted to a non-volatile
 * global (the compile-time transformation Chinchilla performs), and —
 * critically — the recursive counting method is removed, because
 * local-to-global promotion cannot express per-activation locals
 * (paper Section 5.3.1: the authors had to hand-modify BC the same
 * way). Only six of the seven methods run.
 */

#ifndef TICSIM_APPS_BC_BC_CHINCHILLA_HPP
#define TICSIM_APPS_BC_BC_CHINCHILLA_HPP

#include "apps/bc/bc_legacy.hpp"
#include "runtimes/chinchilla.hpp"

namespace ticsim::apps {

class BcChinchillaApp
{
  public:
    BcChinchillaApp(board::Board &b, runtimes::ChinchillaRuntime &rt,
                    BcParams p = {});

    void main();

    std::uint64_t totalBits() const { return totalBits_.get(); }
    std::uint64_t mismatches() const { return mismatches_.get(); }
    bool done() const { return done_.get() != 0; }
    bool verify() const;

  private:
    board::Board &b_;
    runtimes::ChinchillaRuntime &rt_;
    BcParams params_;
    // Promoted locals (Chinchilla's local-to-global transformation).
    mem::nv<std::uint32_t> i_;
    mem::nv<std::uint32_t> lcgState_;
    mem::nv<std::uint32_t> x_;
    mem::nv<std::uint64_t> totalBits_;
    mem::nv<std::uint64_t> mismatches_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_BC_BC_CHINCHILLA_HPP
