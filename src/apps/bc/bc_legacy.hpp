/**
 * @file
 * Bitcount (BC) benchmark, legacy-C shape (MiBench-derived; paper
 * Section 5.3): counts bits in a pseudo-random sequence with seven
 * different methods — including the recursive one — cross-verifying
 * the methods against each other, and accumulates a grand total.
 *
 * This is the *unaltered program* variant: one source, instrumented
 * with frame guards and trigger points exactly where the paper's
 * compiler passes would put them. It runs unchanged under plain C,
 * TICS and the MementOS-like checkpointer — which runtime protects it
 * is decided entirely by the Runtime object passed in.
 *
 * Non-volatile accumulators make re-execution visible: an unprotected
 * run that restarts mid-loop double-counts into `totalBits`, the WAR
 * violation of paper Fig. 3a.
 */

#ifndef TICSIM_APPS_BC_BC_LEGACY_HPP
#define TICSIM_APPS_BC_BC_LEGACY_HPP

#include "apps/common/dsp.hpp"
#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"

namespace ticsim::apps {

struct BcParams {
    std::uint32_t iterations = 64;  ///< random numbers to process
    std::uint32_t seed = 0x2545F491u;
    /** Straight-line work multiplier (models -O0 vs -O2 codegen). */
    double workScale = 1.0;
};

class BcLegacyApp
{
  public:
    BcLegacyApp(board::Board &b, board::Runtime &rt, BcParams p = {});

    /** The program entry (give to Board::run). */
    void main();

    // ---- results ---------------------------------------------------------
    std::uint64_t totalBits() const { return totalBits_.get(); }
    std::uint64_t mismatches() const { return mismatches_.get(); }
    bool done() const { return done_.get() != 0; }

    /** Host-computed expected total for these parameters. */
    static std::uint64_t expectedTotal(const BcParams &p);

    /** Result check: finished, methods agreed, total exact. */
    bool verify() const;

    const BcParams &params() const { return params_; }

  private:
    int countAllMethods(std::uint32_t x);

    board::Board &b_;
    board::Runtime &rt_;
    BcParams params_;
    mem::nv<std::uint64_t> totalBits_;
    mem::nv<std::uint64_t> mismatches_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_BC_BC_LEGACY_HPP
