#include "bc_legacy.hpp"

// ticslint reports WAR spans on the counters in this file. Legacy
// code carries exactly the hazards the checkpointing runtimes exist
// to mask (plain-C materializes them dynamically), so the findings
// are expected and baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

BcLegacyApp::BcLegacyApp(board::Board &b, board::Runtime &rt, BcParams p)
    : b_(b), rt_(rt), params_(p),
      totalBits_(b.nvram(), "bc.totalBits"),
      mismatches_(b.nvram(), "bc.mismatches"),
      done_(b.nvram(), "bc.done")
{
    rt.footprint().add("bc application", 1750, 24);
    rt.trackGlobals(totalBits_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(mismatches_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(done_.raw(), sizeof(std::uint8_t));
}

int
BcLegacyApp::countAllMethods(std::uint32_t x)
{
    board::FrameGuard fg(rt_, 16);
    rt_.triggerPoint();

    int counts[7];
    counts[0] = bitcountOptimized(x);
    b_.charge(static_cast<Cycles>(34 * params_.workScale));
    counts[1] = bitcountRecursive(x); // real recursion on the stack
    {
        // The recursion's modeled frames: one per bit position.
        for (int d = 0; d < 32; ++d)
            rt_.frameEnter(12);
        for (int d = 0; d < 32; ++d)
            rt_.frameExit();
    }
    b_.charge(static_cast<Cycles>(96 * params_.workScale));
    counts[2] = bitcountNibbleLut(x);
    b_.charge(static_cast<Cycles>(26 * params_.workScale));
    counts[3] = bitcountByteLut(x);
    b_.charge(static_cast<Cycles>(18 * params_.workScale));
    counts[4] = bitcountShift(x);
    b_.charge(static_cast<Cycles>(70 * params_.workScale));
    counts[5] = bitcountKernighan(x);
    b_.charge(static_cast<Cycles>(30 * params_.workScale));
    counts[6] = bitcountSwar(x);
    b_.charge(static_cast<Cycles>(14 * params_.workScale));

    // Cross-verify the seven methods (the MiBench self-check).
    rt_.triggerPoint();
    for (int i = 1; i < 7; ++i) {
        if (counts[i] != counts[0])
            mismatches_ += 1;
    }
    return counts[0];
}

void
BcLegacyApp::main()
{
    board::FrameGuard fg(rt_, 24);
    Lcg lcg(params_.seed);
    for (std::uint32_t i = 0; i < params_.iterations; ++i) {
        rt_.triggerPoint();
        const std::uint32_t x = lcg.next();
        const int bits = countAllMethods(x);
        totalBits_ += static_cast<std::uint64_t>(bits);
    }
    done_ = 1;
}

std::uint64_t
BcLegacyApp::expectedTotal(const BcParams &p)
{
    Lcg lcg(p.seed);
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < p.iterations; ++i)
        total += static_cast<std::uint64_t>(bitcountSwar(lcg.next()));
    return total;
}

bool
BcLegacyApp::verify() const
{
    return done() && mismatches() == 0 &&
           totalBits() == expectedTotal(params_);
}

} // namespace ticsim::apps
