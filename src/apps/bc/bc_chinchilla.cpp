#include "bc_chinchilla.hpp"

// ticslint's per-file mode does not model word versioning, so the
// read-modify-writes on the ported state below appear as WAR spans;
// Chinchilla-like double-buffers every tracked word, so they never
// materialize. Expected, baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

BcChinchillaApp::BcChinchillaApp(board::Board &b,
                                 runtimes::ChinchillaRuntime &rt,
                                 BcParams p)
    : b_(b), rt_(rt), params_(p),
      i_(b.nvram(), "bcch.i"),
      lcgState_(b.nvram(), "bcch.lcg"),
      x_(b.nvram(), "bcch.x"),
      totalBits_(b.nvram(), "bcch.totalBits"),
      mismatches_(b.nvram(), "bcch.mismatches"),
      done_(b.nvram(), "bcch.done")
{
    // Promotion explosion: each promoted local is double-buffered in
    // the versioning store (Table 3 .data growth).
    rt.footprint().add("bc application", 1750, 24);
    rt.footprint().add("promoted locals (dual copy)", 0,
                       2 * (4 + 4 + 4 + 8 + 8 + 1));
    rt.footprint().add("per-site instrumentation", 6 * 46, 0);
}

void
BcChinchillaApp::main()
{
    rt_.triggerPoint();
    lcgState_ = params_.seed;
    for (i_ = 0; i_.get() < params_.iterations; i_ = i_.get() + 1) {
        rt_.triggerPoint();
        lcgState_ = lcgState_.get() * 1664525u + 1013904223u;
        x_ = lcgState_.get();
        const std::uint32_t x = x_.get();

        int counts[6];
        counts[0] = bitcountOptimized(x);
        b_.charge(static_cast<Cycles>(34 * params_.workScale));
        // No recursive method: inexpressible after promotion.
        counts[1] = bitcountNibbleLut(x);
        b_.charge(static_cast<Cycles>(26 * params_.workScale));
        counts[2] = bitcountByteLut(x);
        b_.charge(static_cast<Cycles>(18 * params_.workScale));
        counts[3] = bitcountShift(x);
        b_.charge(static_cast<Cycles>(70 * params_.workScale));
        counts[4] = bitcountKernighan(x);
        b_.charge(static_cast<Cycles>(30 * params_.workScale));
        counts[5] = bitcountSwar(x);
        b_.charge(static_cast<Cycles>(14 * params_.workScale));

        rt_.triggerPoint();
        for (int m = 1; m < 6; ++m) {
            if (counts[m] != counts[0])
                mismatches_ += 1;
        }
        totalBits_ += static_cast<std::uint64_t>(counts[0]);
    }
    done_ = 1;
}

bool
BcChinchillaApp::verify() const
{
    return done() && mismatches() == 0 &&
           totalBits() == BcLegacyApp::expectedTotal(params_);
}

} // namespace ticsim::apps
