#include "bc_task.hpp"

#include "runtimes/mayfly.hpp"

namespace ticsim::apps {

BcTaskApp::BcTaskApp(board::Board &b, taskrt::TaskRuntime &rt, BcParams p,
                     bool graphLoop)
    : b_(b), rt_(rt), params_(p),
      lcgState_(rt, b.nvram(), "bc.lcg"),
      x_(rt, b.nvram(), "bc.x"),
      i_(rt, b.nvram(), "bc.i"),
      counts_(rt, b.nvram(), "bc.counts"),
      total_(rt, b.nvram(), "bc.total"),
      mismatches_(rt, b.nvram(), "bc.mismatches"),
      done_(rt, b.nvram(), "bc.done")
{
    rt.footprint().add("bc application", 1750, 24);

    tInit_ = rt_.addTask("init", [this]() -> taskrt::TaskId {
        lcgState_.set(params_.seed);
        i_.set(0);
        total_.set(0);
        mismatches_.set(0);
        return tGen_;
    });

    tGen_ = rt_.addTask("gen", [this]() -> taskrt::TaskId {
        const std::uint32_t s =
            lcgState_.get() * 1664525u + 1013904223u;
        lcgState_.set(s);
        x_.set(s);
        b_.charge(static_cast<Cycles>(12 * params_.workScale));
        return tCount_;
    });

    tCount_ = rt_.addTask("count", [this]() -> taskrt::TaskId {
        const std::uint32_t x = x_.get();
        std::array<std::int32_t, 6> c{};
        c[0] = bitcountOptimized(x);
        b_.charge(static_cast<Cycles>(34 * params_.workScale));
        c[1] = bitcountNibbleLut(x);
        b_.charge(static_cast<Cycles>(26 * params_.workScale));
        c[2] = bitcountByteLut(x);
        b_.charge(static_cast<Cycles>(18 * params_.workScale));
        c[3] = bitcountShift(x);
        b_.charge(static_cast<Cycles>(70 * params_.workScale));
        c[4] = bitcountKernighan(x);
        b_.charge(static_cast<Cycles>(30 * params_.workScale));
        c[5] = bitcountSwar(x);
        b_.charge(static_cast<Cycles>(14 * params_.workScale));
        counts_.set(c);
        return tVerify_;
    });

    tVerify_ = rt_.addTask("verify", [this]() -> taskrt::TaskId {
        const auto c = counts_.get();
        std::uint64_t bad = 0;
        for (int m = 1; m < 6; ++m) {
            if (c[static_cast<std::size_t>(m)] != c[0])
                ++bad;
        }
        if (bad)
            mismatches_.set(mismatches_.get() + bad);
        b_.charge(static_cast<Cycles>(18 * params_.workScale));
        return tAccum_;
    });

    tAccum_ = rt_.addTask("accumulate",
                          [this, graphLoop]() -> taskrt::TaskId {
        total_.set(total_.get() +
                   static_cast<std::uint64_t>(counts_.get()[0]));
        const std::uint32_t next = i_.get() + 1;
        i_.set(next);
        b_.charge(static_cast<Cycles>(10 * params_.workScale));
        if (next >= params_.iterations) {
            done_.set(1);
            return taskrt::kTaskDone;
        }
        return graphLoop ? tGen_ : taskrt::kTaskDone;
    });

    rt_.setInitial(tInit_);

    if (auto *mf = dynamic_cast<taskrt::MayflyRuntime *>(&rt_)) {
        mf->declareEdge(tInit_, tGen_);
        mf->declareEdge(tGen_, tCount_);
        mf->declareEdge(tCount_, tVerify_);
        mf->declareEdge(tVerify_, tAccum_);
        if (graphLoop) {
            // The looping port's back edge — declared so the
            // validator can reject it (MayFly forbids graph loops).
            mf->declareEdge(tAccum_, tGen_);
        }
        mf->restartUntil(tGen_, [this] { return done(); });
    }
}

bool
BcTaskApp::verify() const
{
    return done() && mismatches() == 0 &&
           totalBits() == BcLegacyApp::expectedTotal(params_);
}

} // namespace ticsim::apps
