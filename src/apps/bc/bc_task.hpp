/**
 * @file
 * Bitcount decomposed into the task-based programming model (the
 * porting effort the paper's Fig. 2 illustrates): one task per
 * counting method plus generation / verification / accumulation
 * tasks, all data flow through privatized channels, and the recursive
 * method dropped — task systems enforce a static memory model with no
 * per-activation stack.
 *
 * The same graph runs under the Alpaca-like and InK-like runtimes.
 */

#ifndef TICSIM_APPS_BC_BC_TASK_HPP
#define TICSIM_APPS_BC_BC_TASK_HPP

#include <array>

#include "apps/bc/bc_legacy.hpp"
#include "runtimes/task_core.hpp"

namespace ticsim::apps {

class BcTaskApp
{
  public:
    /** @param graphLoop false = MayFly shape (no back edge; the
     *         runtime re-dispatches the chain per iteration). */
    BcTaskApp(board::Board &b, taskrt::TaskRuntime &rt, BcParams p = {},
              bool graphLoop = true);

    std::uint64_t totalBits() const { return total_.committed(); }
    std::uint64_t mismatches() const { return mismatches_.committed(); }
    bool done() const { return done_.committed() != 0; }
    bool verify() const;

    /** First task id (give to setInitial; done in the constructor). */
    taskrt::TaskId initialTask() const { return tInit_; }

  private:
    board::Board &b_;
    taskrt::TaskRuntime &rt_;
    BcParams params_;

    taskrt::Channel<std::uint32_t> lcgState_;
    taskrt::Channel<std::uint32_t> x_;
    taskrt::Channel<std::uint32_t> i_;
    taskrt::Channel<std::array<std::int32_t, 6>> counts_;
    taskrt::Channel<std::uint64_t> total_;
    taskrt::Channel<std::uint64_t> mismatches_;
    taskrt::Channel<std::uint8_t> done_;

    taskrt::TaskId tInit_ = 0;
    taskrt::TaskId tGen_ = 0;
    taskrt::TaskId tCount_ = 0;
    taskrt::TaskId tVerify_ = 0;
    taskrt::TaskId tAccum_ = 0;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_BC_BC_TASK_HPP
