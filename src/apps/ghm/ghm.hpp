/**
 * @file
 * Greenhouse monitoring (GHM), the paper's Table 1 application: an
 * infinite loop of {sense soil moisture, sense temperature, compute
 * averages, send} rounds, with per-routine completion counters.
 *
 * Two shapes of the same program:
 *  - GhmPlainApp: straight-line C loop (instrumented source; runs
 *    unchanged under plain C, TICS, and MementOS-like runtimes);
 *  - GhmTinyosApp: the event-driven TinyOS port, driven by the mini
 *    TinyOS kernel (timers + split-phase sensing + AM send).
 *
 * Consistency (the Table 1 ✓/✗ column) is judged from the recorded
 * execution: routine counts must progress in lockstep and the radio
 * must carry each round exactly once with a monotonically increasing
 * round id. Unprotected restarts inflate the early routines and
 * duplicate rounds — exactly the plain-C failure rows of the paper.
 */

#ifndef TICSIM_APPS_GHM_GHM_HPP
#define TICSIM_APPS_GHM_GHM_HPP

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"
#include "tinyos/kernel.hpp"

namespace ticsim::apps {

struct GhmParams {
    std::uint32_t samplesPerSense = 4;
    /** Rounds to run (0: until the experiment budget expires). */
    std::uint32_t rounds = 0;
    /** Sensing cadence (TinyOS timer / plain-C pacing loop). */
    TimeNs timerPeriod = 20 * kNsPerMs;
    /** Modeled compute cost per round. */
    Cycles computeCycles = 6000;
    /** Modeled per-sample post-processing. */
    Cycles sampleProcessCycles = 500;
};

/** Radio payload of one GHM round. */
struct GhmPacket {
    std::uint32_t round;
    std::int32_t avgMoisture;
    std::int32_t avgTemp;
};

/** Table 1 per-routine completion counters + consistency verdict. */
struct GhmOutcome {
    std::uint64_t senseMoisture = 0;
    std::uint64_t senseTemp = 0;
    std::uint64_t compute = 0;
    std::uint64_t send = 0;
    bool consistent = false;
};

/** Judge counters + the radio log against the lockstep criterion. */
GhmOutcome ghmJudge(std::uint64_t m, std::uint64_t t, std::uint64_t c,
                    std::uint64_t s, const device::Radio &radio);

class GhmPlainApp
{
  public:
    GhmPlainApp(board::Board &b, board::Runtime &rt, GhmParams p = {});

    void main();

    GhmOutcome outcome() const;

  private:
    board::Board &b_;
    board::Runtime &rt_;
    GhmParams params_;
    mem::nv<std::uint64_t> senseM_;
    mem::nv<std::uint64_t> senseT_;
    mem::nv<std::uint64_t> compute_;
    mem::nv<std::uint64_t> send_;
    mem::nv<std::uint32_t> round_;
};

class GhmTinyosApp
{
  public:
    GhmTinyosApp(board::Board &b, board::Runtime &rt, GhmParams p = {});

    void main();

    GhmOutcome outcome() const;

    // ---- callbacks from the kernel-driven round pipeline ---------------
    const GhmParams &paramsRef() const { return params_; }
    void noteSenseMoisture() { senseM_ += 1; }
    void noteSenseTemp() { senseT_ += 1; }
    void noteCompute() { compute_ += 1; }
    std::uint32_t currentRound() const { return round_.get(); }

    void
    noteSendAndAdvance()
    {
        send_ += 1;
        round_ = round_.get() + 1;
    }

    bool
    finished() const
    {
        return params_.rounds != 0 && round_.get() >= params_.rounds;
    }

    /** Volatile (stack-resident) round state driven by the kernel. */
    struct RoundState;

  private:

    board::Board &b_;
    board::Runtime &rt_;
    GhmParams params_;
    mem::nv<std::uint64_t> senseM_;
    mem::nv<std::uint64_t> senseT_;
    mem::nv<std::uint64_t> compute_;
    mem::nv<std::uint64_t> send_;
    mem::nv<std::uint32_t> round_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_GHM_GHM_HPP
