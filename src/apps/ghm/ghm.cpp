#include "ghm.hpp"

#include <cstring>

// ticslint reports WAR spans on the phase counters and io findings on
// every radio transmission point in this file. The plain GHM app is
// the paper's motivating unprotected example — the hazards are the
// subject matter, not defects — so the findings are expected and
// baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

GhmOutcome
ghmJudge(std::uint64_t m, std::uint64_t t, std::uint64_t c,
         std::uint64_t s, const device::Radio &radio)
{
    GhmOutcome o;
    o.senseMoisture = m;
    o.senseTemp = t;
    o.compute = c;
    o.send = s;

    // Lockstep: a round increments every counter once; at most one
    // round may be in flight when the budget expires.
    const auto near = [](std::uint64_t a, std::uint64_t b) {
        return (a > b ? a - b : b - a) <= 1;
    };
    bool ok = near(m, t) && near(t, c) && near(c, s);

    // The radio log must carry non-decreasing round ids. An immediate
    // re-transmission of one round is tolerated (a failure landing
    // between the send and the next commit re-executes the send — I/O
    // cannot be rolled back; the paper leaves I/O virtualization to
    // future work), but a round regression means replayed computation
    // and a round id may never repeat more than once.
    if (radio.packets().size() < s)
        ok = false;
    std::uint32_t lastRound = 0;
    std::uint32_t repeats = 0;
    bool first = true;
    for (const auto &pkt : radio.packets()) {
        if (pkt.payload.size() != sizeof(GhmPacket)) {
            ok = false;
            break;
        }
        GhmPacket gp;
        std::memcpy(&gp, pkt.payload.data(), sizeof(gp));
        if (!first) {
            if (gp.round < lastRound)
                ok = false; // replayed an older round
            else if (gp.round == lastRound && ++repeats > 1)
                ok = false; // stuck re-sending one round
            else if (gp.round > lastRound)
                repeats = 0;
        }
        lastRound = gp.round;
        first = false;
    }
    o.consistent = ok;
    return o;
}

// ---- straight-line legacy C variant ------------------------------------

GhmPlainApp::GhmPlainApp(board::Board &b, board::Runtime &rt, GhmParams p)
    : b_(b), rt_(rt), params_(p), senseM_(b.nvram(), "ghm.senseM"),
      senseT_(b.nvram(), "ghm.senseT"), compute_(b.nvram(), "ghm.compute"),
      send_(b.nvram(), "ghm.send"), round_(b.nvram(), "ghm.round")
{
    rt.footprint().add("ghm application", 1900, 40);
    rt.trackGlobals(senseM_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(senseT_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(compute_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(send_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(round_.raw(), sizeof(std::uint32_t));
}

void
GhmPlainApp::main()
{
    board::FrameGuard fg(rt_, 20);
    for (;;) {
        rt_.triggerPoint();
        const std::uint32_t round = round_.get();
        if (params_.rounds && round >= params_.rounds)
            break;

        // Pace rounds at the sensing cadence (busy-wait sleep model),
        // so the plain and TinyOS variants are directly comparable.
        const TimeNs roundDue =
            static_cast<TimeNs>(round) * params_.timerPeriod;
        while (b_.now() < roundDue) {
            rt_.triggerPoint();
            b_.charge(60);
        }

        std::int32_t moisture[8] = {};
        std::int32_t temp[8] = {};

        {
            board::FrameGuard sfg(rt_, 24);
            for (std::uint32_t i = 0; i < params_.samplesPerSense; ++i) {
                rt_.triggerPoint();
                moisture[i] = b_.sampleMoisture();
                b_.charge(params_.sampleProcessCycles);
            }
            senseM_ += 1;
        }
        {
            board::FrameGuard sfg(rt_, 24);
            for (std::uint32_t i = 0; i < params_.samplesPerSense; ++i) {
                rt_.triggerPoint();
                temp[i] = b_.sampleTemp();
                b_.charge(params_.sampleProcessCycles);
            }
            senseT_ += 1;
        }

        GhmPacket pkt{};
        {
            board::FrameGuard cfg(rt_, 16);
            rt_.triggerPoint();
            b_.charge(params_.computeCycles);
            std::int64_t sm = 0;
            std::int64_t st = 0;
            for (std::uint32_t i = 0; i < params_.samplesPerSense; ++i) {
                sm += moisture[i];
                st += temp[i];
            }
            pkt.round = round;
            pkt.avgMoisture = static_cast<std::int32_t>(
                sm / params_.samplesPerSense);
            pkt.avgTemp = static_cast<std::int32_t>(
                st / params_.samplesPerSense);
            compute_ += 1;
        }
        {
            board::FrameGuard xfg(rt_, 20);
            rt_.triggerPoint();
            b_.radioSend(&pkt, sizeof(pkt));
            send_ += 1;
        }
        round_ = round + 1;
    }
}

GhmOutcome
GhmPlainApp::outcome() const
{
    return ghmJudge(senseM_.get(), senseT_.get(), compute_.get(),
                    send_.get(), b_.radio());
}

// ---- TinyOS event-driven variant -----------------------------------------

struct GhmTinyosApp::RoundState {
    GhmTinyosApp *app;
    tinyos::Kernel *kernel;
    std::int32_t moisture[8];
    std::int32_t temp[8];
    std::uint32_t idx;
    GhmPacket pkt;
    /** Reentrancy guard: a timer tick never restarts a round that is
     *  still in flight (the one manual porting fix this event-driven
     *  legacy app needs, as the paper's Section 5.1 discussion
     *  anticipates). */
    bool busy;
};

namespace {

void ghmSenseMoistureDone(void *arg);
void ghmSenseTempDone(void *arg);
void ghmCompute(void *arg);
void ghmSendDone(void *arg);

/** Timer tick: begin a sensing round (moisture first). */
void
ghmRoundStart(void *arg)
{
    auto *st = static_cast<GhmTinyosApp::RoundState *>(arg);
    if (st->busy)
        return; // drop the tick; a round is still in flight
    st->busy = true;
    st->idx = 0;
    st->kernel->requestMoisture(&st->moisture[0], ghmSenseMoistureDone,
                                arg);
}

void
ghmSenseMoistureDone(void *arg)
{
    auto *st = static_cast<GhmTinyosApp::RoundState *>(arg);
    st->kernel->board().charge(st->app->paramsRef().sampleProcessCycles);
    if (++st->idx < st->app->paramsRef().samplesPerSense) {
        st->kernel->requestMoisture(&st->moisture[st->idx],
                                    ghmSenseMoistureDone, arg);
        return;
    }
    st->app->noteSenseMoisture();
    st->idx = 0;
    st->kernel->requestTemp(&st->temp[0], ghmSenseTempDone, arg);
}

void
ghmSenseTempDone(void *arg)
{
    auto *st = static_cast<GhmTinyosApp::RoundState *>(arg);
    st->kernel->board().charge(st->app->paramsRef().sampleProcessCycles);
    if (++st->idx < st->app->paramsRef().samplesPerSense) {
        st->kernel->requestTemp(&st->temp[st->idx], ghmSenseTempDone,
                                arg);
        return;
    }
    st->app->noteSenseTemp();
    st->kernel->postTask(ghmCompute, arg);
}

void
ghmCompute(void *arg)
{
    auto *st = static_cast<GhmTinyosApp::RoundState *>(arg);
    auto &b = st->kernel->board();
    b.charge(st->app->paramsRef().computeCycles);
    const auto n = st->app->paramsRef().samplesPerSense;
    std::int64_t sm = 0;
    std::int64_t stp = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        sm += st->moisture[i];
        stp += st->temp[i];
    }
    st->pkt.round = st->app->currentRound();
    st->pkt.avgMoisture = static_cast<std::int32_t>(sm / n);
    st->pkt.avgTemp = static_cast<std::int32_t>(stp / n);
    st->app->noteCompute();
    st->kernel->sendAM(&st->pkt, sizeof(st->pkt), ghmSendDone, arg);
}

void
ghmSendDone(void *arg)
{
    auto *st = static_cast<GhmTinyosApp::RoundState *>(arg);
    st->app->noteSendAndAdvance();
    st->busy = false;
    if (st->app->finished())
        st->kernel->stop();
}

} // namespace

GhmTinyosApp::GhmTinyosApp(board::Board &b, board::Runtime &rt,
                           GhmParams p)
    : b_(b), rt_(rt), params_(p), senseM_(b.nvram(), "ghmt.senseM"),
      senseT_(b.nvram(), "ghmt.senseT"),
      compute_(b.nvram(), "ghmt.compute"), send_(b.nvram(), "ghmt.send"),
      round_(b.nvram(), "ghmt.round")
{
    rt.footprint().add("ghm application (tinyos)", 2350, 48);
    rt.footprint().add("tinyos kernel", 1450, 0);
    rt.trackGlobals(senseM_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(senseT_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(compute_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(send_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(round_.raw(), sizeof(std::uint32_t));
}

void
GhmTinyosApp::main()
{
    board::FrameGuard fg(rt_, 48); // kernel + round state live here
    // Kernel and round state live on the simulated stack: RAM-resident
    // OS state, volatile under plain restarts, checkpointed under TICS.
    tinyos::Kernel kernel(b_, rt_);
    RoundState st{};
    st.app = this;
    st.kernel = &kernel;
    kernel.startTimer(params_.timerPeriod, ghmRoundStart, &st);
    kernel.run();
}

GhmOutcome
GhmTinyosApp::outcome() const
{
    return ghmJudge(senseM_.get(), senseT_.get(), compute_.get(),
                    send_.get(), b_.radio());
}

} // namespace ticsim::apps
