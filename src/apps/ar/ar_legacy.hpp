/**
 * @file
 * Activity recognition, legacy-C shape: train, then classify stored
 * windows in a loop, counting each class. One instrumented source that
 * runs unchanged under plain C, TICS and the MementOS-like runtime.
 */

#ifndef TICSIM_APPS_AR_AR_LEGACY_HPP
#define TICSIM_APPS_AR_AR_LEGACY_HPP

#include "apps/ar/ar_common.hpp"
#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"

namespace ticsim::apps {

class ArLegacyApp
{
  public:
    ArLegacyApp(board::Board &b, board::Runtime &rt, ArParams p = {});

    void main();

    std::uint32_t stationary() const { return stationary_.get(); }
    std::uint32_t moving() const { return moving_.get(); }
    bool done() const { return done_.get() != 0; }
    bool verify() const;

    const ArParams &params() const { return params_; }

  private:
    ArFeatures featurize(const std::int16_t *mag);

    board::Board &b_;
    board::Runtime &rt_;
    ArParams params_;
    mem::nv<ArModel> model_;
    mem::nv<std::uint32_t> stationary_;
    mem::nv<std::uint32_t> moving_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_AR_AR_LEGACY_HPP
