/**
 * @file
 * The *live*, time-sensitive AR application of paper Sections 5.2 and
 * Fig. 8: windows of accelerometer samples are featurized and
 * classified, stale windows must be discarded (200 ms freshness), and
 * activity changes must be alerted within a 200 ms deadline.
 *
 * Two implementations of the same behaviour:
 *  - ArTimedManualApp: manual time management on top of a
 *    MementOS-like checkpointer — the baseline whose timing the
 *    ViolationMonitor scores (Table 2 "w/o TICS");
 *  - ArTimedTicsApp: the TICS-annotated port (@=, @expires, @timely),
 *    whose annotations eliminate all three violation classes.
 *
 * Both report sampling/consumption/branch events to the monitor with
 * identical instance keys, so their violation counts are directly
 * comparable.
 */

#ifndef TICSIM_APPS_AR_AR_TIMED_HPP
#define TICSIM_APPS_AR_AR_TIMED_HPP

#include <array>
#include <vector>

#include "apps/ar/ar_common.hpp"
#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/mementos.hpp"
#include "tics/annotations.hpp"
#include "tics/runtime.hpp"

namespace ticsim::apps {

struct ArTimedParams {
    std::uint32_t windows = 145;       ///< 145 x 6 = 870 samplings
    static constexpr std::uint32_t kWindow = 6;
    TimeNs freshness = 200 * kNsPerMs; ///< @expires_after=200ms
    TimeNs alertDeadline = 200 * kNsPerMs;
    /** Modeled raw-to-magnitude conversion between sample and
     *  timestamp (the instrumentable gap). */
    Cycles convertCycles = 1800;
    /** Modeled inter-sample spacing (sensor cadence). */
    Cycles interSampleCycles = 1600;
};

/** One processed window, for the Fig. 8 execution trace. */
struct ArTraceEvent {
    std::uint64_t window = 0;
    TimeNs at = 0;
    bool fresh = false;    ///< window consumed (vs. discarded stale)
    bool switched = false; ///< activity change detected
    bool alerted = false;  ///< timely alert sent
};

/** Shared result surface of the two timed variants. The counters are
 *  non-volatile application state (so re-execution after a restore
 *  cannot inflate them); the raw trace is host-side observability and
 *  may contain re-executed entries (benches keep the last record per
 *  window — the committed outcome). */
class ArTimedResults
{
  public:
    virtual ~ArTimedResults() = default;

    virtual std::uint64_t processed() const = 0;
    virtual std::uint64_t discarded() const = 0;
    virtual std::uint64_t alerts() const = 0;

    const std::vector<ArTraceEvent> &trace() const { return trace_; }

  protected:
    std::vector<ArTraceEvent> trace_;
};

/** Manual time management over MementOS-like checkpoints. */
class ArTimedManualApp : public ArTimedResults
{
  public:
    ArTimedManualApp(board::Board &b, runtimes::MementosRuntime &rt,
                     ArTimedParams p = {});

    void main();
    bool done() const { return window_.get() >= params_.windows; }

    std::uint64_t processed() const override { return processed_.get(); }
    std::uint64_t discarded() const override { return 0; }
    std::uint64_t alerts() const override { return alerts_.get(); }

  private:
    board::Board &b_;
    runtimes::MementosRuntime &rt_;
    ArTimedParams params_;
    /** Program state block tracked by the MementOS-like runtime. */
    struct State {
        std::uint32_t window;
        std::int32_t mags[ArTimedParams::kWindow];
        TimeNs ts[ArTimedParams::kWindow];
        std::int32_t lastActivity;
        TimeNs activityStart;
    };
    mem::nv<State> state_;
    mem::nv<std::uint32_t> window_;
    mem::nv<std::uint64_t> processed_;
    mem::nv<std::uint64_t> alerts_;
};

/** The TICS-annotated port. */
class ArTimedTicsApp : public ArTimedResults
{
  public:
    ArTimedTicsApp(board::Board &b, tics::TicsRuntime &rt,
                   ArTimedParams p = {});

    void main();
    bool done() const { return window_.get() >= params_.windows; }

    std::uint64_t processed() const override { return processed_.get(); }
    std::uint64_t discarded() const override { return discarded_.get(); }
    std::uint64_t alerts() const override { return alerts_.get(); }

  private:
    using Window = std::array<std::int32_t, ArTimedParams::kWindow>;

    board::Board &b_;
    tics::TicsRuntime &rt_;
    ArTimedParams params_;
    tics::Expiring<Window> accel_; ///< @expires_after=200ms
    /** Timestamped at the window's first sample: guards consumption so
     *  that even the oldest sample in the window is inside the
     *  freshness budget (stale windows are discarded and re-sampled,
     *  as in the paper's Fig. 8 trace). */
    tics::Expiring<std::uint32_t> winStart_;
    mem::nv<std::uint32_t> window_;
    mem::nv<std::int32_t> lastActivity_;
    mem::nv<TimeNs> activityStart_;
    mem::nv<std::uint64_t> processed_;
    mem::nv<std::uint64_t> discarded_;
    mem::nv<std::uint64_t> alerts_;
};

/** Magnitude of one accelerometer sample. */
inline std::int32_t
accelMagnitude(const device::AccelSample &s)
{
    const auto ax = s.x < 0 ? -s.x : s.x;
    const auto ay = s.y < 0 ? -s.y : s.y;
    const auto az = s.z < 0 ? -s.z : s.z;
    return ax + ay + az;
}

/** Threshold classifier: moving when the window swings hard. */
bool arWindowMoving(const std::int32_t *mags, std::uint32_t n);

} // namespace ticsim::apps

#endif // TICSIM_APPS_AR_AR_TIMED_HPP
