#include "ar_task.hpp"

#include "runtimes/mayfly.hpp"

namespace ticsim::apps {

ArTaskApp::ArTaskApp(board::Board &b, taskrt::TaskRuntime &rt, ArParams p,
                     bool graphLoop)
    : b_(b), rt_(rt), params_(p),
      window_(rt, b.nvram(), "ar.window"),
      features_(rt, b.nvram(), "ar.features"),
      model_(rt, b.nvram(), "ar.model"),
      w_(rt, b.nvram(), "ar.w"),
      stationary_(rt, b.nvram(), "ar.stationary"),
      moving_(rt, b.nvram(), "ar.moving"),
      done_(rt, b.nvram(), "ar.done")
{
    rt.footprint().add("ar application", 2300, 12);

    auto genCharge = [this] {
        b_.charge(static_cast<Cycles>(
            8 * params_.windowSize * params_.workScale));
    };
    auto featCharge = [this] {
        b_.charge(static_cast<Cycles>(
            (30 + 14 * params_.windowSize) * params_.workScale));
    };

    tInit_ = rt_.addTask("init", [this]() -> taskrt::TaskId {
        w_.set(0);
        stationary_.set(0);
        moving_.set(0);
        return tTrain_;
    });

    tTrain_ = rt_.addTask("train", [this, genCharge,
                                    featCharge]() -> taskrt::TaskId {
        Window buf{};
        ArModel m;
        arGenWindow(params_.seed, 0, params_.windowSize, buf.data());
        genCharge();
        featCharge();
        m.centroid[0] = arFeaturize(buf.data(), params_.windowSize);
        arGenWindow(params_.seed, 1, params_.windowSize, buf.data());
        genCharge();
        featCharge();
        m.centroid[1] = arFeaturize(buf.data(), params_.windowSize);
        model_.set(m);
        w_.set(2);
        return tSample_;
    });

    tSample_ = rt_.addTask("sample", [this,
                                      genCharge]() -> taskrt::TaskId {
        Window buf{};
        arGenWindow(params_.seed, w_.get(), params_.windowSize,
                    buf.data());
        genCharge();
        window_.set(buf);
        return tFeaturize_;
    });

    tFeaturize_ = rt_.addTask("featurize",
                              [this, featCharge]() -> taskrt::TaskId {
        const Window buf = window_.get();
        featCharge();
        features_.set(arFeaturize(buf.data(), params_.windowSize));
        return tClassify_;
    });

    tClassify_ = rt_.addTask("classify",
                             [this, graphLoop]() -> taskrt::TaskId {
        b_.charge(static_cast<Cycles>(48 * params_.workScale));
        if (classify(model_.get(), features_.get()) == 0)
            stationary_.set(stationary_.get() + 1);
        else
            moving_.set(moving_.get() + 1);
        const std::uint32_t next = w_.get() + 1;
        w_.set(next);
        if (next >= 2 + params_.windows) {
            done_.set(1);
            return taskrt::kTaskDone;
        }
        return graphLoop ? tSample_ : taskrt::kTaskDone;
    });

    rt_.setInitial(tInit_);

    if (auto *mf = dynamic_cast<taskrt::MayflyRuntime *>(&rt_)) {
        // MayFly wiring: declared (acyclic) edges, periodic
        // re-dispatch of the per-window chain, and an edge-expiry
        // constraint on the window channel (stale windows reroute to
        // a fresh sample instead of being featurized).
        mf->declareEdge(tInit_, tTrain_);
        mf->declareEdge(tTrain_, tSample_);
        mf->declareEdge(tSample_, tFeaturize_);
        mf->declareEdge(tFeaturize_, tClassify_);
        if (graphLoop)
            mf->declareEdge(tClassify_, tSample_); // rejected: a loop
        mf->restartUntil(tSample_, [this] { return done(); });
        mf->constrainInput(tFeaturize_, &window_, 500 * kNsPerMs,
                           tSample_);
    }
}

bool
ArTaskApp::verify() const
{
    const auto e = arGolden(params_);
    return done() && stationary() == e.stationary &&
           moving() == e.moving;
}

} // namespace ticsim::apps
