#include "ar_common.hpp"

#include "support/logging.hpp"

namespace ticsim::apps {

void
arGenWindow(std::uint32_t seed, std::uint32_t w, std::uint32_t n,
            std::int16_t *out)
{
    TICSIM_ASSERT(n <= kArMaxWindow);
    Lcg lcg(seed ^ (w * 2654435761u));
    const bool moving = (w & 1u) != 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto noise =
            static_cast<std::int32_t>(lcg.next() % 41u) - 20;
        std::int32_t mag;
        if (moving) {
            // Large oscillation around gravity.
            const std::int32_t swing = (i & 1u) ? 900 : 300;
            mag = 1000 + swing + 4 * noise;
        } else {
            mag = 1000 + noise;
        }
        out[i] = static_cast<std::int16_t>(mag);
    }
}

ArFeatures
arFeaturize(const std::int16_t *mag, std::uint32_t n)
{
    ArFeatures f;
    f.meanMag = meanI16(mag, n);
    f.stddevMag = stddevI16(mag, n);
    return f;
}

ArModel
arTrain(const ArParams &p)
{
    std::int16_t buf[kArMaxWindow];
    ArModel m;
    arGenWindow(p.seed, 0, p.windowSize, buf);
    m.centroid[0] = arFeaturize(buf, p.windowSize);
    arGenWindow(p.seed, 1, p.windowSize, buf);
    m.centroid[1] = arFeaturize(buf, p.windowSize);
    return m;
}

ArExpected
arGolden(const ArParams &p)
{
    const ArModel m = arTrain(p);
    ArExpected e;
    std::int16_t buf[kArMaxWindow];
    for (std::uint32_t w = 2; w < 2 + p.windows; ++w) {
        arGenWindow(p.seed, w, p.windowSize, buf);
        const auto f = arFeaturize(buf, p.windowSize);
        if (classify(m, f) == 0)
            ++e.stationary;
        else
            ++e.moving;
    }
    return e;
}

} // namespace ticsim::apps
