#include "ar_legacy.hpp"

// ticslint reports WAR spans on the class counters in this file —
// expected for the unmodified legacy variant (plain-C materializes
// them; checkpointing runtimes mask them) and baselined in
// tools/ticslint.baseline.json.

namespace ticsim::apps {

ArLegacyApp::ArLegacyApp(board::Board &b, board::Runtime &rt, ArParams p)
    : b_(b), rt_(rt), params_(p), model_(b.nvram(), "ar.model"),
      stationary_(b.nvram(), "ar.stationary"),
      moving_(b.nvram(), "ar.moving"), done_(b.nvram(), "ar.done")
{
    rt.footprint().add("ar application", 2300,
                       static_cast<std::uint32_t>(sizeof(ArModel) + 12));
    rt.trackGlobals(model_.raw(), sizeof(ArModel));
    rt.trackGlobals(stationary_.raw(), sizeof(std::uint32_t));
    rt.trackGlobals(moving_.raw(), sizeof(std::uint32_t));
    rt.trackGlobals(done_.raw(), sizeof(std::uint8_t));
}

ArFeatures
ArLegacyApp::featurize(const std::int16_t *mag)
{
    board::FrameGuard fg(rt_, 16);
    rt_.triggerPoint();
    b_.charge(static_cast<Cycles>(
        (30 + 14 * params_.windowSize) * params_.workScale));
    return arFeaturize(mag, params_.windowSize);
}

void
ArLegacyApp::main()
{
    board::FrameGuard fg(rt_, 20);
    std::int16_t window[kArMaxWindow];

    // Training phase: one stored window per class.
    {
        board::FrameGuard tfg(rt_, 16);
        rt_.triggerPoint();
        ArModel m;
        arGenWindow(params_.seed, 0, params_.windowSize, window);
        b_.charge(static_cast<Cycles>(
            8 * params_.windowSize * params_.workScale));
        m.centroid[0] = featurize(window);
        arGenWindow(params_.seed, 1, params_.windowSize, window);
        b_.charge(static_cast<Cycles>(
            8 * params_.windowSize * params_.workScale));
        m.centroid[1] = featurize(window);
        model_ = m;
    }

    // Recognition phase.
    for (std::uint32_t w = 2; w < 2 + params_.windows; ++w) {
        board::FrameGuard wfg(rt_, 20);
        rt_.triggerPoint();
        arGenWindow(params_.seed, w, params_.windowSize, window);
        b_.charge(static_cast<Cycles>(
            8 * params_.windowSize * params_.workScale));
        const ArFeatures f = featurize(window);
        const ArModel m = model_.get();
        b_.charge(static_cast<Cycles>(48 * params_.workScale));
        if (classify(m, f) == 0)
            stationary_ += 1;
        else
            moving_ += 1;
    }
    done_ = 1;
}

bool
ArLegacyApp::verify() const
{
    const auto e = arGolden(params_);
    return done() && stationary() == e.stationary &&
           moving() == e.moving;
}

} // namespace ticsim::apps
