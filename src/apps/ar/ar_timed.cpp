#include "ar_timed.hpp"

// ticslint reports an io finding at each radio transmission point
// (sends are inherently non-idempotent; a reboot between send and
// checkpoint duplicates the packet) and WAR spans on the activity
// counters. Both timed variants accept these — the paper's timely
// extension bounds staleness, not send idempotency — so the findings
// are expected and baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

bool
arWindowMoving(const std::int32_t *mags, std::uint32_t n)
{
    std::int32_t lo = mags[0];
    std::int32_t hi = mags[0];
    for (std::uint32_t i = 1; i < n; ++i) {
        lo = mags[i] < lo ? mags[i] : lo;
        hi = mags[i] > hi ? mags[i] : hi;
    }
    return hi - lo > 400;
}

// ---- manual time management (the violating baseline) -------------------

ArTimedManualApp::ArTimedManualApp(board::Board &b,
                                   runtimes::MementosRuntime &rt,
                                   ArTimedParams p)
    : b_(b), rt_(rt), params_(p), state_(b.nvram(), "art.state"),
      window_(b.nvram(), "art.window"),
      processed_(b.nvram(), "art.processed"),
      alerts_(b.nvram(), "art.alerts")
{
    rt.trackGlobals(state_.raw(), sizeof(State));
    rt.trackGlobals(window_.raw(), sizeof(std::uint32_t));
    rt.trackGlobals(processed_.raw(), sizeof(std::uint64_t));
    rt.trackGlobals(alerts_.raw(), sizeof(std::uint64_t));
    rt.footprint().add("ar-timed application", 2600,
                       sizeof(State) + 4);
}

void
ArTimedManualApp::main()
{
    board::FrameGuard fg(rt_, 24);
    constexpr auto kW = ArTimedParams::kWindow;

    while (window_.get() < params_.windows) {
        rt_.triggerPoint();
        const std::uint32_t win = window_.get();
        State *st = state_.raw();

        for (std::uint32_t i = 0; i < kW; ++i) {
            const std::uint64_t inst =
                static_cast<std::uint64_t>(win) * kW + i;
            // Sensor cadence with natural conversion-time jitter.
            b_.charge(params_.interSampleCycles + b_.rng().below(2400));
            rt_.triggerPoint();
            const auto s = b_.sampleAccel();
            b_.monitor().dataSampled("accel", inst, b_.now());
            st->mags[i] = accelMagnitude(s);
            // Raw-to-unit conversion between sampling and
            // timestamping: the gap a checkpoint can split (Fig. 3c).
            b_.charge(params_.convertCycles);
            rt_.triggerPoint();
            const TimeNs t = b_.deviceNow();
            st->ts[i] = t;
            b_.monitor().timestampAssigned("accel", inst, t,
                                           10 * kNsPerMs);
        }

        // Featurize + classify: consumes the window with no freshness
        // guard — legacy code has no notion of expiry (Fig. 3d).
        rt_.triggerPoint();
        const TimeNs consumeAt = b_.now();
        for (std::uint32_t i = 0; i < kW; ++i) {
            b_.monitor().dataConsumed(
                "accel", static_cast<std::uint64_t>(win) * kW + i,
                params_.freshness, consumeAt);
        }
        b_.charge(static_cast<Cycles>(30 + 14 * kW));
        const bool moving = arWindowMoving(st->mags, kW);
        processed_ += 1;

        ArTraceEvent ev;
        ev.window = win;
        ev.at = b_.now();
        ev.fresh = true;

        const std::int32_t act = moving ? 1 : 0;
        if (act != st->lastActivity) {
            ev.switched = true;
            // Alert preparation (payload assembly, radio wake), then
            // the timely branch — with a checkpointable gap before the
            // time read (Fig. 3b).
            b_.charge(2400);
            rt_.triggerPoint();
            const TimeNs t2 = b_.deviceNow();
            const bool taken =
                t2 < st->activityStart + params_.alertDeadline ||
                st->activityStart == 0;
            b_.monitor().branchArm("alert", win, taken ? 0 : 1);
            if (taken) {
                std::uint8_t payload[4] = {
                    static_cast<std::uint8_t>(act), 0xA1, 0xE7,
                    static_cast<std::uint8_t>(win & 0xFF)};
                b_.radioSend(payload, sizeof(payload));
                alerts_ += 1;
                ev.alerted = true;
            }
            st->lastActivity = act;
            st->activityStart = t2;
        }
        trace_.push_back(ev);
        window_ = win + 1;
    }
}

// ---- the TICS-annotated port ---------------------------------------------

ArTimedTicsApp::ArTimedTicsApp(board::Board &b, tics::TicsRuntime &rt,
                               ArTimedParams p)
    : b_(b), rt_(rt), params_(p),
      accel_(rt, b.nvram(), "accel", p.freshness),
      // Guard margin: the window-start marker is stamped ~2 ms after
      // the first physical sample, so its budget is tightened to keep
      // every sample inside the declared freshness window.
      winStart_(rt, b.nvram(), "accel.winStart",
                p.freshness - 10 * kNsPerMs),
      window_(b.nvram(), "artt.window"),
      lastActivity_(b.nvram(), "artt.lastActivity"),
      activityStart_(b.nvram(), "artt.activityStart"),
      processed_(b.nvram(), "artt.processed"),
      discarded_(b.nvram(), "artt.discarded"),
      alerts_(b.nvram(), "artt.alerts")
{
    rt.footprint().add("ar-timed application", 2380, 16);
    rt.footprint().add("time annotations", 210, 0);
}

void
ArTimedTicsApp::main()
{
    board::FrameGuard fg(rt_, 24);
    constexpr auto kW = ArTimedParams::kWindow;

    while (window_.get() < params_.windows) {
        rt_.triggerPoint();
        const std::uint32_t win = window_.get();

        for (std::uint32_t i = 0; i < kW; ++i) {
            const std::uint64_t inst =
                static_cast<std::uint64_t>(win) * kW + i;
            b_.charge(params_.interSampleCycles + b_.rng().below(2400));
            rt_.triggerPoint();
            // accel[i] @= read_acc(): sampling, conversion and
            // timestamping form one atomic block.
            rt_.beginAtomic();
            const auto s = b_.sampleAccel();
            b_.monitor().dataSampled("accel", inst, b_.now());
            b_.charge(params_.convertCycles);
            Window arr = accel_.get();
            arr[i] = accelMagnitude(s);
            if (i == 0) {
                // The window-start marker is observed inside the same
                // atomic region as the first physical sample, so no
                // checkpoint can separate them; consumption is guarded
                // on this marker, keeping every sample of a consumed
                // window inside the freshness budget.
                b_.monitor().dataSampled(winStart_.id(), win, b_.now());
            }
            // Both timed assignments complete inside this same atomic
            // region (their own atomic blocks nest), so no checkpoint
            // can ever separate the physical sample from either of its
            // timestamps; the mandated checkpoint lands once, after.
            if (i == 0)
                winStart_.assignTimed(win, win);
            accel_.assignTimed(arr, inst);
            rt_.endAtomic(/*checkpoint=*/true);
        }

        // @expires(window start){ featurize + classify } — windows
        // whose oldest sample aged out are discarded, not consumed.
        ArTraceEvent ev;
        ev.window = win;
        bool moving = false;
        const TimeNs entryAt = b_.now();
        const bool fresh = tics::expires(rt_, winStart_, win, [&] {
            for (std::uint32_t i = 0; i < kW; ++i) {
                b_.monitor().dataConsumed(
                    "accel", static_cast<std::uint64_t>(win) * kW + i,
                    params_.freshness, entryAt);
            }
            b_.charge(static_cast<Cycles>(30 + 14 * kW));
            moving = arWindowMoving(accel_.get().data(), kW);
        });
        ev.at = b_.now();
        ev.fresh = fresh;

        if (!fresh) {
            discarded_ += 1;
        } else {
            processed_ += 1;
            const std::int32_t act = moving ? 1 : 0;
            if (act != lastActivity_.get()) {
                ev.switched = true;
                // @timely(start + 200ms){ ALERT } else { }
                const TimeNs start = activityStart_.get();
                const TimeNs deadline =
                    start == 0 ? ~TimeNs(0)
                               : start + params_.alertDeadline;
                const bool alerted = tics::timely(
                    rt_, "alert", win, deadline,
                    [&] {
                        std::uint8_t payload[4] = {
                            static_cast<std::uint8_t>(act), 0xA1, 0xE7,
                            static_cast<std::uint8_t>(win & 0xFF)};
                        b_.radioSend(payload, sizeof(payload));
                        alerts_ += 1;
                    },
                    [] {});
                ev.alerted = alerted;
                lastActivity_ = act;
                activityStart_ = rt_.deviceNow();
            }
        }
        trace_.push_back(ev);
        window_ = win + 1;
    }
}

} // namespace ticsim::apps
