/**
 * @file
 * Activity-recognition benchmark core (paper Sections 5.2/5.3): a
 * window of three-axis accelerometer data is reduced to mean/stddev
 * magnitude features and classified stationary-vs-moving with a
 * nearest-neighbour model trained on one window of each class.
 *
 * The Fig. 9 benchmark variant works on a *stored* dataset ("locally
 * stored accelerometer data"), generated deterministically here so
 * every runtime variant computes on identical input and results can
 * be verified exactly. The live, time-annotated variant for Table 2 /
 * Fig. 8 samples the board's accelerometer instead (ar_timed.hpp).
 */

#ifndef TICSIM_APPS_AR_AR_COMMON_HPP
#define TICSIM_APPS_AR_AR_COMMON_HPP

#include <cstdint>

#include "apps/common/dsp.hpp"

namespace ticsim::apps {

struct ArParams {
    std::uint32_t windows = 32;    ///< windows to classify
    std::uint32_t windowSize = 16; ///< samples per window
    std::uint32_t seed = 0xA11CEu;
    double workScale = 1.0;
};

/** Max samples per window the fixed buffers accommodate. */
constexpr std::uint32_t kArMaxWindow = 32;

/**
 * Deterministic stored dataset: window @p w is "moving" when odd.
 * Writes @p n magnitude samples (|x|+|y|+|z|) into @p out.
 */
void arGenWindow(std::uint32_t seed, std::uint32_t w, std::uint32_t n,
                 std::int16_t *out);

/** Feature extraction over a magnitude window. */
ArFeatures arFeaturize(const std::int16_t *mag, std::uint32_t n);

/** Train the two centroids from windows 0 (stationary) and 1 (moving). */
ArModel arTrain(const ArParams &p);

/** Expected (stationary, moving) classification counts. */
struct ArExpected {
    std::uint32_t stationary = 0;
    std::uint32_t moving = 0;
};
ArExpected arGolden(const ArParams &p);

} // namespace ticsim::apps

#endif // TICSIM_APPS_AR_AR_COMMON_HPP
