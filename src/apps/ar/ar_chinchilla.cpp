#include "ar_chinchilla.hpp"

// ticslint's per-file mode does not model word versioning, so the
// windowed state updates below appear as WAR spans (plus one
// data-dependent loop the bound heuristic cannot close); the
// Chinchilla-like runtime double-buffers every tracked word, so none
// materialize. Expected, baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

ArChinchillaApp::ArChinchillaApp(board::Board &b,
                                 runtimes::ChinchillaRuntime &rt,
                                 ArParams p)
    : b_(b), rt_(rt), params_(p), window_(b.nvram(), "arch.window"),
      w_(b.nvram(), "arch.w"), model_(b.nvram(), "arch.model"),
      stationary_(b.nvram(), "arch.stationary"),
      moving_(b.nvram(), "arch.moving"), done_(b.nvram(), "arch.done")
{
    rt.footprint().add("ar application", 2300,
                       static_cast<std::uint32_t>(sizeof(ArModel) + 12));
    rt.footprint().add("promoted locals (dual copy)", 0,
                       2 * (kArMaxWindow * 2 + 4 + 4));
    rt.footprint().add("per-site instrumentation", 11 * 46, 0);
}

void
ArChinchillaApp::main()
{
    rt_.triggerPoint();
    std::int16_t buf[kArMaxWindow];

    auto loadWindow = [&](std::uint32_t w) {
        arGenWindow(params_.seed, w, params_.windowSize, buf);
        b_.charge(static_cast<Cycles>(
            8 * params_.windowSize * params_.workScale));
        // Every promoted-buffer element write pays versioning.
        for (std::uint32_t i = 0; i < params_.windowSize; ++i)
            window_.set(i, buf[i]);
    };
    auto features = [&]() {
        rt_.triggerPoint();
        b_.charge(static_cast<Cycles>(
            (30 + 14 * params_.windowSize) * params_.workScale));
        return arFeaturize(window_.raw(), params_.windowSize);
    };

    ArModel m;
    loadWindow(0);
    m.centroid[0] = features();
    loadWindow(1);
    m.centroid[1] = features();
    model_ = m;

    for (w_ = 2; w_.get() < 2 + params_.windows; w_ = w_.get() + 1) {
        rt_.triggerPoint();
        loadWindow(w_.get());
        const ArFeatures f = features();
        b_.charge(static_cast<Cycles>(48 * params_.workScale));
        if (classify(model_.get(), f) == 0)
            stationary_ += 1;
        else
            moving_ += 1;
    }
    done_ = 1;
}

bool
ArChinchillaApp::verify() const
{
    const auto e = arGolden(params_);
    return done() && stationary() == e.stationary &&
           moving() == e.moving;
}

} // namespace ticsim::apps
