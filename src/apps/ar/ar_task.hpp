/**
 * @file
 * Activity recognition decomposed into tasks (the paper's Fig. 2
 * porting example made concrete): sample → featurize → classify →
 * accumulate stages connected by privatized channels, with the window
 * loop expressed as graph edges. Runs under the Alpaca-like and
 * InK-like runtimes; MayFly additionally attaches edge expiry to the
 * window channel (see the Table 2 / Fig. 9 benches).
 */

#ifndef TICSIM_APPS_AR_AR_TASK_HPP
#define TICSIM_APPS_AR_AR_TASK_HPP

#include <array>

#include "apps/ar/ar_common.hpp"
#include "runtimes/task_core.hpp"

namespace ticsim::apps {

class ArTaskApp
{
  public:
    using Window = std::array<std::int16_t, kArMaxWindow>;

    /**
     * @param graphLoop When true (Alpaca/InK), the classify task loops
     *        back to sample via a graph edge. When false (MayFly: no
     *        loops allowed), the chain ends after each window and the
     *        MayFly runtime re-dispatches it until done, with an edge
     *        expiry constraint on the window channel.
     */
    ArTaskApp(board::Board &b, taskrt::TaskRuntime &rt, ArParams p = {},
              bool graphLoop = true);

    std::uint32_t stationary() const { return stationary_.committed(); }
    std::uint32_t moving() const { return moving_.committed(); }
    bool done() const { return done_.committed() != 0; }
    bool verify() const;

    taskrt::Channel<Window> &windowChannel() { return window_; }
    taskrt::TaskId sampleTask() const { return tSample_; }

  private:
    board::Board &b_;
    taskrt::TaskRuntime &rt_;
    ArParams params_;

    taskrt::Channel<Window> window_;
    taskrt::Channel<ArFeatures> features_;
    taskrt::Channel<ArModel> model_;
    taskrt::Channel<std::uint32_t> w_;
    taskrt::Channel<std::uint32_t> stationary_;
    taskrt::Channel<std::uint32_t> moving_;
    taskrt::Channel<std::uint8_t> done_;

    taskrt::TaskId tInit_ = 0;
    taskrt::TaskId tTrain_ = 0;
    taskrt::TaskId tSample_ = 0;
    taskrt::TaskId tFeaturize_ = 0;
    taskrt::TaskId tClassify_ = 0;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_AR_AR_TASK_HPP
