/**
 * @file
 * Activity recognition in the Chinchilla programming model: the window
 * buffer, loop indices and model live as promoted non-volatile
 * globals with dual-copy versioning (paper Section 5.3.1).
 */

#ifndef TICSIM_APPS_AR_AR_CHINCHILLA_HPP
#define TICSIM_APPS_AR_AR_CHINCHILLA_HPP

#include "apps/ar/ar_common.hpp"
#include "mem/nv.hpp"
#include "runtimes/chinchilla.hpp"

namespace ticsim::apps {

class ArChinchillaApp
{
  public:
    ArChinchillaApp(board::Board &b, runtimes::ChinchillaRuntime &rt,
                    ArParams p = {});

    void main();

    std::uint32_t stationary() const { return stationary_.get(); }
    std::uint32_t moving() const { return moving_.get(); }
    bool done() const { return done_.get() != 0; }
    bool verify() const;

  private:
    board::Board &b_;
    runtimes::ChinchillaRuntime &rt_;
    ArParams params_;
    mem::nvArray<std::int16_t, kArMaxWindow> window_; ///< promoted buffer
    mem::nv<std::uint32_t> w_;                        ///< promoted index
    mem::nv<ArModel> model_;
    mem::nv<std::uint32_t> stationary_;
    mem::nv<std::uint32_t> moving_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_AR_AR_CHINCHILLA_HPP
