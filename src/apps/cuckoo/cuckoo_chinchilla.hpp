/**
 * @file
 * Cuckoo filter in the Chinchilla programming model: the loop state
 * and the key buffer are promoted to non-volatile globals (every write
 * paying dual-copy versioning), modeling Chinchilla's local-to-global
 * transformation and its .data explosion (paper Section 5.3.1).
 */

#ifndef TICSIM_APPS_CUCKOO_CUCKOO_CHINCHILLA_HPP
#define TICSIM_APPS_CUCKOO_CUCKOO_CHINCHILLA_HPP

#include "apps/common/cuckoo_core.hpp"
#include "mem/nv.hpp"
#include "runtimes/chinchilla.hpp"

namespace ticsim::apps {

class CuckooChinchillaApp
{
  public:
    static constexpr std::uint32_t kMaxSlots = 512;
    static constexpr std::uint32_t kMaxKeys = 256;

    CuckooChinchillaApp(board::Board &b, runtimes::ChinchillaRuntime &rt,
                        CuckooParams p = {});

    void main();

    std::uint32_t inserted() const { return inserted_.get(); }
    std::uint32_t recovered() const { return recovered_.get(); }
    bool done() const { return done_.get() != 0; }
    bool verify() const;

  private:
    board::Board &b_;
    runtimes::ChinchillaRuntime &rt_;
    CuckooParams params_;
    mem::nvArray<std::uint16_t, kMaxSlots> table_;
    mem::nvArray<std::uint32_t, kMaxKeys> keys_; ///< promoted local buffer
    mem::nv<std::uint32_t> i_;                   ///< promoted loop index
    mem::nv<std::uint32_t> lcgState_;            ///< promoted generator
    mem::nv<std::uint32_t> inserted_;
    mem::nv<std::uint32_t> recovered_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_CUCKOO_CUCKOO_CHINCHILLA_HPP
