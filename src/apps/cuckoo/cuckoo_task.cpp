#include "cuckoo_task.hpp"

namespace ticsim::apps {

CuckooTaskApp::CuckooTaskApp(board::Board &b, taskrt::TaskRuntime &rt,
                             CuckooParams p)
    : b_(b), rt_(rt), params_(p),
      table_(rt, b.nvram(), "cf.table"),
      keys_(rt, b.nvram(), "cf.keys"),
      i_(rt, b.nvram(), "cf.i"),
      lcgState_(rt, b.nvram(), "cf.lcg"),
      inserted_(rt, b.nvram(), "cf.inserted"),
      recovered_(rt, b.nvram(), "cf.recovered"),
      done_(rt, b.nvram(), "cf.done")
{
    TICSIM_ASSERT(p.slots() <= kMaxSlots && p.keys <= kMaxKeys);
    rt.footprint().add("cuckoo application", 2050, 12);

    tInit_ = rt_.addTask("init", [this]() -> taskrt::TaskId {
        table_.set(TableArray{});
        i_.set(0);
        lcgState_.set(params_.seed);
        inserted_.set(0);
        recovered_.set(0);
        return tInsert_;
    });

    tInsert_ = rt_.addTask("insert", [this]() -> taskrt::TaskId {
        const std::uint32_t idx = i_.get();
        const std::uint32_t key =
            lcgState_.get() * 1664525u + 1013904223u;
        lcgState_.set(key);
        auto keys = keys_.get();
        keys[idx] = key;
        keys_.set(keys);

        // Privatize the table, mutate it, publish at the transition.
        auto tbl = table_.get();
        auto store = [this](std::uint16_t *slot, std::uint16_t v) {
            b_.charge(static_cast<Cycles>(6 * params_.workScale));
            *slot = v;
        };
        CuckooTable<decltype(store)> table(tbl.data(), params_.buckets,
                                           params_.maxKicks, store);
        b_.charge(static_cast<Cycles>(60 * params_.workScale));
        if (table.insert(key))
            inserted_.set(inserted_.get() + 1);
        table_.set(tbl);

        const std::uint32_t next = idx + 1;
        i_.set(next);
        if (next >= params_.keys) {
            i_.set(0);
            return tQuery_;
        }
        return tInsert_;
    });

    tQuery_ = rt_.addTask("query", [this]() -> taskrt::TaskId {
        const std::uint32_t idx = i_.get();
        auto tbl = table_.get();
        auto store = [](std::uint16_t *, std::uint16_t) {};
        CuckooTable<decltype(store)> table(tbl.data(), params_.buckets,
                                           params_.maxKicks, store);
        b_.charge(static_cast<Cycles>(40 * params_.workScale));
        if (table.contains(keys_.get()[idx]))
            recovered_.set(recovered_.get() + 1);

        const std::uint32_t next = idx + 1;
        i_.set(next);
        if (next >= params_.keys) {
            done_.set(1);
            return taskrt::kTaskDone;
        }
        return tQuery_;
    });

    rt_.setInitial(tInit_);
}

bool
CuckooTaskApp::verify() const
{
    const auto e = cuckooGolden(params_);
    return done() && inserted() == e.inserted &&
           recovered() == e.recovered;
}

} // namespace ticsim::apps
