#include "cuckoo_legacy.hpp"

#include "apps/common/dsp.hpp"

// ticslint reports WAR spans on the filter table and counters —
// expected for the unmodified legacy variant (this is the app with
// the densest dynamic WAR record under plain-C) and baselined in
// tools/ticslint.baseline.json.

namespace ticsim::apps {

CuckooLegacyApp::CuckooLegacyApp(board::Board &b, board::Runtime &rt,
                                 CuckooParams p)
    : b_(b), rt_(rt), params_(p), table_(b.nvram(), "cf.table"),
      inserted_(b.nvram(), "cf.inserted"),
      recovered_(b.nvram(), "cf.recovered"),
      done_(b.nvram(), "cf.done")
{
    TICSIM_ASSERT(p.slots() <= kMaxSlots);
    rt.footprint().add("cuckoo application", 2050,
                       static_cast<std::uint32_t>(p.slots() * 2 + 12));
    rt.trackGlobals(table_.raw(), kMaxSlots * sizeof(std::uint16_t));
    rt.trackGlobals(inserted_.raw(), sizeof(std::uint32_t));
    rt.trackGlobals(recovered_.raw(), sizeof(std::uint32_t));
    rt.trackGlobals(done_.raw(), sizeof(std::uint8_t));
}

void
CuckooLegacyApp::main()
{
    board::FrameGuard fg(rt_, 24);

    // Instrumented pointer stores into the FRAM table: the runtime
    // classifies the target and undo-logs it (TICS) or does nothing
    // (plain C), exactly like the paper's pointer-write thunks.
    auto store = [this](std::uint16_t *slot, std::uint16_t v) {
        b_.charge(static_cast<Cycles>(6 * params_.workScale));
        rt_.store(slot, v);
    };
    // Pointer loads from the FRAM table go through the instrumented
    // load path so the consistency checker sees the read set too.
    auto load = [this](const std::uint16_t *slot) {
        return rt_.load(slot);
    };
    CuckooTable<decltype(store), decltype(load)> table(
        table_.raw(), params_.buckets, params_.maxKicks, store, load);

    Lcg lcg(params_.seed);
    std::uint32_t keys[256];
    TICSIM_ASSERT(params_.keys <= 256);

    for (std::uint32_t i = 0; i < params_.keys; ++i) {
        board::FrameGuard ifg(rt_, 20);
        rt_.triggerPoint();
        const std::uint32_t k = lcg.next();
        keys[i] = k;
        b_.charge(static_cast<Cycles>(60 * params_.workScale));
        if (table.insert(k))
            inserted_ += 1;
    }

    for (std::uint32_t i = 0; i < params_.keys; ++i) {
        board::FrameGuard qfg(rt_, 16);
        rt_.triggerPoint();
        b_.charge(static_cast<Cycles>(40 * params_.workScale));
        if (table.contains(keys[i]))
            recovered_ += 1;
    }
    done_ = 1;
}

bool
CuckooLegacyApp::verify() const
{
    const auto e = cuckooGolden(params_);
    return done() && inserted() == e.inserted &&
           recovered() == e.recovered;
}

} // namespace ticsim::apps
