/**
 * @file
 * Cuckoo filter decomposed into tasks (Alpaca-/InK-style): the whole
 * fingerprint table flows through one privatized channel — each insert
 * task reads it, mutates a private copy (the eviction loop stays
 * inside one atomic task) and commits it at the transition. The task
 * graph loops over the key sequence, which is legal in Alpaca and InK
 * but inexpressible in MayFly (paper Section 5.3: "Cuckoo cannot be
 * implemented in MayFly since loops are not allowed").
 */

#ifndef TICSIM_APPS_CUCKOO_CUCKOO_TASK_HPP
#define TICSIM_APPS_CUCKOO_CUCKOO_TASK_HPP

#include <array>

#include "apps/common/cuckoo_core.hpp"
#include "runtimes/task_core.hpp"

namespace ticsim::apps {

class CuckooTaskApp
{
  public:
    static constexpr std::uint32_t kMaxSlots = 512;
    static constexpr std::uint32_t kMaxKeys = 256;

    using TableArray = std::array<std::uint16_t, kMaxSlots>;
    using KeyArray = std::array<std::uint32_t, kMaxKeys>;

    CuckooTaskApp(board::Board &b, taskrt::TaskRuntime &rt,
                  CuckooParams p = {});

    std::uint32_t inserted() const { return inserted_.committed(); }
    std::uint32_t recovered() const { return recovered_.committed(); }
    bool done() const { return done_.committed() != 0; }
    bool verify() const;

  private:
    board::Board &b_;
    taskrt::TaskRuntime &rt_;
    CuckooParams params_;

    taskrt::Channel<TableArray> table_;
    taskrt::Channel<KeyArray> keys_;
    taskrt::Channel<std::uint32_t> i_;
    taskrt::Channel<std::uint32_t> lcgState_;
    taskrt::Channel<std::uint32_t> inserted_;
    taskrt::Channel<std::uint32_t> recovered_;
    taskrt::Channel<std::uint8_t> done_;

    taskrt::TaskId tInit_ = 0;
    taskrt::TaskId tInsert_ = 0;
    taskrt::TaskId tQuery_ = 0;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_CUCKOO_CUCKOO_TASK_HPP
