#include "cuckoo_chinchilla.hpp"

// ticslint's per-file mode does not model word versioning, so the
// table/cursor read-modify-writes below appear as WAR spans; the
// Chinchilla-like runtime double-buffers every tracked word, so none
// materialize. Expected, baselined in tools/ticslint.baseline.json.

namespace ticsim::apps {

CuckooChinchillaApp::CuckooChinchillaApp(board::Board &b,
                                         runtimes::ChinchillaRuntime &rt,
                                         CuckooParams p)
    : b_(b), rt_(rt), params_(p), table_(b.nvram(), "cfch.table"),
      keys_(b.nvram(), "cfch.keys"), i_(b.nvram(), "cfch.i"),
      lcgState_(b.nvram(), "cfch.lcg"),
      inserted_(b.nvram(), "cfch.inserted"),
      recovered_(b.nvram(), "cfch.recovered"),
      done_(b.nvram(), "cfch.done")
{
    TICSIM_ASSERT(p.slots() <= kMaxSlots && p.keys <= kMaxKeys);
    rt.footprint().add("cuckoo application", 2050,
                       static_cast<std::uint32_t>(p.slots() * 2 + 12));
    rt.footprint().add(
        "promoted locals (dual copy)", 0,
        2 * (p.keys * 4 + 4 + 4)); // key buffer + index + generator
    rt.footprint().add("per-site instrumentation", 9 * 46, 0);
}

void
CuckooChinchillaApp::main()
{
    rt_.triggerPoint();
    auto store = [this](std::uint16_t *slot, std::uint16_t v) {
        b_.charge(static_cast<Cycles>(6 * params_.workScale));
        rt_.store(slot, v);
    };
    auto load = [this](const std::uint16_t *slot) {
        return rt_.load(slot);
    };
    CuckooTable<decltype(store), decltype(load)> table(
        table_.raw(), params_.buckets, params_.maxKicks, store, load);

    lcgState_ = params_.seed;
    for (i_ = 0; i_.get() < params_.keys; i_ = i_.get() + 1) {
        rt_.triggerPoint();
        const std::uint32_t s =
            lcgState_.get() * 1664525u + 1013904223u;
        lcgState_ = s;
        keys_.set(i_.get(), s);
        b_.charge(static_cast<Cycles>(60 * params_.workScale));
        if (table.insert(s))
            inserted_ += 1;
    }

    for (i_ = 0; i_.get() < params_.keys; i_ = i_.get() + 1) {
        rt_.triggerPoint();
        b_.charge(static_cast<Cycles>(40 * params_.workScale));
        if (table.contains(keys_.get(i_.get())))
            recovered_ += 1;
    }
    done_ = 1;
}

bool
CuckooChinchillaApp::verify() const
{
    const auto e = cuckooGolden(params_);
    return done() && inserted() == e.inserted &&
           recovered() == e.recovered;
}

} // namespace ticsim::apps
