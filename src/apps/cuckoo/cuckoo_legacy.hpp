/**
 * @file
 * Cuckoo-filter benchmark, legacy-C shape (paper Section 5.3): insert
 * a pseudo-random key sequence into the filter, then recover it with
 * membership queries. The fingerprint table is a flat global array in
 * FRAM, mutated through raw pointers — the workload that forces
 * whole-memory checkpoints in prior systems and that TICS handles with
 * its undo-logged pointer-write path.
 *
 * One source; runs unchanged under plain C, TICS and MementOS-like
 * runtimes. (MayFly cannot express it at all: the eviction loop is a
 * cycle in the task graph.)
 */

#ifndef TICSIM_APPS_CUCKOO_CUCKOO_LEGACY_HPP
#define TICSIM_APPS_CUCKOO_CUCKOO_LEGACY_HPP

#include "apps/common/cuckoo_core.hpp"
#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/nv.hpp"

namespace ticsim::apps {

class CuckooLegacyApp
{
  public:
    static constexpr std::uint32_t kMaxSlots = 512;

    CuckooLegacyApp(board::Board &b, board::Runtime &rt,
                    CuckooParams p = {});

    void main();

    std::uint32_t inserted() const { return inserted_.get(); }
    std::uint32_t recovered() const { return recovered_.get(); }
    bool done() const { return done_.get() != 0; }
    bool verify() const;

    const CuckooParams &params() const { return params_; }

  private:
    board::Board &b_;
    board::Runtime &rt_;
    CuckooParams params_;
    /** Fingerprint table: a flat FRAM array manipulated by pointer. */
    mem::nvArray<std::uint16_t, kMaxSlots> table_;
    mem::nv<std::uint32_t> inserted_;
    mem::nv<std::uint32_t> recovered_;
    mem::nv<std::uint8_t> done_;
};

} // namespace ticsim::apps

#endif // TICSIM_APPS_CUCKOO_CUCKOO_LEGACY_HPP
