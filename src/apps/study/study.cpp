#include "study.hpp"

// ticslint reports WAR spans on the swap/bubble/timekeeping programs
// below. These are the user-study listings, reproduced with their
// hazards intact (the swap triple-assignment is the canonical WAR
// teaching example), so the findings are expected and baselined in
// tools/ticslint.baseline.json.

namespace ticsim::apps::study {

// ---- program texts (the listings shown to study participants) --------

namespace {

constexpr const char *kSwapTics = R"(@nv int a = 3, b = 5;
void main() {
    a = a + b;
    b = a - b;
    a = a - b;
})";

constexpr const char *kSwapInk = R"(CHANNEL(int, a); CHANNEL(int, b);
TASK(t_add) {
    CH_WRITE(a, CH_READ(a) + CH_READ(b));
    NEXT(t_sub1);
}
TASK(t_sub1) {
    CH_WRITE(b, CH_READ(a) - CH_READ(b));
    NEXT(t_sub2);
}
TASK(t_sub2) {
    CH_WRITE(a, CH_READ(a) - CH_READ(b));
    NEXT(t_done);
})";

constexpr const char *kBubbleTics = R"(@nv int arr[N];
void main() {
    for (int i = 0; i < N - 1; i++) {
        for (int j = 0; j < N - 1 - i; j++) {
            if (arr[j] > arr[j + 1]) {
                int t = arr[j];
                arr[j] = arr[j + 1];
                arr[j + 1] = t;
            }
        }
    }
})";

constexpr const char *kBubbleInk = R"(CHANNEL(int[N], arr);
CHANNEL(int, i); CHANNEL(int, j); CHANNEL(int, swapped);
TASK(t_init) {
    CH_WRITE(i, 0); CH_WRITE(j, 0); CH_WRITE(swapped, 0);
    NEXT(t_inner);
}
TASK(t_inner) {
    int jj = CH_READ(j);
    int a[N]; CH_READ_ARR(arr, a);
    if (a[jj] > a[jj + 1]) {
        int t = a[jj];
        a[jj] = a[jj + 1];
        a[jj + 1] = t;
        CH_WRITE_ARR(arr, a);
        CH_WRITE(swapped, 1);
    }
    if (jj + 1 < N - 1 - CH_READ(i)) {
        CH_WRITE(j, jj + 1);
        NEXT(t_inner);
    }
    NEXT(t_outer);
}
TASK(t_outer) {
    if (CH_READ(i) + 1 < N - 1) {
        CH_WRITE(i, CH_READ(i) + 1);
        CH_WRITE(j, 0);
        NEXT(t_inner);
    }
    NEXT(t_done);
})";

constexpr const char *kTimekeepTics = R"(@expires_after=1s int reading;
void main() {
    while (1) {
        reading @= read_sensor();
        do_work();
        @expires(reading) {
            consume(reading);
        }
    }
})";

constexpr const char *kTimekeepInk = R"(CHANNEL(int, reading);
CHANNEL(time_t, ts);
TASK(t_sample) {
    CH_WRITE(reading, read_sensor());
    CH_WRITE(ts, hw_time());
    NEXT(t_work);
}
TASK(t_work) {
    do_work();
    NEXT(t_use);
}
TASK(t_use) {
    if (hw_time() - CH_READ(ts) < 1000) {
        consume(CH_READ(reading));
    }
    NEXT(t_sample);
})";

const std::array<ProgramText, 3> kTexts = {{
    {"Swap", kSwapTics, 1, 2, kSwapInk, 5, 2},
    {"Bubble", kBubbleTics, 1, 1, kBubbleInk, 7, 4},
    {"Timekeeping", kTimekeepTics, 1, 1, kTimekeepInk, 5, 2},
}};

} // namespace

const std::array<ProgramText, 3> &
programTexts()
{
    return kTexts;
}

// ---- runnable swap ---------------------------------------------------

SwapTics::SwapTics(board::Board &b, tics::TicsRuntime &rt, int a, int c)
    : bd_(b), rt_(rt), a_(b.nvram(), "swap.a", a), b_(b.nvram(), "swap.b", c)
{
}

void
SwapTics::main()
{
    board::FrameGuard fg(rt_, 16);
    rt_.triggerPoint();
    a_ = a_.get() + b_.get();
    rt_.triggerPoint();
    b_ = a_.get() - b_.get();
    rt_.triggerPoint();
    a_ = a_.get() - b_.get();
}

SwapInk::SwapInk(board::Board &b, taskrt::TaskRuntime &rt, int a, int c)
    : a_(rt, b.nvram(), "swap.a"), b_(rt, b.nvram(), "swap.b")
{
    const auto tSub2 = rt.addTask("t_sub2", [this]() -> taskrt::TaskId {
        a_.set(a_.get() - b_.get());
        return taskrt::kTaskDone;
    });
    const auto tSub1 =
        rt.addTask("t_sub1", [this, tSub2]() -> taskrt::TaskId {
            b_.set(a_.get() - b_.get());
            return tSub2;
        });
    const auto tAdd =
        rt.addTask("t_add", [this, tSub1]() -> taskrt::TaskId {
            a_.set(a_.get() + b_.get());
            return tSub1;
        });
    const auto tInit =
        rt.addTask("t_init", [this, a, c, tAdd]() -> taskrt::TaskId {
            a_.set(a);
            b_.set(c);
            return tAdd;
        });
    rt.setInitial(tInit);
}

// ---- runnable bubble sort ---------------------------------------------

BubbleTics::BubbleTics(board::Board &b, tics::TicsRuntime &rt,
                       const SortArray &input)
    : bd_(b), rt_(rt), arr_(b.nvram(), "bubble.arr")
{
    for (std::uint32_t k = 0; k < kSortN; ++k)
        arr_.raw()[k] = input[k];
}

void
BubbleTics::main()
{
    board::FrameGuard fg(rt_, 20);
    std::int32_t *a = arr_.raw();
    for (std::uint32_t i = 0; i + 1 < kSortN; ++i) {
        for (std::uint32_t j = 0; j + 1 < kSortN - i; ++j) {
            rt_.triggerPoint();
            bd_.charge(14);
            if (a[j] > a[j + 1]) {
                const std::int32_t t = a[j];
                rt_.store(&a[j], a[j + 1]);
                rt_.store(&a[j + 1], t);
            }
        }
    }
}

SortArray
BubbleTics::result() const
{
    SortArray out{};
    for (std::uint32_t k = 0; k < kSortN; ++k)
        out[k] = arr_.raw()[k];
    return out;
}

BubbleInk::BubbleInk(board::Board &b, taskrt::TaskRuntime &rt,
                     const SortArray &input)
    : bd_(b), rt_(rt), arr_(rt, b.nvram(), "bubble.arr"),
      i_(rt, b.nvram(), "bubble.i"), j_(rt, b.nvram(), "bubble.j"),
      swapped_(rt, b.nvram(), "bubble.swapped")
{
    tInit_ = rt_.addTask("t_init", [this, input]() -> taskrt::TaskId {
        arr_.set(input);
        i_.set(0);
        j_.set(0);
        return tInner_;
    });
    tInner_ = rt_.addTask("t_inner", [this]() -> taskrt::TaskId {
        bd_.charge(14);
        const std::uint32_t jj = j_.get();
        auto a = arr_.get();
        if (a[jj] > a[jj + 1]) {
            const std::int32_t t = a[jj];
            a[jj] = a[jj + 1];
            a[jj + 1] = t;
            arr_.set(a);
        }
        if (jj + 2 < kSortN - i_.get()) {
            j_.set(jj + 1);
            return tInner_;
        }
        return tOuter_;
    });
    tOuter_ = rt_.addTask("t_outer", [this]() -> taskrt::TaskId {
        if (i_.get() + 2 < kSortN) {
            i_.set(i_.get() + 1);
            j_.set(0);
            return tInner_;
        }
        return taskrt::kTaskDone;
    });
    rt_.setInitial(tInit_);
}

// ---- runnable timekeeping ---------------------------------------------

TimekeepTics::TimekeepTics(board::Board &b, tics::TicsRuntime &rt,
                           TimeNs lifetime)
    : bd_(b), rt_(rt), reading_(rt, b.nvram(), "tk.reading", lifetime),
      consumed_(b.nvram(), "tk.consumed"),
      discarded_(b.nvram(), "tk.discarded"),
      rounds_(b.nvram(), "tk.rounds")
{
}

void
TimekeepTics::main()
{
    board::FrameGuard fg(rt_, 20);
    constexpr std::uint32_t kRounds = 24;
    while (rounds_.get() < kRounds) {
        rt_.triggerPoint();
        const std::uint64_t round = rounds_.get();
        reading_.assignTimed(bd_.sampleTemp(), round);
        bd_.charge(4000); // do_work()
        const bool used = tics::expires(rt_, reading_, round, [&] {
            bd_.charge(300); // consume(reading)
        });
        if (used)
            consumed_ += 1;
        else
            discarded_ += 1;
        rounds_ = static_cast<std::uint32_t>(round) + 1;
    }
}

TimekeepInk::TimekeepInk(board::Board &b, taskrt::TaskRuntime &rt,
                         TimeNs lifetime)
    : bd_(b), rt_(rt), lifetime_(lifetime),
      reading_(rt, b.nvram(), "tk.reading"), ts_(rt, b.nvram(), "tk.ts"),
      consumed_(rt, b.nvram(), "tk.consumed"),
      discarded_(rt, b.nvram(), "tk.discarded"),
      rounds_(rt, b.nvram(), "tk.rounds")
{
    tInit_ = rt_.addTask("t_init", [this]() -> taskrt::TaskId {
        rounds_.set(0);
        consumed_.set(0);
        discarded_.set(0);
        return tSample_;
    });
    tSample_ = rt_.addTask("t_sample", [this]() -> taskrt::TaskId {
        reading_.set(bd_.sampleTemp());
        ts_.set(bd_.deviceNow());
        bd_.charge(4000); // do_work()
        return tUse_;
    });
    tUse_ = rt_.addTask("t_use", [this]() -> taskrt::TaskId {
        const TimeNs now = bd_.deviceNow();
        const TimeNs t = ts_.get();
        if (now >= t && now - t <= lifetime_) {
            bd_.charge(300);
            consumed_.set(consumed_.get() + 1);
        } else {
            discarded_.set(discarded_.get() + 1);
        }
        const std::uint32_t r = rounds_.get() + 1;
        rounds_.set(r);
        return r >= 24 ? taskrt::kTaskDone : tSample_;
    });
    rt_.setInitial(tInit_);
}

} // namespace ticsim::apps::study
