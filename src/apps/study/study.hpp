/**
 * @file
 * The three programs of the paper's user study (Section 5.4): swap of
 * two variables without a temporary, bubble sort, and a program with
 * time-based variable expiration. Each exists in the two styles the
 * study compared:
 *
 *  - TICS style: ordinary sequential C, optionally time-annotated;
 *  - InK (task) style: decomposed into tasks with channel plumbing.
 *
 * Both styles are *runnable* here (tests execute them under
 * intermittency and verify they compute the same results), and each
 * carries the idiomatic source listing shown to study participants,
 * which the Fig. 10 proxy bench measures (LoC, decision points,
 * program elements, shared-state spread).
 */

#ifndef TICSIM_APPS_STUDY_STUDY_HPP
#define TICSIM_APPS_STUDY_STUDY_HPP

#include <array>

#include "board/board.hpp"
#include "mem/nv.hpp"
#include "runtimes/task_core.hpp"
#include "tics/annotations.hpp"
#include "tics/runtime.hpp"

namespace ticsim::apps::study {

/** Source listings + structural facts for the Fig. 10 proxy. */
struct ProgramText {
    const char *name;
    const char *ticsSource;
    std::uint32_t ticsElements;
    std::uint32_t ticsSharedState;
    const char *inkSource;
    std::uint32_t inkElements;
    std::uint32_t inkSharedState;
};

/** The three study programs' texts, in paper order. */
const std::array<ProgramText, 3> &programTexts();

// ---- runnable: swap without a temporary --------------------------------

class SwapTics
{
  public:
    SwapTics(board::Board &b, tics::TicsRuntime &rt, int a, int c);
    void main();
    int a() const { return a_.get(); }
    int b() const { return b_.get(); }

  private:
    board::Board &bd_;
    tics::TicsRuntime &rt_;
    mem::nv<int> a_;
    mem::nv<int> b_;
};

class SwapInk
{
  public:
    SwapInk(board::Board &b, taskrt::TaskRuntime &rt, int a, int c);
    int a() const { return a_.committed(); }
    int b() const { return b_.committed(); }

  private:
    taskrt::Channel<int> a_;
    taskrt::Channel<int> b_;
};

// ---- runnable: bubble sort ------------------------------------------------

constexpr std::uint32_t kSortN = 12;
using SortArray = std::array<std::int32_t, kSortN>;

class BubbleTics
{
  public:
    BubbleTics(board::Board &b, tics::TicsRuntime &rt,
               const SortArray &input);
    void main();
    SortArray result() const;

  private:
    board::Board &bd_;
    tics::TicsRuntime &rt_;
    mem::nvArray<std::int32_t, kSortN> arr_;
};

class BubbleInk
{
  public:
    BubbleInk(board::Board &b, taskrt::TaskRuntime &rt,
              const SortArray &input);
    SortArray result() const { return arr_.committed(); }

  private:
    board::Board &bd_;
    taskrt::TaskRuntime &rt_;
    taskrt::Channel<SortArray> arr_;
    taskrt::Channel<std::uint32_t> i_;
    taskrt::Channel<std::uint32_t> j_;
    taskrt::Channel<std::uint8_t> swapped_;
    taskrt::TaskId tInit_ = 0;
    taskrt::TaskId tOuter_ = 0;
    taskrt::TaskId tInner_ = 0;
};

// ---- runnable: timekeeping / expiration -----------------------------------

class TimekeepTics
{
  public:
    TimekeepTics(board::Board &b, tics::TicsRuntime &rt,
                 TimeNs lifetime);
    void main();
    std::uint32_t consumed() const { return consumed_.get(); }
    std::uint32_t discarded() const { return discarded_.get(); }

  private:
    board::Board &bd_;
    tics::TicsRuntime &rt_;
    tics::Expiring<std::int32_t> reading_;
    mem::nv<std::uint32_t> consumed_;
    mem::nv<std::uint32_t> discarded_;
    mem::nv<std::uint32_t> rounds_;
};

class TimekeepInk
{
  public:
    TimekeepInk(board::Board &b, taskrt::TaskRuntime &rt,
                TimeNs lifetime);
    std::uint32_t consumed() const { return consumed_.committed(); }
    std::uint32_t discarded() const { return discarded_.committed(); }

  private:
    board::Board &bd_;
    taskrt::TaskRuntime &rt_;
    TimeNs lifetime_;
    taskrt::Channel<std::int32_t> reading_;
    taskrt::Channel<TimeNs> ts_;
    taskrt::Channel<std::uint32_t> consumed_;
    taskrt::Channel<std::uint32_t> discarded_;
    taskrt::Channel<std::uint32_t> rounds_;
    taskrt::TaskId tInit_ = 0;
    taskrt::TaskId tSample_ = 0;
    taskrt::TaskId tUse_ = 0;
};

} // namespace ticsim::apps::study

#endif // TICSIM_APPS_STUDY_STUDY_HPP
