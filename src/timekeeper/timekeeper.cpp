#include "timekeeper.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace ticsim::timekeeper {

RtcCapTimekeeper::RtcCapTimekeeper(TimeNs holdTime, double driftPpm)
    : holdTime_(holdTime), driftPpm_(driftPpm)
{
}

TimeNs
RtcCapTimekeeper::read(TimeNs trueNow)
{
    const TimeNs sinceEpoch = trueNow >= epoch_ ? trueNow - epoch_ : 0;
    const double drifted =
        static_cast<double>(sinceEpoch) * (1.0 + driftPpm_ * 1e-6);
    return static_cast<TimeNs>(drifted);
}

void
RtcCapTimekeeper::onPowerFail(TimeNs trueNow)
{
    failAt_ = trueNow;
    inOutage_ = true;
}

void
RtcCapTimekeeper::onPowerOn(TimeNs trueNow)
{
    if (inOutage_ && trueNow - failAt_ > holdTime_) {
        // Hold-up capacitor ran dry: the RTC restarts from zero.
        epoch_ = trueNow;
    }
    inOutage_ = false;
}

void
RtcCapTimekeeper::reset()
{
    failAt_ = 0;
    inOutage_ = false;
    epoch_ = 0;
}

RemanenceTimekeeper::RemanenceTimekeeper(double errorFraction,
                                         TimeNs horizon, Rng rng)
    : errorFraction_(errorFraction), horizon_(horizon), rng_(rng),
      rngInitial_(rng)
{
    if (errorFraction < 0.0 || errorFraction >= 1.0)
        fatal("remanence timekeeper: error fraction %g outside [0, 1)",
              errorFraction);
}

TimeNs
RemanenceTimekeeper::read(TimeNs trueNow)
{
    const std::int64_t est = static_cast<std::int64_t>(trueNow) + skewNs_;
    return est > 0 ? static_cast<TimeNs>(est) : 0;
}

void
RemanenceTimekeeper::onPowerFail(TimeNs trueNow)
{
    failAt_ = trueNow;
    inOutage_ = true;
}

void
RemanenceTimekeeper::onPowerOn(TimeNs trueNow)
{
    if (!inOutage_)
        return;
    inOutage_ = false;
    const TimeNs trueOff = trueNow - failAt_;
    TimeNs measured;
    if (trueOff >= horizon_) {
        // Full decay: the estimator can only report its horizon.
        measured = horizon_;
    } else {
        const double noisy = static_cast<double>(trueOff) *
            rng_.uniform(1.0 - errorFraction_, 1.0 + errorFraction_);
        measured = static_cast<TimeNs>(std::max(0.0, noisy));
    }
    skewNs_ += static_cast<std::int64_t>(measured) -
               static_cast<std::int64_t>(trueOff);
}

void
RemanenceTimekeeper::reset()
{
    rng_ = rngInitial_;
    failAt_ = 0;
    inOutage_ = false;
    skewNs_ = 0;
}

} // namespace ticsim::timekeeper
