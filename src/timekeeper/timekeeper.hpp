/**
 * @file
 * Persistent timekeeping across power failures.
 *
 * MCU-internal clocks reset on every power failure, so time-sensitive
 * intermittent programs need an external notion of elapsed time (paper
 * Section 4 "Time Annotations"). Three models:
 *
 *  - PerfectTimekeeper: oracle, for tests and baselines.
 *  - RtcCapTimekeeper: a real-time clock kept alive through outages by
 *    a small dedicated capacitor (Flicker-style); loses track when an
 *    outage exceeds its hold-up time, and drifts.
 *  - RemanenceTimekeeper: TARDIS/CusTARD-style SRAM-decay estimator;
 *    measures each off interval with bounded multiplicative error and
 *    saturates for long outages.
 *
 * read() returns the device's *estimate* of virtual time; the
 * ViolationMonitor compares against true time to score timing errors.
 */

#ifndef TICSIM_TIMEKEEPER_TIMEKEEPER_HPP
#define TICSIM_TIMEKEEPER_TIMEKEEPER_HPP

#include "support/rng.hpp"
#include "support/statebuf.hpp"
#include "support/units.hpp"

namespace ticsim::timekeeper {

/** Interface: device-visible persistent clock. */
class Timekeeper
{
  public:
    virtual ~Timekeeper() = default;

    /** Device estimate of elapsed virtual time at true time @p now. */
    virtual TimeNs read(TimeNs trueNow) = 0;

    /** Power failed at true time @p now. */
    virtual void onPowerFail(TimeNs trueNow) {}

    /** Power restored at true time @p now. */
    virtual void onPowerOn(TimeNs trueNow) {}

    /** Restore initial state for a new experiment. */
    virtual void reset() {}

    /** Snapshot/restore hooks for the failure-space explorer; the
     *  defaults cover stateless clocks (the oracle). */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}
};

/** Oracle clock: estimate == truth. */
class PerfectTimekeeper : public Timekeeper
{
  public:
    TimeNs read(TimeNs trueNow) override { return trueNow; }
};

/**
 * RTC backed by a dedicated hold-up capacitor. Keeps counting through
 * outages shorter than the hold-up time; longer outages reset the RTC
 * to zero (the device then under-estimates elapsed time, which is what
 * produces stale-data acceptance in un-annotated code). Constant ppm
 * drift while powered.
 */
class RtcCapTimekeeper : public Timekeeper
{
  public:
    /**
     * @param holdTime Longest outage the RTC survives.
     * @param driftPpm Clock drift in parts per million.
     */
    RtcCapTimekeeper(TimeNs holdTime, double driftPpm = 20.0);

    TimeNs read(TimeNs trueNow) override;
    void onPowerFail(TimeNs trueNow) override;
    void onPowerOn(TimeNs trueNow) override;
    void reset() override;

    void saveState(StateWriter &w) const override
    {
        w.put(failAt_);
        w.put(inOutage_);
        w.put(epoch_);
    }
    void loadState(StateReader &r) override
    {
        failAt_ = r.get<TimeNs>();
        inOutage_ = r.get<bool>();
        epoch_ = r.get<TimeNs>();
    }

  private:
    TimeNs holdTime_;
    double driftPpm_;
    TimeNs failAt_ = 0;
    bool inOutage_ = false;
    /** True time corresponding to RTC zero. */
    TimeNs epoch_ = 0;
};

/**
 * Remanence-based off-time estimator: each outage's length is measured
 * with uniform multiplicative error and saturates at the decay horizon.
 * On-time is tracked exactly (MCU clock is fine while powered).
 */
class RemanenceTimekeeper : public Timekeeper
{
  public:
    /**
     * @param errorFraction Half-width of the multiplicative error
     *                      (0.15 = +/-15%).
     * @param horizon Longest measurable outage (estimator saturates).
     */
    RemanenceTimekeeper(double errorFraction, TimeNs horizon, Rng rng);

    TimeNs read(TimeNs trueNow) override;
    void onPowerFail(TimeNs trueNow) override;
    void onPowerOn(TimeNs trueNow) override;
    void reset() override;

    void saveState(StateWriter &w) const override
    {
        w.put(rng_);
        w.put(failAt_);
        w.put(inOutage_);
        w.put(skewNs_);
    }
    void loadState(StateReader &r) override
    {
        rng_ = r.get<Rng>();
        failAt_ = r.get<TimeNs>();
        inOutage_ = r.get<bool>();
        skewNs_ = r.get<std::int64_t>();
    }

  private:
    double errorFraction_;
    TimeNs horizon_;
    Rng rng_;
    Rng rngInitial_;
    TimeNs failAt_ = 0;
    bool inOutage_ = false;
    /** Estimated time minus true time, accumulated over outages. */
    std::int64_t skewNs_ = 0;
};

} // namespace ticsim::timekeeper

#endif // TICSIM_TIMEKEEPER_TIMEKEEPER_HPP
