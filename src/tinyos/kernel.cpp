#include "kernel.hpp"

namespace ticsim::tinyos {

Kernel::Kernel(board::Board &b, board::Runtime &rt) : b_(b), rt_(rt)
{
}

bool
Kernel::postTask(TaskFn fn, void *arg)
{
    if (qCount_ >= kQueueSlots)
        return false; // TinyOS post() failure semantics
    const std::uint32_t slot = (qHead_ + qCount_) % kQueueSlots;
    queue_[slot] = {fn, arg};
    ++qCount_;
    b_.charge(6);
    return true;
}

int
Kernel::startTimer(TimeNs period, TaskFn fn, void *arg)
{
    for (std::uint32_t i = 0; i < kMaxTimers; ++i) {
        if (!timers_[i].active) {
            timers_[i] = {period, b_.now() + period, fn, arg, true};
            b_.charge(10);
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
Kernel::stopTimer(int id)
{
    if (id >= 0 && id < static_cast<int>(kMaxTimers))
        timers_[id].active = false;
}

std::uint32_t
Kernel::pendingTasks() const
{
    return qCount_;
}

void
Kernel::run()
{
    while (!stopped_) {
        rt_.triggerPoint();

        // Fire due timers (TinyOS virtual-timer dispatch). Missed
        // periods coalesce into a single fire, as TinyOS virtual
        // timers do after the MCU was stopped.
        for (auto &t : timers_) {
            if (t.active && b_.now() >= t.due) {
                postTask(t.fn, t.arg);
                t.due = b_.now() + t.period;
                b_.charge(12);
            }
        }

        if (qCount_ == 0) {
            // MCU sleeps until the next event; model a coarse idle
            // tick (low-power mode draws less, but active-equivalent
            // cycles keep the accounting simple and conservative).
            b_.charge(60);
            continue;
        }

        const QEntry e = queue_[qHead_];
        qHead_ = (qHead_ + 1) % kQueueSlots;
        --qCount_;
        b_.charge(18); // scheduler dequeue + dispatch
        e.fn(e.arg);
    }
}

void
Kernel::requestMoisture(std::int32_t *out, TaskFn done, void *arg)
{
    *out = b_.sampleMoisture();
    postTask(done, arg);
}

void
Kernel::requestTemp(std::int32_t *out, TaskFn done, void *arg)
{
    *out = b_.sampleTemp();
    postTask(done, arg);
}

void
Kernel::sendAM(const void *payload, std::uint32_t bytes, TaskFn done,
               void *arg)
{
    b_.radioSend(payload, bytes);
    postTask(done, arg);
}

} // namespace ticsim::tinyos
