/**
 * @file
 * A miniature TinyOS-style event kernel: a FIFO run-to-completion task
 * queue, repeating virtual timers, split-phase sensing and
 * active-message sends. This is the "legacy software" substrate of the
 * paper's Table 1: greenhouse monitoring written against an
 * event-driven OS from the WSN era, ported to intermittent power by
 * instrumentation alone.
 *
 * Deliberate design constraints:
 *  - No heap, no std::function: everything is plain data + function
 *    pointers, so a Kernel can live on the *simulated stack*. There it
 *    behaves exactly like TinyOS state in RAM: lost on an unprotected
 *    reboot, checkpointed and restored under TICS.
 *  - Tasks run to completion (TinyOS semantics); timers post tasks.
 */

#ifndef TICSIM_TINYOS_KERNEL_HPP
#define TICSIM_TINYOS_KERNEL_HPP

#include "board/board.hpp"
#include "board/runtime.hpp"

namespace ticsim::tinyos {

/** TinyOS task: a bare function pointer plus context. */
using TaskFn = void (*)(void *);

class Kernel
{
  public:
    static constexpr std::uint32_t kQueueSlots = 16;
    static constexpr std::uint32_t kMaxTimers = 4;

    Kernel(board::Board &b, board::Runtime &rt);

    /** Post a task (FIFO). @return false when the queue is full. */
    bool postTask(TaskFn fn, void *arg);

    /**
     * Start a repeating virtual timer that posts (@p fn, @p arg) every
     * @p period. @return timer id, or -1 when out of timer slots.
     */
    int startTimer(TimeNs period, TaskFn fn, void *arg);

    void stopTimer(int id);

    /**
     * The scheduler main loop: fires due timers, drains the task
     * queue, idles when nothing is pending. Returns when stop() is
     * called from a task (power failures leave it via the usual
     * context abandonment).
     */
    void run();

    void stop() { stopped_ = true; }

    // ---- split-phase (request/completion-event) peripheral access ----

    /** Sample soil moisture; *out is filled and @p done posted. */
    void requestMoisture(std::int32_t *out, TaskFn done, void *arg);

    /** Sample ambient temperature; *out is filled, @p done posted. */
    void requestTemp(std::int32_t *out, TaskFn done, void *arg);

    /** Send an active message; @p done posted after transmission. */
    void sendAM(const void *payload, std::uint32_t bytes, TaskFn done,
                void *arg);

    board::Board &board() { return b_; }

    std::uint32_t pendingTasks() const;

  private:
    struct QEntry {
        TaskFn fn;
        void *arg;
    };
    struct Timer {
        TimeNs period;
        TimeNs due;
        TaskFn fn;
        void *arg;
        bool active;
    };

    board::Board &b_;
    board::Runtime &rt_;
    QEntry queue_[kQueueSlots];
    std::uint32_t qHead_ = 0;
    std::uint32_t qCount_ = 0;
    Timer timers_[kMaxTimers] = {};
    bool stopped_ = false;
};

} // namespace ticsim::tinyos

#endif // TICSIM_TINYOS_KERNEL_HPP
