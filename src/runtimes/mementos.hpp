/**
 * @file
 * MementOS-like naive checkpointing baseline (paper Section 5.3: "a
 * naive checkpoint-based system that logs the complete stack and all
 * global variables, which closely resembles what MementOS does").
 *
 * At every trigger point (optionally gated by a voltage check or
 * timer), the runtime saves the registers, the *entire* modeled stack
 * and *all* registered global state, double-buffered. Restore rewrites
 * everything. Costs therefore scale with whole-program state — the
 * overhead and starvation behaviour TICS's bounded checkpoints remove.
 */

#ifndef TICSIM_RUNTIMES_MEMENTOS_HPP
#define TICSIM_RUNTIMES_MEMENTOS_HPP

#include <vector>

#include "board/board.hpp"
#include "board/model_stack.hpp"
#include "board/runtime.hpp"
#include "tics/checkpoint_area.hpp"

namespace ticsim::runtimes {

struct MementosConfig {
    /** Checkpoint gating at trigger points. */
    enum class Trigger { Every, Timer, Voltage } trigger = Trigger::Timer;
    TimeNs timerPeriod = 10 * kNsPerMs;
    Volts voltageThreshold = 2.1;
};

class MementosRuntime : public board::Runtime
{
  public:
    explicit MementosRuntime(MementosConfig cfg = {}) : cfg_(cfg)
    {
        stats_ = StatGroup("mementos");
    }

    const char *name() const override { return "MementOS-like"; }

    void attach(board::Board &board,
                std::function<void()> appMain) override;
    bool onPowerOn() override;

    void frameEnter(std::uint16_t modeledBytes) override;
    void frameExit() override;
    void triggerPoint() override;
    void checkpointNow() override;

    /**
     * Register a block of application global state; it is copied into
     * every checkpoint and rewritten on every restore.
     */
    void trackGlobals(void *base, std::uint32_t bytes) override;

    std::uint64_t checkpointsTotal() const { return ckpts_; }

    void
    saveState(StateWriter &w) const override
    {
        w.put(model_);
        w.put(ckptModel_);
        w.put(committedStackBytes_);
        w.put(lastCkptTrue_);
        w.put(ckpts_);
        area_->saveHostState(w);
    }
    void
    loadState(StateReader &r) override
    {
        model_ = r.get<board::ModelStack>();
        ckptModel_ = r.get<board::ModelStack>();
        committedStackBytes_ = r.get<std::uint32_t>();
        lastCkptTrue_ = r.get<TimeNs>();
        ckpts_ = r.get<std::uint64_t>();
        area_->loadHostState(r);
    }

  private:
    bool doCheckpoint();

    MementosConfig cfg_;
    std::unique_ptr<tics::CheckpointArea> area_;
    /** Modeled stack depth (cost accounting only; free of charges). */
    board::ModelStack model_;
    board::ModelStack ckptModel_;

    struct GlobalRegion {
        void *base;
        std::uint32_t bytes;
        std::uint8_t *shadow;  ///< snapshot area inside the FRAM arena
        std::uint8_t *genesis; ///< initial values, restored on fresh boots
    };
    std::vector<GlobalRegion> globals_;
    /** Regions registered before attach() (no arena yet). */
    std::vector<std::pair<void *, std::uint32_t>> pendingGlobals_;
    std::uint32_t globalsBytes_ = 0;
    /** Modeled stack bytes recorded with the committed checkpoint. */
    std::uint32_t committedStackBytes_ = 0;

    TimeNs lastCkptTrue_ = 0;
    std::uint64_t ckpts_ = 0;
};

} // namespace ticsim::runtimes

#endif // TICSIM_RUNTIMES_MEMENTOS_HPP
