#include "chinchilla.hpp"

#include "tics/config.hpp"

#include <cstring>

#include "mem/store_gate.hpp"
#include "mem/trace.hpp"
#include "support/logging.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::runtimes {

void
ChinchillaRuntime::attach(board::Board &board,
                          std::function<void()> appMain)
{
    Runtime::attach(board, std::move(appMain));
    area_ = std::make_unique<tics::CheckpointArea>(
        board.nvram(), "chinchilla.ckpt", board.config().stackHostBytes);
    versions_ = std::make_unique<tics::UndoLog>(
        board.nvram(), "chinchilla.versions", cfg_.versionBytes,
        cfg_.versionEntries);
    // Chinchilla's code size is dominated by the over-instrumentation
    // thunks (paper Table 3 shows ~2x TICS's .text).
    footprint_.add("chinchilla runtime code", 7400, 0);
    // The versioning store is statically reserved NV .data.
    footprint_.add("version store (dual copies)", 0,
                   cfg_.versionBytes + cfg_.versionEntries * 8);
}

bool
ChinchillaRuntime::onPowerOn()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    {
        telemetry::PhaseScope boot(b.profiler(), telemetry::Phase::Boot);
        if (!b.chargeSys(costs.bootInit))
            return false;
    }

    // Roll dirty promoted globals back to their committed versions on
    // every boot (pre-first-checkpoint writes must be undone too).
    Cycles rollbackCost = 0;
    for (std::uint32_t i = 0; i < versions_->entryCount(); ++i)
        rollbackCost += costs.rollbackBase;
    rollbackCost += static_cast<Cycles>(
        costs.rollbackPerByte *
        static_cast<double>(versions_->bytesSince(0)));
    {
        telemetry::PhaseScope rb(b.profiler(),
                                 telemetry::Phase::Rollback);
        if (!b.chargeSys(rollbackCost))
            return false;
    }
    const auto applied = versions_->rollback();
    if (applied > 0)
        b.events().emit(telemetry::EventKind::Rollback, b.now(), applied);
    stats_.counter("rollbackEntries") += applied;
    versions_->clear();
    epochLogged_.clear();

    tics::CheckpointArea::Slot *slot = area_->valid();
    if (!slot) {
        lastCkptTrue_ = b.now();
        b.ctx().prepare([this] { appMain_(); });
        return true;
    }

    // Registers-only restore (locals live in promoted globals).
    telemetry::PhaseScope restore(b.profiler(),
                                  telemetry::Phase::Restore);
    mem::traceSideEvent(mem::SideEventKind::BootRestore, "chinchilla");
    if (!b.chargeSys(costs.restoreLogic))
        return false;
    tics::restoreStackImage(*slot);
    lastCkptTrue_ = b.now();
    ++stats_.counter("restores");
    b.events().emit(telemetry::EventKind::Restore, b.now());
    b.ctx().prepareResume(slot->regs);
    return true;
}

bool
ChinchillaRuntime::doCheckpoint()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    telemetry::PhaseScope ps(b.profiler(), telemetry::Phase::Checkpoint);

    // Registers-only checkpoint (the Chinchilla selling point) plus
    // committing the dirty-version set. Cost split around the capture
    // (total unchanged) so a cut can land between capture and commit.
    mem::traceSideEvent(mem::SideEventKind::CkptCommitStart, "chinchilla");
    const Cycles ckptCost = device::CostModel::linear(
        costs.ckptLogic, costs.framWritePerByte,
        versions_->usedBytes());
    b.charge(ckptCost - ckptCost / 2);

    tics::CheckpointArea::Slot &slot = area_->writeSlot();
    if (!tics::captureStackImage(b, slot, tics::TicsConfig::kHostRedzone))
        return false;

    b.charge(ckptCost / 2);
    area_->commit();
    versions_->clear();
    epochLogged_.clear();
    lastCkptTrue_ = b.now();
    ++ckpts_;
    ++stats_.counter("checkpoints");
    b.events().emit(telemetry::EventKind::CheckpointCommit, b.now());
    b.markProgress();
    return true;
}

void
ChinchillaRuntime::triggerPoint()
{
    auto &b = *board_;
    // Over-instrumentation: every site pays the enabled/disabled test.
    b.charge(5);
    if (b.now() - lastCkptTrue_ >= cfg_.minCheckpointSpacing)
        doCheckpoint();
}

void
ChinchillaRuntime::checkpointNow()
{
    doCheckpoint();
}

void
ChinchillaRuntime::preWrite(void *hostAddr, std::uint32_t bytes)
{
    auto &b = *board_;
    if (!b.ctx().inside())
        return;
    const auto &costs = b.costs();
    telemetry::PhaseScope ps(b.profiler(), telemetry::Phase::UndoLog);
    b.charge(costs.ptrCheck);
    if (b.ctx().onStack(hostAddr))
        return; // host-local bookkeeping; promoted state is in nv<T>

    const auto it = epochLogged_.find(hostAddr);
    if (it != epochLogged_.end() && it->second >= bytes) {
        ++stats_.counter("versionDedupHits");
        return;
    }
    if (versions_->wouldOverflow(bytes))
        doCheckpoint();
    b.charge(device::CostModel::linear(costs.undoLogBase,
                                       costs.undoLogPerByte, bytes));
    versions_->append(hostAddr, bytes);
    epochLogged_[hostAddr] = bytes;
    ++stats_.counter("versionAppends");
}

void
ChinchillaRuntime::storeBytes(void *dst, const void *src,
                              std::uint32_t bytes)
{
    preWrite(dst, bytes);
    mem::traceWrite(dst, bytes);
    mem::gatedStore(mem::StoreSite::AppGlobal, dst, src, bytes);
}

} // namespace ticsim::runtimes
