#include "mayfly.hpp"

#include <algorithm>

namespace ticsim::taskrt {

bool
MayflyRuntime::validateAcyclic() const
{
    // Kahn's algorithm over the declared edges.
    const auto n = static_cast<TaskId>(tasks_.size());
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (const auto &e : edges_) {
        if (e.second >= 0 && e.second < n)
            ++indeg[static_cast<std::size_t>(e.second)];
    }
    std::vector<TaskId> ready;
    for (TaskId t = 0; t < n; ++t) {
        if (indeg[static_cast<std::size_t>(t)] == 0)
            ready.push_back(t);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
        const TaskId t = ready.back();
        ready.pop_back();
        ++visited;
        for (const auto &e : edges_) {
            if (e.first != t || e.second < 0 || e.second >= n)
                continue;
            if (--indeg[static_cast<std::size_t>(e.second)] == 0)
                ready.push_back(e.second);
        }
    }
    return visited == static_cast<std::size_t>(n);
}

} // namespace ticsim::taskrt
