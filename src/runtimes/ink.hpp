/**
 * @file
 * InK-like reactive task kernel (SenSys'18 flavour).
 *
 * InK layers an event-driven scheduler over the task model: task
 * graphs ("threads" in InK terms) are activated by events — periodic
 * timers, sensor triggers — and scheduled by priority. The kernel
 * pays extra bookkeeping per transition relative to bare Alpaca-style
 * dispatch; the paper's Fig. 9 and Table 3 reflect that.
 */

#ifndef TICSIM_RUNTIMES_INK_HPP
#define TICSIM_RUNTIMES_INK_HPP

#include <algorithm>

#include "runtimes/task_core.hpp"

namespace ticsim::taskrt {

class InkRuntime : public TaskRuntime
{
  public:
    InkRuntime() : TaskRuntime(Config{/*extraTransitionCost=*/55})
    {
        stats_ = StatGroup("ink");
    }

    const char *name() const override { return "InK-like"; }

    void
    attach(board::Board &board, std::function<void()> appMain) override
    {
        TaskRuntime::attach(board, std::move(appMain));
        footprint_.add("ink kernel code", 520, 0);
        footprint_.add("ink event queue", 0, 512);
        // InK statically reserves per-thread task buffers (the
        // double-buffered task-shared value pools).
        footprint_.add("ink task-buffer pool", 0, 3300);
    }

    /**
     * Register a periodic event that re-activates @p root with
     * @p priority (higher wins) every @p period. When the task graph
     * idles (a task returns kTaskDone) and at least one event is due,
     * the highest-priority due event's root task is dispatched
     * instead of terminating.
     */
    void
    addPeriodicEvent(TimeNs period, int priority, TaskId root)
    {
        events_.push_back({period, priority, root, 0});
    }

    void
    saveState(StateWriter &w) const override
    {
        TaskRuntime::saveState(w);
        w.put(sleepUntil_);
        for (const Event &e : events_)
            w.put(e.nextDue);
    }
    void
    loadState(StateReader &r) override
    {
        TaskRuntime::loadState(r);
        sleepUntil_ = r.get<TimeNs>();
        for (Event &e : events_)
            e.nextDue = r.get<TimeNs>();
    }

  protected:
    TaskId
    preDispatch(TaskId t) override
    {
        // Low-power sleep until the activation the scheduler chose is
        // due. Charged in slices so a brown-out can interrupt it; the
        // chosen activation is already committed in the task pointer,
        // so a reboot re-dispatches it immediately (coalesced fire).
        auto &b = boardRef();
        while (sleepUntil_ > b.now()) {
            const TimeNs gap = sleepUntil_ - b.now();
            const Cycles slice = static_cast<Cycles>(
                std::min<TimeNs>(gap / b.costs().cycleTimeNs() + 1,
                                 2000));
            b.charge(slice);
        }
        return t;
    }

    void
    postTransition(TaskId from, TaskId to) override
    {
        if (to != kTaskDone || events_.empty())
            return;
        // Graph idled: commit the next activation — the soonest-due
        // event, priority breaking ties — and sleep up to it.
        auto &b = boardRef();
        b.charge(40); // scheduler queue scan
        Event *best = nullptr;
        for (auto &e : events_) {
            if (!best || e.nextDue < best->nextDue ||
                (e.nextDue == best->nextDue &&
                 e.priority > best->priority)) {
                best = &e;
            }
        }
        sleepUntil_ = std::max(b.now(), best->nextDue);
        best->nextDue = sleepUntil_ + best->period;
        current_ = best->root;
    }

  private:
    struct Event {
        TimeNs period;
        int priority;
        TaskId root;
        TimeNs nextDue;
    };
    std::vector<Event> events_;
    /** Volatile sleep target (a reboot simply fires immediately). */
    TimeNs sleepUntil_ = 0;
};

} // namespace ticsim::taskrt

#endif // TICSIM_RUNTIMES_INK_HPP
