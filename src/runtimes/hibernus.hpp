/**
 * @file
 * Hibernus-like reactive checkpointing baseline (Balsamo et al., the
 * paper's reference [5]; QuickRecall [23] is the same family).
 *
 * Instead of checkpointing continuously, the system reacts to a
 * falling supply: when the storage voltage crosses Vsave, it snapshots
 * the *entire* volatile state exactly once, then sleeps until the
 * brown-out; on reboot it restores and continues. Minimal checkpoint
 * count (one per power cycle) and zero overhead while energy is
 * plentiful — but the snapshot is full-state (unbounded, the problem
 * TICS's segmentation solves), it needs a reliably observable supply
 * voltage, and the Vsave-to-brown-out energy reserve must cover the
 * worst-case snapshot or the save itself dies.
 *
 * Built on the MementOS-like full-state snapshot machinery; only the
 * trigger discipline differs.
 */

#ifndef TICSIM_RUNTIMES_HIBERNUS_HPP
#define TICSIM_RUNTIMES_HIBERNUS_HPP

#include "runtimes/mementos.hpp"

namespace ticsim::runtimes {

class HibernusRuntime : public MementosRuntime
{
  public:
    /**
     * @param vSave Falling-voltage threshold that triggers the single
     *        hibernation snapshot. Must leave enough energy above the
     *        brown-out voltage to complete a full-state checkpoint.
     */
    explicit HibernusRuntime(Volts vSave = 2.1)
        : MementosRuntime(MementosConfig{
              MementosConfig::Trigger::Voltage, 0, /*unused*/ 0.0}),
          vSave_(vSave)
    {
        stats_ = StatGroup("hibernus");
    }

    const char *name() const override { return "Hibernus-like"; }

    bool
    onPowerOn() override
    {
        savedThisLife_ = false; // the Vsave comparator re-arms
        return MementosRuntime::onPowerOn();
    }

    void
    triggerPoint() override
    {
        auto &b = *board_;
        b.charge(4); // voltage comparator poll
        const Volts v = b.supply().voltageNow();
        if (v < 0.0)
            return; // no observable supply voltage: inert
        if (savedThisLife_ || v > vSave_)
            return;

        // Falling edge through Vsave: hibernate.
        savedThisLife_ = true;
        ++stats_.counter("hibernations");
        checkpointNow();
        // Sleep out the remaining charge (the device does no useful
        // work below Vsave). A restore re-enters inside
        // checkpointNow() and skips this loop: the capacitor is back
        // above the threshold.
        while (b.supply().voltageNow() <= vSave_)
            b.charge(400);
    }

    void
    saveState(StateWriter &w) const override
    {
        MementosRuntime::saveState(w);
        w.put(savedThisLife_);
    }
    void
    loadState(StateReader &r) override
    {
        MementosRuntime::loadState(r);
        savedThisLife_ = r.get<bool>();
    }

  private:
    Volts vSave_;
    /** Volatile comparator latch (re-armed by every boot). */
    bool savedThisLife_ = false;
};

} // namespace ticsim::runtimes

#endif // TICSIM_RUNTIMES_HIBERNUS_HPP
