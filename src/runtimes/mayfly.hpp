/**
 * @file
 * MayFly-like timely task graphs (SenSys'17 flavour).
 *
 * MayFly attaches timing constraints to the edges of a task graph:
 * data flowing along an edge expires after a declared lifetime, and an
 * expired token reroutes execution (typically back to the collection
 * task) instead of computing on stale data. The graph must be acyclic
 * — the paper notes the cuckoo-filter benchmark cannot be expressed
 * because loops are not allowed.
 */

#ifndef TICSIM_RUNTIMES_MAYFLY_HPP
#define TICSIM_RUNTIMES_MAYFLY_HPP

#include <map>

#include "runtimes/task_core.hpp"

namespace ticsim::taskrt {

class MayflyRuntime : public TaskRuntime
{
  public:
    MayflyRuntime() : TaskRuntime(Config{/*extraTransitionCost=*/30})
    {
        stats_ = StatGroup("mayfly");
    }

    const char *name() const override { return "MayFly-like"; }

    void
    attach(board::Board &board, std::function<void()> appMain) override
    {
        TaskRuntime::attach(board, std::move(appMain));
        footprint_.add("mayfly kernel code", 900, 0);
        footprint_.add("mayfly graph table", 0, 256);
    }

    /** Declare a graph edge (used by the acyclicity validator). */
    void
    declareEdge(TaskId from, TaskId to)
    {
        if (to != kTaskDone)
            edges_.emplace_back(from, to);
    }

    /**
     * Constrain @p t's input: the channel must have been committed
     * within @p lifetime; otherwise dispatch reroutes to @p onExpired.
     */
    void
    constrainInput(TaskId t, ChannelBase *ch, TimeNs lifetime,
                   TaskId onExpired)
    {
        constraints_[t] = {ch, lifetime, onExpired};
    }

    /**
     * Check the declared graph for cycles.
     * @return false when the program cannot be expressed in MayFly
     *         (loops in the graph), mirroring the paper's ✗ entries.
     */
    bool validateAcyclic() const;

    /**
     * MayFly's periodic-execution model: when the (acyclic) graph
     * drains, re-dispatch @p root until @p done returns true. This is
     * how iteration is expressed without graph loops.
     */
    void
    restartUntil(TaskId root, std::function<bool()> done)
    {
        restartRoot_ = root;
        restartDone_ = std::move(done);
    }

    std::uint64_t expiredDispatches() const { return expired_; }

    void
    saveState(StateWriter &w) const override
    {
        TaskRuntime::saveState(w);
        w.put(expired_);
    }
    void
    loadState(StateReader &r) override
    {
        TaskRuntime::loadState(r);
        expired_ = r.get<std::uint64_t>();
    }

  protected:
    TaskId
    preDispatch(TaskId t) override
    {
        auto it = constraints_.find(t);
        if (it == constraints_.end())
            return t;
        auto &b = boardRef();
        b.charge(b.costs().timeRead + 8); // edge-constraint check
        const TimeNs committedAt =
            it->second.channel ? it->second.channel->committedAt() : 0;
        const TimeNs age = b.now() >= committedAt
                               ? b.now() - committedAt
                               : 0;
        if (age > it->second.lifetime) {
            ++expired_;
            ++stats_.counter("expiredTokens");
            return it->second.onExpired;
        }
        return t;
    }

    void
    postTransition(TaskId from, TaskId to) override
    {
        if (to == kTaskDone && restartRoot_ >= 0 && restartDone_ &&
            !restartDone_()) {
            boardRef().charge(35); // graph re-arm
            current_ = restartRoot_;
        }
    }

  private:
    struct Constraint {
        ChannelBase *channel;
        TimeNs lifetime;
        TaskId onExpired;
    };
    std::vector<std::pair<TaskId, TaskId>> edges_;
    std::map<TaskId, Constraint> constraints_;
    std::uint64_t expired_ = 0;
    TaskId restartRoot_ = -1;
    std::function<bool()> restartDone_;
};

} // namespace ticsim::taskrt

#endif // TICSIM_RUNTIMES_MAYFLY_HPP
