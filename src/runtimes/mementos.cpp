#include "mementos.hpp"

#include "tics/config.hpp"

#include <cstring>

#include "mem/journal.hpp"
#include "mem/trace.hpp"
#include "support/logging.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::runtimes {

void
MementosRuntime::attach(board::Board &board, std::function<void()> appMain)
{
    Runtime::attach(board, std::move(appMain));
    area_ = std::make_unique<tics::CheckpointArea>(
        board.nvram(), "mementos.ckpt", board.config().stackHostBytes);
    footprint_.add("mementos runtime code", 2600, 0);
    auto pending = std::move(pendingGlobals_);
    pendingGlobals_.clear();
    for (const auto &[base, bytes] : pending)
        trackGlobals(base, bytes);
}

void
MementosRuntime::trackGlobals(void *base, std::uint32_t bytes)
{
    if (!board_) {
        // Application objects are constructed before the runtime is
        // attached to a board; defer the shadow allocation.
        pendingGlobals_.emplace_back(base, bytes);
        return;
    }
    GlobalRegion r;
    r.base = base;
    r.bytes = bytes;
    // One shadow per checkpoint slot, laid out back to back.
    const auto addr = board_->nvram().allocate(
        "mementos.globals" + std::to_string(globals_.size()), 2 * bytes, 8);
    r.shadow = board_->nvram().hostPtr(addr);
    // Genesis snapshot: the values the region holds at registration,
    // i.e. the program's initial .data image. Fresh boots restore it,
    // closing the window where globals dirtied before the first
    // checkpoint would survive an outage that re-executes main().
    const auto gaddr = board_->nvram().allocate(
        "mementos.genesis" + std::to_string(globals_.size()), bytes, 8);
    r.genesis = board_->nvram().hostPtr(gaddr);
    std::memcpy(r.genesis, base, bytes);
    globals_.push_back(r);
    globalsBytes_ += bytes;
    footprint_.add("double-buffered globals", 0, 2 * bytes);
}

bool
MementosRuntime::onPowerOn()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    {
        telemetry::PhaseScope boot(b.profiler(), telemetry::Phase::Boot);
        if (!b.chargeSys(costs.bootInit))
            return false;
    }

    tics::CheckpointArea::Slot *slot = area_->valid();
    if (!slot) {
        model_.clear();
        // Fresh start: rewrite every tracked global from its genesis
        // snapshot. Real firmware gets this for free — crt0 re-copies
        // .data from flash/FRAM on every reset — so its cycles are
        // part of the bootInit charge above, not an extra charge.
        // Without it, globals dirtied before the first-ever checkpoint
        // would survive an outage that restarts main() from scratch.
        for (auto &g : globals_) {
            mem::journalNote(g.base, g.bytes);
            std::memcpy(g.base, g.genesis, g.bytes);
            mem::traceVersioned(g.base, g.bytes);
        }
        // Force an early checkpoint at the first trigger: MementOS has
        // no undo log, so pre-checkpoint global writes are only safe
        // once a restore point exists.
        lastCkptTrue_ = 0;
        b.ctx().prepare([this] { appMain_(); });
        return true;
    }
    mem::traceSideEvent(mem::SideEventKind::BootRestore, "mementos");

    // Restore cost scales with the whole saved state: this is the
    // unbounded-restore path that can starve small energy buffers.
    telemetry::PhaseScope restore(b.profiler(),
                                  telemetry::Phase::Restore);
    const std::uint32_t stateBytes = committedStackBytes_ + globalsBytes_;
    if (!b.chargeSys(device::CostModel::linear(
            costs.restoreLogic, costs.restorePerByte, stateBytes)))
        return false;

    tics::restoreStackImage(*slot);
    const int idx = area_->validIndex();
    for (auto &g : globals_) {
        mem::journalNote(g.base, g.bytes);
        std::memcpy(g.base, g.shadow + static_cast<std::size_t>(idx) *
                                g.bytes,
                    g.bytes);
        // The surviving snapshot keeps covering writes made in the
        // interval this boot opens.
        mem::traceVersioned(g.base, g.bytes);
    }
    model_ = ckptModel_;
    lastCkptTrue_ = b.now();
    ++stats_.counter("restores");
    b.events().emit(telemetry::EventKind::Restore, b.now());
    b.ctx().prepareResume(slot->regs);
    return true;
}

bool
MementosRuntime::doCheckpoint()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    telemetry::PhaseScope ps(b.profiler(), telemetry::Phase::Checkpoint);
    const std::uint32_t stateBytes = model_.totalBytes + globalsBytes_;

    // Cost split around the capture (total unchanged): death during
    // either half leaves the old commit valid.
    mem::traceSideEvent(mem::SideEventKind::CkptCommitStart, "mementos");
    const Cycles ckptCost = device::CostModel::linear(
        costs.ckptLogic, costs.ckptPerByte, stateBytes);
    b.charge(ckptCost - ckptCost / 2);

    tics::CheckpointArea::Slot &slot = area_->writeSlot();
    const int idx = area_->writeIndex();
    if (!tics::captureStackImage(b, slot, tics::TicsConfig::kHostRedzone))
        return false; // resumed after a reboot

    for (auto &g : globals_) {
        mem::journalNote(g.shadow + static_cast<std::size_t>(idx) *
                             g.bytes,
                         g.bytes);
        std::memcpy(g.shadow + static_cast<std::size_t>(idx) * g.bytes,
                    g.base, g.bytes);
    }
    b.charge(ckptCost / 2);
    area_->commit();
    ckptModel_ = model_;
    committedStackBytes_ = model_.totalBytes;
    lastCkptTrue_ = b.now();
    ++ckpts_;
    ++stats_.counter("checkpoints");
    b.events().emit(telemetry::EventKind::CheckpointCommit, b.now());
    b.markProgress();
    // After markProgress so the coverage lands in the new interval:
    // every tracked global is now recoverable from this snapshot.
    for (auto &g : globals_)
        mem::traceVersioned(g.base, g.bytes);
    return true;
}

void
MementosRuntime::frameEnter(std::uint16_t modeledBytes)
{
    model_.push(modeledBytes);
}

void
MementosRuntime::frameExit()
{
    model_.pop();
}

void
MementosRuntime::triggerPoint()
{
    auto &b = *board_;
    b.charge(4); // MementOS voltage/trigger check at every site
    bool want = false;
    switch (cfg_.trigger) {
      case MementosConfig::Trigger::Every:
        want = true;
        break;
      case MementosConfig::Trigger::Timer:
        want = b.now() - lastCkptTrue_ >= cfg_.timerPeriod;
        break;
      case MementosConfig::Trigger::Voltage: {
        const Volts v = b.supply().voltageNow();
        want = v >= 0.0 && v < cfg_.voltageThreshold;
        break;
      }
    }
    if (want)
        doCheckpoint();
}

void
MementosRuntime::checkpointNow()
{
    doCheckpoint();
}

} // namespace ticsim::runtimes
