/**
 * @file
 * The unprotected baseline: ordinary C on intermittent power.
 *
 * No checkpoints, no versioning. Every reboot restarts main() from
 * scratch; volatile state (the call stack and registers) is lost, but
 * globals live in FRAM and keep whatever values the failed run left
 * behind — which is exactly how partial progress and WAR memory
 * inconsistencies (paper Fig. 3a, Table 1 "plain C" rows) arise.
 */

#ifndef TICSIM_RUNTIMES_PLAINC_HPP
#define TICSIM_RUNTIMES_PLAINC_HPP

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::runtimes {

class PlainCRuntime : public board::Runtime
{
  public:
    const char *name() const override { return "plain-C"; }

    void
    attach(board::Board &board, std::function<void()> appMain) override
    {
        Runtime::attach(board, std::move(appMain));
        footprint_.add("crt0/startup", 420, 0);
    }

    bool
    onPowerOn() override
    {
        {
            telemetry::PhaseScope boot(board_->profiler(),
                                       telemetry::Phase::Boot);
            if (!board_->chargeSys(board_->costs().bootInit))
                return false;
        }
        board_->ctx().prepare([this] {
            // Restart-from-main is this system's notion of progress.
            board_->markProgress();
            appMain_();
        });
        return true;
    }
};

} // namespace ticsim::runtimes

#endif // TICSIM_RUNTIMES_PLAINC_HPP
