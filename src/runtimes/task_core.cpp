#include "task_core.hpp"

#include "support/logging.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::taskrt {

void
TaskRuntime::attach(board::Board &board, std::function<void()> appMain)
{
    // appMain for task systems is the graph-construction hook; the
    // dispatch loop below is the program.
    Runtime::attach(board, std::move(appMain));
    if (appMain_)
        appMain_();
    footprint_.add("task runtime code", 700, 0);
    footprint_.add("task control block", 0, 64);
}

TaskId
TaskRuntime::addTask(std::string name, std::function<TaskId()> fn)
{
    tasks_.push_back({std::move(name), std::move(fn)});
    footprint_.add("task '" + tasks_.back().name + "' dispatch", 48, 8);
    return static_cast<TaskId>(tasks_.size() - 1);
}

bool
TaskRuntime::onPowerOn()
{
    auto &b = *board_;
    {
        telemetry::PhaseScope boot(b.profiler(), telemetry::Phase::Boot);
        if (!b.chargeSys(b.costs().bootInit))
            return false;
    }
    // The current-task pointer is non-volatile; everything privatized
    // since the last transition is discarded, making the interrupted
    // task restart idempotent.
    for (auto *c : channels_)
        c->discard();
    b.ctx().prepare([this] { taskLoop(); });
    return true;
}

void
TaskRuntime::taskLoop()
{
    auto &b = *board_;
    const auto &costs = b.costs();
    if (transitions_ == 0 && current_ == 0)
        current_ = initial_;

    while (current_ != kTaskDone) {
        TICSIM_ASSERT(current_ >= 0 &&
                      current_ < static_cast<TaskId>(tasks_.size()),
                      "bad task id %d", current_);
        mem::traceSideEvent(mem::SideEventKind::TaskDispatch,
                            tasks_[current_].name.c_str(),
                            static_cast<std::uint64_t>(current_));
        const TaskId dispatched = preDispatch(current_);
        if (dispatched != current_) {
            // MayFly rerouted the dispatch (e.g. expired input data);
            // committing the new task pointer is a plain transition.
            b.charge(costs.taskTransition + cfg_.extraTransitionCost);
            current_ = dispatched;
            continue;
        }

        const TaskId next = tasks_[current_].fn();

        // Two-phase transition: charge the full commit cost first so a
        // brown-out mid-commit restarts the task against the old
        // committed channel versions.
        std::uint32_t bytes = 0;
        for (auto *c : channels_)
            bytes += c->dirtyBytes();
        {
            telemetry::PhaseScope commit(b.profiler(),
                                         telemetry::Phase::Checkpoint);
            b.charge(device::CostModel::linear(
                costs.taskTransition + cfg_.extraTransitionCost,
                costs.taskCommitPerByte, bytes));
        }
        for (auto *c : channels_)
            c->commit();
        b.events().emit(telemetry::EventKind::CheckpointCommit, b.now());
        const TaskId from = current_;
        current_ = next;
        ++transitions_;
        ++stats_.counter("transitions");
        b.markProgress();
        postTransition(from, next);
    }
}

} // namespace ticsim::taskrt
