/**
 * @file
 * Chinchilla-like adaptive checkpointing baseline (paper Section 5.3.1).
 *
 * Chinchilla promotes every local variable to a non-volatile global at
 * compile time, over-instruments the program with checkpoints, and
 * enables/disables them heuristically. Consequences modeled here:
 *
 *  - checkpoints save registers only (locals are already "global"),
 *    but every promoted-global write pays dual-copy versioning;
 *  - recursion is unsupported (locals cannot be promoted per
 *    activation), so the recursive bitcount benchmark cannot run;
 *  - the local-to-global explosion shows up as .data footprint
 *    (Table 3) via the per-variable dual copies the app registers.
 *
 * Host mechanics still snapshot the live stack image so natively
 * compiled app code resumes exactly; the *modeled* cost charged per
 * checkpoint is registers plus dirty-global versioning, per the
 * Chinchilla design.
 */

#ifndef TICSIM_RUNTIMES_CHINCHILLA_HPP
#define TICSIM_RUNTIMES_CHINCHILLA_HPP

#include <unordered_map>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "tics/checkpoint_area.hpp"
#include "tics/undo_log.hpp"

namespace ticsim::runtimes {

struct ChinchillaConfig {
    /** Heuristic: minimum spacing between accepted checkpoints. */
    TimeNs minCheckpointSpacing = 5 * kNsPerMs;
    /** Versioning buffer capacity (dirty-global dual copies). */
    std::uint32_t versionBytes = 4096;
    std::uint32_t versionEntries = 256;
};

class ChinchillaRuntime : public board::Runtime, private mem::MemHooks
{
  public:
    explicit ChinchillaRuntime(ChinchillaConfig cfg = {}) : cfg_(cfg)
    {
        stats_ = StatGroup("chinchilla");
    }

    const char *name() const override { return "Chinchilla-like"; }
    bool supportsRecursion() const override { return false; }

    void attach(board::Board &board,
                std::function<void()> appMain) override;
    bool onPowerOn() override;
    mem::MemHooks *memHooks() override { return this; }

    void triggerPoint() override;
    void checkpointNow() override;
    void storeBytes(void *dst, const void *src,
                    std::uint32_t bytes) override;

    std::uint64_t checkpointsTotal() const { return ckpts_; }

    void
    saveState(StateWriter &w) const override
    {
        w.put(lastCkptTrue_);
        w.put(ckpts_);
        w.put(versions_->cursor());
        w.put(static_cast<std::uint64_t>(epochLogged_.size()));
        for (const auto &[p, bytes] : epochLogged_) {
            w.put(reinterpret_cast<std::uintptr_t>(p));
            w.put(bytes);
        }
        area_->saveHostState(w);
    }
    void
    loadState(StateReader &r) override
    {
        lastCkptTrue_ = r.get<TimeNs>();
        ckpts_ = r.get<std::uint64_t>();
        versions_->setCursor(r.get<tics::UndoLog::Cursor>());
        epochLogged_.clear();
        const auto n = r.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) {
            auto *p = reinterpret_cast<void *>(r.get<std::uintptr_t>());
            epochLogged_[p] = r.get<std::uint32_t>();
        }
        area_->loadHostState(r);
    }

  private:
    void preWrite(void *hostAddr, std::uint32_t bytes) override;
    bool doCheckpoint();

    ChinchillaConfig cfg_;
    std::unique_ptr<tics::CheckpointArea> area_;
    std::unique_ptr<tics::UndoLog> versions_;
    std::unordered_map<void *, std::uint32_t> epochLogged_;
    TimeNs lastCkptTrue_ = 0;
    std::uint64_t ckpts_ = 0;
};

} // namespace ticsim::runtimes

#endif // TICSIM_RUNTIMES_CHINCHILLA_HPP
