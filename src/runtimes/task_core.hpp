/**
 * @file
 * Task-based intermittent execution core, in the style of Alpaca
 * (OOPSLA'17): the program is a graph of atomic, idempotent tasks;
 * shared data flows through channels; a task's channel writes are
 * privatized into shadow copies and committed two-phase at the task
 * transition, together with the non-volatile "current task" pointer.
 * A power failure simply restarts the current task: its inputs still
 * read the committed versions, so re-execution is idempotent.
 *
 * This core is the common substrate for the Alpaca-, InK- and
 * MayFly-like baselines the paper compares against (Section 5.3.3).
 * Its programming model carries the limitations the paper critiques:
 * no recursion, no pointers into task-local state, and manual task
 * decomposition.
 */

#ifndef TICSIM_RUNTIMES_TASK_CORE_HPP
#define TICSIM_RUNTIMES_TASK_CORE_HPP

#include <cstring>
#include <string>
#include <vector>

#include "board/board.hpp"
#include "board/runtime.hpp"
#include "mem/journal.hpp"
#include "mem/trace.hpp"

namespace ticsim::taskrt {

using TaskId = std::int32_t;

/** Returned by a task to terminate the program. */
constexpr TaskId kTaskDone = -1;

class TaskRuntime;

/** Type-erased channel interface the runtime commits at transitions. */
class ChannelBase
{
  public:
    virtual ~ChannelBase() = default;

    /** Bytes that would be committed right now. */
    virtual std::uint32_t dirtyBytes() const = 0;

    /** Publish the shadow copy; returns committed bytes. */
    virtual std::uint32_t commit() = 0;

    /** Drop the shadow copy (reboot path). */
    virtual void discard() = 0;

    /** Record the (true) time of the latest commit (MayFly edges). */
    virtual void stampCommit(TimeNs t) {}

    /** True time of the latest commit (0 if never committed). */
    virtual TimeNs committedAt() const { return 0; }

    /**
     * Host-side volatile state (the dirty flag and changed-byte
     * count), packed for snapshot/restore: bit 0 = dirty, bits 32..63
     * = dirtyBytes. The channel payloads live in NV and are restored
     * by the write journal.
     */
    virtual std::uint64_t volatileState() const = 0;
    virtual void setVolatileState(std::uint64_t s) = 0;
};

/**
 * A privatized data channel: reads see the committed version (or the
 * task's own shadow write), writes land in the shadow until the next
 * task transition commits them.
 */
template <typename T>
class Channel : public ChannelBase
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    /**
     * Channels are created at graph-construction time, before the
     * runtime is attached to a board, so the arena is passed in
     * explicitly.
     */
    Channel(TaskRuntime &rt, mem::NvRam &ram, const std::string &name);

    /** Committed-or-own-write read (charged). */
    T get();

    /** Privatized write (charged). */
    void set(const T &v);

    /** Host-side peek at the committed version (verification only). */
    T
    committed() const
    {
        T v;
        std::memcpy(&v, value_, sizeof(T));
        return v;
    }

    std::uint32_t dirtyBytes() const override { return dirtyBytes_; }

    std::uint32_t commit() override; // defined after TaskRuntime

    void
    discard() override
    {
        dirty_ = false;
        dirtyBytes_ = 0;
    }

    /** Commit timestamp (true time), for MayFly edge expiry. */
    TimeNs committedAt() const override { return *commitTs_; }
    void
    stampCommit(TimeNs t) override
    {
        mem::journalNote(commitTs_, sizeof(TimeNs));
        *commitTs_ = t;
    }

    std::uint64_t
    volatileState() const override
    {
        return (static_cast<std::uint64_t>(dirtyBytes_) << 32) |
               (dirty_ ? 1u : 0u);
    }
    void
    setVolatileState(std::uint64_t s) override
    {
        dirty_ = (s & 1u) != 0;
        dirtyBytes_ = static_cast<std::uint32_t>(s >> 32);
    }

  private:
    TaskRuntime &rt_;
    T *value_;      // committed version (FRAM arena)
    T *shadow_;     // privatized copy (FRAM arena)
    TimeNs *commitTs_;
    bool dirty_ = false;
    /** Changed bytes vs. the committed version (Alpaca tracks dirty
     *  state fine-grained; commit cost scales with this, not with the
     *  channel's declared size). */
    std::uint32_t dirtyBytes_ = 0;
};

/** One node of the task graph. */
struct TaskDesc {
    std::string name;
    std::function<TaskId()> fn;
};

/** Task-runtime tuning knobs. */
struct TaskConfig {
    /** Extra per-transition scheduler cost (InK pays more). */
    Cycles extraTransitionCost = 0;
};

class TaskRuntime : public board::Runtime
{
  public:
    using Config = TaskConfig;

    explicit TaskRuntime(Config cfg = {}) : cfg_(cfg)
    {
        stats_ = StatGroup("taskrt");
    }

    const char *name() const override { return "Alpaca-like"; }
    bool supportsRecursion() const override { return false; }

    void attach(board::Board &board,
                std::function<void()> appMain) override;
    bool onPowerOn() override;

    /** Register a task; returns its id. */
    TaskId addTask(std::string name, std::function<TaskId()> fn);

    /** Set the entry task of the graph. */
    void setInitial(TaskId t) { initial_ = t; }

    /** Number of task transitions executed (for benches). */
    std::uint64_t transitions() const { return transitions_; }

    board::Board &boardRef() { return *board_; }

    void registerChannel(ChannelBase *c) { channels_.push_back(c); }

    const TaskDesc &task(TaskId t) const { return tasks_[t]; }
    std::size_t taskCount() const { return tasks_.size(); }
    std::size_t channelCount() const { return channels_.size(); }
    TaskId currentTask() const { return current_; }

    void
    saveState(StateWriter &w) const override
    {
        w.put(current_);
        w.put(transitions_);
        for (const ChannelBase *c : channels_)
            w.put(c->volatileState());
    }
    void
    loadState(StateReader &r) override
    {
        current_ = r.get<TaskId>();
        transitions_ = r.get<std::uint64_t>();
        for (ChannelBase *c : channels_)
            c->setVolatileState(r.get<std::uint64_t>());
    }

  protected:
    /**
     * Inspect/adjust the dispatch before running @p t (MayFly edge
     * expiry). @return the task to actually run.
     */
    virtual TaskId preDispatch(TaskId t) { return t; }

    /** Called after each committed transition. */
    virtual void postTransition(TaskId from, TaskId to) {}

    void taskLoop();

    Config cfg_;
    std::vector<TaskDesc> tasks_;
    std::vector<ChannelBase *> channels_;
    TaskId initial_ = 0;
    TaskId current_ = 0; ///< non-volatile current-task pointer
    std::uint64_t transitions_ = 0;
};

template <typename T>
Channel<T>::Channel(TaskRuntime &rt, mem::NvRam &ram,
                    const std::string &name)
    : rt_(rt)
{
    const auto v = ram.allocate("chan." + name + ".v", sizeof(T),
                                alignof(T));
    const auto s = ram.allocate("chan." + name + ".s", sizeof(T),
                                alignof(T));
    const auto t = ram.allocate("chan." + name + ".ts", sizeof(TimeNs),
                                alignof(TimeNs));
    value_ = reinterpret_cast<T *>(ram.hostPtr(v));
    shadow_ = reinterpret_cast<T *>(ram.hostPtr(s));
    commitTs_ = reinterpret_cast<TimeNs *>(ram.hostPtr(t));
    std::memset(static_cast<void *>(value_), 0, sizeof(T));
    std::memset(static_cast<void *>(shadow_), 0, sizeof(T));
    *commitTs_ = 0;
    rt.registerChannel(this);
    rt.footprint().add("channel " + name, 0,
                       2 * sizeof(T) + sizeof(TimeNs));
}

template <typename T>
std::uint32_t
Channel<T>::commit()
{
    if (!dirty_)
        return 0;
    const std::uint32_t committed = dirtyBytes_;
    mem::journalNote(value_, sizeof(T));
    std::memcpy(value_, shadow_, sizeof(T));
    // A committed write refreshes the token's timestamp even when the
    // new value happens to equal the old one (MayFly edges care about
    // recency, not content).
    stampCommit(rt_.boardRef().now());
    dirty_ = false;
    dirtyBytes_ = 0;
    return committed;
}

template <typename T>
T
Channel<T>::get()
{
    auto &b = rt_.boardRef();
    // Reads are served element-on-demand on the real systems, so the
    // modeled read cost is capped rather than scaling with a large
    // array channel's full declared size.
    constexpr std::uint32_t kReadCap = 96;
    b.charge(device::CostModel::linear(
        2, b.costs().framReadPerByte,
        sizeof(T) < kReadCap ? static_cast<std::uint32_t>(sizeof(T))
                             : kReadCap));
    const T *src = dirty_ ? shadow_ : value_;
    mem::traceRead(src, sizeof(T));
    T v;
    std::memcpy(&v, src, sizeof(T));
    return v;
}

template <typename T>
void
Channel<T>::set(const T &v)
{
    auto &b = rt_.boardRef();
    // Fine-grained dirty tracking: pay for bytes that actually change
    // relative to the committed version.
    const auto *nb = reinterpret_cast<const std::uint8_t *>(&v);
    const auto *base = reinterpret_cast<const std::uint8_t *>(value_);
    std::uint32_t changed = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        if (nb[i] != base[i])
            ++changed;
    }
    b.charge(device::CostModel::linear(3, b.costs().framWritePerByte,
                                       changed));
    // A privatized write is versioned by construction: the committed
    // copy stays intact until the two-phase transition publishes it.
    mem::traceVersioned(shadow_, sizeof(T));
    mem::traceWrite(shadow_, sizeof(T));
    mem::journalNote(shadow_, sizeof(T));
    std::memcpy(shadow_, &v, sizeof(T));
    dirty_ = true;
    dirtyBytes_ = changed;
}

} // namespace ticsim::taskrt

#endif // TICSIM_RUNTIMES_TASK_CORE_HPP
