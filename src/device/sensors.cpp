#include "sensors.hpp"

#include <cmath>

namespace ticsim::device {

Accelerometer::Accelerometer(Rng rng, TimeNs regimePeriod)
    : rng_(rng), rngInitial_(rng), regimePeriod_(regimePeriod)
{
}

bool
Accelerometer::movingAt(TimeNs t) const
{
    return (t / regimePeriod_) % 2 == 1;
}

AccelSample
Accelerometer::sample(TimeNs trueNow)
{
    AccelSample s;
    if (movingAt(trueNow)) {
        // Large oscillation around gravity on all axes.
        const double phase =
            2.0 * M_PI *
            static_cast<double>(trueNow % (100 * kNsPerMs)) /
            static_cast<double>(100 * kNsPerMs);
        s.x = static_cast<std::int16_t>(600.0 * std::sin(phase) +
                                        rng_.gaussian(0, 80));
        s.y = static_cast<std::int16_t>(600.0 * std::cos(phase) +
                                        rng_.gaussian(0, 80));
        s.z = static_cast<std::int16_t>(1000.0 +
                                        400.0 * std::sin(2.0 * phase) +
                                        rng_.gaussian(0, 80));
    } else {
        // Stationary: gravity on z, small noise.
        s.x = static_cast<std::int16_t>(rng_.gaussian(0, 12));
        s.y = static_cast<std::int16_t>(rng_.gaussian(0, 12));
        s.z = static_cast<std::int16_t>(1000.0 + rng_.gaussian(0, 12));
    }
    return s;
}

void
Accelerometer::reset()
{
    rng_ = rngInitial_;
}

ScalarSensor::ScalarSensor(Rng rng, double base, double swing, TimeNs period,
                           double noise)
    : rng_(rng), rngInitial_(rng), base_(base), swing_(swing),
      period_(period), noise_(noise)
{
}

double
ScalarSensor::truth(TimeNs t) const
{
    const double phase = 2.0 * M_PI *
        static_cast<double>(t % period_) / static_cast<double>(period_);
    return base_ + swing_ * std::sin(phase);
}

std::int32_t
ScalarSensor::sample(TimeNs trueNow)
{
    return static_cast<std::int32_t>(
        std::lround(truth(trueNow) + rng_.gaussian(0.0, noise_)));
}

void
ScalarSensor::reset()
{
    rng_ = rngInitial_;
}

} // namespace ticsim::device
