#include "radio.hpp"

namespace ticsim::device {

void
Radio::send(TimeNs now, const void *data, std::uint32_t bytes)
{
    Packet p;
    p.sentAt = now;
    const auto *b = static_cast<const std::uint8_t *>(data);
    p.payload.assign(b, b + bytes);
    packets_.push_back(std::move(p));
}

} // namespace ticsim::device
