/**
 * @file
 * Cycle/energy cost model of the simulated MSP430FR5969-class device.
 *
 * The per-operation constants are calibrated so that the *isolated*
 * runtime operations land near the paper's Table 4 values at 1 MHz
 * (where 1 cycle == 1 us). Everything the evaluation derives from
 * composition — checkpoint counts, overhead ratios, crossovers — is
 * measured by the simulator, not calibrated.
 *
 * Table 4 anchor points (GCC -O2, 1 MHz):
 *   stack grow/shrink             345 us (max)
 *   checkpoint logic  0/64/256 B  264 / 464 / 656 us
 *   restore logic     0/64/256 B  273 / 475 / 664 us
 *   pointer access  no log        13 us
 *   pointer access  log 4 B       308 us
 *   pointer access  log 64 B      371 us
 *   undo-log rollback 4 / 64 B    234 / 294 us
 */

#ifndef TICSIM_DEVICE_COSTS_HPP
#define TICSIM_DEVICE_COSTS_HPP

#include <cstdint>

#include "support/units.hpp"

namespace ticsim::device {

/** All tunable device and runtime-operation costs, in cycles. */
struct CostModel {
    /** MCU clock (paper micro-benchmarks run at 1 MHz). */
    double clockHz = 1.0e6;

    /** Average MCU active-mode power draw (CPU + FRAM). */
    Watts activePower = 0.75e-3;

    // --- Checkpoint / restore (TICS two-phase commit) -------------------
    /** Fixed checkpoint logic: registers + commit-flag flip. */
    Cycles ckptLogic = 264;
    /** Per stack-byte cost of a checkpoint (two-phase: copy + commit). */
    double ckptPerByte = 1.53;
    /** Fixed restore logic after reboot. */
    Cycles restoreLogic = 273;
    /** Per stack-byte cost of restoring the working segment. */
    double restorePerByte = 1.53;

    // --- Stack segmentation ---------------------------------------------
    /** Working-stack grow or shrink (segment switch + argument copy). */
    Cycles stackGrow = 345;
    Cycles stackShrink = 345;
    /** Frame-entry bookkeeping when no grow/shrink is needed. */
    Cycles frameCheck = 6;

    // --- Memory manager ---------------------------------------------------
    /** Pointer-target classification (working stack vs. elsewhere). */
    Cycles ptrCheck = 13;
    /** Fixed cost of appending an undo-log entry. */
    Cycles undoLogBase = 291;
    /** Per-byte cost of saving the old value into the undo log. */
    double undoLogPerByte = 1.05;
    /** Fixed cost of rolling one undo entry back at reboot. */
    Cycles rollbackBase = 230;
    /** Per-byte cost of an undo rollback. */
    double rollbackPerByte = 1.0;

    // --- Plain memory traffic ---------------------------------------------
    /** Per-byte FRAM write outside the versioning paths. */
    double framWritePerByte = 0.6;
    /** Per-byte FRAM read. */
    double framReadPerByte = 0.3;

    // --- Timekeeping -------------------------------------------------------
    /** Reading the persistent timekeeper. */
    Cycles timeRead = 24;
    /** Updating a variable's associated timestamp (@= operator). */
    Cycles timestampWrite = 18;

    // --- Peripherals --------------------------------------------------------
    /** One ADC/accelerometer sample (conversion + transfer). */
    Cycles sensorSample = 120;
    /** Radio packet transmission (fixed portion). */
    Cycles radioSend = 2000;
    /** Per-payload-byte radio cost. */
    double radioPerByte = 8.0;

    // --- Task-based runtimes ------------------------------------------------
    /** Task transition (commit + next-task update), excluding data. */
    Cycles taskTransition = 180;
    /** Per-byte channel/privatization commit cost. */
    double taskCommitPerByte = 1.2;

    /** Boot-time runtime initialization after a reboot. */
    Cycles bootInit = 150;

    /** Cycle count of one nanosecond-resolution virtual duration. */
    TimeNs cycleTimeNs() const
    {
        return static_cast<TimeNs>(1e9 / clockHz);
    }

    /** Duration of @p c cycles. */
    TimeNs cyclesToNs(Cycles c) const { return c * cycleTimeNs(); }

    /** Energy consumed by @p c active cycles. */
    Joules cyclesToJoules(Cycles c) const
    {
        return activePower * static_cast<double>(c) / clockHz;
    }

    /** Helper: fixed + per-byte cost rounded to whole cycles. */
    static Cycles
    linear(Cycles base, double perByte, std::uint32_t bytes)
    {
        return base + static_cast<Cycles>(perByte *
                                          static_cast<double>(bytes));
    }
};

} // namespace ticsim::device

#endif // TICSIM_DEVICE_COSTS_HPP
