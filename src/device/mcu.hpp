/**
 * @file
 * MCU core model: clock, cycle accounting, and the bridge from charged
 * cycles to elapsed virtual time and consumed energy. The Board owns
 * one Mcu and forwards every charge to the power supply.
 */

#ifndef TICSIM_DEVICE_MCU_HPP
#define TICSIM_DEVICE_MCU_HPP

#include "device/costs.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"
#include "telemetry/phase.hpp"

namespace ticsim::device {

/**
 * The simulated microcontroller core. Time on the device only advances
 * when cycles are charged; the Board adds off-time during outages.
 */
class Mcu
{
  public:
    explicit Mcu(CostModel costs = CostModel())
        : costs_(costs), stats_("mcu")
    {
    }

    const CostModel &costs() const { return costs_; }

    /** Modeled register-file size (16 x 16-bit regs + SR/PC bookkeeping). */
    static constexpr std::uint32_t regFileBytes = 34;

    /** Total cycles executed since reset(). */
    Cycles cycles() const { return cycles_; }

    /** Account @p c executed cycles, attributing them to the active
     *  telemetry phase. Attribution here (rather than in the Board)
     *  makes sum-over-phases == cycles() hold by construction. */
    void
    addCycles(Cycles c)
    {
        cycles_ += c;
        if (profiler_ != nullptr)
            profiler_->attribute(c);
    }

    /** Attach the phase profiler every charge is attributed through. */
    void setPhaseProfiler(telemetry::PhaseProfiler *p) { profiler_ = p; }

    /** Duration of @p c cycles at the configured clock. */
    TimeNs cyclesToNs(Cycles c) const { return costs_.cyclesToNs(c); }

    /** Energy drawn by @p c active cycles. */
    Joules cyclesToJoules(Cycles c) const
    {
        return costs_.cyclesToJoules(c);
    }

    /** Restore the cycle counter to a snapshotted value without phase
     *  attribution (the profiler is restored wholesale alongside). */
    void setCycles(Cycles c) { cycles_ = c; }

    void
    reset()
    {
        cycles_ = 0;
        if (profiler_ != nullptr)
            profiler_->resetCycles();
    }

    StatGroup &stats() { return stats_; }

  private:
    CostModel costs_;
    Cycles cycles_ = 0;
    StatGroup stats_;
    telemetry::PhaseProfiler *profiler_ = nullptr;
};

} // namespace ticsim::device

#endif // TICSIM_DEVICE_MCU_HPP
