/**
 * @file
 * Simulated low-power radio. send() records the packet with the true
 * transmission time so experiments can count deliveries (Table 1's
 * "Send" column) and check payload correctness and timeliness.
 */

#ifndef TICSIM_DEVICE_RADIO_HPP
#define TICSIM_DEVICE_RADIO_HPP

#include <cstdint>
#include <vector>

#include "support/units.hpp"

namespace ticsim::device {

/** One transmitted packet as observed by the (perfect) receiver. */
struct Packet {
    TimeNs sentAt = 0;
    std::vector<std::uint8_t> payload;
};

/** Packet-logging radio model. */
class Radio
{
  public:
    /** Record a transmission at true time @p now. */
    void send(TimeNs now, const void *data, std::uint32_t bytes);

    const std::vector<Packet> &packets() const { return packets_; }
    std::size_t sentCount() const { return packets_.size(); }

    void reset() { packets_.clear(); }

    /** Forget packets beyond the first @p n (snapshot restore). */
    void truncate(std::size_t n)
    {
        if (n < packets_.size())
            packets_.resize(n);
    }

  private:
    std::vector<Packet> packets_;
};

} // namespace ticsim::device

#endif // TICSIM_DEVICE_RADIO_HPP
