/**
 * @file
 * Simulated sensing peripherals.
 *
 * The benchmarks need three sensors:
 *  - a 3-axis accelerometer whose signal alternates between stationary
 *    and moving regimes (the AR application classifies these),
 *  - soil-moisture and ambient-temperature sensors for the greenhouse
 *    monitoring application (slow-varying signals with noise).
 *
 * Sensors are functions of *true* virtual time, so data gathered before
 * a long outage is genuinely stale afterwards — the physical origin of
 * the paper's data-expiration violations.
 */

#ifndef TICSIM_DEVICE_SENSORS_HPP
#define TICSIM_DEVICE_SENSORS_HPP

#include <cstdint>

#include "support/rng.hpp"
#include "support/units.hpp"

namespace ticsim::device {

/** One accelerometer reading (raw 12-bit-style integer axes). */
struct AccelSample {
    std::int16_t x = 0;
    std::int16_t y = 0;
    std::int16_t z = 0;
};

/**
 * Two-regime synthetic accelerometer: alternates stationary (gravity
 * plus small noise) and moving (large oscillation plus noise) every
 * @p regimePeriod of true time. The ground-truth regime at any time is
 * exposed so experiments can score classification results.
 */
class Accelerometer
{
  public:
    Accelerometer(Rng rng, TimeNs regimePeriod = 500 * kNsPerMs);

    AccelSample sample(TimeNs trueNow);

    /** Ground truth: is the device in the moving regime at @p t? */
    bool movingAt(TimeNs t) const;

    void reset();

  private:
    Rng rng_;
    Rng rngInitial_;
    TimeNs regimePeriod_;
};

/** Slow-varying scalar sensor with Gaussian noise (temp / moisture). */
class ScalarSensor
{
  public:
    /**
     * @param base Mean value of the signal.
     * @param swing Amplitude of the slow sinusoidal component.
     * @param period Period of the slow component.
     * @param noise Standard deviation of the added noise.
     */
    ScalarSensor(Rng rng, double base, double swing, TimeNs period,
                 double noise);

    /** Sampled value at true time @p trueNow (rounded to integer). */
    std::int32_t sample(TimeNs trueNow);

    /** Noise-free signal value (for result verification). */
    double truth(TimeNs t) const;

    void reset();

  private:
    Rng rng_;
    Rng rngInitial_;
    double base_;
    double swing_;
    TimeNs period_;
    double noise_;
};

} // namespace ticsim::device

#endif // TICSIM_DEVICE_SENSORS_HPP
