#include "coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/protocol.hpp"
#include "support/logging.hpp"

namespace ticsim::fleet {

namespace {

using Clock = std::chrono::steady_clock;

/** One live (or finished) worker process attempt. */
struct WorkerProc {
    pid_t pid = -1;
    int outFd = -1; ///< worker stdout -> coordinator
    FrameReader reader;
    std::size_t shard = 0;
    std::vector<std::size_t> assigned;
    Clock::time_point lastSeen;
    bool doneFrame = false;
    bool exited = false;

    bool alive() const { return !exited; }
};

std::string
joinIndices(const std::vector<std::size_t> &indices)
{
    std::string s;
    for (std::size_t k = 0; k < indices.size(); ++k) {
        if (k)
            s += ' ';
        s += std::to_string(indices[k]);
    }
    return s;
}

/** Spawn one worker attempt; @return false if the spawn itself
 *  failed (pipe/fork), which the caller treats as a crash. */
bool
spawnWorker(const FleetConfig &cfg, const std::string &workerBin,
            std::size_t shard, const std::vector<std::size_t> &indices,
            bool dieAfterOne, double remainingMs, WorkerProc &proc)
{
    int toChild[2];
    int fromChild[2];
    if (::pipe(toChild) != 0)
        return false;
    if (::pipe(fromChild) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        return false;
    }
    if (pid == 0) {
        ::dup2(toChild[0], STDIN_FILENO);
        ::dup2(fromChild[1], STDOUT_FILENO);
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        ::execl(workerBin.c_str(), workerBin.c_str(), "--worker",
                static_cast<char *>(nullptr));
        // exec failed: report on stderr and die; the parent sees EOF
        // without a done frame and handles it as a crash.
        std::fprintf(stderr, "ticsfleet: cannot exec '%s': %s\n",
                     workerBin.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    ::close(toChild[0]);
    ::close(fromChild[1]);

    Frame hello;
    hello["type"] = "hello";
    hello["spec"] = sweep::formatSpec(cfg.sweep.grid);
    hello["indices"] = joinIndices(indices);
    hello["shard"] = std::to_string(shard);
    hello["use_cache"] = cfg.sweep.useCache ? "1" : "0";
    hello["cache_dir"] = cfg.sweep.cacheDir;
    hello["budget_ns"] = std::to_string(cfg.sweep.budget);
    hello["unprotected_budget_ns"] =
        std::to_string(cfg.sweep.unprotectedBudget);
    hello["deadline_ms"] =
        remainingMs > 0.0
            ? std::to_string(static_cast<long long>(remainingMs))
            : std::string();
    hello["die_after"] = dieAfterOne ? "1" : "";
    const std::string wire = encodeFrame(hello);
    std::size_t off = 0;
    bool wrote = true;
    while (off < wire.size()) {
        const ssize_t n = ::write(toChild[1], wire.data() + off,
                                  wire.size() - off);
        if (n <= 0) {
            wrote = false;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(toChild[1]); // the worker needs nothing after the hello
    ::fcntl(fromChild[0], F_SETFL, O_NONBLOCK);

    proc = WorkerProc{};
    proc.pid = pid;
    proc.outFd = fromChild[0];
    proc.shard = shard;
    proc.assigned = indices;
    proc.lastSeen = Clock::now();
    if (!wrote) {
        // The child died before reading the hello; let the normal
        // EOF path classify it as a crash.
        warn("ticsfleet: short hello write to shard %zu", shard);
    }
    return true;
}

void
reap(WorkerProc &proc)
{
    if (proc.outFd >= 0) {
        ::close(proc.outFd);
        proc.outFd = -1;
    }
    if (proc.pid > 0) {
        int status = 0;
        ::waitpid(proc.pid, &status, 0);
        proc.pid = -1;
    }
    proc.exited = true;
}

void
killWorker(WorkerProc &proc)
{
    if (proc.pid > 0)
        ::kill(proc.pid, SIGKILL);
    reap(proc);
}

FleetResult
runInProcess(const FleetConfig &cfg)
{
    FleetResult out;
    out.sweep = sweep::runSweep(cfg.sweep);
    out.complete = true;
    out.fleet.workersRequested = 0;
    out.fleet.cellsTotal = out.sweep.cells.size();
    out.fleet.cellsCompleted = out.sweep.cells.size();
    out.fleet.complete = true;
    out.fleet.wallMs = out.sweep.wallMs;
    std::set<std::string> envs;
    for (const auto &cell : out.sweep.cells)
        if (!cell.cell.env.empty())
            envs.insert(cell.cell.env);
    out.fleet.envs.assign(envs.begin(), envs.end());
    return out;
}

} // namespace

std::string
defaultWorkerBin(const char *argv0)
{
    // Prefer the running image's real directory (argv[0] may be a
    // bare name found via PATH).
    char exe[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    std::string dir;
    if (n > 0) {
        exe[n] = '\0';
        dir = exe;
    } else if (argv0) {
        dir = argv0;
    }
    const auto slash = dir.rfind('/');
    if (slash == std::string::npos)
        return "ticssweep";
    return dir.substr(0, slash) + "/ticssweep";
}

FleetResult
runFleet(const FleetConfig &cfg)
{
    if (cfg.workers == 0)
        return runInProcess(cfg);

    // A dead worker must not kill the coordinator through its pipe.
    ::signal(SIGPIPE, SIG_IGN);

    const std::vector<sweep::Cell> cells = cfg.sweep.grid.cells();
    FleetResult out;
    out.sweep.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        out.sweep.cells[i].cell = cells[i];
    std::vector<bool> filled(cells.size(), false);
    std::size_t filledCount = 0;

    const unsigned shardCount = std::max<unsigned>(
        1, std::min<unsigned>(cfg.workers,
                              cells.empty()
                                  ? 1
                                  : static_cast<unsigned>(
                                        cells.size())));

    // Deterministic round-robin deal over the canonical cell order.
    std::vector<std::vector<std::size_t>> shardCells(shardCount);
    for (std::size_t i = 0; i < cells.size(); ++i)
        shardCells[i % shardCount].push_back(i);

    harness::FleetSection &fleet = out.fleet;
    fleet.workersRequested = cfg.workers;
    fleet.cellsTotal = cells.size();
    fleet.workers.resize(shardCount);
    std::vector<unsigned> retriesUsed(shardCount, 0);
    for (std::size_t s = 0; s < shardCount; ++s) {
        fleet.workers[s].shard = s;
        fleet.workers[s].assigned = shardCells[s].size();
    }

    const std::string workerBin =
        cfg.workerBin.empty() ? defaultWorkerBin(nullptr)
                              : cfg.workerBin;
    const auto wallStart = Clock::now();
    const bool haveWall = cfg.wallBudgetS > 0.0;
    const auto wallDeadline =
        wallStart + std::chrono::milliseconds(static_cast<long long>(
                        cfg.wallBudgetS * 1e3));
    const auto remainingMsNow = [&]() -> double {
        if (!haveWall)
            return 0.0;
        const double ms =
            std::chrono::duration<double, std::milli>(wallDeadline -
                                                      Clock::now())
                .count();
        return ms > 1.0 ? ms : 1.0;
    };

    std::vector<WorkerProc> procs(shardCount);
    const auto missingOf = [&](std::size_t shard) {
        std::vector<std::size_t> missing;
        for (const std::size_t i : shardCells[shard])
            if (!filled[i])
                missing.push_back(i);
        return missing;
    };
    const auto launch = [&](std::size_t shard,
                            const std::vector<std::size_t> &indices,
                            bool firstAttempt) {
        const bool chaos =
            firstAttempt &&
            cfg.killWorkerShard >= 0 &&
            static_cast<std::size_t>(cfg.killWorkerShard) == shard;
        if (!spawnWorker(cfg, workerBin, shard, indices, chaos,
                         remainingMsNow(), procs[shard])) {
            warn("ticsfleet: cannot spawn worker for shard %zu",
                 shard);
            procs[shard].exited = true;
            return;
        }
        ++fleet.workersSpawned;
        ++fleet.workers[shard].spawns;
    };

    for (std::size_t s = 0; s < shardCount; ++s)
        launch(s, shardCells[s], /*firstAttempt=*/true);

    const auto hbTimeout = std::chrono::milliseconds(
        static_cast<long long>(cfg.heartbeatTimeoutS * 1e3));

    // One attempt ends: classify it, then either retry its missing
    // cells on a fresh process or give the shard up.
    const auto attemptEnded = [&](std::size_t s, bool timedOut) {
        WorkerProc &p = procs[s];
        const bool clean = p.doneFrame && !timedOut;
        if (timedOut)
            killWorker(p);
        else
            reap(p);
        const std::vector<std::size_t> missing = missingOf(s);
        if (clean || missing.empty())
            return;
        if (timedOut) {
            ++fleet.timeouts;
            fleet.workers[s].timedOut = true;
        } else {
            ++fleet.crashes;
            fleet.workers[s].crashed = true;
        }
        const bool wallOk =
            !haveWall || Clock::now() < wallDeadline;
        if (retriesUsed[s] < cfg.maxRetries && wallOk) {
            ++retriesUsed[s];
            ++fleet.retries;
            fleet.workers[s].assigned += missing.size();
            warn("ticsfleet: shard %zu %s; retry %u/%u over %zu "
                 "remaining cell(s)",
                 s, timedOut ? "missed heartbeats" : "crashed",
                 retriesUsed[s], cfg.maxRetries, missing.size());
            launch(s, missing, /*firstAttempt=*/false);
        } else {
            warn("ticsfleet: shard %zu abandoned with %zu cell(s) "
                 "missing",
                 s, missing.size());
        }
    };

    char buf[65536];
    while (true) {
        if (filledCount == cells.size()) {
            // The grid is covered. Give live workers a brief grace to
            // deliver their in-flight done frames and exit cleanly,
            // then cancel stragglers — anything still running past
            // that can only produce duplicates.
            const auto grace =
                Clock::now() + std::chrono::milliseconds(500);
            while (Clock::now() < grace) {
                std::vector<pollfd> dfds;
                std::vector<std::size_t> dsh;
                for (std::size_t s = 0; s < shardCount; ++s) {
                    if (procs[s].alive()) {
                        dfds.push_back(
                            pollfd{procs[s].outFd, POLLIN, 0});
                        dsh.push_back(s);
                    }
                }
                if (dfds.empty())
                    break;
                ::poll(dfds.data(), dfds.size(), 50);
                for (std::size_t k = 0; k < dfds.size(); ++k) {
                    if (!(dfds[k].revents &
                          (POLLIN | POLLHUP | POLLERR)))
                        continue;
                    WorkerProc &p = procs[dsh[k]];
                    while (true) {
                        const ssize_t n =
                            ::read(p.outFd, buf, sizeof(buf));
                        if (n > 0)
                            continue; // duplicates/done: discard
                        if (n == 0)
                            reap(p);
                        break;
                    }
                }
            }
            for (std::size_t s = 0; s < shardCount; ++s) {
                if (procs[s].alive()) {
                    ++fleet.stragglersCancelled;
                    fleet.workers[s].cancelled = true;
                    killWorker(procs[s]);
                }
            }
            break;
        }
        if (haveWall && Clock::now() >= wallDeadline) {
            warn("ticsfleet: wall budget exhausted with %zu/%zu "
                 "cells done",
                 filledCount, cells.size());
            for (auto &p : procs)
                if (p.alive())
                    killWorker(p);
            break;
        }
        bool anyAlive = false;
        std::vector<pollfd> fds;
        std::vector<std::size_t> fdShard;
        for (std::size_t s = 0; s < shardCount; ++s) {
            if (!procs[s].alive())
                continue;
            anyAlive = true;
            fds.push_back(pollfd{procs[s].outFd, POLLIN, 0});
            fdShard.push_back(s);
        }
        if (!anyAlive)
            break; // every shard finished or was abandoned
        ::poll(fds.data(), fds.size(), 100);

        for (std::size_t k = 0; k < fds.size(); ++k) {
            const std::size_t s = fdShard[k];
            WorkerProc &p = procs[s];
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            bool eof = false;
            while (true) {
                const ssize_t n = ::read(p.outFd, buf, sizeof(buf));
                if (n > 0) {
                    p.reader.feed(buf, static_cast<std::size_t>(n));
                    continue;
                }
                if (n == 0)
                    eof = true;
                break; // EAGAIN or EOF
            }
            Frame frame;
            std::string err;
            while (p.reader.next(frame, err)) {
                p.lastSeen = Clock::now();
                const std::string &type = frame["type"];
                if (type == "result") {
                    const std::size_t i = static_cast<std::size_t>(
                        std::strtoull(frame["index"].c_str(),
                                      nullptr, 10));
                    if (i >= cells.size() ||
                        frame["canonical"] !=
                            cells[i].canonical()) {
                        warn("ticsfleet: shard %zu sent a result "
                             "for an unknown cell; dropping it",
                             s);
                        continue;
                    }
                    if (filled[i]) {
                        ++fleet.duplicateResults;
                        continue;
                    }
                    sweep::SweepCellOutcome &cellOut =
                        out.sweep.cells[i];
                    if (!cellOut.result.decode(frame["result"]) ||
                        !cellOut.result.simMs.decode(
                            frame["dist"])) {
                        warn("ticsfleet: shard %zu sent a "
                             "malformed result; dropping it",
                             s);
                        cellOut.result = sweep::CellResult{};
                        continue;
                    }
                    cellOut.fromCache = frame["cached"] == "1";
                    filled[i] = true;
                    ++filledCount;
                    ++fleet.workers[s].completed;
                } else if (type == "heartbeat") {
                    ++fleet.heartbeats;
                } else if (type == "done") {
                    p.doneFrame = true;
                } else if (type == "error") {
                    warn("ticsfleet: shard %zu error: %s", s,
                         frame["message"].c_str());
                }
            }
            if (!err.empty() && !eof) {
                // A poisoned stream cannot recover; treat the worker
                // as crashed right away.
                warn("ticsfleet: shard %zu protocol error: %s", s,
                     err.c_str());
                killWorker(p);
                attemptEnded(s, /*timedOut=*/false);
                continue;
            }
            if (eof)
                attemptEnded(s, /*timedOut=*/false);
        }

        // Heartbeat timeouts for workers that produced nothing at
        // all this interval.
        const auto now = Clock::now();
        for (std::size_t s = 0; s < shardCount; ++s) {
            WorkerProc &p = procs[s];
            if (p.alive() && now - p.lastSeen > hbTimeout)
                attemptEnded(s, /*timedOut=*/true);
        }
    }

    out.sweep.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  wallStart)
            .count();
    out.sweep.jobs = shardCount;
    if (cfg.sweep.useCache) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!filled[i])
                continue;
            if (out.sweep.cells[i].fromCache)
                ++out.sweep.cacheHits;
            else
                ++out.sweep.cacheMisses;
        }
    }
    out.sweep.aggregates = sweep::aggregateOutcomes(out.sweep.cells);

    out.complete = filledCount == cells.size();
    fleet.cellsCompleted = filledCount;
    fleet.complete = out.complete;
    fleet.wallMs = out.sweep.wallMs;
    std::set<std::string> envs;
    for (const auto &cell : cells)
        if (!cell.env.empty())
            envs.insert(cell.env);
    fleet.envs.assign(envs.begin(), envs.end());
    return out;
}

} // namespace ticsim::fleet
