#include "worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fleet/protocol.hpp"
#include "support/logging.hpp"
#include "sweep/sweep.hpp"

namespace ticsim::fleet {

namespace {

/** Writes frames to an fd whole, under a lock (results vs heartbeats
 *  race); a short write or EPIPE means the coordinator is gone. */
class FrameWriter
{
  public:
    explicit FrameWriter(int fd) : fd_(fd) {}

    bool send(const Frame &f)
    {
        const std::string wire = encodeFrame(f);
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t off = 0;
        while (off < wire.size()) {
            const ssize_t n = ::write(fd_, wire.data() + off,
                                      wire.size() - off);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

  private:
    int fd_;
    std::mutex mutex_;
};

bool
readHello(int fd, Frame &hello, std::string &err)
{
    FrameReader reader;
    char buf[4096];
    while (true) {
        if (reader.next(hello, err))
            return true;
        if (!err.empty())
            return false;
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            err = "EOF before hello";
            return false;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
    }
}

bool
parseIndexList(const std::string &s, std::vector<std::size_t> &out,
               std::string &err)
{
    out.clear();
    std::istringstream is(s);
    std::uint64_t v = 0;
    while (is >> v)
        out.push_back(static_cast<std::size_t>(v));
    if (!is.eof()) {
        err = "bad index list";
        return false;
    }
    return true;
}

} // namespace

int
runWorker()
{
    // Re-point fd 1 at stderr so a stray printf from library code can
    // never corrupt the frame stream; frames go to the saved pipe fd.
    const int protocolFd = ::dup(STDOUT_FILENO);
    if (protocolFd < 0)
        return 1;
    ::dup2(STDERR_FILENO, STDOUT_FILENO);
    FrameWriter out(protocolFd);

    const auto fail = [&](const std::string &message) {
        out.send(Frame{{"type", "error"}, {"message", message}});
        return 1;
    };

    Frame hello;
    std::string err;
    if (!readHello(STDIN_FILENO, hello, err))
        return fail("hello: " + err);
    if (hello["type"] != "hello")
        return fail("expected hello, got '" + hello["type"] + "'");

    sweep::SweepConfig cfg;
    cfg.grid = sweep::GridSpec{};
    cfg.grid.apps.clear();
    cfg.grid.runtimes.clear();
    cfg.grid.supplies.clear();
    cfg.grid.capsUf.clear();
    cfg.grid.segments.clear();
    cfg.grid.envs.clear();
    cfg.grid.seeds.clear();
    if (!sweep::parseGridText(hello["spec"], "<hello>", cfg.grid, err))
        return fail("spec: " + err);
    cfg.useCache = hello["use_cache"] == "1";
    cfg.cacheDir = hello["cache_dir"];
    if (!hello["budget_ns"].empty())
        cfg.budget = static_cast<TimeNs>(
            std::strtoull(hello["budget_ns"].c_str(), nullptr, 10));
    if (!hello["unprotected_budget_ns"].empty())
        cfg.unprotectedBudget = static_cast<TimeNs>(std::strtoull(
            hello["unprotected_budget_ns"].c_str(), nullptr, 10));

    std::vector<std::size_t> indices;
    if (!parseIndexList(hello["indices"], indices, err))
        return fail("indices: " + err);

    const std::string shard = hello["shard"];
    const std::uint64_t dieAfter =
        hello["die_after"].empty()
            ? 0
            : std::strtoull(hello["die_after"].c_str(), nullptr, 10);

    // The wall deadline travels as remaining milliseconds (two hosts
    // share no clock); convert to this process's monotonic clock once
    // and honor it even if the coordinator dies.
    const bool haveDeadline = !hello["deadline_ms"].empty();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            haveDeadline
                ? std::strtoll(hello["deadline_ms"].c_str(), nullptr,
                               10)
                : 0);

    const std::vector<sweep::Cell> cells = cfg.grid.cells();
    for (const std::size_t i : indices) {
        if (i >= cells.size())
            return fail("index " + std::to_string(i) +
                        " out of range (grid has " +
                        std::to_string(cells.size()) + " cells)");
    }

    // Heartbeats: a cheap liveness side-channel so the coordinator
    // can tell "cell is slow" from "process is gone".
    std::mutex hbMutex;
    std::condition_variable hbCv;
    bool stopping = false;
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lock(hbMutex);
        while (!hbCv.wait_for(lock, std::chrono::milliseconds(250),
                              [&] { return stopping; })) {
            out.send(Frame{{"type", "heartbeat"}, {"shard", shard}});
        }
    });
    const auto stopHeartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hbMutex);
            stopping = true;
        }
        hbCv.notify_all();
        heartbeat.join();
    };

    const sweep::ResultCache cache(cfg.useCache ? cfg.cacheDir
                                                : std::string());
    std::uint64_t sent = 0;
    bool deadlineHit = false;
    for (const std::size_t i : indices) {
        if (haveDeadline &&
            std::chrono::steady_clock::now() >= deadline) {
            deadlineHit = true;
            break;
        }
        const sweep::Cell &cell = cells[i];
        sweep::CellResult result;
        bool cached = false;
        if (cache.lookup(cell, result)) {
            cached = true;
        } else {
            const std::string tag = cell.jobIdHex();
            ScopedLogJobTag logTag(tag.c_str());
            result = sweep::runCell(cell, cfg);
            cache.store(cell, result);
        }
        Frame frame;
        frame["type"] = "result";
        frame["index"] = std::to_string(i);
        frame["canonical"] = cell.canonical();
        frame["result"] = result.encode();
        frame["dist"] = result.simMs.encode();
        frame["cached"] = cached ? "1" : "0";
        if (!out.send(frame)) {
            // Coordinator is gone; results so far are in the cache,
            // so a retry (or a fresh run) will reuse them.
            stopHeartbeat();
            return 1;
        }
        ++sent;
        if (dieAfter && sent >= dieAfter) {
            // Chaos hook: die the hard way, mid-shard, exactly like a
            // SIGKILLed production worker. The heartbeat thread dies
            // with the process.
            ::raise(SIGKILL);
        }
    }

    stopHeartbeat();
    Frame done;
    done["type"] = "done";
    done["shard"] = shard;
    done["completed"] = std::to_string(sent);
    done["deadline_hit"] = deadlineHit ? "1" : "0";
    out.send(done);
    return 0;
}

} // namespace ticsim::fleet
