/**
 * @file
 * The fleet worker: the process entry behind `ticssweep --worker`.
 *
 * A worker reads one hello frame from stdin, re-enumerates the grid
 * from the shipped spec text (both sides share GridSpec::cells()'s
 * canonical order, so plain indices identify cells), runs its
 * assigned cells through the exact same runCell()/ResultCache path as
 * the in-process engine, and streams result frames back over stdout.
 * A background thread emits heartbeat frames so the coordinator can
 * tell a slow shard from a dead one.
 *
 * The hello's wall-clock deadline is enforced locally: the worker
 * stops starting new cells once it passes, even if the coordinator
 * that set it is gone. The hello's die_after field is the crash-chaos
 * hook — after sending that many results the worker SIGKILLs itself,
 * which is how CI exercises the coordinator's retry path
 * deterministically.
 */

#ifndef TICSIM_FLEET_WORKER_HPP
#define TICSIM_FLEET_WORKER_HPP

namespace ticsim::fleet {

/**
 * Run the worker protocol over stdin/stdout. @return the process
 * exit code (0 on a clean done, 1 on a protocol or setup error).
 */
int runWorker();

} // namespace ticsim::fleet

#endif // TICSIM_FLEET_WORKER_HPP
