#include "protocol.hpp"

#include <cstdio>

#include "support/json.hpp"

namespace ticsim::fleet {

std::string
encodeFrame(const Frame &f)
{
    std::string json;
    json += '{';
    bool first = true;
    for (const auto &kv : f) {
        if (!first)
            json += ',';
        first = false;
        json += JsonWriter::escape(kv.first);
        json += ':';
        json += JsonWriter::escape(kv.second);
    }
    json += '}';
    return std::to_string(json.size()) + "\n" + json + "\n";
}

namespace {

/** Parse a JSON string literal at s[i] (opening quote). */
bool
parseString(const std::string &s, std::size_t &i, std::string &out,
            std::string &err)
{
    if (i >= s.size() || s[i] != '"') {
        err = "expected '\"'";
        return false;
    }
    ++i;
    out.clear();
    while (i < s.size()) {
        const char c = s[i];
        if (c == '"') {
            ++i;
            return true;
        }
        if (c != '\\') {
            out += c;
            ++i;
            continue;
        }
        if (++i >= s.size())
            break;
        switch (s[i]) {
          case '"':  out += '"'; break;
          case '\\': out += '\\'; break;
          case '/':  out += '/'; break;
          case 'b':  out += '\b'; break;
          case 'f':  out += '\f'; break;
          case 'n':  out += '\n'; break;
          case 'r':  out += '\r'; break;
          case 't':  out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size()) {
                err = "truncated \\u escape";
                return false;
            }
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
                const char h = s[i + static_cast<std::size_t>(k)];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else {
                    err = "bad \\u escape";
                    return false;
                }
            }
            // The writer only \u-escapes control characters, so the
            // single-byte range is all the protocol ever ships.
            if (code > 0xFF) {
                err = "\\u escape outside the protocol's range";
                return false;
            }
            out += static_cast<char>(code);
            i += 4;
            break;
          }
          default:
            err = "unknown escape";
            return false;
        }
        ++i;
    }
    err = "unterminated string";
    return false;
}

} // namespace

bool
parseFrameJson(const std::string &json, Frame &out, std::string &err)
{
    out.clear();
    err.clear();
    std::size_t i = 0;
    if (i >= json.size() || json[i] != '{') {
        err = "frame must be a JSON object";
        return false;
    }
    ++i;
    if (i < json.size() && json[i] == '}')
        return ++i == json.size();
    while (true) {
        std::string key;
        std::string value;
        if (!parseString(json, i, key, err))
            return false;
        if (i >= json.size() || json[i] != ':') {
            err = "expected ':'";
            return false;
        }
        ++i;
        if (!parseString(json, i, value, err))
            return false;
        if (!out.emplace(std::move(key), std::move(value)).second) {
            err = "duplicate key";
            return false;
        }
        if (i >= json.size()) {
            err = "truncated frame";
            return false;
        }
        if (json[i] == ',') {
            ++i;
            continue;
        }
        if (json[i] == '}') {
            ++i;
            if (i != json.size()) {
                err = "trailing bytes after frame";
                return false;
            }
            return true;
        }
        err = "expected ',' or '}'";
        return false;
    }
}

bool
FrameReader::next(Frame &frame, std::string &err)
{
    err.clear();
    if (poisoned_) {
        err = "frame stream poisoned by an earlier error";
        return false;
    }
    const auto nl = buf_.find('\n');
    if (nl == std::string::npos) {
        if (buf_.size() > 32) { // no sane length line is this long
            poisoned_ = true;
            err = "oversized length line";
        }
        return false;
    }
    std::size_t len = 0;
    {
        const std::string line = buf_.substr(0, nl);
        if (line.empty() ||
            line.find_first_not_of("0123456789") != std::string::npos) {
            poisoned_ = true;
            err = "bad length line '" + line + "'";
            return false;
        }
        len = static_cast<std::size_t>(std::stoull(line));
        if (len > (64u << 20)) {
            poisoned_ = true;
            err = "frame length " + line + " is implausible";
            return false;
        }
    }
    // length \n payload \n
    if (buf_.size() < nl + 1 + len + 1)
        return false;
    const std::string payload = buf_.substr(nl + 1, len);
    if (buf_[nl + 1 + len] != '\n') {
        poisoned_ = true;
        err = "missing frame terminator";
        return false;
    }
    buf_.erase(0, nl + 1 + len + 1);
    if (!parseFrameJson(payload, frame, err)) {
        poisoned_ = true;
        return false;
    }
    return true;
}

} // namespace ticsim::fleet
