/**
 * @file
 * The fleet coordinator: shards a GridSpec across N re-exec'd
 * `ticssweep --worker` processes and merges their streamed results
 * into the same SweepResult the in-process engine produces.
 *
 * Determinism argument (see DESIGN.md "Fleet-scale orchestration"):
 *  - both sides enumerate cells with GridSpec::cells(), whose order
 *    is canonical (content-hashed JobIds), so an index fully
 *    identifies a cell;
 *  - every cell runs on a fresh Board seeded only by its
 *    configuration, so WHERE it runs cannot change its outcome;
 *  - results are stored by cell index, never arrival order, and
 *    numeric payloads travel as the repo's %.17g bit-exact text
 *    encodings;
 *  - aggregation reuses sweep::aggregateOutcomes() over the index-
 *    ordered outcomes.
 * Hence a fleet run is byte-identical to a serial run at any worker
 * count, including after a crashed worker's cells are re-run — a
 * duplicate result for a cell is ignored (first wins) because
 * determinism makes every copy identical.
 *
 * Robustness: per-worker heartbeat timeouts, crash detection (EOF
 * without a done frame), bounded retry that re-shards only the dead
 * worker's still-missing cells, straggler cancellation once every
 * cell has a result, and a wall-clock budget forwarded to workers so
 * the cap holds even if the coordinator itself dies.
 */

#ifndef TICSIM_FLEET_COORDINATOR_HPP
#define TICSIM_FLEET_COORDINATOR_HPP

#include <string>

#include "harness/report.hpp"
#include "sweep/sweep.hpp"

namespace ticsim::fleet {

struct FleetConfig {
    sweep::SweepConfig sweep;
    /** Worker processes; 0 = run in-process (the literal ticssweep
     *  engine), which is what CI byte-compares against. */
    unsigned workers = 4;
    /** Worker executable; "" = "ticssweep" beside this binary. */
    std::string workerBin;
    /** Wall-clock cap in seconds for the whole run, forwarded to
     *  every worker as its own deadline; 0 = none. */
    double wallBudgetS = 0.0;
    /** Respawns allowed per shard after a crash/timeout. */
    unsigned maxRetries = 2;
    /** A worker silent (no frame of any kind) this long is dead. */
    double heartbeatTimeoutS = 30.0;
    /**
     * Chaos hook: this shard's first attempt is told to SIGKILL
     * itself after one result, exercising the real crash-retry path
     * deterministically. -1 = off.
     */
    int killWorkerShard = -1;
};

struct FleetResult {
    sweep::SweepResult sweep; ///< index-ordered, same as runSweep()
    harness::FleetSection fleet;
    /** True when every cell produced a result. */
    bool complete = false;
};

/** Run the grid across worker processes per @p cfg. */
FleetResult runFleet(const FleetConfig &cfg);

/** Default worker binary: "ticssweep" in @p argv0's directory. */
std::string defaultWorkerBin(const char *argv0);

} // namespace ticsim::fleet

#endif // TICSIM_FLEET_COORDINATOR_HPP
