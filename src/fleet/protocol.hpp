/**
 * @file
 * Wire protocol between the ticsfleet coordinator and its re-exec'd
 * `ticssweep --worker` children: length-prefixed newline-JSON frames
 * over the worker's stdin/stdout pipes.
 *
 * A frame is one flat JSON object whose values are all strings:
 *
 *     <decimal payload length>\n{"type":"result","index":"7",...}\n
 *
 * Numeric payloads reuse the repo's existing bit-exact text encodings
 * (Cell::canonical(), CellResult::encode(), Distribution::encode(),
 * sweep::formatSpec()), so the protocol needs no general JSON number
 * handling and a cached, fresh, serial or fleet run of the same cell
 * ships byte-identical bytes. The length prefix makes framing
 * unambiguous even though the payload may embed escaped newlines (the
 * hello frame carries a whole grid-spec file).
 *
 * Frame types:
 *   hello      coordinator -> worker: spec + assigned cell indices +
 *              budgets + cache config + wall deadline + chaos hook
 *   result     worker -> coordinator: one cell's outcome
 *   heartbeat  worker -> coordinator: liveness, ~4 Hz
 *   done       worker -> coordinator: shard finished cleanly
 *   error      worker -> coordinator: fatal worker-side failure
 */

#ifndef TICSIM_FLEET_PROTOCOL_HPP
#define TICSIM_FLEET_PROTOCOL_HPP

#include <cstddef>
#include <map>
#include <string>

namespace ticsim::fleet {

/** One protocol frame: flat string-keyed, string-valued object. */
using Frame = std::map<std::string, std::string>;

/** Serialize @p f to its full wire form (length, newline, JSON,
 *  newline). Deterministic: keys are emitted in sorted order. */
std::string encodeFrame(const Frame &f);

/**
 * Parse one frame's JSON payload (no length prefix). Accepts exactly
 * the flat string-object subset encodeFrame() emits, including \uXXXX
 * and short escapes in strings. @return false with @p err set on
 * anything else.
 */
bool parseFrameJson(const std::string &json, Frame &out,
                    std::string &err);

/**
 * Incremental frame decoder over a pipe's byte stream. feed() bytes
 * as they arrive; next() yields complete frames in order.
 */
class FrameReader
{
  public:
    void feed(const char *data, std::size_t n)
    {
        buf_.append(data, n);
    }

    /**
     * @return true and fill @p frame when a complete frame is
     * buffered. Malformed input (bad length line, bad JSON) returns
     * false with @p err non-empty; the stream is then poisoned and
     * never yields again (a corrupt pipe means a broken worker).
     */
    bool next(Frame &frame, std::string &err);

    bool poisoned() const { return poisoned_; }

  private:
    std::string buf_;
    bool poisoned_ = false;
};

} // namespace ticsim::fleet

#endif // TICSIM_FLEET_PROTOCOL_HPP
