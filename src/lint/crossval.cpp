#include "crossval.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/analyzer.hpp"

namespace ticsim::lint {

namespace {

/** Which source file and entry class realize an (app, runtime) pair.
 *  Must stay in step with verify::verifyMatrix's construction list. */
struct PairSource {
    const char *app;
    const char *runtime; ///< nullptr = any runtime of this app
    const char *file;
    const char *entryClass;
};

constexpr PairSource kPairSources[] = {
    {"BC", "Chinchilla-like", "src/apps/bc/bc_chinchilla.cpp",
     "BcChinchillaApp"},
    {"BC", "Alpaca-like", "src/apps/bc/bc_task.cpp", "BcTaskApp"},
    {"BC", nullptr, "src/apps/bc/bc_legacy.cpp", "BcLegacyApp"},
    {"Cuckoo", "Chinchilla-like", "src/apps/cuckoo/cuckoo_chinchilla.cpp",
     "CuckooChinchillaApp"},
    {"Cuckoo", "Alpaca-like", "src/apps/cuckoo/cuckoo_task.cpp",
     "CuckooTaskApp"},
    {"Cuckoo", nullptr, "src/apps/cuckoo/cuckoo_legacy.cpp",
     "CuckooLegacyApp"},
    {"AR", nullptr, "src/apps/ar/ar_legacy.cpp", "ArLegacyApp"},
    {"GHM", nullptr, "src/apps/ghm/ghm.cpp", "GhmPlainApp"},
    {"Study", nullptr, "src/apps/study/study.cpp", "TimekeepTics"},
    {"Relay+guard", nullptr, "src/verify/demo_app.cpp",
     "SensorRelayApp"},
    {"Relay-unguard", nullptr, "src/verify/demo_app.cpp",
     "SensorRelayApp"},
};

const PairSource *
lookupPair(const std::string &app, const std::string &runtime)
{
    for (const PairSource &p : kPairSources) {
        if (app != p.app)
            continue;
        if (!p.runtime || runtime == p.runtime)
            return &p;
    }
    return nullptr;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

bool
coversDynamic(const StaticFinding &s, const verify::Finding &d)
{
    if (d.analysis == "war-possibility")
        return s.rule == kRuleWar && s.subject == d.subject;
    if (d.analysis == "timeliness")
        return s.rule == kRuleTimeliness && s.subject == d.subject;
    if (d.analysis == "io-idempotency")
        return s.rule == kRuleIo;
    if (d.analysis == "energy-progress")
        return s.rule == kRuleSegmentation;
    return false;
}

LintCrossVal
crossValidate(const std::vector<verify::AppVerdict> &verdicts,
              const std::string &sourceDir)
{
    namespace fs = std::filesystem;
    LintCrossVal cv;
    for (const verify::AppVerdict &v : verdicts) {
        LintCrossValRow row;
        row.app = v.app;
        row.runtime = v.runtime;
        row.dynamicCount = v.findings.size();

        const PairSource *src = lookupPair(v.app, v.runtime);
        std::string text;
        std::vector<StaticFinding> statics;
        if (src &&
            readFile((fs::path(sourceDir) / src->file).string(),
                     text)) {
            row.file = src->file;
            row.entryClass = src->entryClass;
            statics = analyzeEntry(src->file, text, src->entryClass,
                                   traitsForRuntime(v.runtime));
        }
        row.staticCount = statics.size();

        std::vector<bool> confirmed(statics.size(), false);
        for (const verify::Finding &d : v.findings) {
            bool matched = false;
            for (std::size_t i = 0; i < statics.size(); ++i) {
                if (coversDynamic(statics[i], d)) {
                    confirmed[i] = true;
                    matched = true;
                }
            }
            if (matched) {
                ++row.matchedCount;
            } else {
                row.unmatched.push_back(d.analysis + "|" + d.subject);
                cv.fullCoverage = false;
            }
        }
        for (std::size_t i = 0; i < statics.size(); ++i) {
            if (confirmed[i])
                ++row.confirmedCount;
            else
                row.extras.push_back(statics[i]);
        }
        cv.rows.push_back(std::move(row));
    }
    return cv;
}

Table
crossValTable(const LintCrossVal &cv)
{
    Table t("ticslint: source-level findings vs recovered model");
    t.header({"App", "Runtime", "Dynamic", "Matched", "Static",
              "Confirmed", "Coverage", "FPrate", "Verdict"});
    for (const LintCrossValRow &r : cv.rows) {
        char cov[32];
        char fpr[32];
        std::snprintf(cov, sizeof(cov), "%.0f%%", 100.0 * r.coverage());
        std::snprintf(fpr, sizeof(fpr), "%.0f%%", 100.0 * r.fpRate());
        t.row()
            .cell(r.app)
            .cell(r.runtime)
            .cell(static_cast<std::uint64_t>(r.dynamicCount))
            .cell(static_cast<std::uint64_t>(r.matchedCount))
            .cell(static_cast<std::uint64_t>(r.staticCount))
            .cell(static_cast<std::uint64_t>(r.confirmedCount))
            .cell(cov)
            .cell(fpr)
            .cell(r.matchedCount == r.dynamicCount ? "covered"
                                                   : "MISSED");
    }
    return t;
}

} // namespace ticsim::lint
