#include "checks.hpp"

#include <set>
#include <string>
#include <tuple>

#include "lint/cfg.hpp"

namespace ticsim::lint {

namespace {

std::string
lineStr(int line)
{
    return "line " + std::to_string(line);
}

// ---- WAR: may-analysis of regions read since the last boundary -------

void
warTransfer(const CfgBlock &b, const RuntimeTraits &traits,
            std::set<std::string> &state)
{
    for (const Action &a : b.actions) {
        switch (a.kind) {
        case ActKind::NvRead:
            state.insert(a.subject);
            break;
        case ActKind::Boundary:
            if (traits.boundaries)
                state.clear();
            break;
        default:
            break;
        }
    }
}

void
checkWar(const Cfg &cfg, const RuntimeTraits &traits,
         const FunctionDef &entry, const std::string &file,
         std::vector<StaticFinding> &out)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<std::set<std::string>> inS(n);
    std::vector<std::set<std::string>> outS(n);
    const auto preds = cfg.predecessors();

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            std::set<std::string> in;
            for (const std::size_t p : preds[b])
                in.insert(outS[p].begin(), outS[p].end());
            std::set<std::string> o = in;
            warTransfer(cfg.blocks[b], traits, o);
            if (in != inS[b] || o != outS[b]) {
                inS[b] = std::move(in);
                outS[b] = std::move(o);
                changed = true;
            }
        }
    }

    for (std::size_t b = 0; b < n; ++b) {
        std::set<std::string> state = inS[b];
        for (const Action &a : cfg.blocks[b].actions) {
            if (a.kind == ActKind::NvWrite) {
                bool hazard = state.count(a.subject) > 0;
                // Reads feeding this write from the same statement:
                // no boundary can sit between value and store.
                for (const std::string &r : a.sameStmtReads) {
                    if (r == a.subject)
                        hazard = true;
                }
                if (hazard) {
                    StaticFinding f;
                    f.rule = kRuleWar;
                    f.subject = a.subject;
                    f.file = file;
                    f.line = a.line;
                    f.function = entry.qualified();
                    f.detail = "NV region '" + a.subject +
                               "' written after a read with no "
                               "checkpoint boundary between (" +
                               lineStr(a.line) + ")";
                    out.push_back(std::move(f));
                }
            }
            // Re-run the transfer action-by-action so the state seen
            // by each write is positionally exact within the block.
            switch (a.kind) {
            case ActKind::NvRead:
                state.insert(a.subject);
                break;
            case ActKind::Boundary:
                if (traits.boundaries)
                    state.clear();
                break;
            default:
                break;
            }
        }
    }
}

// ---- timeliness: must-analysis of freshness-guarded timed ids --------

struct GuardState {
    bool defined = false; ///< false = TOP (unvisited)
    std::set<std::string> guarded;
};

void
guardTransfer(const CfgBlock &b, GuardState &s)
{
    for (const Action &a : b.actions) {
        switch (a.kind) {
        case ActKind::TimedGuard:
            s.guarded.insert(a.subject);
            break;
        case ActKind::Boundary:
            // A checkpoint ends the region; re-execution resumes here
            // without re-evaluating earlier freshness checks.
            s.guarded.clear();
            break;
        default:
            break;
        }
    }
}

void
checkTimeliness(const Cfg &cfg, const FunctionDef &entry,
                const std::string &file,
                std::vector<StaticFinding> &out)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<GuardState> inS(n);
    std::vector<GuardState> outS(n);
    const auto preds = cfg.predecessors();

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            GuardState in;
            if (b == cfg.entry) {
                in.defined = true; // nothing guarded at entry
            } else {
                bool first = true;
                for (const std::size_t p : preds[b]) {
                    if (!outS[p].defined)
                        continue;
                    if (first) {
                        in = outS[p];
                        first = false;
                        continue;
                    }
                    std::set<std::string> meet;
                    for (const std::string &g : in.guarded)
                        if (outS[p].guarded.count(g))
                            meet.insert(g);
                    in.guarded = std::move(meet);
                }
                if (first)
                    continue; // all preds still TOP
            }
            GuardState o = in;
            guardTransfer(cfg.blocks[b], o);
            if (in.defined != inS[b].defined ||
                in.guarded != inS[b].guarded ||
                o.defined != outS[b].defined ||
                o.guarded != outS[b].guarded) {
                inS[b] = std::move(in);
                outS[b] = std::move(o);
                changed = true;
            }
        }
    }

    for (std::size_t b = 0; b < n; ++b) {
        GuardState state = inS[b];
        for (const Action &a : cfg.blocks[b].actions) {
            if (a.kind == ActKind::TimedUse &&
                state.guarded.count(a.subject) == 0) {
                StaticFinding f;
                f.rule = kRuleTimeliness;
                f.subject = a.subject;
                f.file = file;
                f.line = a.line;
                f.function = entry.qualified();
                f.detail = "timed value '" + a.subject +
                           "' consumed with no freshness guard on "
                           "some path (" + lineStr(a.line) + ")";
                out.push_back(std::move(f));
            }
            switch (a.kind) {
            case ActKind::TimedGuard:
                state.guarded.insert(a.subject);
                break;
            case ActKind::Boundary:
                state.guarded.clear();
                break;
            default:
                break;
            }
        }
    }
}

// ---- io + segmentation: structural walks over the inlined tree ------

bool
isCost(ActKind k)
{
    switch (k) {
    case ActKind::NvRead:
    case ActKind::NvWrite:
    case ActKind::TimedUse:
    case ActKind::TimedGuard:
    case ActKind::DirectSend:
    case ActKind::StagedSend:
    case ActKind::Charge:
        return true;
    default:
        return false;
    }
}

void
subtreeProps(const Stmt &s, bool &hasBoundary, bool &hasCost)
{
    for (const Action &a : s.header) {
        if (a.kind == ActKind::Boundary)
            hasBoundary = true;
        if (isCost(a.kind))
            hasCost = true;
    }
    for (const Action &a : s.actions) {
        if (a.kind == ActKind::Boundary)
            hasBoundary = true;
        if (isCost(a.kind))
            hasCost = true;
    }
    for (const Stmt &c : s.children)
        subtreeProps(c, hasBoundary, hasCost);
}

void
walkIoAndLoops(const Stmt &s, const RuntimeTraits &traits,
               const FunctionDef &entry, const std::string &file,
               std::vector<StaticFinding> &out)
{
    for (const Action &a : s.header) {
        if (a.kind == ActKind::DirectSend) {
            StaticFinding f;
            f.rule = kRuleIo;
            f.subject = a.subject;
            f.file = file;
            f.line = a.line;
            f.function = entry.qualified();
            f.detail = "direct peripheral send in a re-executable "
                       "region (" + lineStr(a.line) +
                       "); stage through the virtual radio";
            out.push_back(std::move(f));
        }
    }
    for (const Action &a : s.actions) {
        if (a.kind == ActKind::DirectSend) {
            StaticFinding f;
            f.rule = kRuleIo;
            f.subject = a.subject;
            f.file = file;
            f.line = a.line;
            f.function = entry.qualified();
            f.detail = "direct peripheral send in a re-executable "
                       "region (" + lineStr(a.line) +
                       "); stage through the virtual radio";
            out.push_back(std::move(f));
        }
    }
    if (s.kind == StmtKind::Loop && !s.boundedLoop) {
        bool hasBoundary = false;
        bool hasCost = false;
        for (const Action &a : s.header)
            if (isCost(a.kind))
                hasCost = true;
        for (const Stmt &c : s.children)
            subtreeProps(c, hasBoundary, hasCost);
        if (hasCost && (!hasBoundary || !traits.boundaries)) {
            StaticFinding f;
            f.rule = kRuleSegmentation;
            f.subject = entry.qualified();
            f.file = file;
            f.line = s.line;
            f.function = entry.qualified();
            f.detail =
                !traits.boundaries
                    ? "unbounded working loop (" + lineStr(s.line) +
                          ") and the runtime places no boundaries: "
                          "statically non-terminating under a finite "
                          "charge window"
                    : "unbounded working loop (" + lineStr(s.line) +
                          ") with no boundary in its body: insert a "
                          "trigger point (paper's loop-placement rule)";
            out.push_back(std::move(f));
        }
    }
    for (const Stmt &c : s.children)
        walkIoAndLoops(c, traits, entry, file, out);
}

} // namespace

std::vector<StaticFinding>
runChecks(const SourceProgram &prog, const FunctionDef &entry,
          const RuntimeTraits &traits)
{
    std::vector<StaticFinding> out;
    const Stmt inlined = inlineFunction(prog, entry);
    walkIoAndLoops(inlined, traits, entry, prog.file, out);

    const Cfg cfg = buildCfg(inlined);
    if (!traits.versioned)
        checkWar(cfg, traits, entry, prog.file, out);
    checkTimeliness(cfg, entry, prog.file, out);

    // Deduplicate by (rule, subject, line) — several paths can report
    // the same site — keeping first-seen order.
    std::set<std::tuple<std::string, std::string, int>> seen;
    std::vector<StaticFinding> uniq;
    for (auto &f : out) {
        if (seen.emplace(f.rule, f.subject, f.line).second)
            uniq.push_back(std::move(f));
    }
    return uniq;
}

} // namespace ticsim::lint
