#pragma once

#include <string>
#include <vector>

#include "lint/program.hpp"
#include "support/table.hpp"
#include "verify/verifier.hpp"

namespace ticsim::lint {

/**
 * Source-vs-model cross-validation: the source-level analysis must
 * over-approximate the dynamic-model analysis. For every (app,
 * runtime) verdict of verify::verifyMatrix, the pair's source file is
 * analyzed from the pair's entry class under the pair's runtime
 * traits, and each dynamic finding must be covered by a source-level
 * finding:
 *
 *   war-possibility  <-> war           (same NV region)
 *   timeliness       <-> timeliness    (same timed variable)
 *   io-idempotency   <-> io            (kind-level: one peripheral)
 *   energy-progress  <-> segmentation  (kind-level: dynamic regions
 *                                       have no source line)
 *
 * Static findings with no dynamic counterpart are the pair's false
 * positives — expected for a path-insensitive over-approximation
 * (e.g. a WAR span on a path calibration never executed) — and are
 * reported per pair and gated against the committed baseline.
 */
struct LintCrossValRow {
    std::string app;
    std::string runtime;
    std::string file;
    std::string entryClass;
    std::size_t dynamicCount = 0;   ///< dynamic findings for the pair
    std::size_t matchedCount = 0;   ///< ... covered by a static finding
    std::size_t staticCount = 0;    ///< static findings for the pair
    std::size_t confirmedCount = 0; ///< ... matching a dynamic finding
    std::vector<std::string> unmatched; ///< "analysis|subject" misses
    std::vector<StaticFinding> extras;  ///< static-only (FPs)

    double coverage() const
    {
        return dynamicCount == 0
                   ? 1.0
                   : static_cast<double>(matchedCount) /
                         static_cast<double>(dynamicCount);
    }
    double fpRate() const
    {
        return staticCount == 0
                   ? 0.0
                   : static_cast<double>(staticCount - confirmedCount) /
                         static_cast<double>(staticCount);
    }
};

struct LintCrossVal {
    std::vector<LintCrossValRow> rows;
    bool fullCoverage = true; ///< every dynamic finding matched
};

/** Whether one dynamic finding is covered by one static finding. */
bool coversDynamic(const StaticFinding &s, const verify::Finding &d);

/**
 * Cross-validate @p verdicts against the sources under @p sourceDir.
 * Pairs whose source file cannot be read come back with
 * dynamicCount set and nothing matched (so coverage gates fail loudly
 * instead of vacuously passing).
 */
LintCrossVal crossValidate(const std::vector<verify::AppVerdict> &verdicts,
                           const std::string &sourceDir);

/** Per-pair summary table for the CLI. */
Table crossValTable(const LintCrossVal &cv);

} // namespace ticsim::lint
