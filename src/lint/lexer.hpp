#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ticsim::lint {

/**
 * Minimal C++ lexer for the source subset used by src/apps/ and
 * examples/. Produces a flat token stream with line numbers; comments
 * and preprocessor lines are skipped, string literals (including raw
 * strings, which study.cpp uses to embed code-like text) collapse to a
 * single token so brace/paren balancing downstream never sees their
 * contents.
 */
enum class TokKind : std::uint8_t {
    Ident,
    Number,
    String,
    CharLit,
    Punct,
    End,
};

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    int line = 1;

    bool is(const char *t) const { return text == t; }
    bool isIdent() const { return kind == TokKind::Ident; }
};

std::vector<Token> tokenize(const std::string &src);

} // namespace ticsim::lint
