#pragma once

#include <string>
#include <vector>

#include "lint/program.hpp"

namespace ticsim::lint {

/** One analyzed translation unit. */
struct FileReport {
    std::string file;            ///< display path (repo-relative)
    std::size_t functions = 0;   ///< function definitions parsed
    std::vector<StaticFinding> findings;
};

/**
 * Analyze one translation unit's text. Every call-graph root — a
 * function no other function in the file calls — is taken as an entry
 * point under @p traits, and the per-entry findings are merged and
 * deduplicated by (rule, subject, line). Class roots are typically
 * `main` and the constructor; host `main` functions parse too but
 * carry no NV bindings, so they stay silent.
 */
FileReport analyzeText(const std::string &displayName,
                       const std::string &text,
                       const RuntimeTraits &traits);

/** analyzeText over a file on disk; throws std::runtime_error if
 *  unreadable. */
FileReport analyzeFile(const std::string &path,
                       const std::string &displayName,
                       const RuntimeTraits &traits);

/**
 * The dogfood source set, repo-relative: every .cpp under examples/
 * and src/apps/ (recursively), plus the SensorRelay demo app. Sorted,
 * so reports and baselines are stable.
 */
std::vector<std::string> defaultSourceSet(const std::string &sourceDir);

/**
 * Run one pair-style analysis: parse @p text and check only the entry
 * `entryClass::main` (falling back to the constructor) under
 * @p traits. Used by the cross-validation mode, where each
 * (app, runtime) pair names its entry class. Returns empty when the
 * class or entry is missing.
 */
std::vector<StaticFinding> analyzeEntry(const std::string &displayName,
                                        const std::string &text,
                                        const std::string &entryClass,
                                        const RuntimeTraits &traits);

/** Default traits for whole-file mode: boundaries exist (legacy code
 *  is meant to run under an instrumenting runtime) but writes are not
 *  versioned — the protection the instrumentation is there to add. */
inline RuntimeTraits fileModeTraits()
{
    return RuntimeTraits{/*boundaries=*/true, /*versioned=*/false};
}

/** Traits of each verifier runtime name ("TICS", "plain-C", ...). */
RuntimeTraits traitsForRuntime(const std::string &runtime);

} // namespace ticsim::lint
