#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ticsim::lint {

/**
 * Source-level program model recovered purely syntactically: per-class
 * NV bindings (from constructor init lists), per-function statement
 * trees with the actions the dataflow checks care about, and enough
 * loop/branch structure to build CFGs. Nothing here ever executes the
 * program — this is the compile-time view the paper's toolchain has.
 */

/** How a member binds to non-volatile state. */
enum class BindKind : std::uint8_t {
    NvRegion, ///< nv<T> / nvArray<T, N>: a named NVRAM region
    Timed,    ///< tics::Expiring<T>: timed data with a lifetime
    Channel,  ///< taskrt channel: double-buffered, versioned by design
};

struct NvBinding {
    std::string member; ///< e.g. "totalBits_"
    std::string region; ///< e.g. "bc.totalBits" (== timed id for Timed)
    BindKind kind = BindKind::NvRegion;
    int line = 0;
};

/** One atomic step the dataflow interprets. */
enum class ActKind : std::uint8_t {
    NvRead,      ///< read of an NV region
    NvWrite,     ///< write of an NV region
    TimedGuard,  ///< freshness established: assignTimed or fresh()/expires
    TimedUse,    ///< instrumented consume: Expiring::read(instance)
    Boundary,    ///< potential checkpoint: triggerPoint/endAtomic(true)/...
    DirectSend,  ///< unguarded peripheral I/O: radioSend/sendAM
    StagedSend,  ///< VirtualRadio ->send(): staged, replay-safe
    Charge,      ///< modeled work (board charge) — energy cost marker
    Call,        ///< call to a function defined in the same file
};

struct Action {
    ActKind kind = ActKind::NvRead;
    std::string subject; ///< region / timed id / "radio" / callee name
    int line = 0;
    /** For NvWrite produced by splitting `x = ...x...`: regions read on
     *  the right-hand side of the same statement. A boundary inlined
     *  mid-expression cannot protect these (the dependent value is
     *  in flight), so the WAR check consults them unconditionally. */
    std::vector<std::string> sameStmtReads;
};

enum class StmtKind : std::uint8_t { Seq, Actions, If, Loop };

struct Stmt {
    StmtKind kind = StmtKind::Seq;
    std::vector<Action> actions; ///< Actions leaves only
    std::vector<Stmt> children;  ///< Seq body; If: [then(, else)]; Loop: [body]
    std::vector<Action> header;  ///< If/Loop: condition actions
    bool hasElse = false;
    bool boundedLoop = false; ///< literal or k-constant trip bound
    int line = 0;
};

struct FunctionDef {
    std::string className; ///< "" for free functions
    std::string name;
    bool isCtor = false;
    Stmt body;
    int line = 0;

    std::string qualified() const
    {
        return className.empty() ? name : className + "::" + name;
    }
};

struct SourceProgram {
    std::string file; ///< display path
    std::vector<FunctionDef> functions;
    /** className -> bindings declared in its constructor init list. */
    std::map<std::string, std::vector<NvBinding>> bindings;

    const FunctionDef *findFunction(const std::string &cls,
                                    const std::string &name) const;
    const NvBinding *findBinding(const std::string &cls,
                                 const std::string &member) const;
};

/** Parse one translation unit's text into the source model. */
SourceProgram parseSource(const std::string &file, const std::string &text);

/**
 * What the target runtime guarantees, from the analysis' point of
 * view. `boundaries` — trigger points are potential checkpoints that
 * close a re-execution span; `versioned` — NV writes are undo-logged /
 * double-buffered, so WAR spans cannot corrupt state.
 */
struct RuntimeTraits {
    bool boundaries = true;
    bool versioned = false;
};

/** Rule identifiers, stable across reports and baselines. */
inline constexpr const char *kRuleWar = "war";
inline constexpr const char *kRuleTimeliness = "timeliness";
inline constexpr const char *kRuleIo = "io";
inline constexpr const char *kRuleSegmentation = "segmentation";

struct StaticFinding {
    std::string rule;    ///< war | timeliness | io | segmentation
    std::string subject; ///< region / timed id / "radio" / "loop"
    std::string file;
    int line = 0;
    std::string function; ///< analysis entry point (qualified)
    std::string detail;
};

} // namespace ticsim::lint
