#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lint/checks.hpp"

namespace ticsim::lint {

namespace {

void
collectCalls(const Stmt &s, std::set<std::string> &called)
{
    for (const Action &a : s.header)
        if (a.kind == ActKind::Call)
            called.insert(a.subject);
    for (const Action &a : s.actions)
        if (a.kind == ActKind::Call)
            called.insert(a.subject);
    for (const Stmt &c : s.children)
        collectCalls(c, called);
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("ticslint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

RuntimeTraits
traitsForRuntime(const std::string &runtime)
{
    // plain-C is the unprotected baseline: trigger points compile to
    // nothing and no write is versioned. Every other runtime in the
    // matrix checkpoints at boundaries and versions NV state (undo
    // log, double buffering, or task channels) — including
    // MementOS-like, whose genesis snapshot closes the
    // first-checkpoint window (DESIGN.md Section 8).
    if (runtime == "plain-C")
        return RuntimeTraits{false, false};
    return RuntimeTraits{true, true};
}

FileReport
analyzeText(const std::string &displayName, const std::string &text,
            const RuntimeTraits &traits)
{
    const SourceProgram prog = parseSource(displayName, text);

    std::set<std::string> called;
    for (const FunctionDef &f : prog.functions)
        collectCalls(f.body, called);

    FileReport rep;
    rep.file = displayName;
    rep.functions = prog.functions.size();
    std::set<std::tuple<std::string, std::string, int>> seen;
    for (const FunctionDef &f : prog.functions) {
        if (called.count(f.qualified()))
            continue; // not a root: analyzed inline at its call sites
        for (auto &fd : runChecks(prog, f, traits)) {
            if (seen.emplace(fd.rule, fd.subject, fd.line).second)
                rep.findings.push_back(std::move(fd));
        }
    }
    std::sort(rep.findings.begin(), rep.findings.end(),
              [](const StaticFinding &a, const StaticFinding &b) {
                  return std::tie(a.line, a.rule, a.subject) <
                         std::tie(b.line, b.rule, b.subject);
              });
    return rep;
}

FileReport
analyzeFile(const std::string &path, const std::string &displayName,
            const RuntimeTraits &traits)
{
    return analyzeText(displayName, readFileOrThrow(path), traits);
}

std::vector<std::string>
defaultSourceSet(const std::string &sourceDir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> rel;
    const auto addTree = [&](const std::string &sub) {
        const fs::path root = fs::path(sourceDir) / sub;
        if (!fs::exists(root))
            return;
        for (const auto &e : fs::recursive_directory_iterator(root)) {
            if (!e.is_regular_file() ||
                e.path().extension() != ".cpp")
                continue;
            rel.push_back(
                fs::relative(e.path(), sourceDir).generic_string());
        }
    };
    addTree("examples");
    addTree("src/apps");
    const fs::path demo =
        fs::path(sourceDir) / "src/verify/demo_app.cpp";
    if (fs::exists(demo))
        rel.push_back("src/verify/demo_app.cpp");
    std::sort(rel.begin(), rel.end());
    return rel;
}

std::vector<StaticFinding>
analyzeEntry(const std::string &displayName, const std::string &text,
             const std::string &entryClass, const RuntimeTraits &traits)
{
    const SourceProgram prog = parseSource(displayName, text);
    const FunctionDef *entry = prog.findFunction(entryClass, "main");
    if (!entry)
        entry = prog.findFunction(entryClass, entryClass); // ctor
    if (!entry)
        return {};
    auto findings = runChecks(prog, *entry, traits);
    std::sort(findings.begin(), findings.end(),
              [](const StaticFinding &a, const StaticFinding &b) {
                  return std::tie(a.line, a.rule, a.subject) <
                         std::tie(b.line, b.rule, b.subject);
              });
    return findings;
}

} // namespace ticsim::lint
