#include "cfg.hpp"

#include <set>
#include <string>
#include <utility>

namespace ticsim::lint {

std::vector<std::vector<std::size_t>>
Cfg::predecessors() const
{
    std::vector<std::vector<std::size_t>> preds(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b)
        for (const std::size_t s : blocks[b].succ)
            preds[s].push_back(b);
    return preds;
}

namespace {

// ---- inliner ----------------------------------------------------------

struct Inliner {
    const SourceProgram &prog;
    std::set<std::string> active; ///< qualified names on the call stack

    const FunctionDef *resolve(const std::string &subject) const
    {
        const std::size_t sep = subject.find("::");
        if (sep == std::string::npos)
            return prog.findFunction("", subject);
        return prog.findFunction(subject.substr(0, sep),
                                 subject.substr(sep + 2));
    }

    /** Inline one function body; returns a Seq. */
    Stmt inlineBody(const FunctionDef &fn)
    {
        active.insert(fn.qualified());
        Stmt out = inlineStmt(fn.body);
        active.erase(fn.qualified());
        return out;
    }

    /** Expand Call actions in an action run into [pre-call actions,
     *  callee body, ...] statements appended to @p out. */
    void expandActions(const std::vector<Action> &acts, int line,
                       std::vector<Stmt> &out)
    {
        Stmt cur;
        cur.kind = StmtKind::Actions;
        cur.line = line;
        const auto flush = [&] {
            if (cur.actions.empty())
                return;
            out.push_back(cur);
            cur.actions.clear();
        };
        for (const Action &a : acts) {
            if (a.kind != ActKind::Call) {
                cur.actions.push_back(a);
                continue;
            }
            const FunctionDef *callee = resolve(a.subject);
            if (!callee || active.count(callee->qualified())) {
                // Unresolved or recursive: keep the (inert) marker.
                cur.actions.push_back(a);
                continue;
            }
            flush();
            out.push_back(inlineBody(*callee));
        }
        flush();
    }

    Stmt inlineStmt(const Stmt &s)
    {
        switch (s.kind) {
        case StmtKind::Actions: {
            Stmt seq;
            seq.kind = StmtKind::Seq;
            seq.line = s.line;
            expandActions(s.actions, s.line, seq.children);
            return seq;
        }
        case StmtKind::Seq: {
            Stmt seq;
            seq.kind = StmtKind::Seq;
            seq.line = s.line;
            for (const Stmt &c : s.children)
                seq.children.push_back(inlineStmt(c));
            return seq;
        }
        case StmtKind::If:
        case StmtKind::Loop: {
            Stmt node;
            node.kind = s.kind;
            node.line = s.line;
            node.hasElse = s.hasElse;
            node.boundedLoop = s.boundedLoop;
            // Header calls: hoist the callee body in front of the
            // statement (covers the evaluation that reaches it; the
            // corpus has no NV-acting calls in conditions, this is a
            // documented approximation).
            Stmt hoisted;
            hoisted.kind = StmtKind::Seq;
            for (const Action &a : s.header) {
                if (a.kind != ActKind::Call) {
                    node.header.push_back(a);
                    continue;
                }
                const FunctionDef *callee = resolve(a.subject);
                if (!callee || active.count(callee->qualified())) {
                    node.header.push_back(a);
                    continue;
                }
                hoisted.children.push_back(inlineBody(*callee));
            }
            for (const Stmt &c : s.children)
                node.children.push_back(inlineStmt(c));
            if (hoisted.children.empty())
                return node;
            hoisted.children.push_back(std::move(node));
            return hoisted;
        }
        }
        return Stmt{};
    }
};

// ---- CFG construction -------------------------------------------------

struct Builder {
    Cfg cfg;
    std::size_t cur = 0;

    std::size_t newBlock()
    {
        cfg.blocks.emplace_back();
        return cfg.blocks.size() - 1;
    }

    void edge(std::size_t from, std::size_t to)
    {
        cfg.blocks[from].succ.push_back(to);
    }

    void append(const std::vector<Action> &acts)
    {
        auto &dst = cfg.blocks[cur].actions;
        dst.insert(dst.end(), acts.begin(), acts.end());
    }

    void build(const Stmt &s)
    {
        switch (s.kind) {
        case StmtKind::Actions:
            append(s.actions);
            return;
        case StmtKind::Seq:
            for (const Stmt &c : s.children)
                build(c);
            return;
        case StmtKind::If: {
            append(s.header);
            const std::size_t fork = cur;
            const std::size_t thenEntry = newBlock();
            edge(fork, thenEntry);
            cur = thenEntry;
            if (!s.children.empty())
                build(s.children[0]);
            const std::size_t thenExit = cur;
            std::size_t elseExit = fork;
            if (s.hasElse && s.children.size() > 1) {
                const std::size_t elseEntry = newBlock();
                edge(fork, elseEntry);
                cur = elseEntry;
                build(s.children[1]);
                elseExit = cur;
            }
            const std::size_t join = newBlock();
            edge(thenExit, join);
            edge(elseExit, join);
            cur = join;
            return;
        }
        case StmtKind::Loop: {
            const std::size_t before = cur;
            const std::size_t header = newBlock();
            edge(before, header);
            cur = header;
            append(s.header);
            const std::size_t headerExit = cur;
            const std::size_t bodyEntry = newBlock();
            edge(headerExit, bodyEntry);
            cur = bodyEntry;
            if (!s.children.empty())
                build(s.children[0]);
            edge(cur, header); // back edge
            const std::size_t after = newBlock();
            edge(headerExit, after);
            cur = after;
            return;
        }
        }
    }
};

} // namespace

Stmt
inlineFunction(const SourceProgram &prog, const FunctionDef &fn)
{
    Inliner in{prog, {}};
    return in.inlineBody(fn);
}

Cfg
buildCfg(const Stmt &body)
{
    Builder b;
    b.cfg.entry = b.newBlock();
    b.cur = b.cfg.entry;
    b.build(body);
    b.cfg.exit = b.cur;
    return b.cfg;
}

} // namespace ticsim::lint
