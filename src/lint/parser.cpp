#include "program.hpp"

#include <algorithm>
#include <cstddef>

#include "lint/lexer.hpp"

namespace ticsim::lint {

const FunctionDef *
SourceProgram::findFunction(const std::string &cls,
                            const std::string &name) const
{
    for (const auto &f : functions)
        if (f.className == cls && f.name == name)
            return &f;
    return nullptr;
}

const NvBinding *
SourceProgram::findBinding(const std::string &cls,
                           const std::string &member) const
{
    const auto it = bindings.find(cls);
    if (it == bindings.end())
        return nullptr;
    for (const auto &b : it->second)
        if (b.member == member)
            return &b;
    return nullptr;
}

namespace {

/** Raw span of a not-yet-parsed function body. */
struct PendingFunction {
    std::string className;
    std::string name;
    bool isCtor = false;
    int line = 0;
    std::size_t bodyBegin = 0; ///< index of '{'
    std::size_t bodyEnd = 0;   ///< index of matching '}'
};

class Parser {
public:
    Parser(const std::vector<Token> &toks, SourceProgram &out)
        : t_(toks), out_(out)
    {
    }

    void run()
    {
        scanDecls("");
        for (const auto &pf : pending_) {
            FunctionDef fn;
            fn.className = pf.className;
            fn.name = pf.name;
            fn.isCtor = pf.isCtor;
            fn.line = pf.line;
            std::size_t i = pf.bodyBegin + 1;
            fn.body = parseBlock(i, pf.bodyEnd, pf.className);
            out_.functions.push_back(std::move(fn));
        }
    }

private:
    const std::vector<Token> &t_;
    SourceProgram &out_;
    std::vector<PendingFunction> pending_;

    bool atEnd(std::size_t i) const
    {
        return i >= t_.size() || t_[i].kind == TokKind::End;
    }

    /** Index just past the group opened at `i` (which must be an
     *  opener); balances (), [], {}. */
    std::size_t skipGroup(std::size_t i) const
    {
        int depth = 0;
        for (; !atEnd(i); ++i) {
            const std::string &x = t_[i].text;
            if (x == "(" || x == "[" || x == "{")
                ++depth;
            else if (x == ")" || x == "]" || x == "}") {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return i;
    }

    /** Skip to just past the next ';' at group depth zero. */
    std::size_t skipToSemicolon(std::size_t i) const
    {
        while (!atEnd(i)) {
            const std::string &x = t_[i].text;
            if (x == ";")
                return i + 1;
            if (x == "(" || x == "[" || x == "{") {
                i = skipGroup(i);
                continue;
            }
            ++i;
        }
        return i;
    }

    // ---- pass 1: declarations -----------------------------------------

    /** Scan declarations until the matching '}' of the enclosing scope
     *  (or end of file at top level). */
    void scanDecls(const std::string &cls)
    {
        while (!atEnd(pos_)) {
            const Token &tok = t_[pos_];
            if (tok.is("}")) {
                ++pos_;
                return;
            }
            if (tok.is("namespace")) {
                ++pos_;
                while (!atEnd(pos_) &&
                       (t_[pos_].isIdent() || t_[pos_].is("::")))
                    ++pos_;
                if (!atEnd(pos_) && t_[pos_].is("{")) {
                    ++pos_;
                    scanDecls(cls);
                } else {
                    pos_ = skipToSemicolon(pos_);
                }
                continue;
            }
            if (tok.is("struct") || tok.is("class")) {
                ++pos_;
                std::string name;
                while (!atEnd(pos_) && (t_[pos_].isIdent() ||
                                        t_[pos_].is("::"))) {
                    if (t_[pos_].isIdent())
                        name = t_[pos_].text;
                    ++pos_;
                }
                // Base clause / alignment / final up to '{' or ';'.
                while (!atEnd(pos_) && !t_[pos_].is("{") &&
                       !t_[pos_].is(";")) {
                    if (t_[pos_].is("("))
                        pos_ = skipGroup(pos_);
                    else
                        ++pos_;
                }
                if (!atEnd(pos_) && t_[pos_].is("{")) {
                    ++pos_;
                    scanDecls(name);
                    if (!atEnd(pos_) && t_[pos_].is(";"))
                        ++pos_;
                } else if (!atEnd(pos_)) {
                    ++pos_; // forward declaration ';'
                }
                continue;
            }
            if (tok.is("enum") || tok.is("using") || tok.is("typedef") ||
                tok.is("template") || tok.is("friend") ||
                tok.is("extern") || tok.is("public") ||
                tok.is("private") || tok.is("protected")) {
                // `public:` etc. are two tokens; the rest run to ';'
                // (balancing any braces, e.g. enum bodies).
                if (tok.is("public") || tok.is("private") ||
                    tok.is("protected")) {
                    ++pos_;
                    if (!atEnd(pos_) && t_[pos_].is(":"))
                        ++pos_;
                    continue;
                }
                pos_ = skipToSemicolon(pos_);
                continue;
            }
            scanMemberOrFunction(cls);
        }
    }

    /** One declaration at class/namespace scope: either a function
     *  definition (recorded for pass 2) or something to skip. */
    void scanMemberOrFunction(const std::string &cls)
    {
        const std::size_t start = pos_;
        std::size_t i = start;
        // Collect the header up to the first depth-0 '=' (initializer),
        // ';' (plain declaration) or '{' (function body / brace init).
        std::vector<std::size_t> flat; // depth-0 token indices
        while (!atEnd(i)) {
            const std::string &x = t_[i].text;
            if (x == ";") {
                pos_ = i + 1;
                return;
            }
            if (x == "=") {
                pos_ = skipToSemicolon(i);
                return;
            }
            if (x == "{")
                break;
            if (x == "(" || x == "[") {
                flat.push_back(i);
                i = skipGroup(i);
                continue;
            }
            if (x == ")" || x == "]" || x == "}") {
                // Unbalanced close: bail out conservatively.
                pos_ = i + 1;
                return;
            }
            flat.push_back(i);
            ++i;
        }
        if (atEnd(i)) {
            pos_ = i;
            return;
        }
        // `i` is a depth-0 '{'. Find the parameter list: first depth-0
        // '(' preceded by an identifier.
        std::size_t paren = t_.size();
        std::string fname;
        for (std::size_t k = 0; k < flat.size(); ++k) {
            const std::size_t idx = flat[k];
            if (t_[idx].is("(") && k > 0 && t_[flat[k - 1]].isIdent()) {
                paren = idx;
                fname = t_[flat[k - 1]].text;
                break;
            }
        }
        if (paren == t_.size() || fname.empty()) {
            // Brace initializer or something unrecognized: skip it.
            pos_ = skipToSemicolon(i);
            return;
        }
        // Qualifier: `Class :: name (`.
        std::string fcls = cls;
        for (std::size_t k = 0; k + 2 < flat.size(); ++k) {
            if (t_[flat[k]].isIdent() && t_[flat[k + 1]].is("::") &&
                flat[k + 2] == paren - 1 && t_[flat[k + 2]].isIdent())
                fcls = t_[flat[k]].text;
        }
        PendingFunction pf;
        pf.className = fcls;
        pf.name = fname;
        pf.isCtor = !fcls.empty() && fname == fcls;
        pf.line = t_[paren].line;
        if (pf.isCtor)
            scanInitList(fcls, skipGroup(paren), i);
        pf.bodyBegin = i;
        pf.bodyEnd = skipGroup(i) - 1;
        pos_ = pf.bodyEnd + 1;
        // Trailing ';' after e.g. a class-scope definition is consumed
        // by the caller loop as an empty statement.
        pending_.push_back(std::move(pf));
    }

    /** Classify constructor init-list entries between the parameter
     *  list and the body as NV bindings. */
    void scanInitList(const std::string &cls, std::size_t from,
                      std::size_t bodyBrace)
    {
        std::size_t i = from;
        while (i < bodyBrace) {
            if (t_[i].isIdent() && i + 1 < bodyBrace &&
                t_[i + 1].is("(")) {
                const std::string member = t_[i].text;
                const std::size_t open = i + 1;
                const std::size_t close = skipGroup(open) - 1;
                classifyBinding(cls, member, open + 1, close,
                                t_[i].line);
                i = close + 1;
                continue;
            }
            ++i;
        }
    }

    void classifyBinding(const std::string &cls, const std::string &member,
                         std::size_t beg, std::size_t end, int line)
    {
        bool sawNvram = false;
        std::string region;
        std::size_t commas = 0;
        int depth = 0;
        for (std::size_t i = beg; i < end; ++i) {
            const std::string &x = t_[i].text;
            if (x == "(" || x == "[" || x == "{")
                ++depth;
            else if (x == ")" || x == "]" || x == "}")
                --depth;
            else if (x == "," && depth == 0)
                ++commas;
            else if (t_[i].isIdent() && x == "nvram")
                sawNvram = true;
            else if (t_[i].kind == TokKind::String && region.empty() &&
                     x.size() >= 2)
                region = x.substr(1, x.size() - 2);
        }
        if (!sawNvram || region.empty())
            return;
        NvBinding b;
        b.member = member;
        b.region = region;
        b.line = line;
        // First argument is the runtime (e.g. `rt, b.nvram(), ...`):
        // 4-arg form is Expiring<T> (timed), 3-arg form a task channel.
        const bool runtimeFirst = beg < end && t_[beg].isIdent() &&
                                  beg + 1 < end && t_[beg + 1].is(",");
        if (runtimeFirst)
            b.kind = commas >= 3 ? BindKind::Timed : BindKind::Channel;
        else
            b.kind = BindKind::NvRegion;
        out_.bindings[cls].push_back(std::move(b));
    }

    // ---- pass 2: statement trees --------------------------------------

    Stmt parseBlock(std::size_t &i, std::size_t end,
                    const std::string &cls)
    {
        Stmt seq;
        seq.kind = StmtKind::Seq;
        seq.line = i < t_.size() ? t_[i].line : 0;
        while (i < end && !atEnd(i)) {
            if (t_[i].is("}")) {
                ++i;
                break;
            }
            parseStatement(i, end, cls, seq.children);
        }
        return seq;
    }

    void parseStatement(std::size_t &i, std::size_t end,
                        const std::string &cls, std::vector<Stmt> &out)
    {
        if (i >= end || atEnd(i))
            return;
        const Token &tok = t_[i];
        if (tok.is(";")) {
            ++i;
            return;
        }
        if (tok.is("{")) {
            ++i;
            out.push_back(parseBlock(i, end, cls));
            return;
        }
        if (tok.is("if")) {
            ++i;
            Stmt s;
            s.kind = StmtKind::If;
            s.line = tok.line;
            if (i < end && t_[i].is("(")) {
                const std::size_t close = skipGroup(i) - 1;
                std::vector<Stmt> condStmts;
                scanExpr(i + 1, close, cls, condStmts);
                // Condition actions run before the fork; hoist leaf
                // actions, keep any nested structure as predecessors.
                for (auto &cs : condStmts) {
                    if (cs.kind == StmtKind::Actions)
                        for (auto &a : cs.actions)
                            s.header.push_back(a);
                    else
                        out.push_back(std::move(cs));
                }
                i = close + 1;
            }
            std::vector<Stmt> thenStmts;
            parseStatement(i, end, cls, thenStmts);
            Stmt thenSeq;
            thenSeq.kind = StmtKind::Seq;
            thenSeq.children = std::move(thenStmts);
            s.children.push_back(std::move(thenSeq));
            if (i < end && t_[i].is("else")) {
                ++i;
                std::vector<Stmt> elseStmts;
                parseStatement(i, end, cls, elseStmts);
                Stmt elseSeq;
                elseSeq.kind = StmtKind::Seq;
                elseSeq.children = std::move(elseStmts);
                s.children.push_back(std::move(elseSeq));
                s.hasElse = true;
            }
            out.push_back(std::move(s));
            return;
        }
        if (tok.is("while")) {
            ++i;
            Stmt s;
            s.kind = StmtKind::Loop;
            s.line = tok.line;
            std::vector<const Token *> cond;
            if (i < end && t_[i].is("(")) {
                const std::size_t close = skipGroup(i) - 1;
                for (std::size_t k = i + 1; k < close; ++k)
                    cond.push_back(&t_[k]);
                std::vector<Stmt> condStmts;
                scanExpr(i + 1, close, cls, condStmts);
                for (auto &cs : condStmts)
                    if (cs.kind == StmtKind::Actions)
                        for (auto &a : cs.actions)
                            s.header.push_back(a);
                i = close + 1;
            }
            s.boundedLoop = boundedCondition(cond);
            std::vector<Stmt> body;
            parseStatement(i, end, cls, body);
            Stmt bodySeq;
            bodySeq.kind = StmtKind::Seq;
            bodySeq.children = std::move(body);
            s.children.push_back(std::move(bodySeq));
            out.push_back(std::move(s));
            return;
        }
        if (tok.is("do")) {
            ++i;
            Stmt s;
            s.kind = StmtKind::Loop;
            s.line = tok.line;
            std::vector<Stmt> body;
            parseStatement(i, end, cls, body);
            Stmt bodySeq;
            bodySeq.kind = StmtKind::Seq;
            bodySeq.children = std::move(body);
            s.children.push_back(std::move(bodySeq));
            if (i < end && t_[i].is("while")) {
                ++i;
                if (i < end && t_[i].is("(")) {
                    const std::size_t close = skipGroup(i) - 1;
                    std::vector<const Token *> cond;
                    for (std::size_t k = i + 1; k < close; ++k)
                        cond.push_back(&t_[k]);
                    s.boundedLoop = boundedCondition(cond);
                    std::vector<Stmt> condStmts;
                    scanExpr(i + 1, close, cls, condStmts);
                    for (auto &cs : condStmts)
                        if (cs.kind == StmtKind::Actions)
                            for (auto &a : cs.actions)
                                s.header.push_back(a);
                    i = close + 1;
                }
                i = skipToSemicolon(i);
            }
            out.push_back(std::move(s));
            return;
        }
        if (tok.is("for")) {
            ++i;
            Stmt s;
            s.kind = StmtKind::Loop;
            s.line = tok.line;
            std::vector<Stmt> incStmts;
            if (i < end && t_[i].is("(")) {
                const std::size_t close = skipGroup(i) - 1;
                // Split at depth-0 semicolons; a range-for has none.
                std::vector<std::size_t> semis;
                int depth = 0;
                for (std::size_t k = i + 1; k < close; ++k) {
                    const std::string &x = t_[k].text;
                    if (x == "(" || x == "[" || x == "{")
                        ++depth;
                    else if (x == ")" || x == "]" || x == "}")
                        --depth;
                    else if (x == ";" && depth == 0)
                        semis.push_back(k);
                }
                if (semis.size() >= 2) {
                    // init → current flow; cond → header; inc → end of body
                    scanExpr(i + 1, semis[0], cls, out);
                    std::vector<const Token *> cond;
                    for (std::size_t k = semis[0] + 1; k < semis[1]; ++k)
                        cond.push_back(&t_[k]);
                    s.boundedLoop = boundedCondition(cond);
                    std::vector<Stmt> condStmts;
                    scanExpr(semis[0] + 1, semis[1], cls, condStmts);
                    for (auto &cs : condStmts)
                        if (cs.kind == StmtKind::Actions)
                            for (auto &a : cs.actions)
                                s.header.push_back(a);
                    scanExpr(semis[1] + 1, close, cls, incStmts);
                } else {
                    // Range-for: scan the whole group for reads.
                    std::vector<Stmt> condStmts;
                    scanExpr(i + 1, close, cls, condStmts);
                    for (auto &cs : condStmts)
                        if (cs.kind == StmtKind::Actions)
                            for (auto &a : cs.actions)
                                s.header.push_back(a);
                }
                i = close + 1;
            }
            std::vector<Stmt> body;
            parseStatement(i, end, cls, body);
            for (auto &inc : incStmts)
                body.push_back(std::move(inc));
            Stmt bodySeq;
            bodySeq.kind = StmtKind::Seq;
            bodySeq.children = std::move(body);
            s.children.push_back(std::move(bodySeq));
            out.push_back(std::move(s));
            return;
        }
        if (tok.is("return")) {
            ++i;
            const std::size_t stop = skipToSemicolon(i) - 1;
            scanExpr(i, stop, cls, out);
            i = stop + 1;
            return;
        }
        if (tok.is("break") || tok.is("continue")) {
            i = skipToSemicolon(i);
            return;
        }
        if (tok.is("switch")) {
            ++i;
            Stmt s;
            s.kind = StmtKind::If; // one-armed over-approximation
            s.line = tok.line;
            if (i < end && t_[i].is("(")) {
                const std::size_t close = skipGroup(i) - 1;
                std::vector<Stmt> condStmts;
                scanExpr(i + 1, close, cls, condStmts);
                for (auto &cs : condStmts)
                    if (cs.kind == StmtKind::Actions)
                        for (auto &a : cs.actions)
                            s.header.push_back(a);
                i = close + 1;
            }
            std::vector<Stmt> body;
            parseStatement(i, end, cls, body);
            Stmt bodySeq;
            bodySeq.kind = StmtKind::Seq;
            bodySeq.children = std::move(body);
            s.children.push_back(std::move(bodySeq));
            out.push_back(std::move(s));
            return;
        }
        if (tok.is("case") || tok.is("default")) {
            while (i < end && !t_[i].is(":"))
                ++i;
            if (i < end)
                ++i;
            return;
        }
        // Expression / declaration statement.
        const std::size_t stop = skipToSemicolon(i) - 1;
        scanExpr(i, stop, cls, out);
        i = stop + 1;
    }

    // ---- expression action extraction ----------------------------------

    bool lambdaIntroAt(std::size_t i, std::size_t beg) const
    {
        if (!t_[i].is("["))
            return false;
        if (i == beg)
            return true;
        const Token &p = t_[i - 1];
        return p.is("(") || p.is(",") || p.is("=") || p.is("return") ||
               p.is("{") || p.is(";") || p.is("&&") || p.is("||") ||
               p.is(":");
    }

    /** Parse a lambda starting at its '[': returns the body Stmt and
     *  advances `i` past the closing '}'. */
    Stmt parseLambda(std::size_t &i, const std::string &cls)
    {
        i = skipGroup(i); // capture list
        if (!atEnd(i) && t_[i].is("("))
            i = skipGroup(i); // parameters
        while (!atEnd(i) && !t_[i].is("{"))
            ++i; // trailing return type etc.
        if (atEnd(i) || !t_[i].is("{"))
            return Stmt{};
        const std::size_t close = skipGroup(i) - 1;
        std::size_t b = i + 1;
        Stmt body = parseBlock(b, close + 1, cls);
        i = close + 1;
        return body;
    }

    /** Split a call's argument list (between `open`+1 and `close`) at
     *  top-level commas. */
    std::vector<std::pair<std::size_t, std::size_t>>
    splitArgs(std::size_t open, std::size_t close) const
    {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        int depth = 0;
        std::size_t beg = open + 1;
        for (std::size_t k = open + 1; k < close; ++k) {
            const std::string &x = t_[k].text;
            if (x == "(" || x == "[" || x == "{")
                ++depth;
            else if (x == ")" || x == "]" || x == "}")
                --depth;
            else if (x == "," && depth == 0) {
                args.emplace_back(beg, k);
                beg = k + 1;
            }
        }
        if (beg < close)
            args.emplace_back(beg, close);
        return args;
    }

    /** First identifier in an argument span that is an NV binding of
     *  `cls`; empty if none. */
    std::string argBindingRegion(std::size_t beg, std::size_t end,
                                 const std::string &cls) const
    {
        for (std::size_t k = beg; k < end; ++k) {
            if (!t_[k].isIdent())
                continue;
            const NvBinding *b = out_.findBinding(cls, t_[k].text);
            if (b)
                return b->region;
        }
        return {};
    }

    /** Emit actions (and nested lambda statement trees) for the token
     *  span [beg, end). Appends to `out` in evaluation order. */
    void scanExpr(std::size_t beg, std::size_t end,
                  const std::string &cls, std::vector<Stmt> &out)
    {
        if (beg >= end)
            return;
        // Top-level assignment: process the RHS first (its value flows
        // into the write), then the LHS write.
        static const char *const kAssign[] = {"=",  "+=", "-=", "*=",
                                              "/=", "%=", "&=", "|=",
                                              "^=", "<<=", ">>="};
        std::size_t assignAt = end;
        {
            int depth = 0;
            for (std::size_t k = beg; k < end; ++k) {
                const std::string &x = t_[k].text;
                if (x == "(" || x == "[" || x == "{") {
                    ++depth;
                    continue;
                }
                if (x == ")" || x == "]" || x == "}") {
                    --depth;
                    continue;
                }
                if (depth != 0)
                    continue;
                for (const char *a : kAssign) {
                    if (x == a) {
                        assignAt = k;
                        break;
                    }
                }
                if (assignAt != end)
                    break;
            }
        }
        if (assignAt != end) {
            const bool compound = !t_[assignAt].is("=");
            scanExpr(assignAt + 1, end, cls, out);
            // Regions read on the RHS (flat scan: bare members and
            // member.get()/member.raw() chains).
            std::vector<std::string> rhsReads;
            for (std::size_t k = assignAt + 1; k < end; ++k) {
                if (!t_[k].isIdent())
                    continue;
                if (k > assignAt + 1 &&
                    (t_[k - 1].is(".") || t_[k - 1].is("->") ||
                     t_[k - 1].is("::")))
                    continue;
                const NvBinding *b = out_.findBinding(cls, t_[k].text);
                if (b && b->kind == BindKind::NvRegion)
                    rhsReads.push_back(b->region);
            }
            // LHS: a bare NV member (possibly behind casts) is a write;
            // anything else (locals, pointers, .raw() chains) goes
            // through the generic walker.
            const NvBinding *lhs = nullptr;
            bool lhsComplex = false;
            for (std::size_t k = beg; k < assignAt; ++k) {
                if (!t_[k].isIdent())
                    continue;
                if (k > beg && (t_[k - 1].is(".") || t_[k - 1].is("->") ||
                                t_[k - 1].is("::")))
                    continue;
                const NvBinding *b = out_.findBinding(cls, t_[k].text);
                if (b) {
                    lhs = b;
                    // `member.raw()[i] = ...` and friends need the
                    // generic read+write treatment.
                    if (k + 1 < assignAt && (t_[k + 1].is(".") ||
                                             t_[k + 1].is("->")))
                        lhsComplex = true;
                    break;
                }
            }
            if (lhs && !lhsComplex) {
                std::vector<Action> acts;
                if (lhs->kind == BindKind::NvRegion) {
                    if (compound) {
                        Action r;
                        r.kind = ActKind::NvRead;
                        r.subject = lhs->region;
                        r.line = t_[assignAt].line;
                        acts.push_back(std::move(r));
                        rhsReads.push_back(lhs->region);
                    }
                    Action w;
                    w.kind = ActKind::NvWrite;
                    w.subject = lhs->region;
                    w.line = t_[assignAt].line;
                    w.sameStmtReads = std::move(rhsReads);
                    acts.push_back(std::move(w));
                }
                if (!acts.empty()) {
                    Stmt s;
                    s.kind = StmtKind::Actions;
                    s.line = t_[assignAt].line;
                    s.actions = std::move(acts);
                    out.push_back(std::move(s));
                }
                return;
            }
            walkTokens(beg, assignAt, cls, out, &rhsReads);
            return;
        }
        walkTokens(beg, end, cls, out, nullptr);
    }

    /** The generic token walker behind scanExpr. `stmtReads`, when
     *  set, is attached to NvWrite actions produced here (LHS of an
     *  assignment whose RHS read those regions). */
    void walkTokens(std::size_t beg, std::size_t end,
                    const std::string &cls, std::vector<Stmt> &out,
                    const std::vector<std::string> *stmtReads)
    {
        std::vector<Action> pending;
        const auto flush = [&] {
            if (pending.empty())
                return;
            Stmt s;
            s.kind = StmtKind::Actions;
            s.line = pending.front().line;
            s.actions = std::move(pending);
            pending.clear();
            out.push_back(std::move(s));
        };
        const auto act = [&](ActKind k, std::string subject, int line) {
            Action a;
            a.kind = k;
            a.subject = std::move(subject);
            a.line = line;
            pending.push_back(std::move(a));
        };

        std::size_t i = beg;
        while (i < end) {
            const Token &tok = t_[i];
            const bool memberCtx =
                i > beg && (t_[i - 1].is(".") || t_[i - 1].is("->"));
            const bool qualified = i > beg && t_[i - 1].is("::");

            if (lambdaIntroAt(i, beg)) {
                flush();
                out.push_back(parseLambda(i, cls));
                continue;
            }
            if (!tok.isIdent()) {
                ++i;
                continue;
            }

            // ---- annotation API special forms -------------------------
            if (tok.is("expires") || tok.is("expiresCatch")) {
                std::size_t open = i + 1;
                if (open < end && t_[open].is("(")) {
                    const std::size_t close = skipGroup(open) - 1;
                    const auto args = splitArgs(open, close);
                    flush();
                    if (args.size() >= 2) {
                        const NvBinding *b = nullptr;
                        for (std::size_t k = args[1].first;
                             k < args[1].second && !b; ++k)
                            if (t_[k].isIdent())
                                b = out_.findBinding(cls, t_[k].text);
                        if (b) {
                            Stmt g;
                            g.kind = StmtKind::Actions;
                            g.line = tok.line;
                            Action a;
                            a.kind = ActKind::TimedGuard;
                            a.subject = b->region;
                            a.line = tok.line;
                            g.actions.push_back(std::move(a));
                            out.push_back(std::move(g));
                        }
                    }
                    for (const auto &arg : args) {
                        std::size_t k = arg.first;
                        if (k < arg.second && lambdaIntroAt(k, k)) {
                            std::size_t p = k;
                            out.push_back(parseLambda(p, cls));
                        }
                    }
                    Stmt bnd;
                    bnd.kind = StmtKind::Actions;
                    bnd.line = tok.line;
                    Action a;
                    a.kind = ActKind::Boundary;
                    a.subject = "expires";
                    a.line = tok.line;
                    bnd.actions.push_back(std::move(a));
                    out.push_back(std::move(bnd));
                    i = close + 1;
                    continue;
                }
            }
            if (tok.is("timely")) {
                std::size_t open = i + 1;
                if (open < end && t_[open].is("(")) {
                    const std::size_t close = skipGroup(open) - 1;
                    const auto args = splitArgs(open, close);
                    flush();
                    // Lambda args: [then, orElse]. The then-branch
                    // commits a checkpoint before and after running.
                    std::vector<Stmt> lambdas;
                    for (const auto &arg : args) {
                        std::size_t k = arg.first;
                        if (k < arg.second && lambdaIntroAt(k, k)) {
                            std::size_t p = k;
                            lambdas.push_back(parseLambda(p, cls));
                        }
                    }
                    Stmt iff;
                    iff.kind = StmtKind::If;
                    iff.line = tok.line;
                    Stmt thenSeq;
                    thenSeq.kind = StmtKind::Seq;
                    {
                        Stmt b1;
                        b1.kind = StmtKind::Actions;
                        b1.line = tok.line;
                        Action a;
                        a.kind = ActKind::Boundary;
                        a.subject = "timely";
                        a.line = tok.line;
                        b1.actions.push_back(a);
                        thenSeq.children.push_back(b1);
                        if (!lambdas.empty())
                            thenSeq.children.push_back(
                                std::move(lambdas[0]));
                        thenSeq.children.push_back(std::move(b1));
                    }
                    iff.children.push_back(std::move(thenSeq));
                    if (lambdas.size() > 1) {
                        Stmt elseSeq;
                        elseSeq.kind = StmtKind::Seq;
                        elseSeq.children.push_back(std::move(lambdas[1]));
                        iff.children.push_back(std::move(elseSeq));
                        iff.hasElse = true;
                    }
                    out.push_back(std::move(iff));
                    i = close + 1;
                    continue;
                }
            }
            if (tok.is("addTask") && memberCtx && i + 1 < end &&
                t_[i + 1].is("(")) {
                const std::size_t close = skipGroup(i + 1) - 1;
                const auto args = splitArgs(i + 1, close);
                flush();
                // Task entry/exit are commit points.
                Stmt b1;
                b1.kind = StmtKind::Actions;
                b1.line = tok.line;
                Action a;
                a.kind = ActKind::Boundary;
                a.subject = "task";
                a.line = tok.line;
                b1.actions.push_back(a);
                out.push_back(b1);
                for (const auto &arg : args) {
                    std::size_t k = arg.first;
                    if (k < arg.second && lambdaIntroAt(k, k)) {
                        std::size_t p = k;
                        out.push_back(parseLambda(p, cls));
                    }
                }
                out.push_back(std::move(b1));
                i = close + 1;
                continue;
            }
            if ((tok.is("triggerPoint") || tok.is("checkpointNow")) &&
                memberCtx) {
                act(ActKind::Boundary, tok.text, tok.line);
                ++i;
                continue;
            }
            if (tok.is("endAtomic") && memberCtx && i + 1 < end &&
                t_[i + 1].is("(")) {
                const std::size_t close = skipGroup(i + 1) - 1;
                bool ckpt = false;
                for (std::size_t k = i + 2; k < close; ++k)
                    if (t_[k].is("true"))
                        ckpt = true;
                if (ckpt)
                    act(ActKind::Boundary, "endAtomic", tok.line);
                i = close + 1;
                continue;
            }
            // Registration calls: the .raw() pointers inside are
            // bookkeeping, not data accesses.
            if ((tok.is("trackGlobals") || tok.is("footprint")) &&
                memberCtx && i + 1 < end && t_[i + 1].is("(")) {
                i = skipGroup(i + 1);
                continue;
            }
            if (tok.is("charge") && memberCtx) {
                act(ActKind::Charge, "charge", tok.line);
                ++i;
                continue;
            }
            if ((tok.is("radioSend") || tok.is("sendAM")) && memberCtx) {
                act(ActKind::DirectSend, "radio", tok.line);
                ++i;
                continue;
            }
            if (tok.is("send") && i > beg && t_[i - 1].is("->")) {
                act(ActKind::StagedSend, "radio", tok.line);
                ++i;
                continue;
            }

            // ---- NV member accesses -----------------------------------
            if (!memberCtx && !qualified) {
                const NvBinding *b = out_.findBinding(cls, tok.text);
                if (b) {
                    const bool dot = i + 1 < end && t_[i + 1].is(".");
                    const std::string method =
                        dot && i + 2 < end && t_[i + 2].isIdent()
                            ? t_[i + 2].text
                            : "";
                    if (b->kind == BindKind::Timed) {
                        if (method == "read")
                            act(ActKind::TimedUse, b->region, tok.line);
                        else if (method == "fresh")
                            act(ActKind::TimedGuard, b->region,
                                tok.line);
                        else if (method == "assignTimed") {
                            act(ActKind::TimedGuard, b->region,
                                tok.line);
                            act(ActKind::Boundary, "assignTimed",
                                tok.line);
                        }
                        // .get() is an uninstrumented peek: the runtime
                        // emits no TimedUse event for it, so neither do
                        // we (matches the dynamic model).
                    } else if (b->kind == BindKind::NvRegion) {
                        if (method == "get") {
                            act(ActKind::NvRead, b->region, tok.line);
                        } else if (method == "set") {
                            Action w;
                            w.kind = ActKind::NvWrite;
                            w.subject = b->region;
                            w.line = tok.line;
                            if (stmtReads)
                                w.sameStmtReads = *stmtReads;
                            pending.push_back(std::move(w));
                        } else if (method == "raw") {
                            // Conservative: a raw pointer escapes, so
                            // treat it as read+write of the region.
                            act(ActKind::NvRead, b->region, tok.line);
                            Action w;
                            w.kind = ActKind::NvWrite;
                            w.subject = b->region;
                            w.line = tok.line;
                            if (stmtReads)
                                w.sameStmtReads = *stmtReads;
                            pending.push_back(std::move(w));
                        } else {
                            act(ActKind::NvRead, b->region, tok.line);
                        }
                    }
                    // Channel members are double-buffered and commit at
                    // task transitions: no hazard actions.
                    i += method.empty() ? 1 : 3;
                    continue;
                }
                // Call to a function defined in this file.
                if (i + 1 < end && t_[i + 1].is("(")) {
                    const FunctionDef *callee =
                        out_.findFunction(cls, tok.text);
                    std::string calleeCls = cls;
                    if (!callee) {
                        callee = out_.findFunction("", tok.text);
                        calleeCls.clear();
                    }
                    if (callee && pendingHasFunction(calleeCls,
                                                     tok.text)) {
                        Action a;
                        a.kind = ActKind::Call;
                        a.subject = calleeCls.empty()
                                        ? tok.text
                                        : calleeCls + "::" + tok.text;
                        a.line = tok.line;
                        pending.push_back(std::move(a));
                    } else if (pendingHasFunction(cls, tok.text)) {
                        Action a;
                        a.kind = ActKind::Call;
                        a.subject = cls.empty() ? tok.text
                                                : cls + "::" + tok.text;
                        a.line = tok.line;
                        pending.push_back(std::move(a));
                    } else if (pendingHasFunction("", tok.text)) {
                        Action a;
                        a.kind = ActKind::Call;
                        a.subject = tok.text;
                        a.line = tok.line;
                        pending.push_back(std::move(a));
                    }
                }
            }
            ++i;
        }
        flush();
    }

    /** Pass 2 runs before out_.functions is filled, so resolve calls
     *  against the pass-1 pending list. */
    bool pendingHasFunction(const std::string &cls,
                            const std::string &name) const
    {
        return std::any_of(pending_.begin(), pending_.end(),
                           [&](const PendingFunction &p) {
                               return p.className == cls &&
                                      p.name == name;
                           });
    }

    /** A loop bound is "statically bounded" when the comparison's
     *  right-hand side is built only from literals and k-prefixed
     *  constants (the repo's constant naming convention). */
    static bool boundedCondition(const std::vector<const Token *> &cond)
    {
        if (cond.empty())
            return false;
        std::size_t cmp = cond.size();
        int depth = 0;
        for (std::size_t k = 0; k < cond.size(); ++k) {
            const std::string &x = cond[k]->text;
            if (x == "(" || x == "[")
                ++depth;
            else if (x == ")" || x == "]")
                --depth;
            else if (depth == 0 && (x == "<" || x == "<=" || x == ">" ||
                                    x == ">=" || x == "!=")) {
                cmp = k;
                break;
            }
        }
        if (cmp == cond.size() || cmp + 1 == cond.size())
            return false;
        for (std::size_t k = cmp + 1; k < cond.size(); ++k) {
            const Token *t = cond[k];
            if (t->kind == TokKind::Number)
                continue;
            if (t->kind == TokKind::Ident) {
                const std::string &x = t->text;
                const bool kConst = x.size() >= 2 && x[0] == 'k' &&
                                    std::isupper(static_cast<
                                                 unsigned char>(x[1]));
                if (!kConst)
                    return false;
                continue;
            }
            const std::string &x = t->text;
            if (x == "+" || x == "-" || x == "*" || x == "/" ||
                x == "(" || x == ")" || x == "::")
                continue;
            return false;
        }
        return true;
    }

    std::size_t pos_ = 0;
};

} // namespace

SourceProgram
parseSource(const std::string &file, const std::string &text)
{
    SourceProgram prog;
    prog.file = file;
    const std::vector<Token> toks = tokenize(text);
    Parser parser(toks, prog);
    parser.run();
    return prog;
}

} // namespace ticsim::lint
