#include "lexer.hpp"

#include <cctype>

namespace ticsim::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first within each length. */
const char *const kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char *const kPunct2[] = {"::", "->", "++", "--", "<<", ">>",
                               "<=", ">=", "==", "!=", "&&", "||",
                               "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^="};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;

    const auto push = [&](TokKind k, std::string text, int at) {
        Token t;
        t.kind = k;
        t.text = std::move(text);
        t.line = at;
        out.push_back(std::move(t));
    };

    const auto countLines = [&](std::size_t beg, std::size_t end) {
        for (std::size_t p = beg; p < end; ++p)
            if (src[p] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor line (only ever at line starts after whitespace
        // in this codebase): skip to end of line, honoring backslash
        // continuations.
        if (c == '#') {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const std::size_t beg = i;
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/'))
                ++i;
            i = i + 1 < n ? i + 2 : n;
            countLines(beg, i);
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            const int at = line;
            const std::size_t beg = i;
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = src.find(closer, p);
            i = end == std::string::npos ? n : end + closer.size();
            countLines(beg, i);
            push(TokKind::String, src.substr(beg, i - beg), at);
            continue;
        }
        if (c == '"') {
            const int at = line;
            const std::size_t beg = i++;
            while (i < n && src[i] != '"') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                ++i;
            push(TokKind::String, src.substr(beg, i - beg), at);
            continue;
        }
        if (c == '\'') {
            const int at = line;
            const std::size_t beg = i++;
            while (i < n && src[i] != '\'') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            push(TokKind::CharLit, src.substr(beg, i - beg), at);
            continue;
        }
        if (isIdentStart(c)) {
            const std::size_t beg = i;
            while (i < n && isIdentChar(src[i]))
                ++i;
            push(TokKind::Ident, src.substr(beg, i - beg), line);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const std::size_t beg = i;
            while (i < n) {
                const char d = src[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    // Exponent signs: 1e-6, 0x1p+3.
                    if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                        i + 1 < n &&
                        (src[i + 1] == '+' || src[i + 1] == '-')) {
                        i += 2;
                        continue;
                    }
                    ++i;
                    continue;
                }
                break;
            }
            push(TokKind::Number, src.substr(beg, i - beg), line);
            continue;
        }
        // Punctuation, longest match first.
        bool matched = false;
        if (i + 2 < n) {
            const std::string three = src.substr(i, 3);
            for (const char *p : kPunct3) {
                if (three == p) {
                    push(TokKind::Punct, three, line);
                    i += 3;
                    matched = true;
                    break;
                }
            }
        }
        if (!matched && i + 1 < n) {
            const std::string two = src.substr(i, 2);
            for (const char *p : kPunct2) {
                if (two == p) {
                    push(TokKind::Punct, two, line);
                    i += 2;
                    matched = true;
                    break;
                }
            }
        }
        if (!matched) {
            push(TokKind::Punct, std::string(1, c), line);
            ++i;
        }
    }
    push(TokKind::End, "", line);
    return out;
}

} // namespace ticsim::lint
