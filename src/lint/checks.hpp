#pragma once

#include <vector>

#include "lint/program.hpp"

namespace ticsim::lint {

/**
 * The four source-level rules, run over one entry point's inlined
 * statement tree / CFG:
 *
 *  - war: an NV region read and then written with no potential
 *    checkpoint boundary in between (Surbatovich's WAR condition over
 *    program text). May-analysis: the read set unions at joins, so any
 *    path exhibiting the span flags the write. Skipped entirely when
 *    the runtime versions NV writes (undo log / double buffering).
 *  - timeliness: an instrumented timed read (Expiring::read) not
 *    dominated by a freshness guard (assignTimed / fresh() / expires)
 *    since the last boundary. Must-analysis: the guarded set
 *    intersects at joins, so one unguarded path suffices to flag.
 *  - io: a direct peripheral send reachable from the entry. Direct
 *    sends sit inside re-executable spans on every runtime (the paper's
 *    fix is staging through the virtual radio), so this is reachability,
 *    not dataflow.
 *  - segmentation: a loop with no statically evident trip bound, whose
 *    body does modeled work (NV traffic, I/O, charge), and which no
 *    boundary can split — either none in the body, or the runtime has
 *    no boundaries at all. These are the paper's loop-placement sites.
 */
std::vector<StaticFinding> runChecks(const SourceProgram &prog,
                                     const FunctionDef &entry,
                                     const RuntimeTraits &traits);

} // namespace ticsim::lint
