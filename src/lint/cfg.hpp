#pragma once

#include <cstddef>
#include <vector>

#include "lint/program.hpp"

namespace ticsim::lint {

/**
 * Control-flow graph over Action lists. Built from a (fully inlined)
 * statement tree: Seq concatenates, If forks and joins, Loop gets a
 * header block with a back edge from the body. Blocks are in a
 * deterministic construction order, so worklist iteration and the
 * reporting pass are reproducible.
 */
struct CfgBlock {
    std::vector<Action> actions;
    std::vector<std::size_t> succ;
};

struct Cfg {
    std::vector<CfgBlock> blocks;
    std::size_t entry = 0;
    std::size_t exit = 0;

    std::vector<std::vector<std::size_t>> predecessors() const;
};

/**
 * Inline every same-file Call along the call graph, producing one
 * statement tree rooted at @p fn. Recursion is cut with an active set
 * (a cycle's second occurrence contributes nothing — its first pass
 * already contributed the actions once, which is all a path-insensitive
 * analysis needs). Calls to functions not defined in the file stay as
 * Call actions, which the checks ignore.
 */
Stmt inlineFunction(const SourceProgram &prog, const FunctionDef &fn);

/** Build the CFG of an inlined statement tree. */
Cfg buildCfg(const Stmt &body);

} // namespace ticsim::lint
