/**
 * @file
 * The supply's energy budget reduced to cycle arithmetic, shared by
 * the static analyses (verify/) and the probabilistic environment
 * models (verify/envmodel). One fully-charged window executes a fixed
 * number of cycles; between windows the power can be away for a
 * bounded time, a bounded number of times.
 *
 * Two concrete reductions exist: the pre-programmed reset pattern
 * (tier-1 deterministic supply) and the capacitor-backed harvesting
 * frontend, where one window holds the usable energy between the
 * turn-on and brown-out thresholds, E = C/2 * (Von^2 - Voff^2), and
 * each active cycle costs activePower / clockHz joules.
 */

#ifndef TICSIM_ENERGY_BUDGET_HPP
#define TICSIM_ENERGY_BUDGET_HPP

#include <cstdint>
#include <string>

#include "device/costs.hpp"
#include "support/units.hpp"

namespace ticsim::energy {

/**
 * How many cycles one fully-charged window can execute, and how long
 * / how often the power can be away between windows.
 */
struct EnergyBudget {
    bool bounded = false;          ///< false: continuous bench supply
    Cycles windowCycles = 0;       ///< cycles per powered window
    TimeNs maxOutageNs = 0;        ///< worst single off-interval
    std::uint64_t maxOutages = 0;  ///< bound on fruitless reboots
    std::string source;            ///< human description of the budget

    /** Worst-case off-time a datum can accumulate across re-boots. */
    TimeNs worstOutageAccumulationNs() const
    {
        return maxOutageNs * static_cast<TimeNs>(maxOutages);
    }
};

/** Unbounded budget (continuous supply): nothing can be flagged. */
EnergyBudget unboundedBudget();

/** Budget of a pre-programmed reset pattern. */
EnergyBudget patternBudget(TimeNs period, double onFraction,
                           const device::CostModel &costs,
                           std::uint64_t rebootLimit);

/**
 * Budget of a capacitor-backed harvesting frontend: one window holds
 * the usable energy between the turn-on and brown-out thresholds.
 */
EnergyBudget capacitorBudget(double capacitanceF, double vOn,
                             double vOff, TimeNs maxOffTime,
                             const device::CostModel &costs,
                             std::uint64_t rebootLimit);

/** Usable joules between @p vOn and @p vOff on a @p capacitanceF cap. */
double usableEnergyJ(double capacitanceF, double vOn, double vOff);

/**
 * Seconds a charge of @p energyJ sustains a drain of @p loadW.
 * Returns +inf when the load is zero.
 */
double drainSeconds(double energyJ, double loadW);

/**
 * Seconds to accumulate @p energyJ at @p harvestW net income
 * (harvest minus leakage). Returns +inf when nothing accrues.
 */
double chargeSeconds(double energyJ, double harvestW);

} // namespace ticsim::energy

#endif // TICSIM_ENERGY_BUDGET_HPP
