/**
 * @file
 * Storage-capacitor model. Batteryless platforms (WISP, Flicker, the
 * Powercast P2110-EVB used in the paper) buffer harvested energy in a
 * small capacitor; the MCU runs while the capacitor voltage stays above
 * the brown-out threshold.
 */

#ifndef TICSIM_ENERGY_CAPACITOR_HPP
#define TICSIM_ENERGY_CAPACITOR_HPP

#include "support/units.hpp"

namespace ticsim::energy {

/**
 * Ideal capacitor with optional leakage. Energy E = 1/2 C V^2; charge
 * and discharge are expressed in joules and clamped to [0, Vmax].
 */
class Capacitor
{
  public:
    /**
     * @param capacitance Farads (paper's receiver board: 10 uF).
     * @param vMax Maximum (clamp) voltage.
     * @param vInitial Starting voltage.
     * @param leakageW Constant leakage drain in watts.
     */
    Capacitor(Farads capacitance, Volts vMax, Volts vInitial = 0.0,
              Watts leakageW = 0.0);

    Volts voltage() const { return voltage_; }
    Joules energy() const;
    Farads capacitance() const { return capacitance_; }
    Watts leakage() const { return leakageW_; }

    /** Energy stored above the given voltage floor (0 if below it). */
    Joules energyAbove(Volts vFloor) const;

    /** Add harvested energy (clamped at vMax). */
    void charge(Joules j);

    /**
     * Remove energy.
     * @return the joules actually removed (the capacitor can run dry).
     */
    Joules discharge(Joules j);

    /** Force the voltage (used when building specific test scenarios). */
    void setVoltage(Volts v);

  private:
    Farads capacitance_;
    Volts vMax_;
    Volts voltage_;
    Watts leakageW_;
};

} // namespace ticsim::energy

#endif // TICSIM_ENERGY_CAPACITOR_HPP
