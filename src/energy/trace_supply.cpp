#include "trace_supply.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "support/logging.hpp"

#ifndef TICSIM_TRACE_DIR
#define TICSIM_TRACE_DIR ""
#endif

namespace ticsim::energy {

namespace {

std::mutex g_traceMutex;
std::map<std::string, std::shared_ptr<const EnvTrace>> g_traceCache;
std::string g_traceDirOverride;

std::string
traceDir()
{
    if (!g_traceDirOverride.empty())
        return g_traceDirOverride;
    if (const char *env = std::getenv("TICSIM_TRACE_DIR");
        env && *env)
        return env;
    return TICSIM_TRACE_DIR;
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

EnvTrace::EnvTrace(std::vector<Sample> samples)
    : samples_(std::move(samples))
{
}

std::shared_ptr<const EnvTrace>
EnvTrace::parse(const std::string &text, const std::string &origin,
                std::string &err)
{
    std::vector<Sample> samples;
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        const auto comma = line.find(',');
        const auto bad = [&](const char *what) {
            err = origin + ":" + std::to_string(lineNo) + ": " + what;
            return nullptr;
        };
        if (comma == std::string::npos)
            return bad("expected 'time_s,power_w'");
        double timeS = 0.0;
        double powerW = 0.0;
        try {
            std::size_t usedT = 0;
            std::size_t usedP = 0;
            const std::string ts = trimmed(line.substr(0, comma));
            const std::string ps = trimmed(line.substr(comma + 1));
            timeS = std::stod(ts, &usedT);
            powerW = std::stod(ps, &usedP);
            if (usedT != ts.size() || usedP != ps.size())
                return bad("malformed number");
        } catch (...) {
            return bad("malformed number");
        }
        if (!std::isfinite(timeS) || !std::isfinite(powerW) ||
            timeS < 0.0 || powerW < 0.0)
            return bad("time and power must be finite and >= 0");
        Sample s;
        s.time = static_cast<TimeNs>(timeS * 1e9);
        s.power = powerW;
        samples.push_back(s);
    }
    if (samples.size() < 2) {
        err = origin + ": a trace needs at least 2 samples";
        return nullptr;
    }
    if (samples.front().time != 0) {
        err = origin + ": the first sample must be at t=0";
        return nullptr;
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i].time <= samples[i - 1].time) {
            err = origin + ": sample times must be strictly ascending";
            return nullptr;
        }
    }
    return std::shared_ptr<const EnvTrace>(
        new EnvTrace(std::move(samples)));
}

std::shared_ptr<const EnvTrace>
EnvTrace::load(const std::string &path, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open trace '" + path + "'";
        return nullptr;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path, err);
}

std::shared_ptr<const EnvTrace>
EnvTrace::forEnv(const std::string &name, std::string &err)
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    const auto it = g_traceCache.find(name);
    if (it != g_traceCache.end())
        return it->second;
    const std::string dir = traceDir();
    if (dir.empty()) {
        err = "no trace directory configured (set TICSIM_TRACE_DIR)";
        return nullptr;
    }
    auto trace = load(dir + "/" + name + ".csv", err);
    if (trace)
        g_traceCache.emplace(name, trace);
    return trace;
}

Watts
EnvTrace::power(TimeNs t, bool wrap) const
{
    const TimeNs dur = duration();
    if (t >= dur) {
        if (!wrap)
            return samples_.back().power;
        t %= dur;
    }
    // Segment [i, i+1) with times[i] <= t < times[i+1]: exact sample
    // hits return the sample's own power (interpolation weight 0).
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](TimeNs v, const Sample &s) { return v < s.time; });
    const Sample &hi = *it;
    const Sample &lo = *(it - 1);
    const double w = static_cast<double>(t - lo.time) /
                     static_cast<double>(hi.time - lo.time);
    return lo.power + (hi.power - lo.power) * w;
}

EnvTrace::SegmentView
EnvTrace::segmentAt(TimeNs t, bool wrap, TimeNs horizon) const
{
    const TimeNs dur = duration();
    SegmentView v;
    if (t >= dur && !wrap) {
        // Clamped tail: constant power forever, bounded by horizon.
        v.end = t + horizon;
        v.maxPower = samples_.back().power;
        v.powerAtEnd = v.maxPower;
        return v;
    }
    const TimeNs base = (t >= dur) ? (t / dur) * dur : 0;
    const TimeNs local = t - base;
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), local,
        [](TimeNs lv, const Sample &s) { return lv < s.time; });
    const Sample &hi = *it;
    const Sample &lo = *(it - 1);
    v.end = base + hi.time;
    v.maxPower = std::max(lo.power, hi.power);
    v.powerAtEnd = hi.power;
    if (v.end > t + horizon) {
        v.end = t + horizon;
        v.powerAtEnd = power(v.end, wrap);
        // maxPower stays the segment-wide bound: conservative.
    }
    return v;
}

TraceSupply::TraceSupply(Config cfg,
                         std::shared_ptr<const EnvTrace> trace)
    : cfg_(cfg), trace_(std::move(trace)),
      cap_(cfg.capacitance, cfg.vMax, cfg.vOn, cfg.leakage)
{
    if (!trace_)
        fatal("trace supply: null trace");
    if (cfg.vOff >= cfg.vOn)
        fatal("trace supply: vOff %g must be below vOn %g", cfg.vOff,
              cfg.vOn);
    if (cfg.integrationStep == 0)
        fatal("trace supply: zero integration step");
}

Watts
TraceSupply::harvestAt(TimeNs now) const
{
    return trace_->power(cfg_.startOffset + now, cfg_.wrap);
}

DrainResult
TraceSupply::drain(TimeNs now, TimeNs dur, Watts load)
{
    TimeNs done = 0;
    while (done < dur) {
        const TimeNs step =
            std::min<TimeNs>(cfg_.integrationStep, dur - done);
        const double dt = nsToSec(step);
        cap_.charge(harvestAt(now + done) * dt);
        cap_.discharge((load + cfg_.leakage) * dt);
        done += step;
        if (cap_.voltage() < cfg_.vOff) {
            ++stats_.counter("deaths");
            return {true, done};
        }
    }
    return {false, dur};
}

TimeNs
TraceSupply::offTimeAfterDeath(TimeNs deathTime)
{
    TimeNs off = 0;
    while (cap_.voltage() < cfg_.vOn) {
        if (off >= cfg_.maxOffTime) {
            // A gap longer than maxOffTime (a site that never gets
            // light again): report the cap and let the board's
            // starvation detector conclude the run. This is expected
            // for trace cells, so no per-death log noise.
            ++stats_.counter("darkGiveUps");
            return cfg_.maxOffTime;
        }
        const TimeNs t = cfg_.startOffset + deathTime + off;
        const TimeNs horizon = cfg_.maxOffTime - off;
        const EnvTrace::SegmentView seg =
            trace_->segmentAt(t, cfg_.wrap, horizon);
        if (seg.maxPower <= cfg_.leakage &&
            seg.end - t > cfg_.integrationStep) {
            // Harvest never exceeds leakage anywhere in this segment,
            // so the voltage is non-increasing across it: skipping to
            // its end in one trapezoid step cannot miss a Von
            // crossing.
            const TimeNs skip = seg.end - t;
            const double dt = nsToSec(skip);
            cap_.charge(0.5 * (trace_->power(t, cfg_.wrap) +
                               seg.powerAtEnd) *
                        dt);
            cap_.discharge(cfg_.leakage * dt);
            off += skip;
            continue;
        }
        const double dt = nsToSec(cfg_.integrationStep);
        cap_.charge(trace_->power(t, cfg_.wrap) * dt);
        cap_.discharge(cfg_.leakage * dt);
        off += cfg_.integrationStep;
    }
    stats_.distribution("offTimeUs").sample(
        static_cast<double>(nsToUs(off)));
    return off;
}

void
TraceSupply::reset()
{
    cap_.setVoltage(cfg_.vOn);
    stats_.resetAll();
}

TimeNs
TraceSupply::offsetForSeed(std::uint64_t seed, const EnvTrace &trace)
{
    // splitmix64: cheap, well-mixed, and stable across platforms (a
    // persisted contract — offsets feed canonical cell results).
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<TimeNs>(z % trace.duration());
}

void
TraceSupply::setTraceDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    g_traceDirOverride = dir;
    g_traceCache.clear();
}

} // namespace ticsim::energy
