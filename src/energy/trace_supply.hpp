/**
 * @file
 * Trace-driven harvesting supply: replays a long-horizon ambient-power
 * timeline (diurnal solar, mobile RF, thermal gradient...) from a CSV
 * file through the capacitor + Von/Voff hysteresis model, so sweeps
 * can ask how device-days under a *real-shaped* environment distribute
 * across runtimes instead of synthesizing i.i.d. outages.
 *
 * Determinism contract: the trace is immutable and harvest power is a
 * pure function of absolute virtual time (linear interpolation between
 * samples, wrap-around or clamp past the end), so the supply's entire
 * mutable state is the capacitor voltage. saveState()/loadState()
 * serialize exactly that, which is what makes snapshot/restore replay
 * (the ticsmc journal contract) byte-identical: any mid-trace boot
 * seeks back to the same sample segment by binary search.
 *
 * Long zero-harvest gaps (a solar night) are fast-forwarded one trace
 * segment at a time instead of 50 us integration steps — the voltage
 * cannot cross Von while harvest power stays at or below leakage, so
 * skipping a whole dark segment is exact, not an approximation.
 */

#ifndef TICSIM_ENERGY_TRACE_SUPPLY_HPP
#define TICSIM_ENERGY_TRACE_SUPPLY_HPP

#include <memory>
#include <string>
#include <vector>

#include "energy/capacitor.hpp"
#include "energy/supply.hpp"
#include "support/units.hpp"

namespace ticsim::energy {

/**
 * An immutable harvest-power timeline: strictly ascending sample
 * times (the first at t=0) with linearly interpolated power between
 * them. Loaded once per process and shared across every supply that
 * replays it (a fleet worker runs many cells against one trace).
 */
class EnvTrace
{
  public:
    struct Sample {
        TimeNs time = 0;
        Watts power = 0.0;
    };

    /**
     * Parse "time_s,power_w" CSV text ('#' comments, blank lines
     * skipped). @return nullptr with a message in @p err unless the
     * trace has >= 2 samples, starts at t=0, is strictly ascending
     * and all powers are finite and non-negative.
     */
    static std::shared_ptr<const EnvTrace>
    parse(const std::string &text, const std::string &origin,
          std::string &err);

    /** parse() over a file's contents. */
    static std::shared_ptr<const EnvTrace>
    load(const std::string &path, std::string &err);

    /**
     * Cached lookup of the named environment's trace,
     * "<trace-dir>/<name>.csv". The directory is $TICSIM_TRACE_DIR
     * when set, else the compiled-in docs/traces path. Thread-safe;
     * the first load wins and later callers share it.
     */
    static std::shared_ptr<const EnvTrace>
    forEnv(const std::string &name, std::string &err);

    /** Total timeline length == time of the last sample. */
    TimeNs duration() const { return samples_.back().time; }

    const std::vector<Sample> &samples() const { return samples_; }

    /**
     * Interpolated power at absolute time @p t under @p wrap
     * semantics (true: t modulo duration; false: hold the last
     * sample's power forever). Exact at sample boundaries: t equal to
     * a sample's time returns that sample's power.
     */
    Watts power(TimeNs t, bool wrap) const;

    /**
     * End (exclusive) of the sample segment containing @p t and the
     * largest power anywhere inside it — what the dark-gap
     * fast-forward needs to prove a skip cannot cross Von. Past the
     * end of a clamped trace the "segment" is unbounded; @p horizon
     * caps it.
     */
    struct SegmentView {
        TimeNs end = 0;    ///< absolute, > t
        Watts maxPower = 0.0;
        Watts powerAtEnd = 0.0;
    };
    SegmentView segmentAt(TimeNs t, bool wrap, TimeNs horizon) const;

  private:
    explicit EnvTrace(std::vector<Sample> samples);

    std::vector<Sample> samples_;
};

/**
 * Capacitor-buffered supply replaying an EnvTrace. Mirrors
 * HarvestingSupply's integration (fixed step, Von/Voff hysteresis)
 * so trace cells are comparable with rf/stochastic cells, plus the
 * segment-skipping off-time path for multi-hour dark gaps.
 */
class TraceSupply : public Supply
{
  public:
    struct Config {
        Farads capacitance = 10e-6;
        Volts vMax = 5.25;
        Volts vOn = 3.0;
        Volts vOff = 1.8;
        Watts leakage = 1e-6;
        TimeNs integrationStep = 50 * kNsPerUs;
        /** Give up waiting for power-on after this long off (a full
         *  diurnal cycle by default: any longer gap is a dead site). */
        TimeNs maxOffTime = 24 * 3600 * kNsPerSec;
        /** Past-the-end policy: wrap to t modulo duration (periodic
         *  environments) or clamp to the last sample's power. */
        bool wrap = true;
        /** Position in the trace at virtual time 0 (mid-trace boot). */
        TimeNs startOffset = 0;
    };

    TraceSupply(Config cfg, std::shared_ptr<const EnvTrace> trace);

    DrainResult drain(TimeNs now, TimeNs dur, Watts load) override;
    TimeNs offTimeAfterDeath(TimeNs deathTime) override;
    void reset() override;

    Volts voltageNow() const override { return cap_.voltage(); }
    const Config &config() const { return cfg_; }
    const EnvTrace &trace() const { return *trace_; }

    /** Harvest power at absolute virtual time @p now (offset + wrap
     *  applied); exposed for tests. */
    Watts harvestAt(TimeNs now) const;

    void saveState(StateWriter &w) const override
    {
        // The trace is immutable and power is a pure function of
        // time, so the capacitor voltage is the whole mutable state.
        w.put(cap_.voltage());
    }
    void loadState(StateReader &r) override
    {
        cap_.setVoltage(r.get<Volts>());
    }

    /**
     * Deterministic per-seed start offset: distinct seeds spread
     * device boots across the whole timeline, which is what turns a
     * seed axis into a population of device-days.
     */
    static TimeNs offsetForSeed(std::uint64_t seed,
                                const EnvTrace &trace);

    /** Override the trace directory (tests); empty restores the
     *  default resolution order. */
    static void setTraceDir(const std::string &dir);

  private:
    Config cfg_;
    std::shared_ptr<const EnvTrace> trace_;
    Capacitor cap_;
};

} // namespace ticsim::energy

#endif // TICSIM_ENERGY_TRACE_SUPPLY_HPP
