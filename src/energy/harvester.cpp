#include "harvester.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace ticsim::energy {

SquareWaveHarvester::SquareWaveHarvester(Watts onPower, TimeNs period,
                                         double dutyOn)
    : onPower_(onPower), period_(period)
{
    if (period == 0)
        fatal("square-wave harvester: period must be nonzero");
    if (dutyOn < 0.0 || dutyOn > 1.0)
        fatal("square-wave harvester: duty %g outside [0, 1]", dutyOn);
    onLength_ = static_cast<TimeNs>(static_cast<double>(period) * dutyOn);
}

Watts
SquareWaveHarvester::power(TimeNs now)
{
    return (now % period_) < onLength_ ? onPower_ : 0.0;
}

RfHarvester::RfHarvester(Watts txEirpW, double distanceM, double rxGain,
                         double efficiency)
    : txEirpW_(txEirpW), distanceM_(distanceM), rxGain_(rxGain),
      efficiency_(efficiency)
{
    if (distanceM <= 0.0)
        fatal("rf harvester: distance must be > 0 (got %g m)", distanceM);
    if (efficiency <= 0.0 || efficiency > 1.0)
        fatal("rf harvester: efficiency %g outside (0, 1]", efficiency);
    recompute();
}

void
RfHarvester::setDistance(double distanceM)
{
    if (distanceM <= 0.0)
        fatal("rf harvester: distance must be > 0 (got %g m)", distanceM);
    distanceM_ = distanceM;
    recompute();
}

void
RfHarvester::setFading(double sigmaDb, TimeNs blockNs, std::uint64_t seed)
{
    if (blockNs == 0)
        fatal("rf harvester: zero fading block");
    fadingSigmaDb_ = sigmaDb;
    fadingBlockNs_ = blockNs;
    fadingSeed_ = seed;
}

Watts
RfHarvester::power(TimeNs now)
{
    if (fadingSigmaDb_ <= 0.0)
        return harvested_;
    // Stateless per-block fade: hash the block index into an
    // approximately normal dB offset (sum of three uniforms).
    const std::uint64_t block = now / fadingBlockNs_;
    std::uint64_t x = block ^ fadingSeed_;
    double acc = 0.0;
    for (int i = 0; i < 3; ++i) {
        x += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z ^= z >> 31;
        acc += static_cast<double>(z >> 11) * 0x1.0p-53;
    }
    const double normal = (acc - 1.5) * 2.0; // ~N(0,1)
    const double db = normal * fadingSigmaDb_;
    return harvested_ * std::pow(10.0, db / 10.0);
}

void
RfHarvester::recompute()
{
    // Friis free-space: Prx = Ptx * Grx * (lambda / (4 pi d))^2.
    constexpr double kLambda915MHz = 0.3276; // meters
    const double factor =
        kLambda915MHz / (4.0 * M_PI * distanceM_);
    harvested_ = txEirpW_ * rxGain_ * factor * factor * efficiency_;
}

TraceHarvester::TraceHarvester(std::vector<std::pair<TimeNs, Watts>> points,
                               TimeNs repeatEvery)
    : points_(std::move(points)), repeatEvery_(repeatEvery)
{
    if (points_.empty())
        fatal("trace harvester: empty trace");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first < points_[i - 1].first)
            fatal("trace harvester: breakpoints not sorted");
    }
    if (repeatEvery_ != 0 && points_.back().first >= repeatEvery_)
        fatal("trace harvester: trace longer than repeat period");
}

Watts
TraceHarvester::power(TimeNs now)
{
    TimeNs t = repeatEvery_ ? now % repeatEvery_ : now;
    // Find the last breakpoint at or before t.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](TimeNs v, const std::pair<TimeNs, Watts> &p) {
            return v < p.first;
        });
    if (it == points_.begin())
        return 0.0; // before the first breakpoint
    return std::prev(it)->second;
}

StochasticHarvester::StochasticHarvester(Watts meanPower, TimeNs meanOnNs,
                                         TimeNs meanOffNs, Rng rng)
    : meanPower_(meanPower), meanOnNs_(meanOnNs), meanOffNs_(meanOffNs),
      rng_(rng)
{
    if (meanOnNs == 0 || meanOffNs == 0)
        fatal("stochastic harvester: mean interval lengths must be nonzero");
}

void
StochasticHarvester::advanceTo(TimeNs now)
{
    while (now >= stateEnd_) {
        on_ = !on_;
        const double mean = on_ ? static_cast<double>(meanOnNs_)
                                : static_cast<double>(meanOffNs_);
        const double len = std::max(1.0, rng_.exponential(mean));
        stateEnd_ += static_cast<TimeNs>(len);
        current_ =
            on_ ? std::max(0.0, meanPower_ * rng_.uniform(0.6, 1.4)) : 0.0;
    }
}

Watts
StochasticHarvester::power(TimeNs now)
{
    advanceTo(now);
    return current_;
}

void
StochasticHarvester::saveState(StateWriter &w) const
{
    w.put(rng_);
    w.put(stateEnd_);
    w.put(on_);
    w.put(current_);
}

void
StochasticHarvester::loadState(StateReader &r)
{
    rng_ = r.get<Rng>();
    stateEnd_ = r.get<TimeNs>();
    on_ = r.get<bool>();
    current_ = r.get<Watts>();
}

} // namespace ticsim::energy
