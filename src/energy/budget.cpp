#include "budget.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace ticsim::energy {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

} // namespace

EnergyBudget
unboundedBudget()
{
    EnergyBudget b;
    b.bounded = false;
    b.source = "continuous";
    return b;
}

EnergyBudget
patternBudget(TimeNs period, double onFraction,
              const device::CostModel &costs,
              std::uint64_t rebootLimit)
{
    EnergyBudget b;
    b.bounded = true;
    const auto onNs = static_cast<TimeNs>(
        static_cast<double>(period) * onFraction);
    b.windowCycles = static_cast<Cycles>(
        onNs / std::max<TimeNs>(1, costs.cycleTimeNs()));
    b.maxOutageNs = period - onNs;
    b.maxOutages = rebootLimit;
    b.source = fmt("pattern %llu ms @ %.2f",
                   static_cast<unsigned long long>(period / kNsPerMs),
                   onFraction);
    return b;
}

EnergyBudget
capacitorBudget(double capacitanceF, double vOn, double vOff,
                TimeNs maxOffTime, const device::CostModel &costs,
                std::uint64_t rebootLimit)
{
    EnergyBudget b;
    b.bounded = true;
    const double usable = usableEnergyJ(capacitanceF, vOn, vOff);
    const double perCycle = costs.activePower / costs.clockHz;
    b.windowCycles = static_cast<Cycles>(usable / perCycle);
    b.maxOutageNs = maxOffTime;
    b.maxOutages = rebootLimit;
    b.source = fmt("capacitor %.2f uF (%.2fV..%.2fV)",
                   capacitanceF * 1e6, vOff, vOn);
    return b;
}

double
usableEnergyJ(double capacitanceF, double vOn, double vOff)
{
    return 0.5 * capacitanceF * (vOn * vOn - vOff * vOff);
}

double
drainSeconds(double energyJ, double loadW)
{
    if (loadW <= 0.0)
        return std::numeric_limits<double>::infinity();
    return energyJ / loadW;
}

double
chargeSeconds(double energyJ, double harvestW)
{
    if (harvestW <= 0.0)
        return std::numeric_limits<double>::infinity();
    return energyJ / harvestW;
}

} // namespace ticsim::energy
