#include "capacitor.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace ticsim::energy {

Capacitor::Capacitor(Farads capacitance, Volts vMax, Volts vInitial,
                     Watts leakageW)
    : capacitance_(capacitance), vMax_(vMax), voltage_(vInitial),
      leakageW_(leakageW)
{
    if (capacitance <= 0.0)
        fatal("capacitor: capacitance must be > 0 (got %g F)", capacitance);
    if (vInitial < 0.0 || vInitial > vMax)
        fatal("capacitor: initial voltage %g outside [0, %g]", vInitial,
              vMax);
}

Joules
Capacitor::energy() const
{
    return 0.5 * capacitance_ * voltage_ * voltage_;
}

Joules
Capacitor::energyAbove(Volts vFloor) const
{
    if (voltage_ <= vFloor)
        return 0.0;
    return 0.5 * capacitance_ * (voltage_ * voltage_ - vFloor * vFloor);
}

void
Capacitor::charge(Joules j)
{
    if (j <= 0.0)
        return;
    const Joules eMax = 0.5 * capacitance_ * vMax_ * vMax_;
    const Joules e = std::min(energy() + j, eMax);
    voltage_ = std::sqrt(2.0 * e / capacitance_);
}

Joules
Capacitor::discharge(Joules j)
{
    if (j <= 0.0)
        return 0.0;
    const Joules have = energy();
    const Joules took = std::min(j, have);
    const Joules e = have - took;
    voltage_ = std::sqrt(2.0 * e / capacitance_);
    return took;
}

void
Capacitor::setVoltage(Volts v)
{
    voltage_ = std::clamp(v, 0.0, vMax_);
}

} // namespace ticsim::energy
