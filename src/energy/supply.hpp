/**
 * @file
 * Power-supply models. The Board charges every simulated cycle to the
 * supply; the supply decides when brown-outs happen and how long the
 * device stays off before the turn-on threshold is reached again.
 *
 * Three models cover the paper's experimental setups:
 *  - ContinuousSupply: bench power (Fig. 9 timing runs, plain C).
 *  - PatternSupply: pre-programmed reset patterns (Table 1).
 *  - HarvestingSupply: capacitor + harvester with Von/Voff hysteresis
 *    (Table 2, Fig. 8 RF-powered runs).
 */

#ifndef TICSIM_ENERGY_SUPPLY_HPP
#define TICSIM_ENERGY_SUPPLY_HPP

#include <memory>
#include <vector>

#include "energy/capacitor.hpp"
#include "energy/harvester.hpp"
#include "support/statebuf.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace ticsim::energy {

/** Outcome of draining the supply over a requested interval. */
struct DrainResult {
    bool died = false;   ///< brown-out occurred before the interval ended
    TimeNs ranFor = 0;   ///< time actually powered (== request if !died)
};

/**
 * Abstract supply. All times are absolute virtual times; drain() is
 * always called with monotonically non-decreasing @p now.
 */
class Supply
{
  public:
    Supply() : stats_("supply") {}
    virtual ~Supply() = default;

    /**
     * Consume @p load watts over [now, now + dur).
     * @return whether and when the supply browned out.
     */
    virtual DrainResult drain(TimeNs now, TimeNs dur, Watts load) = 0;

    /**
     * After a brown-out at @p deathTime, the time the device stays off
     * until the turn-on condition is met again.
     */
    virtual TimeNs offTimeAfterDeath(TimeNs deathTime) = 0;

    /** Restore the initial state (for experiment repetition). */
    virtual void reset() = 0;

    /** False for bench supplies that can never brown out. */
    virtual bool intermittent() const { return true; }

    /**
     * Current storage voltage for hardware-assisted (voltage-
     * triggered) checkpointing, or a negative value when the supply
     * has no observable voltage (pattern/bench supplies).
     */
    virtual Volts voltageNow() const { return -1.0; }

    StatGroup &stats() { return stats_; }

    /**
     * Snapshot/restore hooks for the failure-space explorer
     * (board::Snapshot). Implementations serialize exactly the
     * mutable dynamics that influence future drain() results; the
     * statistics group is captured separately by the Board (StatGroup
     * is copyable). The defaults cover stateless supplies
     * (continuous, pattern). A blob is only replayed into the same
     * object it was captured from.
     */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}

  protected:
    StatGroup stats_;
};

/** Never browns out. */
class ContinuousSupply : public Supply
{
  public:
    DrainResult drain(TimeNs, TimeNs dur, Watts) override;
    TimeNs offTimeAfterDeath(TimeNs) override;
    void reset() override {}
    bool intermittent() const override { return false; }
};

/**
 * Pre-programmed periodic reset pattern: power is on for the first
 * @p onTime of every period and off for the remainder. An on-fraction
 * of 1.0 degenerates to continuous power. This reproduces the paper's
 * Table 1 methodology ("MCU was brought to hardware reset following a
 * pre-programmed pattern").
 */
class PatternSupply : public Supply
{
  public:
    PatternSupply(TimeNs period, double onFraction);

    DrainResult drain(TimeNs now, TimeNs dur, Watts load) override;
    TimeNs offTimeAfterDeath(TimeNs deathTime) override;
    void reset() override {}
    bool intermittent() const override { return onTime_ < period_; }

    TimeNs period() const { return period_; }
    TimeNs onTime() const { return onTime_; }

  private:
    TimeNs period_;
    TimeNs onTime_;
};

/**
 * An explicit list of power-cut instants: the exact-schedule
 * counterpart of PatternSupply's periodic resets. Fault-injection
 * campaigns express every minimized failure schedule as one of these,
 * and ScheduledSupply replays it deterministically.
 */
struct ResetPattern {
    /** Absolute virtual times at which power is cut, ascending. Each
     *  cut fires once; after the last one the supply is continuous. */
    std::vector<TimeNs> cutsAt;
    /** Off time after every cut (power returns immediately at 0). */
    TimeNs offTime = kNsPerMs;
};

/**
 * Replays a ResetPattern: power fails exactly at each listed instant
 * and returns offTime later. Interval semantics are half-open like
 * PatternSupply's — a charge ending exactly at a cut completes, and
 * the death lands on the next drain (ranFor 0). Cuts that are already
 * in the past when probed (e.g. a second cut arriving while boot /
 * restore work of the previous reboot is still charging — re-entrant
 * death) also kill immediately.
 */
class ScheduledSupply : public Supply
{
  public:
    explicit ScheduledSupply(ResetPattern pattern);

    DrainResult drain(TimeNs now, TimeNs dur, Watts load) override;
    TimeNs offTimeAfterDeath(TimeNs deathTime) override;
    void reset() override { next_ = 0; }
    bool intermittent() const override { return !pattern_.cutsAt.empty(); }

    /** Cuts consumed so far (== deaths this supply forced). */
    std::size_t cutsFired() const { return next_; }
    const ResetPattern &pattern() const { return pattern_; }

    void saveState(StateWriter &w) const override { w.put(next_); }
    void loadState(StateReader &r) override
    {
        next_ = r.get<std::size_t>();
    }

  private:
    ResetPattern pattern_;
    std::size_t next_ = 0; ///< index of the first unconsumed cut
};

/**
 * Capacitor-buffered harvesting supply with hysteresis: the device
 * turns on at Von and browns out at Voff. Integration uses a fixed
 * step, which bounds the error in death-time placement.
 */
class HarvestingSupply : public Supply
{
  public:
    struct Config {
        Farads capacitance = 10e-6;   ///< 10 uF, as on the P2110-EVB
        Volts vMax = 5.25;
        Volts vOn = 3.0;              ///< turn-on threshold
        Volts vOff = 1.8;             ///< MSP430 brown-out
        Watts leakage = 1e-6;
        TimeNs integrationStep = 50 * kNsPerUs;
        /** Give up waiting for power-on after this long off. */
        TimeNs maxOffTime = 3600 * kNsPerSec;
    };

    HarvestingSupply(Config cfg, std::unique_ptr<Harvester> harvester);

    DrainResult drain(TimeNs now, TimeNs dur, Watts load) override;
    TimeNs offTimeAfterDeath(TimeNs deathTime) override;
    void reset() override;

    Volts voltage() const { return cap_.voltage(); }
    Volts voltageNow() const override { return cap_.voltage(); }
    const Config &config() const { return cfg_; }

    void saveState(StateWriter &w) const override
    {
        w.put(cap_.voltage());
        harvester_->saveState(w);
    }
    void loadState(StateReader &r) override
    {
        cap_.setVoltage(r.get<Volts>());
        harvester_->loadState(r);
    }

  private:
    Config cfg_;
    std::unique_ptr<Harvester> harvester_;
    Capacitor cap_;
};

} // namespace ticsim::energy

#endif // TICSIM_ENERGY_SUPPLY_HPP
