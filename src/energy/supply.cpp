#include "supply.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace ticsim::energy {

DrainResult
ContinuousSupply::drain(TimeNs, TimeNs dur, Watts)
{
    return {false, dur};
}

TimeNs
ContinuousSupply::offTimeAfterDeath(TimeNs)
{
    // The supply itself never browns out, but application code may
    // abandon the context (a manual reset / injected failure in
    // tests); power is back instantly.
    return 0;
}

PatternSupply::PatternSupply(TimeNs period, double onFraction)
    : period_(period)
{
    if (period == 0)
        fatal("pattern supply: period must be nonzero");
    if (onFraction <= 0.0 || onFraction > 1.0)
        fatal("pattern supply: on-fraction %g outside (0, 1]", onFraction);
    onTime_ = static_cast<TimeNs>(static_cast<double>(period) * onFraction);
    if (onTime_ == 0)
        fatal("pattern supply: on-time rounds to zero");
}

DrainResult
PatternSupply::drain(TimeNs now, TimeNs dur, Watts)
{
    if (!intermittent())
        return {false, dur};
    const TimeNs phase = now % period_;
    if (phase >= onTime_) {
        // Called while inside an off window (can happen when the board
        // probes right at a boundary): die immediately.
        ++stats_.counter("deaths");
        return {true, 0};
    }
    const TimeNs remainingOn = onTime_ - phase;
    // Half-open windows: a charge occupying [now, now + dur) with
    // dur == remainingOn ends exactly on the window boundary and
    // completes; the death lands on the next drain, which starts at
    // the boundary. (Killing it here would lose the boundary cycle
    // twice — once as unfinished work, once as off time.)
    if (dur <= remainingOn)
        return {false, dur};
    ++stats_.counter("deaths");
    return {true, remainingOn};
}

TimeNs
PatternSupply::offTimeAfterDeath(TimeNs deathTime)
{
    if (!intermittent())
        panic("pattern supply with 100%% duty cannot die");
    const TimeNs phase = deathTime % period_;
    // Next on window begins at the next period boundary.
    return period_ - phase;
}

ScheduledSupply::ScheduledSupply(ResetPattern pattern)
    : pattern_(std::move(pattern))
{
    for (std::size_t i = 1; i < pattern_.cutsAt.size(); ++i) {
        if (pattern_.cutsAt[i] < pattern_.cutsAt[i - 1])
            fatal("scheduled supply: cut times must be ascending");
    }
}

DrainResult
ScheduledSupply::drain(TimeNs now, TimeNs dur, Watts)
{
    if (next_ >= pattern_.cutsAt.size())
        return {false, dur};
    const TimeNs cut = pattern_.cutsAt[next_];
    if (cut <= now) {
        // The cut instant has arrived (or passed, when a previous
        // reboot's boot/restore charges straddled it): re-entrant
        // death, before any of this charge runs.
        ++next_;
        ++stats_.counter("deaths");
        return {true, 0};
    }
    if (now + dur <= cut)
        return {false, dur}; // ends at or before the cut: completes
    ++next_;
    ++stats_.counter("deaths");
    return {true, cut - now};
}

TimeNs
ScheduledSupply::offTimeAfterDeath(TimeNs)
{
    return pattern_.offTime;
}

HarvestingSupply::HarvestingSupply(Config cfg,
                                   std::unique_ptr<Harvester> harvester)
    : cfg_(cfg), harvester_(std::move(harvester)),
      cap_(cfg.capacitance, cfg.vMax, cfg.vOn, cfg.leakage)
{
    if (!harvester_)
        fatal("harvesting supply: null harvester");
    if (cfg.vOff >= cfg.vOn)
        fatal("harvesting supply: vOff %g must be below vOn %g", cfg.vOff,
              cfg.vOn);
    if (cfg.integrationStep == 0)
        fatal("harvesting supply: zero integration step");
}

DrainResult
HarvestingSupply::drain(TimeNs now, TimeNs dur, Watts load)
{
    TimeNs done = 0;
    while (done < dur) {
        const TimeNs step = std::min<TimeNs>(cfg_.integrationStep,
                                             dur - done);
        const double dt = nsToSec(step);
        cap_.charge(harvester_->power(now + done) * dt);
        cap_.discharge((load + cfg_.leakage) * dt);
        done += step;
        if (cap_.voltage() < cfg_.vOff) {
            ++stats_.counter("deaths");
            return {true, done};
        }
    }
    return {false, dur};
}

TimeNs
HarvestingSupply::offTimeAfterDeath(TimeNs deathTime)
{
    TimeNs off = 0;
    while (cap_.voltage() < cfg_.vOn) {
        if (off >= cfg_.maxOffTime) {
            warn("harvesting supply: power-on threshold unreachable; "
                 "device stays dark (off for %llu s)",
                 static_cast<unsigned long long>(off / kNsPerSec));
            return cfg_.maxOffTime;
        }
        const TimeNs step = cfg_.integrationStep;
        const double dt = nsToSec(step);
        cap_.charge(harvester_->power(deathTime + off) * dt);
        cap_.discharge(cfg_.leakage * dt);
        off += step;
    }
    stats_.distribution("offTimeUs").sample(
        static_cast<double>(nsToUs(off)));
    return off;
}

void
HarvestingSupply::reset()
{
    cap_.setVoltage(cfg_.vOn);
    stats_.resetAll();
}

} // namespace ticsim::energy
