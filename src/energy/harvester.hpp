/**
 * @file
 * Ambient-energy harvester models. A harvester reports its output power
 * as a function of virtual time; the PowerSupply integrates that power
 * into the storage capacitor.
 *
 * The paper's Table 2 / Fig. 8 experiments power the board wirelessly
 * from a Powercast TX91501-3W 915 MHz transmitter; RfHarvester models
 * that link with free-space path loss. Square-wave and trace-driven
 * harvesters cover the remaining experiment shapes, and the stochastic
 * harvester produces the irregular outages that drive data-expiration
 * behaviour.
 */

#ifndef TICSIM_ENERGY_HARVESTER_HPP
#define TICSIM_ENERGY_HARVESTER_HPP

#include <memory>
#include <utility>
#include <vector>

#include "support/rng.hpp"
#include "support/statebuf.hpp"
#include "support/units.hpp"

namespace ticsim::energy {

/** Interface: instantaneous harvest power at a given virtual time. */
class Harvester
{
  public:
    virtual ~Harvester() = default;

    /** Output power in watts at virtual time @p now. */
    virtual Watts power(TimeNs now) = 0;

    /** Snapshot/restore hooks for the failure-space explorer. The
     *  defaults cover the stateless models (constant, square-wave,
     *  RF, trace): their output is a pure function of `now`. */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}
};

/** Fixed output power (bench power supply / strong steady source). */
class ConstantHarvester : public Harvester
{
  public:
    explicit ConstantHarvester(Watts p) : power_(p) {}
    Watts power(TimeNs) override { return power_; }

  private:
    Watts power_;
};

/** Square-wave source: @p onPower for a fraction of each period. */
class SquareWaveHarvester : public Harvester
{
  public:
    SquareWaveHarvester(Watts onPower, TimeNs period, double dutyOn);
    Watts power(TimeNs now) override;

  private:
    Watts onPower_;
    TimeNs period_;
    TimeNs onLength_;
};

/**
 * Powercast-like RF harvesting link: transmitter EIRP attenuated by
 * free-space path loss at 915 MHz, converted with a fixed RF-DC
 * efficiency. Matches the order of magnitude of the P2110 receiver
 * (~1 mW at 1-2 m from a 3 W EIRP transmitter).
 */
class RfHarvester : public Harvester
{
  public:
    /**
     * @param txEirpW Transmitter EIRP in watts (paper: 3 W).
     * @param distanceM Receiver distance in meters.
     * @param rxGain Receive antenna gain (linear).
     * @param efficiency RF-to-DC conversion efficiency in (0, 1].
     */
    RfHarvester(Watts txEirpW, double distanceM, double rxGain = 1.26,
                double efficiency = 0.55);

    /**
     * Enable slow log-normal fading: received power varies by
     * N(0, sigmaDb) dB per coherence block (multipath in a real
     * deployment; without it every charge/discharge cycle is
     * identical, which no physical link is).
     */
    void setFading(double sigmaDb, TimeNs blockNs, std::uint64_t seed);

    Watts power(TimeNs now) override;

    /** Re-position the receiver (updates output power). */
    void setDistance(double distanceM);

    double distance() const { return distanceM_; }

  private:
    void recompute();

    Watts txEirpW_;
    double distanceM_;
    double rxGain_;
    double efficiency_;
    Watts harvested_;
    double fadingSigmaDb_ = 0.0;
    TimeNs fadingBlockNs_ = 50 * kNsPerMs;
    std::uint64_t fadingSeed_ = 0;
};

/** Piecewise-constant power trace: (start time, power) breakpoints. */
class TraceHarvester : public Harvester
{
  public:
    /**
     * @param points Breakpoints sorted by time; power holds from each
     *               breakpoint until the next (and the last forever).
     * @param repeatEvery If nonzero, the trace wraps with this period.
     */
    explicit TraceHarvester(std::vector<std::pair<TimeNs, Watts>> points,
                            TimeNs repeatEvery = 0);

    Watts power(TimeNs now) override;

  private:
    std::vector<std::pair<TimeNs, Watts>> points_;
    TimeNs repeatEvery_;
};

/**
 * Gilbert-style two-state stochastic source: alternates exponentially
 * distributed good (harvesting) and dead (no harvest) intervals, with
 * per-interval power jitter. Produces the variable off-time
 * distribution that triggers data-expiration violations.
 */
class StochasticHarvester : public Harvester
{
  public:
    StochasticHarvester(Watts meanPower, TimeNs meanOnNs, TimeNs meanOffNs,
                        Rng rng);

    Watts power(TimeNs now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    void advanceTo(TimeNs now);

    Watts meanPower_;
    TimeNs meanOnNs_;
    TimeNs meanOffNs_;
    Rng rng_;
    TimeNs stateEnd_ = 0;
    bool on_ = false;
    Watts current_ = 0.0;
};

} // namespace ticsim::energy

#endif // TICSIM_ENERGY_HARVESTER_HPP
