/**
 * @file
 * Exhaustive failure-space exploration on snapshot/fork (DESIGN.md
 * Section 13).
 *
 * The random/systematic campaign (fault/campaign.*) samples the
 * failure space; the explorer *enumerates* it. One recording pass per
 * pair runs the application failure-free with an ExploreSink installed
 * and takes a light board::Snapshot at every decision point — each
 * boundary event and each gated NV store. The driver then walks the
 * decision list newest-first (write-journal marks only roll backward),
 * restores each snapshot in place, and branches over the local fault
 * alphabet: die here, or — at a store — land one of the distinct torn
 * images and then die. Each branch is driven to a leaf and classified
 * against the pair's golden reference exactly like a campaign subject.
 *
 * With maxFaults > 1 every branch leaf is itself re-recorded and
 * explored recursively, enumerating all schedules of up to that many
 * faults. A pair whose walk hits no frontier cut-off is *exhausted*:
 * within the model (one death per decision point, the tear alphabet
 * below, depth maxFaults) every schedule was executed and classified.
 * Violations are deduplicated, re-confirmed through a real from-boot
 * injector replay, and ddmin-minimized when they carry more than one
 * atom.
 *
 * The same snapshot machinery powers forkShrinkViolation(): the ddmin
 * shrinker evaluates candidate plans by restoring the latest snapshot
 * from which every atom of the original plan still lies ahead and
 * executing only the suffix, instead of re-running from boot. Minimal
 * plans are identical by construction (shrinkPlanWith is pure in its
 * evaluator); Violation::shrinkCycles measures the saving.
 */

#ifndef TICSIM_FAULT_EXPLORE_HPP
#define TICSIM_FAULT_EXPLORE_HPP

#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "support/table.hpp"

namespace ticsim::fault {

struct ExploreConfig {
    /** Seed, budget, off window, app params; base.jobs is ignored
     *  (the explorer shards with its own jobs field below). */
    CampaignConfig base{};
    /** Maximum faults per explored schedule (exploration depth). */
    std::uint32_t maxFaults = 1;
    /**
     * Frontier cap: decision points explored per recording frame
     * (0 = unbounded). A capped walk skips the *earliest* decisions —
     * the ones nearest boot are reachable by every sampling campaign
     * anyway — counts each skip as a frontier cut-off, and reports
     * exhausted = false.
     */
    std::uint64_t maxDecisions = 0;
    /** Worker threads; top-level decision points are dealt round-robin
     *  across shards, each with its own Board. Any job count yields
     *  the identical report. */
    unsigned jobs = 1;
};

/** One distinct violating schedule the walk found. */
struct ExploredViolation {
    std::string plan;     ///< minimal confirmed schedule
    std::string foundAs;  ///< schedule the walk first hit it with
    std::string kind;     ///< classification (campaign.hpp)
    std::uint64_t divergentBytes = 0;
    /** Re-ran through the real from-boot injector and still violates.
     *  Unconfirmed entries mark fidelity gaps of the emulated death,
     *  are kept visible, and never count toward the verdict. */
    bool confirmed = false;
};

/** The explorer's verdict on one (app, runtime) pair. */
struct PairExploreResult {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    bool refCompleted = false;
    /** The recording pass reproduced the reference run exactly (it
     *  must: both are failure-free). */
    bool recordingConsistent = true;
    std::uint64_t decisionPoints = 0;  ///< per top-level recording
    std::uint64_t branchesTaken = 0;   ///< schedules started
    std::uint64_t statesExplored = 0;  ///< leaves classified
    std::uint64_t frontierCutoffs = 0; ///< decisions skipped by the cap
    /** Proof of exhaustion: every decision point was branched over at
     *  full depth — the violation list is complete for this model. */
    bool exhausted = false;
    std::uint64_t confirmedViolations = 0;
    std::vector<ExploredViolation> violations;
};

struct ExploreReport {
    std::vector<PairExploreResult> pairs;
    std::uint32_t maxFaults = 1;

    bool
    allExhausted() const
    {
        for (const auto &p : pairs)
            if (!p.exhausted)
                return false;
        return !pairs.empty();
    }

    /**
     * The acceptance verdict: every reference completed and re-recorded
     * consistently, protected pairs show zero confirmed violations, and
     * an exhausted unprotected pair shows at least one (an exhaustive
     * walk that cannot break plain C would mean the model lost its
     * teeth).
     */
    bool ok() const;
};

/** Enumerate the failure space of one pair. */
PairExploreResult explorePair(const ExploreConfig &cfg,
                              const PairSpec &spec);

/** explorePair over a set of pairs (see campaignPairs()). */
ExploreReport exploreMatrix(const ExploreConfig &cfg,
                            const std::vector<PairSpec> &specs);

/**
 * The fork-based ddmin shrinker: shrinkPlanWith() over an evaluator
 * that restores the latest safe snapshot and executes only the suffix.
 * Falls back to a from-boot evaluation for candidates whose first atom
 * lands before the snapshot (cannot happen for subsets of @p original,
 * but absolutized confirmation plans are also routed through it).
 * Drop-in replacement for shrinkViolationFromBoot().
 */
Violation forkShrinkViolation(const CampaignConfig &cfg,
                              const PairSpec &spec,
                              const PairRunOutcome &ref,
                              const FaultPlan &original,
                              const Classification &firstSeen);

/** Per-pair summary in the repo's standard table format. */
Table exploreTable(const ExploreReport &report);

/** Per-violation detail (minimal confirmed schedules). */
Table exploreViolationTable(const ExploreReport &report);

} // namespace ticsim::fault

#endif // TICSIM_FAULT_EXPLORE_HPP
