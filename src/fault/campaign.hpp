/**
 * @file
 * Adversarial fault-injection campaigns over the (app, runtime) matrix
 * (DESIGN.md Section 8).
 *
 * For every pair the driver first performs a failure-free reference
 * run with the injector in observe mode, which yields both the golden
 * final state (via the replay oracle) and a census of boundary events
 * and gated stores. From the census it enumerates systematic schedules
 * — cuts at and just after every commit/restore/send/boot boundary,
 * torn writes at first/middle/last store of each site, stale-slot
 * retention flips — plus a band of seeded-random schedules, and runs
 * each as a subject. A violation is any subject run that fails to
 * complete, fails the app's own verify(), or whose final application
 * state diverges from the reference.
 *
 * Every violation is delta-debugged (ddmin over the plan's atoms) to a
 * minimal reproducing schedule, re-verified by replay, and — when the
 * minimized schedule is cuts-only — absolutized into an explicit
 * ResetPattern of cut instants so it replays independently of event
 * counting. The whole campaign is a pure function of its seed.
 */

#ifndef TICSIM_FAULT_CAMPAIGN_HPP
#define TICSIM_FAULT_CAMPAIGN_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/replay_oracle.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/common/cuckoo_core.hpp"
#include "board/board.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "support/table.hpp"

namespace ticsim::fault {

struct CampaignConfig {
    std::uint64_t seed = 11;
    /** Seeded-random schedules per pair on top of the systematic set. */
    std::uint32_t randomSchedules = 8;
    /** Virtual-time budget per run. Faults are finite, so every run —
     *  including plain C restarting from scratch — eventually
     *  completes on the continuous tail; no separate unprotected
     *  budget is needed. */
    TimeNs budget = 600 * kNsPerSec;
    /** Off window after every injected death. */
    TimeNs offNs = 12 * kNsPerMs;
    /** Wall-clock cap in seconds; 0 = unlimited. A capped campaign
     *  marks itself truncated (and is then not seed-reproducible). */
    double maxSeconds = 0;
    /**
     * Worker threads for the reference / subject / shrink phases
     * (0 = all hardware threads). Every run uses a fresh Board and
     * results are assembled in (pair, schedule) order, so any job
     * count produces the identical report as long as the wall-clock
     * cap does not fire.
     */
    unsigned jobs = 1;
    /** Minimize violations by forking from a snapshot instead of
     *  re-running every ddmin candidate from boot (same minimal plans,
     *  fewer simulated cycles; see fault/explore.hpp). */
    bool forkShrink = false;
    apps::BcParams bc{};
    apps::CuckooParams cuckoo{};

    CampaignConfig()
    {
        // Same scaling as ticscheck: one Cuckoo pass must span several
        // injected outages for the unprotected split to show anything.
        cuckoo.workScale = 16.0;
    }
};

/** Outcome of one subject (or reference) run of a pair. */
struct PairRunOutcome {
    board::RunResult res;
    bool verified = false;
    analysis::ArenaSnapshot snap;
    EventCensus census;
    std::vector<TimeNs> firedCuts;
    std::uint64_t injectedDeaths = 0;
    std::uint64_t tearsApplied = 0;
    std::uint64_t flipsApplied = 0;
    /** Per-atom trigger records in planFromAtoms order (cuts, tears,
     *  flips) — what `ticsfault --replay` reports per plan event. */
    std::vector<AtomFiring> atomFirings;
};

/**
 * A pair's components, disassembled: stepwise drivers (the failure-
 * space explorer, the fork shrinker) begin/continue the board run
 * themselves and call verify() at every explored leaf instead of once
 * after a whole run.
 */
struct PairEnv {
    std::unique_ptr<board::Runtime> runtime;
    std::shared_ptr<void> app; ///< keeps the app object alive
    std::function<void()> entry; ///< null for task-model apps
    std::function<bool()> verify;
};

/** One (app, runtime) campaign target. */
struct PairSpec {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    /** CheckpointArea region prefix ("tics.ckpt", ...) for stale-slot
     *  flip schedules; empty when the runtime has no checkpoint area. */
    std::string ckptPrefix;
    /** Build runtime + app on @p board and run to completion/budget. */
    std::function<PairRunOutcome(board::Board &, TimeNs budget)> run;
    /** Build runtime + app on @p board without running (see PairEnv). */
    std::function<PairEnv(board::Board &)> make;
};

/**
 * Verdict of a subject run against the reference: empty kind means
 * consistent; otherwise layout | starved | not-completed |
 * verify-failed | diverged, in that precedence order.
 */
struct Classification {
    std::string kind;
    std::uint64_t divergentBytes = 0;
};

Classification classifyOutcome(const PairRunOutcome &ref,
                               const PairRunOutcome &sub);

/**
 * One subject (or reference) execution: fresh board, fresh runtime and
 * app from the pair's factories, a FaultedSupply over a continuous
 * inner supply, and the injector installed as access sink + store gate
 * for the whole run. The factories rebuild identical objects each
 * time, so arena layouts match and the replay diff is byte-meaningful.
 */
PairRunOutcome runPairWithPlan(const CampaignConfig &cfg,
                               const PairSpec &spec, const FaultPlan &plan,
                               bool observe);

/** Rebuild a plan from a subset of its atom indices (ddmin
 *  granularity: one cut, tear, or flip per atom, in that order;
 *  offNs always carried over). */
FaultPlan planFromAtoms(const FaultPlan &full,
                        const std::vector<std::size_t> &keep);

/** The campaign matrix: BC and Cuckoo under TICS, MementOS-like,
 *  Chinchilla-like, Alpaca-like tasks, and plain C (10 pairs,
 *  mirroring ticscheck). */
std::vector<PairSpec> campaignPairs(const CampaignConfig &cfg);

/** What one evaluation of a candidate plan observed. */
struct PlanProbe {
    Classification cls;
    std::vector<TimeNs> firedCuts; ///< for cut absolutization
    Cycles cycles = 0; ///< simulated cycles the evaluation executed
};

/** Evaluate one candidate plan against the pair's reference. The
 *  from-boot evaluator re-runs the whole pair; the fork evaluator
 *  restores a snapshot and only executes the suffix. */
using PlanEval = std::function<PlanProbe(const FaultPlan &)>;

/** A minimized, replay-verified consistency violation. */
struct Violation {
    std::string app;
    std::string runtime;
    std::string plan;        ///< minimized schedule (FaultPlan::format)
    std::string originalPlan;///< schedule that first exposed it
    std::string kind;        ///< not-completed | starved | verify-failed
                             ///< | diverged | layout
    std::uint64_t divergentBytes = 0;
    std::uint32_t shrinkRuns = 0;  ///< subject runs the shrinker spent
    bool replayVerified = false;   ///< minimized plan still violates
    Cycles shrinkCycles = 0;       ///< simulated cycles all evals spent
};

/**
 * ddmin over the plan's atoms through @p eval, then — for cuts-only
 * survivors — an absolutization pass preferring the equivalent
 * explicit `cut@t:` schedule, then a final confirmation evaluation.
 * Pure in @p eval: plug in a from-boot or a fork-based evaluator and
 * the minimal plans come out the same.
 */
Violation shrinkPlanWith(const PairSpec &spec, const FaultPlan &original,
                         const Classification &firstSeen,
                         const PlanEval &eval);

/** The from-boot shrinker: shrinkPlanWith over full re-runs. */
Violation shrinkViolationFromBoot(const CampaignConfig &cfg,
                                  const PairSpec &spec,
                                  const PairRunOutcome &ref,
                                  const FaultPlan &original,
                                  const Classification &firstSeen);

struct PairReport {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    bool refCompleted = false;
    std::uint64_t schedules = 0;
    std::uint64_t violations = 0;
    std::uint64_t injectedDeaths = 0;
    std::uint64_t tearsApplied = 0;
    std::uint64_t flipsApplied = 0;
    std::vector<Violation> found;
};

struct CampaignReport {
    std::vector<PairReport> pairs;
    std::uint64_t totalSchedules = 0;
    std::uint64_t totalViolations = 0;
    /** True when the wall-clock cap truncated the sweep. */
    bool truncated = false;

    /**
     * The acceptance verdict: every reference completed, protected
     * pairs show zero violations, the unprotected baseline shows at
     * least one, and every reported violation replays from its
     * minimized schedule.
     */
    bool ok() const;
};

/** Run the full campaign. Deterministic for a given config when
 *  maxSeconds is 0. */
CampaignReport runCampaign(const CampaignConfig &cfg);

/**
 * Re-execute one plan against one pair ("App/Runtime"), reporting the
 * violation kind ("consistent" when the run is clean). Returns false
 * when the pair name matches nothing.
 */
bool replayPlan(const CampaignConfig &cfg, const std::string &pairName,
                const FaultPlan &plan, std::string &verdictOut);

/** One plan atom's replay status, human-readable. */
struct ReplayAtomStatus {
    std::string atom;   ///< the atom, re-serialized on its own
    bool fired = false;
    std::uint64_t occurrence = 0; ///< boundary/store/boot ordinal hit
    TimeNs at = 0;                ///< virtual time of the trigger
};

/** replayPlan plus per-atom firing detail for `ticsfault --replay`. */
struct ReplayDetail {
    std::string verdict;
    std::vector<ReplayAtomStatus> atoms;

    bool allFired() const
    {
        for (const auto &a : atoms)
            if (!a.fired)
                return false;
        return true;
    }
};

bool replayPlanDetailed(const CampaignConfig &cfg,
                        const std::string &pairName, const FaultPlan &plan,
                        ReplayDetail &out);

/** Per-pair summary in the repo's standard table format. */
Table campaignTable(const CampaignReport &report);

/** Per-violation detail (minimized schedules). */
Table violationTable(const CampaignReport &report);

} // namespace ticsim::fault

#endif // TICSIM_FAULT_CAMPAIGN_HPP
