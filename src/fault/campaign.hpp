/**
 * @file
 * Adversarial fault-injection campaigns over the (app, runtime) matrix
 * (DESIGN.md Section 8).
 *
 * For every pair the driver first performs a failure-free reference
 * run with the injector in observe mode, which yields both the golden
 * final state (via the replay oracle) and a census of boundary events
 * and gated stores. From the census it enumerates systematic schedules
 * — cuts at and just after every commit/restore/send/boot boundary,
 * torn writes at first/middle/last store of each site, stale-slot
 * retention flips — plus a band of seeded-random schedules, and runs
 * each as a subject. A violation is any subject run that fails to
 * complete, fails the app's own verify(), or whose final application
 * state diverges from the reference.
 *
 * Every violation is delta-debugged (ddmin over the plan's atoms) to a
 * minimal reproducing schedule, re-verified by replay, and — when the
 * minimized schedule is cuts-only — absolutized into an explicit
 * ResetPattern of cut instants so it replays independently of event
 * counting. The whole campaign is a pure function of its seed.
 */

#ifndef TICSIM_FAULT_CAMPAIGN_HPP
#define TICSIM_FAULT_CAMPAIGN_HPP

#include <functional>
#include <string>
#include <vector>

#include "analysis/replay_oracle.hpp"
#include "apps/bc/bc_legacy.hpp"
#include "apps/common/cuckoo_core.hpp"
#include "board/board.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "support/table.hpp"

namespace ticsim::fault {

struct CampaignConfig {
    std::uint64_t seed = 11;
    /** Seeded-random schedules per pair on top of the systematic set. */
    std::uint32_t randomSchedules = 8;
    /** Virtual-time budget per run. Faults are finite, so every run —
     *  including plain C restarting from scratch — eventually
     *  completes on the continuous tail; no separate unprotected
     *  budget is needed. */
    TimeNs budget = 600 * kNsPerSec;
    /** Off window after every injected death. */
    TimeNs offNs = 12 * kNsPerMs;
    /** Wall-clock cap in seconds; 0 = unlimited. A capped campaign
     *  marks itself truncated (and is then not seed-reproducible). */
    double maxSeconds = 0;
    /**
     * Worker threads for the reference / subject / shrink phases
     * (0 = all hardware threads). Every run uses a fresh Board and
     * results are assembled in (pair, schedule) order, so any job
     * count produces the identical report as long as the wall-clock
     * cap does not fire.
     */
    unsigned jobs = 1;
    apps::BcParams bc{};
    apps::CuckooParams cuckoo{};

    CampaignConfig()
    {
        // Same scaling as ticscheck: one Cuckoo pass must span several
        // injected outages for the unprotected split to show anything.
        cuckoo.workScale = 16.0;
    }
};

/** Outcome of one subject (or reference) run of a pair. */
struct PairRunOutcome {
    board::RunResult res;
    bool verified = false;
    analysis::ArenaSnapshot snap;
    EventCensus census;
    std::vector<TimeNs> firedCuts;
    std::uint64_t injectedDeaths = 0;
    std::uint64_t tearsApplied = 0;
    std::uint64_t flipsApplied = 0;
};

/** One (app, runtime) campaign target. */
struct PairSpec {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    /** CheckpointArea region prefix ("tics.ckpt", ...) for stale-slot
     *  flip schedules; empty when the runtime has no checkpoint area. */
    std::string ckptPrefix;
    /** Build runtime + app on @p board and run to completion/budget. */
    std::function<PairRunOutcome(board::Board &, TimeNs budget)> run;
};

/** The campaign matrix: BC and Cuckoo under TICS, MementOS-like,
 *  Chinchilla-like, Alpaca-like tasks, and plain C (10 pairs,
 *  mirroring ticscheck). */
std::vector<PairSpec> campaignPairs(const CampaignConfig &cfg);

/** A minimized, replay-verified consistency violation. */
struct Violation {
    std::string app;
    std::string runtime;
    std::string plan;        ///< minimized schedule (FaultPlan::format)
    std::string originalPlan;///< schedule that first exposed it
    std::string kind;        ///< not-completed | starved | verify-failed
                             ///< | diverged | layout
    std::uint64_t divergentBytes = 0;
    std::uint32_t shrinkRuns = 0;  ///< subject runs the shrinker spent
    bool replayVerified = false;   ///< minimized plan still violates
};

struct PairReport {
    std::string app;
    std::string runtime;
    bool isProtected = true;
    bool refCompleted = false;
    std::uint64_t schedules = 0;
    std::uint64_t violations = 0;
    std::uint64_t injectedDeaths = 0;
    std::uint64_t tearsApplied = 0;
    std::uint64_t flipsApplied = 0;
    std::vector<Violation> found;
};

struct CampaignReport {
    std::vector<PairReport> pairs;
    std::uint64_t totalSchedules = 0;
    std::uint64_t totalViolations = 0;
    /** True when the wall-clock cap truncated the sweep. */
    bool truncated = false;

    /**
     * The acceptance verdict: every reference completed, protected
     * pairs show zero violations, the unprotected baseline shows at
     * least one, and every reported violation replays from its
     * minimized schedule.
     */
    bool ok() const;
};

/** Run the full campaign. Deterministic for a given config when
 *  maxSeconds is 0. */
CampaignReport runCampaign(const CampaignConfig &cfg);

/**
 * Re-execute one plan against one pair ("App/Runtime"), reporting the
 * violation kind ("consistent" when the run is clean). Returns false
 * when the pair name matches nothing.
 */
bool replayPlan(const CampaignConfig &cfg, const std::string &pairName,
                const FaultPlan &plan, std::string &verdictOut);

/** Per-pair summary in the repo's standard table format. */
Table campaignTable(const CampaignReport &report);

/** Per-violation detail (minimized schedules). */
Table violationTable(const CampaignReport &report);

} // namespace ticsim::fault

#endif // TICSIM_FAULT_CAMPAIGN_HPP
