#include "explore.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <utility>

#include "board/runtime.hpp"
#include "mem/journal.hpp"
#include "support/logging.hpp"
#include "sweep/job_pool.hpp"
#include "timekeeper/timekeeper.hpp"

namespace ticsim::fault {

namespace {

// ---- the explorer ----------------------------------------------------------

/**
 * One forkable point discovered by a recording pass: a boundary event
 * (branch: die here) or a gated NV store (branches: land each distinct
 * torn image, then die). Carries the light snapshot to restore, the
 * sink census to reseed, and — for stores — the source bytes, because
 * the caller's src pointer is dead by the time the branch runs.
 */
struct Decision {
    bool isStore = false;
    Boundary boundary = Boundary::Boot;
    mem::StoreSite site = mem::StoreSite::AppGlobal;
    std::uint64_t occurrence = 0; ///< ordinal this branch's atom targets
    std::uint32_t bytes = 0;
    void *dst = nullptr;
    std::vector<std::uint8_t> src;
    /** Sink census to reseed on restore: for boundaries *after* the
     *  event was counted (the cut atom targets the count as-of here);
     *  for stores *before* (the branch itself replays the count). */
    EventCensus counters{};
    board::Snapshot snap{};
};

using Frame = std::vector<Decision>;

/**
 * Recording-pass sink: counts events exactly like FaultInjector (same
 * started_ gating, construction stores excluded) and, while a frame is
 * armed, records a Decision with a light snapshot per countable event.
 * Also the gate that executes gated stores during exploration — with
 * journaling, so restore() can roll them back.
 */
class ExploreSink : public mem::AccessSink, public mem::StoreGate
{
  public:
    explicit ExploreSink(board::Board &board) : board_(board) {}

    void beginRecording(Frame *frame) { frame_ = frame; }
    void stopRecording() { frame_ = nullptr; }

    EventCensus &census() { return census_; }
    void setCensus(const EventCensus &c) { census_ = c; }

    // AccessSink
    void memRead(const void *, std::uint32_t) override {}
    void memWrite(const void *, std::uint32_t) override {}
    void memVersioned(const void *, std::uint32_t) override {}

    void
    powerOn() override
    {
        started_ = true;
        note(Boundary::Boot);
    }

    void commit() override { note(Boundary::CommitEnd); }

    void
    sideEvent(const mem::SideEvent &ev) override
    {
        switch (ev.kind) {
          case mem::SideEventKind::CkptCommitStart:
            note(Boundary::CommitStart);
            break;
          case mem::SideEventKind::BootRestore:
            note(Boundary::BootRestore);
            break;
          case mem::SideEventKind::PeripheralSend:
            note(Boundary::PeripheralSend);
            break;
          case mem::SideEventKind::TimeRead:
            note(Boundary::TimeRead);
            break;
          default:
            break;
        }
    }

    // StoreGate
    void
    store(mem::StoreSite site, void *dst, const void *src,
          std::uint32_t bytes) override
    {
        if (!started_) {
            // Programming-time stores: outside the fault universe.
            std::memcpy(dst, src, bytes);
            return;
        }
        const int s = static_cast<int>(site);
        if (frame_ != nullptr) {
            Decision d;
            d.isStore = true;
            d.site = site;
            d.occurrence = census_.stores[s] + 1;
            d.bytes = bytes;
            d.dst = dst;
            d.src.assign(static_cast<const std::uint8_t *>(src),
                         static_cast<const std::uint8_t *>(src) + bytes);
            d.counters = census_;
            board_.snapshot(d.snap, /*withFiber=*/false);
            frame_->push_back(std::move(d));
        }
        ++census_.stores[s];
        mem::journalNote(dst, bytes);
        std::memcpy(dst, src, bytes);
    }

  private:
    void
    note(Boundary b)
    {
        ++census_.boundary[static_cast<int>(b)];
        if (frame_ == nullptr)
            return;
        Decision d;
        d.boundary = b;
        d.occurrence = census_.boundary[static_cast<int>(b)];
        d.counters = census_;
        board_.snapshot(d.snap, /*withFiber=*/false);
        frame_->push_back(std::move(d));
    }

    board::Board &board_;
    Frame *frame_ = nullptr;
    EventCensus census_{};
    bool started_ = false;
};

/** One branch of a decision's local fault alphabet, as a plan atom. */
struct BranchAtom {
    bool isTear = false;
    Boundary boundary = Boundary::Boot;
    mem::StoreSite site = mem::StoreSite::AppGlobal;
    std::uint64_t occurrence = 0;
    TearMode mode = TearMode::Prefix;
    std::uint32_t keepBytes = 0;
};

/**
 * The local alphabet. A boundary forks one branch: die here. A store
 * of n bytes forks the distinct torn images the injector's tear modes
 * can produce — nothing landed, half landed, a garbled tail, word
 * interleaving — each followed by death, deduplicated by (mode, keep).
 */
std::vector<BranchAtom>
branchesOf(const Decision &d)
{
    std::vector<BranchAtom> out;
    if (!d.isStore) {
        BranchAtom a;
        a.boundary = d.boundary;
        a.occurrence = d.occurrence;
        out.push_back(a);
        return out;
    }
    const auto add = [&](TearMode m, std::uint32_t keep) {
        for (const auto &b : out)
            if (b.mode == m && b.keepBytes == keep)
                return;
        BranchAtom a;
        a.isTear = true;
        a.site = d.site;
        a.occurrence = d.occurrence;
        a.mode = m;
        a.keepBytes = keep;
        out.push_back(a);
    };
    const std::uint32_t n = d.bytes;
    add(TearMode::Prefix, 0);
    if (n / 2 > 0)
        add(TearMode::Prefix, n / 2);
    if (n > 0)
        add(TearMode::GarbageTail, std::min<std::uint32_t>(4, n / 2));
    if (n > 4)
        add(TearMode::Interleaved, n / 2);
    return out;
}

void
atomInto(const BranchAtom &a, FaultPlan &p)
{
    if (a.isTear) {
        TornWrite t;
        t.site = a.site;
        t.occurrence = a.occurrence;
        t.mode = a.mode;
        t.keepBytes = a.keepBytes;
        p.tears.push_back(t);
    } else {
        PowerCut c;
        c.absolute = false;
        c.boundary = a.boundary;
        c.occurrence = a.occurrence;
        c.delayNs = 0;
        p.cuts.push_back(c);
    }
}

/** A violating leaf, pending cross-shard dedup and confirmation. */
struct PendingViolation {
    FaultPlan plan;
    std::string planStr;
    std::string kind;
    std::uint64_t divergentBytes = 0;
};

struct ShardStats {
    bool recordingConsistent = true;
    std::uint64_t decisionPoints = 0; ///< identical across shards
    std::uint64_t branchesTaken = 0;
    std::uint64_t statesExplored = 0;
    std::uint64_t frontierCutoffs = 0;
    std::vector<PendingViolation> viols;
};

PairRunOutcome
leafOutcome(board::Board &board, const PairEnv &env,
            const board::RunResult &res)
{
    PairRunOutcome out;
    out.res = res;
    out.verified = env.verify();
    out.snap = analysis::ReplayOracle::capture(
        board.nvram(), analysis::ReplayOracle::appStateFilter());
    return out;
}

/**
 * One shard's walk: own Board, own recording pass (identical in every
 * shard), then the reverse-index branch loop over the decisions this
 * shard owns. Decisions must be restored newest-first — write-journal
 * marks only roll backward — which the reverse walk guarantees at
 * every depth.
 */
class ShardWalker
{
  public:
    ShardWalker(const ExploreConfig &cfg, const PairSpec &spec,
                const PairRunOutcome &ref, unsigned shard,
                unsigned shardCount)
        : cfg_(cfg), spec_(spec), ref_(ref), shard_(shard),
          shards_(shardCount)
    {
    }

    ShardStats
    run()
    {
        board::BoardConfig bcfg;
        bcfg.seed = cfg_.base.seed;
        auto supply = std::make_unique<FaultedSupply>(
            std::make_unique<energy::ContinuousSupply>(), cfg_.base.offNs);
        sup_ = supply.get();
        board::Board board(bcfg, std::move(supply),
                           std::make_unique<timekeeper::PerfectTimekeeper>());
        board_ = &board;
        ExploreSink sink(board);
        sink_ = &sink;
        mem::ScopedAccessSink as(&sink);
        mem::ScopedStoreGate sg(&sink);
        PairEnv env = spec_.make(board);
        env_ = &env;
        mem::WriteJournal journal;
        mem::ScopedWriteJournal sj(&journal);

        board.beginRun(*env.runtime, env.entry, cfg_.base.budget);
        Frame top;
        sink.beginRecording(&top);
        const board::RunResult cleanRes = board.continueRun();
        sink.stopRecording();

        // The fault-free recording pass must be the reference run.
        const PairRunOutcome clean = leafOutcome(board, env, cleanRes);
        if (!classifyOutcome(ref_, clean).kind.empty()) {
            st_.recordingConsistent = false;
            return st_;
        }

        st_.decisionPoints = top.size();
        walkFrame(top, cfg_.maxFaults - 1, /*sharded=*/true);
        return st_;
    }

  private:
    void
    walkFrame(const Frame &frame, std::uint32_t depthLeft, bool sharded)
    {
        // The frontier cap keeps the *latest* decisions: the earliest
        // ones sit a few events past boot, where sampling campaigns
        // already reach cheaply.
        std::size_t lo = 0;
        if (cfg_.maxDecisions != 0 && frame.size() > cfg_.maxDecisions)
            lo = frame.size() - cfg_.maxDecisions;
        for (std::size_t i = frame.size(); i-- > 0;) {
            if (sharded && i % shards_ != shard_)
                continue;
            if (i < lo) {
                ++st_.frontierCutoffs;
                continue;
            }
            exploreDecision(frame[i], depthLeft);
        }
    }

    void
    exploreDecision(const Decision &d, std::uint32_t depthLeft)
    {
        for (const BranchAtom &a : branchesOf(d)) {
            board_->restore(d.snap);
            sink_->setCensus(d.counters);
            ++st_.branchesTaken;
            if (a.isTear) {
                // The torn store happens — counted, journaled, landed
                // torn — and the lights go out on it.
                ++sink_->census().stores[static_cast<int>(d.site)];
                TornWrite t;
                t.site = a.site;
                t.occurrence = a.occurrence;
                t.mode = a.mode;
                t.keepBytes = a.keepBytes;
                mem::journalNote(d.dst, d.bytes);
                applyTornStore(t, d.dst, d.src.data(), d.bytes);
            }
            sup_->noteForcedDeath();
            board_->markInjectedDeath();
            path_.push_back(a);
            if (depthLeft == 0) {
                classifyLeaf(board_->continueRun());
            } else {
                Frame sub;
                sink_->beginRecording(&sub);
                const board::RunResult res = board_->continueRun();
                sink_->stopRecording();
                classifyLeaf(res);
                walkFrame(sub, depthLeft - 1, /*sharded=*/false);
            }
            path_.pop_back();
        }
    }

    void
    classifyLeaf(const board::RunResult &res)
    {
        ++st_.statesExplored;
        const PairRunOutcome sub = leafOutcome(*board_, *env_, res);
        const Classification c = classifyOutcome(ref_, sub);
        if (c.kind.empty())
            return;
        PendingViolation pv;
        pv.plan.offNs = cfg_.base.offNs;
        for (const BranchAtom &a : path_)
            atomInto(a, pv.plan);
        pv.planStr = pv.plan.format();
        pv.kind = c.kind;
        pv.divergentBytes = c.divergentBytes;
        st_.viols.push_back(std::move(pv));
    }

    const ExploreConfig &cfg_;
    const PairSpec &spec_;
    const PairRunOutcome &ref_;
    unsigned shard_;
    unsigned shards_;
    board::Board *board_ = nullptr;
    FaultedSupply *sup_ = nullptr;
    ExploreSink *sink_ = nullptr;
    PairEnv *env_ = nullptr;
    std::vector<BranchAtom> path_;
    ShardStats st_;
};

// ---- the fork shrinker -----------------------------------------------------

/**
 * Recording-side sink of forkShrinkViolation(): counts the census the
 * same way FaultInjector does and keeps re-capturing a full (fiber)
 * snapshot at every countable event, as long as every atom of the
 * target plan still lies ahead of it. The *last* capture wins: the
 * latest point from which any subset of the target plan can still
 * fire, so forked evaluations execute the shortest possible suffix.
 *
 * The capture runs inside this sink's own stack frames; when an
 * evaluation restores the snapshot, execution resumes here (capture
 * returns false), falls through the store tail — journal note plus
 * memcpy, now under the evaluation's injector — and returns to the
 * runtime as if the recording run had never stopped.
 */
class ShrinkRecorder : public mem::AccessSink, public mem::StoreGate
{
  public:
    ShrinkRecorder(board::Board &board, const FaultPlan &target)
        : board_(board), target_(&target)
    {
    }

    void disarm() { arming_ = false; }
    bool haveSnap() const { return haveSnap_; }
    const board::Snapshot &snap() const { return snap_; }
    const InjectorState &stateAt() const { return state0_; }

    /** Can a forked evaluation of @p p start from the snapshot — i.e.
     *  does every one of its atoms still lie ahead of it? */
    bool
    planSafeFrom(const FaultPlan &p) const
    {
        if (!haveSnap_)
            return false;
        for (const auto &c : p.cuts) {
            if (c.absolute) {
                if (snap_.now >= c.atNs)
                    return false;
            } else if (state0_.census.boundary[static_cast<int>(
                           c.boundary)] >= c.occurrence) {
                return false;
            }
        }
        for (const auto &t : p.tears)
            if (state0_.census.stores[static_cast<int>(t.site)] >=
                t.occurrence)
                return false;
        for (const auto &f : p.flips)
            if (state0_.boots >= f.outageIndex + 1)
                return false;
        return true;
    }

    // AccessSink
    void memRead(const void *, std::uint32_t) override {}
    void memWrite(const void *, std::uint32_t) override {}
    void memVersioned(const void *, std::uint32_t) override {}

    void
    powerOn() override
    {
        started_ = true;
        ++boots_;
        ++census_.boundary[static_cast<int>(Boundary::Boot)];
        maybeCaptureBoot();
    }

    void
    commit() override
    {
        count(Boundary::CommitEnd);
    }

    void
    sideEvent(const mem::SideEvent &ev) override
    {
        switch (ev.kind) {
          case mem::SideEventKind::CkptCommitStart:
            count(Boundary::CommitStart);
            break;
          case mem::SideEventKind::BootRestore:
            count(Boundary::BootRestore);
            break;
          case mem::SideEventKind::PeripheralSend:
            count(Boundary::PeripheralSend);
            break;
          case mem::SideEventKind::TimeRead:
            count(Boundary::TimeRead);
            break;
          default:
            break;
        }
    }

    // StoreGate
    void
    store(mem::StoreSite site, void *dst, const void *src,
          std::uint32_t bytes) override
    {
        if (!started_) {
            std::memcpy(dst, src, bytes);
            return;
        }
        ++census_.stores[static_cast<int>(site)];
        maybeCaptureFiber();
        // Resumed evaluations re-enter above and complete the store
        // here, under their own injector and journal epoch.
        mem::journalNote(dst, bytes);
        std::memcpy(dst, src, bytes);
    }

  private:
    void
    count(Boundary b)
    {
        ++census_.boundary[static_cast<int>(b)];
        maybeCaptureFiber();
    }

    void
    maybeCaptureFiber()
    {
        if (!checkArmed())
            return;
        if (!board_.ctx().inside())
            return; // scheduler-side event; boot capture covers those
        if (!board_.snapshot(snap_, /*withFiber=*/true))
            return; // resume path of a forked evaluation
        recordState();
    }

    void
    maybeCaptureBoot()
    {
        if (!checkArmed())
            return;
        // This callback fires from traceBoot(), before the run loop
        // emits the Boot event — so the captured ring mark excludes it
        // and the phase is patched to BootNoTrace: the resumed loop
        // emits the event exactly once and never re-announces the boot
        // to the (then different) sink.
        board_.snapshot(snap_, /*withFiber=*/false);
        snap_.phase = board::RunPhase::BootNoTrace;
        recordState();
    }

    /** Safety is monotone — census and clock only grow — so the first
     *  unsafe event disarms capturing for good. */
    bool
    checkArmed()
    {
        if (!arming_)
            return false;
        for (const auto &c : target_->cuts) {
            if (c.absolute) {
                if (board_.now() >= c.atNs)
                    arming_ = false;
            } else if (census_.boundary[static_cast<int>(c.boundary)] >=
                       c.occurrence) {
                arming_ = false;
            }
        }
        for (const auto &t : target_->tears)
            if (census_.stores[static_cast<int>(t.site)] >= t.occurrence)
                arming_ = false;
        for (const auto &f : target_->flips)
            if (boots_ >= f.outageIndex + 1)
                arming_ = false;
        return arming_;
    }

    void
    recordState()
    {
        state0_.census = census_;
        state0_.started = started_;
        state0_.boots = boots_;
        haveSnap_ = true;
    }

    board::Board &board_;
    const FaultPlan *target_;
    bool arming_ = true;
    bool haveSnap_ = false;
    bool started_ = false;
    std::uint64_t boots_ = 0;
    EventCensus census_{};
    board::Snapshot snap_{};
    InjectorState state0_{};
};

} // namespace

// ---- public API ------------------------------------------------------------

PairExploreResult
explorePair(const ExploreConfig &cfg, const PairSpec &spec)
{
    PairExploreResult out;
    out.app = spec.app;
    out.runtime = spec.runtime;
    out.isProtected = spec.isProtected;
    if (!spec.make)
        fatal("explore: pair '%s/%s' has no factory", spec.app.c_str(),
              spec.runtime.c_str());
    if (cfg.maxFaults == 0)
        fatal("explore: maxFaults must be at least 1");

    const PairRunOutcome ref =
        runPairWithPlan(cfg.base, spec, FaultPlan{}, /*observe=*/true);
    out.refCompleted = ref.res.completed;
    if (!out.refCompleted)
        return out;

    const unsigned shards = std::max(1u, cfg.jobs);
    std::vector<ShardStats> stats(shards);
    sweep::JobPool pool(shards);
    pool.run(shards, [&](std::size_t s) {
        ShardWalker w(cfg, spec, ref, static_cast<unsigned>(s), shards);
        stats[s] = w.run();
    });

    for (const ShardStats &s : stats) {
        out.recordingConsistent =
            out.recordingConsistent && s.recordingConsistent;
        out.decisionPoints = std::max(out.decisionPoints, s.decisionPoints);
        out.branchesTaken += s.branchesTaken;
        out.statesExplored += s.statesExplored;
        out.frontierCutoffs += s.frontierCutoffs;
    }
    out.exhausted = out.recordingConsistent && out.frontierCutoffs == 0;

    // Merge shards deterministically: every distinct plan once, in
    // plan-string order (shard assignment only changes who found it).
    std::vector<PendingViolation> all;
    for (ShardStats &s : stats)
        for (PendingViolation &pv : s.viols)
            all.push_back(std::move(pv));
    std::sort(all.begin(), all.end(),
              [](const PendingViolation &a, const PendingViolation &b) {
                  return a.planStr < b.planStr;
              });
    all.erase(std::unique(all.begin(), all.end(),
                          [](const PendingViolation &a,
                             const PendingViolation &b) {
                              return a.planStr == b.planStr;
                          }),
              all.end());

    // Confirm each survivor through the real from-boot injector, and
    // ddmin multi-fault schedules down to minimal form (via fork).
    std::set<std::string> reported;
    for (const PendingViolation &pv : all) {
        const PairRunOutcome sub =
            runPairWithPlan(cfg.base, spec, pv.plan, /*observe=*/false);
        const Classification c = classifyOutcome(ref, sub);
        ExploredViolation ev;
        ev.foundAs = pv.planStr;
        ev.plan = pv.planStr;
        ev.kind = pv.kind;
        ev.divergentBytes = pv.divergentBytes;
        ev.confirmed = !c.kind.empty();
        if (ev.confirmed) {
            ev.kind = c.kind;
            ev.divergentBytes = c.divergentBytes;
            if (pv.plan.atomCount() > 1) {
                const Violation v =
                    forkShrinkViolation(cfg.base, spec, ref, pv.plan, c);
                if (v.replayVerified) {
                    ev.plan = v.plan;
                    ev.kind = v.kind;
                    ev.divergentBytes = v.divergentBytes;
                }
            }
        }
        if (!reported.insert(ev.plan + "|" + (ev.confirmed ? "c" : "u"))
                 .second)
            continue; // two schedules minimized to the same plan
        if (ev.confirmed)
            ++out.confirmedViolations;
        out.violations.push_back(std::move(ev));
    }
    return out;
}

ExploreReport
exploreMatrix(const ExploreConfig &cfg, const std::vector<PairSpec> &specs)
{
    ExploreReport report;
    report.maxFaults = cfg.maxFaults;
    for (const PairSpec &spec : specs)
        report.pairs.push_back(explorePair(cfg, spec));
    return report;
}

bool
ExploreReport::ok() const
{
    if (pairs.empty())
        return false;
    for (const auto &p : pairs) {
        if (!p.refCompleted || !p.recordingConsistent)
            return false;
        if (p.isProtected && p.confirmedViolations > 0)
            return false;
        if (!p.isProtected && p.exhausted && p.confirmedViolations == 0)
            return false;
    }
    return true;
}

Violation
forkShrinkViolation(const CampaignConfig &cfg, const PairSpec &spec,
                    const PairRunOutcome &ref, const FaultPlan &original,
                    const Classification &firstSeen)
{
    if (!spec.make)
        fatal("explore: pair '%s/%s' has no factory", spec.app.c_str(),
              spec.runtime.c_str());

    // Recording pass: one fault-free run — the common prefix of every
    // ddmin candidate — capturing the latest snapshot from which all
    // of the original plan's atoms still lie ahead.
    board::BoardConfig bcfg;
    bcfg.seed = cfg.seed;
    auto supply = std::make_unique<FaultedSupply>(
        std::make_unique<energy::ContinuousSupply>(), original.offNs);
    FaultedSupply *sup = supply.get();
    board::Board board(bcfg, std::move(supply),
                       std::make_unique<timekeeper::PerfectTimekeeper>());
    ShrinkRecorder rec(board, original);
    mem::ScopedAccessSink as(&rec);
    mem::ScopedStoreGate sg(&rec);
    PairEnv env = spec.make(board);
    mem::WriteJournal journal;
    mem::ScopedWriteJournal sj(&journal);
    board.beginRun(*env.runtime, env.entry, cfg.budget);
    board.continueRun();
    rec.disarm();

    FaultInjector inj(board, *sup, original, /*observeOnly=*/false);

    const PlanEval eval = [&](const FaultPlan &p) -> PlanProbe {
        PlanProbe probe;
        if (!rec.planSafeFrom(p)) {
            // Absolutized confirmation plans (or a capture that never
            // happened) fall back to a full from-boot evaluation.
            const PairRunOutcome sub =
                runPairWithPlan(cfg, spec, p, /*observe=*/false);
            probe.cls = classifyOutcome(ref, sub);
            probe.firedCuts = sub.firedCuts;
            probe.cycles = sub.res.cycles;
            return probe;
        }
        board.restore(rec.snap());
        inj.rebind(&p, /*observeOnly=*/false);
        inj.setState(rec.stateAt());
        std::vector<TimeNs> abs;
        for (const auto &c : p.cuts)
            if (c.absolute)
                abs.push_back(c.atNs);
        std::sort(abs.begin(), abs.end());
        sup->scheduleAbsolute(std::move(abs));
        const Cycles before = board.mcu().cycles();
        mem::ScopedAccessSink evalSink(&inj);
        mem::ScopedStoreGate evalGate(&inj);
        const board::RunResult res = board.continueRun();
        const PairRunOutcome sub = leafOutcome(board, env, res);
        probe.cls = classifyOutcome(ref, sub);
        probe.firedCuts = sup->firedAt(); // restore rolled these back
        probe.cycles = res.cycles - before;
        return probe;
    };

    return shrinkPlanWith(spec, original, firstSeen, eval);
}

Table
exploreTable(const ExploreReport &report)
{
    Table t("ticsmc: exhaustive failure-space census (maxFaults=" +
            std::to_string(report.maxFaults) + ")");
    t.header({"app", "runtime", "prot", "decisions", "branches", "leaves",
              "cutoffs", "exhausted", "violations"});
    for (const auto &p : report.pairs) {
        t.row()
            .cell(p.app)
            .cell(p.runtime)
            .cell(p.isProtected ? "yes" : "no")
            .cell(p.decisionPoints)
            .cell(p.branchesTaken)
            .cell(p.statesExplored)
            .cell(p.frontierCutoffs)
            .cell(!p.refCompleted           ? "ref-failed"
                  : !p.recordingConsistent ? "rec-diverged"
                  : p.exhausted            ? "yes"
                                           : "no")
            .cell(p.confirmedViolations);
    }
    return t;
}

Table
exploreViolationTable(const ExploreReport &report)
{
    Table t("ticsmc: violations (minimal confirmed schedules)");
    t.header({"app", "runtime", "kind", "confirmed", "divergent",
              "schedule"});
    for (const auto &p : report.pairs) {
        for (const auto &v : p.violations) {
            t.row()
                .cell(p.app)
                .cell(p.runtime)
                .cell(v.kind)
                .cell(v.confirmed ? "yes" : "NO")
                .cell(v.divergentBytes)
                .cell(v.plan);
        }
    }
    return t;
}

} // namespace ticsim::fault
