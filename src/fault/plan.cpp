#include "plan.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ticsim::fault {

namespace {

const char *const kBoundaryNames[kBoundaryCount] = {
    "boot", "commit-start", "commit", "restore", "send", "time",
};

const char *const kTearModeNames[3] = {"prefix", "garbage", "interleave"};

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out, int base = 10)
{
    if (s.empty())
        return false;
    // strtoull tolerates leading whitespace and '-' (which wraps to a
    // huge value); a plan number must start with a digit of its base.
    const auto first = static_cast<unsigned char>(s[0]);
    if (base == 16 ? !std::isxdigit(first) : !std::isdigit(first))
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, base);
    if (end != s.c_str() + s.size())
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

/** "cut@commit:3+5000" | "cut@t:123456" */
bool
parseCut(const std::string &body, PowerCut &c, std::string *err)
{
    const auto colon = body.find(':');
    if (colon == std::string::npos)
        return fail(err, "cut: missing ':' in \"" + body + "\"");
    const std::string anchor = body.substr(0, colon);
    const std::string rest = body.substr(colon + 1);
    if (anchor == "t") {
        std::uint64_t at = 0;
        if (!parseU64(rest, at))
            return fail(err, "cut: bad absolute time \"" + rest + "\"");
        c.absolute = true;
        c.atNs = static_cast<TimeNs>(at);
        return true;
    }
    if (!parseBoundary(anchor, c.boundary))
        return fail(err, "cut: unknown boundary \"" + anchor + "\"");
    c.absolute = false;
    const auto plus = rest.find('+');
    const std::string occStr =
        plus == std::string::npos ? rest : rest.substr(0, plus);
    if (!parseU64(occStr, c.occurrence) || c.occurrence == 0)
        return fail(err, "cut: bad occurrence \"" + occStr + "\"");
    c.delayNs = 0;
    if (plus != std::string::npos) {
        std::uint64_t d = 0;
        if (!parseU64(rest.substr(plus + 1), d))
            return fail(err, "cut: bad delay in \"" + rest + "\"");
        c.delayNs = static_cast<TimeNs>(d);
    }
    return true;
}

/** "tear@hdr-store:2/prefix:8" */
bool
parseTear(const std::string &body, TornWrite &t, std::string *err)
{
    const auto parts = split(body, '/');
    if (parts.size() != 2)
        return fail(err, "tear: expected site:occ/mode:keep in \"" +
                             body + "\"");
    const auto c1 = parts[0].rfind(':');
    if (c1 == std::string::npos)
        return fail(err, "tear: missing occurrence in \"" + body + "\"");
    const std::string siteName = parts[0].substr(0, c1);
    bool found = false;
    for (int i = 0; i < mem::kStoreSiteCount; ++i) {
        const auto s = static_cast<mem::StoreSite>(i);
        if (siteName == mem::storeSiteName(s)) {
            t.site = s;
            found = true;
        }
    }
    if (!found)
        return fail(err, "tear: unknown site \"" + siteName + "\"");
    if (!parseU64(parts[0].substr(c1 + 1), t.occurrence) ||
        t.occurrence == 0)
        return fail(err, "tear: bad occurrence in \"" + body + "\"");
    const auto c2 = parts[1].find(':');
    if (c2 == std::string::npos)
        return fail(err, "tear: missing keepBytes in \"" + body + "\"");
    if (!parseTearMode(parts[1].substr(0, c2), t.mode))
        return fail(err, "tear: unknown mode \"" +
                             parts[1].substr(0, c2) + "\"");
    std::uint64_t keep = 0;
    if (!parseU64(parts[1].substr(c2 + 1), keep))
        return fail(err, "tear: bad keepBytes in \"" + body + "\"");
    t.keepBytes = static_cast<std::uint32_t>(keep);
    return true;
}

/** "flip@1:tics.ckpt.hdr0+4&0x40" */
bool
parseFlip(const std::string &body, BitFlip &f, std::string *err)
{
    const auto colon = body.find(':');
    if (colon == std::string::npos)
        return fail(err, "flip: missing ':' in \"" + body + "\"");
    if (!parseU64(body.substr(0, colon), f.outageIndex) ||
        f.outageIndex == 0)
        return fail(err, "flip: bad outage index in \"" + body + "\"");
    const std::string rest = body.substr(colon + 1);
    const auto amp = rest.rfind('&');
    const auto plus = rest.rfind('+', amp);
    if (amp == std::string::npos || plus == std::string::npos ||
        plus > amp)
        return fail(err, "flip: expected region+offset&mask in \"" +
                             body + "\"");
    f.region = rest.substr(0, plus);
    if (f.region.empty())
        return fail(err, "flip: empty region in \"" + body + "\"");
    std::uint64_t off = 0, mask = 0;
    if (!parseU64(rest.substr(plus + 1, amp - plus - 1), off))
        return fail(err, "flip: bad offset in \"" + body + "\"");
    std::string maskStr = rest.substr(amp + 1);
    int base = 10;
    if (maskStr.rfind("0x", 0) == 0 || maskStr.rfind("0X", 0) == 0) {
        maskStr = maskStr.substr(2);
        base = 16;
    }
    if (!parseU64(maskStr, mask, base) || mask == 0 || mask > 0xFF)
        return fail(err, "flip: bad mask in \"" + body + "\"");
    f.offset = static_cast<std::uint32_t>(off);
    f.mask = static_cast<std::uint8_t>(mask);
    return true;
}

} // namespace

const char *
boundaryName(Boundary b)
{
    return kBoundaryNames[static_cast<int>(b)];
}

bool
parseBoundary(const std::string &s, Boundary &out)
{
    for (int i = 0; i < kBoundaryCount; ++i) {
        if (s == kBoundaryNames[i]) {
            out = static_cast<Boundary>(i);
            return true;
        }
    }
    return false;
}

const char *
tearModeName(TearMode m)
{
    return kTearModeNames[static_cast<int>(m)];
}

bool
parseTearMode(const std::string &s, TearMode &out)
{
    for (int i = 0; i < 3; ++i) {
        if (s == kTearModeNames[i]) {
            out = static_cast<TearMode>(i);
            return true;
        }
    }
    return false;
}

std::string
FaultPlan::format() const
{
    std::string out;
    char buf[192];
    const auto add = [&out](const char *piece) {
        if (!out.empty())
            out += ';';
        out += piece;
    };
    for (const auto &c : cuts) {
        if (c.absolute) {
            std::snprintf(buf, sizeof buf, "cut@t:%llu",
                          static_cast<unsigned long long>(c.atNs));
        } else if (c.delayNs > 0) {
            std::snprintf(
                buf, sizeof buf, "cut@%s:%llu+%llu",
                boundaryName(c.boundary),
                static_cast<unsigned long long>(c.occurrence),
                static_cast<unsigned long long>(c.delayNs));
        } else {
            std::snprintf(
                buf, sizeof buf, "cut@%s:%llu", boundaryName(c.boundary),
                static_cast<unsigned long long>(c.occurrence));
        }
        add(buf);
    }
    for (const auto &t : tears) {
        std::snprintf(buf, sizeof buf, "tear@%s:%llu/%s:%u",
                      mem::storeSiteName(t.site),
                      static_cast<unsigned long long>(t.occurrence),
                      tearModeName(t.mode), t.keepBytes);
        add(buf);
    }
    for (const auto &f : flips) {
        std::snprintf(buf, sizeof buf, "flip@%llu:%s+%u&0x%02X",
                      static_cast<unsigned long long>(f.outageIndex),
                      f.region.c_str(), f.offset, f.mask);
        add(buf);
    }
    std::snprintf(buf, sizeof buf, "off:%llu",
                  static_cast<unsigned long long>(offNs));
    add(buf);
    return out;
}

bool
FaultPlan::parse(const std::string &s, FaultPlan &out, std::string *err)
{
    FaultPlan p;
    for (const auto &atom : split(s, ';')) {
        if (atom.empty())
            continue;
        if (atom.rfind("off:", 0) == 0) {
            std::uint64_t off = 0;
            if (!parseU64(atom.substr(4), off))
                return fail(err, "bad off time \"" + atom + "\"");
            p.offNs = static_cast<TimeNs>(off);
            continue;
        }
        const auto at = atom.find('@');
        if (at == std::string::npos)
            return fail(err, "atom without '@': \"" + atom + "\"");
        const std::string kind = atom.substr(0, at);
        const std::string body = atom.substr(at + 1);
        if (kind == "cut") {
            PowerCut c;
            if (!parseCut(body, c, err))
                return false;
            p.cuts.push_back(c);
        } else if (kind == "tear") {
            TornWrite t;
            if (!parseTear(body, t, err))
                return false;
            p.tears.push_back(t);
        } else if (kind == "flip") {
            BitFlip f;
            if (!parseFlip(body, f, err))
                return false;
            p.flips.push_back(std::move(f));
        } else {
            return fail(err, "unknown atom kind \"" + kind + "\"");
        }
    }
    out = std::move(p);
    return true;
}

} // namespace ticsim::fault
