/**
 * @file
 * Fault execution machinery: a Supply decorator that fires scheduled
 * power cuts, and a combined AccessSink + StoreGate that counts
 * boundary events, arms boundary-anchored cuts, tears gated NV stores,
 * and flips retention bits between charge windows.
 *
 * The same FaultInjector runs in two modes. In observe mode it only
 * counts — the campaign's reference run uses this to learn how many
 * commits, sends, stores, ... a failure-free execution performs, which
 * is the universe the systematic schedules are drawn from. In inject
 * mode it additionally executes a FaultPlan. Occurrence counting is
 * identical in both modes (and excludes pre-run construction stores),
 * so "the 3rd commit" means the same instant in both.
 */

#ifndef TICSIM_FAULT_INJECTOR_HPP
#define TICSIM_FAULT_INJECTOR_HPP

#include <memory>

#include "board/board.hpp"
#include "energy/supply.hpp"
#include "fault/plan.hpp"
#include "mem/store_gate.hpp"
#include "mem/trace.hpp"

namespace ticsim::fault {

/**
 * Apply @p t's torn-write effect of storing @p src over @p dst: the
 * NV cell ends in the state a power failure mid-store would leave.
 * For Interleaved tears of 4 bytes or fewer (one aligned word commits
 * atomically) this falls back to a garbage-tail tear so the store is
 * still genuinely torn.
 */
void applyTornStore(const TornWrite &t, void *dst, const void *src,
                    std::uint32_t bytes);

/**
 * Wraps an inner supply and overlays injected deaths: a sorted list of
 * absolute cut instants plus at most one armed boundary-relative cut
 * (converted to an absolute deadline at the next drain). Injected
 * deaths use the plan's off time; organic deaths of the inner supply
 * keep its own. Cut semantics are half-open like ScheduledSupply's: a
 * charge ending exactly at a cut completes and the death lands on the
 * next drain.
 */
class FaultedSupply : public energy::Supply
{
  public:
    FaultedSupply(std::unique_ptr<energy::Supply> inner, TimeNs offNs);

    energy::DrainResult drain(TimeNs now, TimeNs dur,
                              Watts load) override;
    TimeNs offTimeAfterDeath(TimeNs deathTime) override;
    void reset() override;
    bool intermittent() const override { return true; }
    Volts voltageNow() const override { return inner_->voltageNow(); }

    /** Pre-program absolute cut instants (must be ascending). */
    void scheduleAbsolute(std::vector<TimeNs> cutsAt);

    /**
     * Arm one cut @p delay after the next drain's start. No-op while a
     * previously armed cut is still pending (first boundary wins —
     * overlapping schedules stay deterministic).
     * @return whether this call actually armed the cut.
     */
    bool armCutAfter(TimeNs delay);

    /** A tear killed the system; bill the next off window to the plan. */
    void noteForcedDeath() { forced_ = true; }

    /** Deaths this decorator injected (not the inner supply's). */
    std::uint64_t injectedDeaths() const { return injected_; }

    /** Absolute instants at which injected cuts actually fired, in
     *  order — the raw material for absolutized ResetPatterns. */
    const std::vector<TimeNs> &firedAt() const { return fired_; }

    /** Scheduled instants of the absolute cuts that fired (subset of
     *  scheduleAbsolute()'s list) — lets the replay reporter tell
     *  which `cut@t:` atoms actually triggered. */
    const std::vector<TimeNs> &absFiredAt() const { return absFired_; }

    /** Snapshot/fork support: the decorator's pending/armed/fired cut
     *  state rides inside board::Snapshot's supply blob. */
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    std::unique_ptr<energy::Supply> inner_;
    TimeNs offNs_;
    std::vector<TimeNs> abs_;
    std::size_t nextAbs_ = 0;
    bool havePending_ = false; ///< armCutAfter awaiting a drain
    TimeNs pendingDelay_ = 0;
    bool haveArmed_ = false;   ///< absolute deadline from armCutAfter
    TimeNs armedAt_ = 0;
    bool forced_ = false;
    std::uint64_t injected_ = 0;
    std::vector<TimeNs> fired_;
    std::vector<TimeNs> absFired_;
};

/** Per-boundary and per-store-site occurrence totals of one run. */
struct EventCensus {
    std::uint64_t boundary[kBoundaryCount] = {};
    std::uint64_t stores[mem::kStoreSiteCount] = {};
    std::uint32_t maxStoreBytes[mem::kStoreSiteCount] = {};
};

/** Whether (and where) one plan atom actually took effect during a
 *  run: the boundary/store/outage occurrence it matched and the
 *  virtual time of that trigger. Atoms that never matched stay
 *  fired == false — `ticsfault --replay` reports them and exits
 *  non-zero, since a plan that never fires proves nothing. */
struct AtomFiring {
    bool fired = false;
    std::uint64_t occurrence = 0;
    TimeNs at = 0;
};

/** The injector's replayable progress state: everything occurrence
 *  counting depends on. The fork shrinker seeds a fresh injector with
 *  the state recorded at its snapshot point so "the 3rd commit" keeps
 *  meaning the same instant in a resumed run. */
struct InjectorState {
    EventCensus census{};
    bool started = false;
    std::uint64_t boots = 0;
};

/**
 * The in-run fault executor. Install as both the access sink and the
 * store gate (ScopedAccessSink + ScopedStoreGate) around one
 * Board::run.
 */
class FaultInjector : public mem::AccessSink, public mem::StoreGate
{
  public:
    /**
     * @param observeOnly Count events but inject nothing (the plan's
     *        cuts/tears/flips are ignored; its offNs still applies to
     *        deaths injected by other means — i.e. none).
     */
    FaultInjector(board::Board &board, FaultedSupply &supply,
                  const FaultPlan &plan, bool observeOnly);

    // AccessSink
    void memRead(const void *, std::uint32_t) override {}
    void memWrite(const void *, std::uint32_t) override {}
    void memVersioned(const void *, std::uint32_t) override {}
    void powerOn() override;
    void commit() override;
    void sideEvent(const mem::SideEvent &ev) override;

    // StoreGate
    void store(mem::StoreSite site, void *dst, const void *src,
               std::uint32_t bytes) override;

    const EventCensus &census() const { return census_; }
    std::uint64_t tearsApplied() const { return tears_; }
    std::uint64_t flipsApplied() const { return flips_; }
    /** Flips whose region name matched no NV region (plan bugs). */
    std::uint64_t flipsUnmatched() const { return flipsUnmatched_; }

    /**
     * Point the injector at a different plan (and mode) mid-stream
     * without resetting occurrence counts. The fork shrinker restores
     * a snapshot, rebinds to the candidate subset plan, and resumes —
     * the census keeps counting from where the recording left off.
     */
    void rebind(const FaultPlan *plan, bool observeOnly);

    InjectorState state() const;
    void setState(const InjectorState &s);

    /** Per-atom trigger records, indexed like the plan's vectors.
     *  Relative cuts are marked fired when their boundary arms the
     *  supply (absolute cuts are tracked by FaultedSupply instead). */
    const std::vector<AtomFiring> &cutFirings() const { return cutFired_; }
    const std::vector<AtomFiring> &tearFirings() const { return tearFired_; }
    const std::vector<AtomFiring> &flipFirings() const { return flipFired_; }

  private:
    void note(Boundary b);
    void applyFlip(const BitFlip &f, std::size_t atomIdx);
    void resizeFirings();

    board::Board &board_;
    FaultedSupply &supply_;
    const FaultPlan *plan_;
    bool observe_;
    bool started_ = false; ///< first powerOn seen; stores count from here
    std::uint64_t boots_ = 0;
    EventCensus census_;
    std::uint64_t tears_ = 0;
    std::uint64_t flips_ = 0;
    std::uint64_t flipsUnmatched_ = 0;
    std::vector<AtomFiring> cutFired_;
    std::vector<AtomFiring> tearFired_;
    std::vector<AtomFiring> flipFired_;
};

} // namespace ticsim::fault

#endif // TICSIM_FAULT_INJECTOR_HPP
